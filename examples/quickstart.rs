//! Quickstart: generate a performance dataset, carve out the paper's focus
//! slice, and run both AL strategies on it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use alperf::al::strategy::{CostEfficiency, VarianceReduction};
use alperf::cluster::campaign::{Campaign, COL_FREQ, COL_NP, COL_OPERATOR, COL_SIZE};
use alperf::cluster::workload::WorkloadSpec;
use alperf::data::partition::Partition;
use alperf::framework::analysis::{AnalysisConfig, PerformanceAnalysis};
use alperf::gp::noise::NoiseFloor;

fn main() {
    // 1. Collect a (simulated) measurement campaign — the stand-in for the
    //    paper's 3246-job CloudLab dataset. A reduced design keeps the
    //    example snappy.
    println!("== collecting measurements on the simulated cluster ==");
    let campaign = Campaign {
        spec: WorkloadSpec {
            focus_size_levels: 12,
            default_size_levels: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let out = campaign.run().expect("campaign");
    println!(
        "performance dataset: {} jobs | power dataset: {} jobs | makespan {:.0} s",
        out.performance.n_rows(),
        out.power.n_rows(),
        out.makespan
    );

    // 2. The paper's evaluation slice: Operator = poisson1, NP = 32;
    //    model log10(Runtime) against log10(Global Problem Size) and
    //    CPU Frequency.
    let slice = out
        .performance
        .fix_level(COL_OPERATOR, "poisson1")
        .expect("operator column")
        .fix_variable(COL_NP, 32.0)
        .expect("NP column");
    println!(
        "\n== AL on the (poisson1, NP=32) slice: {} jobs ==",
        slice.n_rows()
    );

    let config = AnalysisConfig {
        variables: vec![COL_SIZE.into(), COL_FREQ.into()],
        log_variables: vec![COL_SIZE.into()],
        response: "Runtime".into(),
        log_response: true,
        np_column: None, // NP fixed in this slice; cost = runtime * 32
        runtime_column: "Runtime".into(),
        noise_floor: NoiseFloor::recommended(),
        restarts: 3,
        max_iters: 40,
        hyper_refit_every: 1,
        seed: 1,
    };
    let analysis = PerformanceAnalysis::new(slice.clone(), config);
    let n = slice.n_rows();
    let partition = Partition::paper_default(n, 7);

    for (label, run) in [
        (
            "Variance Reduction",
            analysis
                .run(&partition, &mut VarianceReduction)
                .expect("AL run"),
        ),
        (
            "Cost Efficiency   ",
            analysis
                .run(&partition, &mut CostEfficiency)
                .expect("AL run"),
        ),
    ] {
        let first = &run.history[0];
        let last = run.history.last().expect("non-empty run");
        println!(
            "{label}: RMSE {:.3} -> {:.3} (log10 s) | cost {:.0} -> {:.0} core-s over {} iters",
            first.rmse,
            last.rmse,
            first.cumulative_cost,
            last.cumulative_cost,
            run.history.len()
        );
    }
    println!("\nDone. See examples/cost_aware_study.rs for the full Fig. 8 comparison.");
}
