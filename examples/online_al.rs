//! Online Active Learning against the *real* multigrid solver.
//!
//! This is the paper's "target use case": no pre-collected database — every
//! AL iteration selects a configuration, actually runs HPGMG-FE (our
//! full-multigrid Poisson solver), measures wall-clock runtime, and updates
//! the GPR model. The controlled variables are grid refinement (problem
//! size) and thread count.
//!
//! ```sh
//! cargo run --release --example online_al
//! ```

use alperf::al::strategy::VarianceReduction;
use alperf::framework::online::OnlineAl;
use alperf::gp::kernel::ArdSquaredExponential;
use alperf::gp::noise::NoiseFloor;
use alperf::gp::optimize::GprConfig;
use alperf::hpgmg::operator::OperatorKind;
use alperf::hpgmg::solver::FmgSolver;
use alperf::linalg::matrix::Matrix;

fn main() {
    // Candidate settings: (log2 refinement, threads). Refinements 16..64
    // keep single-solve times comfortable for a demo.
    let refinements = [16usize, 32, 64];
    let threads = [1usize, 2, 4];
    let mut rows = Vec::new();
    for &n in &refinements {
        for &t in &threads {
            rows.push(vec![(n as f64).log2(), t as f64]);
        }
    }
    let flat: Vec<f64> = rows.iter().flatten().copied().collect();
    let candidates = Matrix::from_vec(rows.len(), 2, flat).expect("candidate matrix");

    // The oracle: run the solver, return log10(seconds) and the raw cost
    // (seconds x threads), mirroring the paper's cost unit.
    let mut oracle = |x: &[f64]| -> (f64, f64) {
        let n = (2f64.powf(x[0])).round() as usize;
        let t = x[1] as usize;
        let stats = FmgSolver {
            threads: t,
            ..FmgSolver::new(OperatorKind::Poisson1, n)
        }
        .run();
        println!(
            "  measured n={n:<3} threads={t}: {:.4} s (residual {:.1e})",
            stats.seconds, stats.final_residual
        );
        (stats.seconds.log10(), stats.seconds * t as f64)
    };

    let gpr = GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
        .with_noise_floor(NoiseFloor::Fixed(0.05))
        .with_restarts(3);
    let driver = OnlineAl::new(candidates, gpr);

    println!("== online AL: 12 live multigrid measurements ==");
    let records = driver
        .run(&mut oracle, &mut VarianceReduction, 0, 12)
        .expect("online AL");

    println!("\niter  candidate  sigma_before  AMSD     cum.cost");
    for r in &records {
        println!(
            "{:>4}  {:>9}  {:>12.4}  {:>7.4}  {:>8.2}",
            r.iter, r.candidate, r.sigma_before, r.amsd, r.cumulative_cost
        );
    }
    let visits: std::collections::BTreeMap<usize, usize> =
        records.iter().fold(Default::default(), |mut m, r| {
            *m.entry(r.candidate).or_default() += 1;
            m
        });
    println!("\nvisits per candidate: {visits:?}");
    println!("(noisy settings are revisited — the Section III requirement)");
}
