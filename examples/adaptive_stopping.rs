//! Adaptive stopping + continuous acquisition — the paper's §V-B4 stopping
//! rule and §VI future-work pieces working together, online.
//!
//! An online AL loop measures the performance model directly (noisy
//! oracle), uses the **dynamic noise floor** `sigma_n >= 1/sqrt(N)`, stops
//! when AMSD converges, and then asks the **continuous acquisition
//! optimizer** where the next experiment *would* go if the budget were
//! extended — showing how the pieces compose into a practical stopping
//! decision.
//!
//! ```sh
//! cargo run --release --example adaptive_stopping
//! ```

use alperf::al::continuous::{ContinuousAcquisition, Criterion};
use alperf::al::convergence::ConvergenceDetector;
use alperf::al::strategy::VarianceReduction;
use alperf::framework::analysis::paper_kernel_bounds;
use alperf::framework::online::OnlineAl;
use alperf::gp::kernel::ArdSquaredExponential;
use alperf::gp::noise::NoiseFloor;
use alperf::gp::optimize::{fit_surrogate, GprConfig};
use alperf::hpgmg::model::PerfModel;
use alperf::hpgmg::operator::OperatorKind;
use alperf::linalg::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Candidate pool: (log10 size, log2 np) over the Table I box.
    let sizes: Vec<f64> = (0..9).map(|i| 3.23 + i as f64 * 0.725).collect();
    let nps = [1.0f64, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    let mut rows = Vec::new();
    for &s in &sizes {
        for &np in &nps {
            rows.push(vec![s, np.log2()]);
        }
    }
    let flat: Vec<f64> = rows.iter().flatten().copied().collect();
    let candidates = Matrix::from_vec(rows.len(), 2, flat).expect("candidates");

    // Noisy oracle backed by the calibrated performance model.
    let model = PerfModel::calibrated();
    let mut rng = StdRng::seed_from_u64(17);
    let mut oracle = move |x: &[f64]| -> (f64, f64) {
        let size = 10f64.powf(x[0]);
        let np = 2f64.powf(x[1]).round() as usize;
        let t = model.sample_runtime(OperatorKind::Poisson1, size, np, 1.8, &mut rng);
        (t.log10(), t * np as f64)
    };

    let gpr = GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
        .with_noise_floor(NoiseFloor::DynamicInvSqrtN) // the paper's §V-B4 proposal
        .with_kernel_bounds(paper_kernel_bounds(2))
        .with_restarts(2)
        .with_standardize(false);
    let driver = OnlineAl::new(candidates, gpr.clone());

    println!("== online AL with dynamic noise floor sigma_n >= 1/sqrt(N) ==");
    let records = driver
        .run(&mut oracle, &mut VarianceReduction, 0, 60)
        .expect("online AL");

    // Stopping rule: AMSD convergence.
    let amsd: Vec<f64> = records.iter().skip(1).map(|r| r.amsd).collect();
    let detector = ConvergenceDetector {
        window: 6,
        rel_tolerance: 0.08,
    };
    let stop = detector.converged_at(&amsd);
    match stop {
        Some(i) => println!(
            "AMSD converged after {} measurements (AMSD = {:.4}); further experiments are 'excessive' (paper §V-B4)",
            i + 2,
            amsd[i]
        ),
        None => println!("AMSD did not converge in {} measurements", records.len()),
    }
    let spent = records.last().expect("non-empty").cumulative_cost;
    let spent_at_stop = stop
        .map(|i| records[i + 1].cumulative_cost)
        .unwrap_or(spent);
    println!("cost actually spent: {spent:.0} core-s; cost at the stopping point: {spent_at_stop:.0} core-s");

    // Where would the *continuous* optimizer run next? Refit on everything
    // measured, then maximize sigma over the continuous box.
    let mut xt = Matrix::zeros(0, 0);
    let mut yt = Vec::new();
    for r in &records {
        xt = xt.with_row(&r.x).expect("rows");
        yt.push(r.y);
    }
    let (gp, _) = fit_surrogate(&xt, &yt, &gpr).expect("refit");
    let acq = ContinuousAcquisition::new(vec![(3.23, 9.04), (0.0, 6.0)]);
    let (x_next, sigma_next) = acq.maximize(&gp, Criterion::Sigma).expect("maximize");
    println!(
        "\ncontinuous acquisition (paper §VI): next experiment at size=10^{:.2}, NP=2^{:.1} (sigma = {:.4})",
        x_next[0], x_next[1], sigma_next
    );
    println!("— a point between the pool's factor levels, unreachable for the finite Active set.");
}
