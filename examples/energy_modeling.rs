//! Energy modeling on the Power dataset — the paper's second response.
//!
//! Builds the Power dataset (jobs whose IPMI traces survived the
//! record-rate filter), fits GPR models of log10(Energy), and shows how AL
//! copes with the dataset's much higher noise: the fitted noise level
//! `sigma_n` comes out visibly larger than on the Performance dataset, and
//! convergence takes more experiments.
//!
//! ```sh
//! cargo run --release --example energy_modeling
//! ```

use alperf::al::convergence::ConvergenceDetector;
use alperf::al::strategy::VarianceReduction;
use alperf::cluster::campaign::{Campaign, COL_FREQ, COL_NP, COL_OPERATOR, COL_SIZE};
use alperf::data::partition::Partition;
use alperf::framework::analysis::{AnalysisConfig, PerformanceAnalysis};
use alperf::gp::noise::NoiseFloor;

fn main() {
    println!("== generating the Power dataset (IPMI traces + filter) ==");
    let out = Campaign::default().run().expect("campaign");
    println!(
        "power dataset: {} jobs (of {} total — the trace filter is harsh)",
        out.power.n_rows(),
        out.performance.n_rows()
    );

    // Model Energy over (size, NP) with frequency folded into the noise —
    // a deliberately coarse model to show uncertainty handling.
    let slice = out
        .power
        .fix_level(COL_OPERATOR, "poisson1")
        .expect("operator");
    println!("poisson1 power jobs: {}", slice.n_rows());

    let config = AnalysisConfig {
        variables: vec![COL_SIZE.into(), COL_NP.into(), COL_FREQ.into()],
        log_variables: vec![COL_SIZE.into(), COL_NP.into()],
        response: "Energy".into(),
        log_response: true,
        np_column: Some(COL_NP.into()),
        runtime_column: "Runtime".into(),
        noise_floor: NoiseFloor::recommended(),
        restarts: 3,
        max_iters: 40,
        hyper_refit_every: 1,
        seed: 5,
    };
    let analysis = PerformanceAnalysis::new(slice.clone(), config);
    let partition = Partition::random(slice.n_rows(), 2, 0.8, 3);
    let run = analysis
        .run(&partition, &mut VarianceReduction)
        .expect("AL run");

    println!("\niter  RMSE(log10 J)  AMSD    sigma_n");
    for r in run.history.iter().step_by(4) {
        println!(
            "{:>4}  {:>13.4}  {:>6.4}  {:>7.4}",
            r.iter, r.rmse, r.amsd, r.noise_std
        );
    }
    let amsd: Vec<f64> = run.history.iter().map(|r| r.amsd).collect();
    let detector = ConvergenceDetector::default();
    match detector.converged_at(&amsd) {
        Some(i) => println!(
            "\nAMSD converged at iteration {i} -> further experiments are 'excessive' (Section V-B4)"
        ),
        None => println!("\nAMSD has not converged in {} iterations — the Power data is noisy", amsd.len()),
    }
    let last = run.history.last().expect("non-empty");
    println!(
        "final: RMSE {:.3} log10(J), fitted sigma_n {:.3} (cf. ~0.1 floor on Performance data)",
        last.rmse, last.noise_std
    );
}
