//! The paper's headline experiment in miniature: Variance Reduction vs
//! Cost Efficiency over many random partitions, with the cost–error
//! tradeoff curves, crossover cost C, and the relative error reductions at
//! C, 2C, 3C, 5C, 10C (Section V-B4, Fig. 8).
//!
//! ```sh
//! cargo run --release --example cost_aware_study
//! ```

use alperf::al::strategy::{CostEfficiency, Strategy, VarianceReduction};
use alperf::al::tradeoff;
use alperf::cluster::campaign::{Campaign, COL_FREQ, COL_NP, COL_OPERATOR, COL_SIZE};
use alperf::cluster::workload::WorkloadSpec;
use alperf::framework::analysis::{AnalysisConfig, PerformanceAnalysis};
use alperf::gp::noise::NoiseFloor;

fn main() {
    println!("== generating the Performance dataset ==");
    let campaign = Campaign {
        spec: WorkloadSpec {
            focus_size_levels: 10,
            default_size_levels: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let out = campaign.run().expect("campaign");
    let slice = out
        .performance
        .fix_level(COL_OPERATOR, "poisson1")
        .expect("operator")
        .fix_variable(COL_NP, 32.0)
        .expect("NP");
    println!("focus slice: {} jobs", slice.n_rows());

    let config = AnalysisConfig {
        variables: vec![COL_SIZE.into(), COL_FREQ.into()],
        log_variables: vec![COL_SIZE.into()],
        response: "Runtime".into(),
        log_response: true,
        np_column: None,
        runtime_column: "Runtime".into(),
        noise_floor: NoiseFloor::recommended(),
        restarts: 2,
        // Run until the Active pool is exhausted, like the paper: the
        // tradeoff curves only meet at the maximum cost when every
        // available experiment has been consumed (Section V-B4).
        max_iters: 400,
        hyper_refit_every: 4,
        seed: 42,
    };
    let analysis = PerformanceAnalysis::new(slice, config);

    let partitions = 8; // the paper uses 50; fewer keeps the demo quick
    println!("== {partitions} AL realizations per strategy ==");
    let vr_runs = analysis
        .run_batch(partitions, || {
            Box::new(VarianceReduction) as Box<dyn Strategy>
        })
        .expect("VR batch");
    let ce_runs = analysis
        .run_batch(partitions, || Box::new(CostEfficiency) as Box<dyn Strategy>)
        .expect("CE batch");

    let cmp = tradeoff::compare(&vr_runs, &ce_runs, 40);
    println!("\ncost          RMSE(VarRed)  RMSE(CostEff)");
    for i in (0..cmp.cost.len()).step_by(4) {
        println!(
            "{:>12.1}  {:>12.4}  {:>13.4}",
            cmp.cost[i], cmp.baseline[i], cmp.contender[i]
        );
    }
    match cmp.crossover {
        Some(c) => {
            println!("\ncrossover cost C = {c:.1} core-seconds");
            println!(
                "max relative error reduction after C: {:.0}% (paper: up to 38%)",
                100.0 * cmp.max_relative_reduction
            );
            for (mult, red) in cmp.reduction_table() {
                match red {
                    Some(r) => println!("  at {mult:>2}C: {:>5.1}%", 100.0 * r),
                    None => println!("  at {mult:>2}C: (undefined)"),
                }
            }
        }
        None => println!("\nno stable crossover found on this run"),
    }
}
