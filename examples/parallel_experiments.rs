//! Parallel experiment scheduling — the paper's §VI future work, measured.
//!
//! Runs the same learning problem twice: sequential AL (one experiment at a
//! time, full feedback) and batch AL (q = 4 experiments per round, selected
//! by greedy fantasy-variance, scheduled *together* on the simulated 4-node
//! cluster). Compares final accuracy and — the new axis — total campaign
//! wall-clock.
//!
//! ```sh
//! cargo run --release --example parallel_experiments
//! ```

use alperf::cluster::job::JobRequest;
use alperf::data::partition::Partition;
use alperf::framework::analysis::paper_kernel_bounds;
use alperf::framework::parallel::ParallelCampaign;
use alperf::gp::kernel::ArdSquaredExponential;
use alperf::gp::noise::NoiseFloor;
use alperf::gp::optimize::GprConfig;
use alperf::hpgmg::model::PerfModel;
use alperf::hpgmg::operator::OperatorKind;
use alperf::linalg::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Build an offline pool of candidate jobs over (size, NP) with
    // model-driven runtimes.
    let perf = PerfModel::calibrated();
    let mut rng = StdRng::seed_from_u64(7);
    let mut rows = Vec::new();
    let mut requests = Vec::new();
    let mut runtimes = Vec::new();
    let mut y = Vec::new();
    for i in 0..96 {
        // Single-node jobs (NP = 8) with comparable durations, varied over
        // (size, frequency): a round of 4 such jobs genuinely overlaps on
        // the 4-node cluster. (Heavy-tailed mixes would be dominated by
        // their longest job — wall-clock there is bounded by the most
        // expensive experiments no matter how they are scheduled.)
        let size = 10f64.powf(7.2 + (i % 12) as f64 * 0.07);
        let freq = [1.2, 1.5, 1.8, 2.1][(i / 12) % 4];
        let req = JobRequest {
            op: OperatorKind::Poisson1,
            size,
            np: 8,
            freq,
            repeat: i % 2,
        };
        let t = perf.runtime_mean(req.op, size, 8, freq) * rng.gen_range(0.96..1.04);
        rows.push(vec![size.log10(), freq]);
        requests.push(req);
        runtimes.push(t);
        y.push(t.log10());
    }
    let flat: Vec<f64> = rows.iter().flatten().copied().collect();
    let x = Matrix::from_vec(96, 2, flat).expect("matrix");

    let gpr = GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
        .with_noise_floor(NoiseFloor::recommended())
        .with_kernel_bounds(paper_kernel_bounds(2))
        .with_restarts(2)
        .with_standardize(false);
    let partition = Partition::random(96, 2, 0.8, 11);

    println!("== 24 experiments each: sequential (q=1) vs batched (q=4) ==\n");
    let mut summaries = Vec::new();
    for (label, q, rounds) in [
        ("sequential q=1", 1usize, 24usize),
        ("batched    q=4", 4, 6),
    ] {
        let campaign = ParallelCampaign {
            x_all: &x,
            y_all: &y,
            requests: &requests,
            runtimes: &runtimes,
            perf: &perf,
            gpr: gpr.clone(),
            q,
        };
        let recs = campaign.run(&partition, rounds).expect("campaign");
        let last = recs.last().expect("non-empty");
        println!("{label}: {} rounds", recs.len());
        for r in recs.iter().step_by(if q == 1 { 6 } else { 1 }) {
            println!(
                "  round {:>2}: wall {:>8.1} s | cores {:>8.0} core-s | RMSE {:.4}",
                r.round, r.wall_clock, r.core_seconds, r.rmse
            );
        }
        println!(
            "  => total wall-clock {:.1} s, final RMSE {:.4}\n",
            last.wall_clock, last.rmse
        );
        summaries.push((label, last.wall_clock, last.rmse));
    }
    let speedup = summaries[0].1 / summaries[1].1;
    println!(
        "batching speedup: {speedup:.1}x wall-clock at {} vs {} final RMSE",
        summaries[1].2, summaries[0].2
    );
    println!("(paper §VI: parallel experiments 'add additional scheduling concerns and may indicate a less greedy selection strategy' — fantasy batches buy that concurrency at a small accuracy premium)");
}
