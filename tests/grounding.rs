//! Grounding tests: the analytic performance model (used to synthesize the
//! Table I datasets) must agree with the *real* multigrid solver wherever
//! both can run — otherwise the reproduction's datasets would be detached
//! from the benchmark they claim to describe.

use alperf::hpgmg::model::PerfModel;
use alperf::hpgmg::operator::OperatorKind;
use alperf::hpgmg::solver::FmgSolver;

/// The model assumes ~50 effective stencil applications per unknown; the
/// instrumented solver must land near that for every operator.
#[test]
fn model_work_constant_matches_instrumented_solver() {
    let model = PerfModel::calibrated();
    for kind in OperatorKind::all() {
        let stats = FmgSolver::new(kind, 32).run();
        let measured = stats.work_per_unknown();
        let assumed = model.mg_sweeps;
        assert!(
            measured > assumed * 0.4 && measured < assumed * 2.5,
            "{kind:?}: measured {measured:.1} stencil applications/unknown vs assumed {assumed}"
        );
    }
}

/// The model's per-operator cost ordering (poisson1 < poisson2affine <
/// poisson2) must match real measured solve times at a fixed size. Wall
/// times on a shared CI box are noisy, so compare medians of repeated runs
/// and only assert the ordering of the extremes.
#[test]
fn operator_cost_ordering_matches_reality() {
    if cfg!(debug_assertions) {
        // Wall-clock comparisons are meaningless in unoptimized builds
        // (bounds checks and missed vectorization dominate); run under
        // `cargo test --release`.
        return;
    }
    let median_time = |kind: OperatorKind| -> f64 {
        let mut times: Vec<f64> = (0..5)
            .map(|_| FmgSolver::new(kind, 32).run().seconds)
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        times[2]
    };
    let t1 = median_time(OperatorKind::Poisson1);
    let t2 = median_time(OperatorKind::Poisson2);
    assert!(
        t2 > t1,
        "poisson2 ({t2:.4}s) should cost more than poisson1 ({t1:.4}s)"
    );
    // And the model agrees on the ratio's direction and rough size.
    let model = PerfModel::calibrated();
    let m1 = model.runtime_mean(OperatorKind::Poisson1, 1e6, 1, 2.4);
    let m2 = model.runtime_mean(OperatorKind::Poisson2, 1e6, 1, 2.4);
    let measured_ratio = t2 / t1;
    let modeled_ratio = m2 / m1;
    assert!(
        measured_ratio > 1.1 && modeled_ratio > 1.1,
        "both ratios should exceed 1.1: measured {measured_ratio:.2}, modeled {modeled_ratio:.2}"
    );
}

/// Measured solve time grows superlinearly from n=16 to n=32 (8x unknowns),
/// as the model's O(N) compute term predicts.
#[test]
fn solve_time_scales_with_problem_size() {
    if cfg!(debug_assertions) {
        return; // timing test: release builds only
    }
    let median_time = |n: usize| -> f64 {
        let mut times: Vec<f64> = (0..5)
            .map(|_| FmgSolver::new(OperatorKind::Poisson1, n).run().seconds)
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        times[2]
    };
    let t16 = median_time(16);
    let t32 = median_time(32);
    assert!(
        t32 > 3.0 * t16,
        "8x unknowns should cost >3x time: {t16:.5}s -> {t32:.5}s"
    );
}
