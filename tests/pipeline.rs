//! End-to-end integration tests: campaign generation -> dataset tooling ->
//! GPR -> Active Learning, spanning every crate in the workspace.

use alperf::al::strategy::{CostEfficiency, RandomSampling, VarianceReduction};
use alperf::cluster::campaign::{Campaign, COL_FREQ, COL_NP, COL_OPERATOR, COL_SIZE};
use alperf::cluster::workload::WorkloadSpec;
use alperf::data::csvio;
use alperf::data::partition::Partition;
use alperf::framework::analysis::{AnalysisConfig, PerformanceAnalysis};
use alperf::gp::noise::NoiseFloor;

/// A small but complete campaign shared by the tests in this file.
fn small_campaign() -> alperf::cluster::campaign::CampaignOutput {
    Campaign {
        spec: WorkloadSpec {
            focus_size_levels: 8,
            default_size_levels: 3,
            ..Default::default()
        },
        workers: 2,
        ..Default::default()
    }
    .run()
    .expect("campaign")
}

fn focus_analysis(
    out: &alperf::cluster::campaign::CampaignOutput,
    max_iters: usize,
) -> PerformanceAnalysis {
    let slice = out
        .performance
        .fix_level(COL_OPERATOR, "poisson1")
        .expect("operator")
        .fix_variable(COL_NP, 32.0)
        .expect("NP");
    let config = AnalysisConfig {
        variables: vec![COL_SIZE.into(), COL_FREQ.into()],
        log_variables: vec![COL_SIZE.into()],
        response: "Runtime".into(),
        log_response: true,
        np_column: None,
        runtime_column: "Runtime".into(),
        noise_floor: NoiseFloor::recommended(),
        restarts: 2,
        max_iters,
        hyper_refit_every: 1,
        seed: 11,
    };
    PerformanceAnalysis::new(slice, config)
}

#[test]
fn full_pipeline_learns_the_performance_surface() {
    let out = small_campaign();
    let analysis = focus_analysis(&out, 30);
    let n = analysis.data().n_rows();
    assert!(n > 80, "focus slice too small: {n}");
    let part = Partition::paper_default(n, 3);
    let run = analysis.run(&part, &mut VarianceReduction).expect("AL");
    let first = run.history.first().expect("non-empty").rmse;
    let last = run.history.last().expect("non-empty").rmse;
    assert!(
        last < 0.35 * first,
        "AL failed to learn: RMSE {first} -> {last}"
    );
    // Final RMSE is small in absolute terms: log10 runtime predicted within
    // ~0.15 decades on held-out jobs.
    assert!(last < 0.15, "final RMSE too large: {last}");
}

#[test]
fn campaign_datasets_round_trip_through_csv() {
    let out = small_campaign();
    let dir = std::env::temp_dir().join("alperf_integration");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("perf.csv");
    csvio::write_file(&out.performance, &path).expect("write");
    let back = csvio::read_file(&path, &["Runtime"]).expect("read");
    assert_eq!(back.n_rows(), out.performance.n_rows());
    assert_eq!(
        back.response("Runtime").expect("runtime"),
        out.performance.response("Runtime").expect("runtime")
    );
    assert_eq!(
        back.variable(COL_SIZE).expect("size").values,
        out.performance.variable(COL_SIZE).expect("size").values
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn al_beats_random_sampling_at_equal_experiment_count() {
    let out = small_campaign();
    let analysis = focus_analysis(&out, 20);
    let n = analysis.data().n_rows();
    // Average over several partitions to damp luck.
    let mut vr_total = 0.0;
    let mut rnd_total = 0.0;
    let reps = 4;
    for s in 0..reps {
        let part = Partition::paper_default(n, 100 + s);
        let vr = analysis.run(&part, &mut VarianceReduction).expect("AL");
        let rnd = analysis.run(&part, &mut RandomSampling).expect("AL");
        vr_total += vr.history.last().expect("non-empty").rmse;
        rnd_total += rnd.history.last().expect("non-empty").rmse;
    }
    assert!(
        vr_total < rnd_total,
        "VR ({}) should beat random ({}) on average after 20 iters",
        vr_total / reps as f64,
        rnd_total / reps as f64
    );
}

#[test]
fn cost_efficiency_is_cheaper_for_equal_iterations() {
    let out = small_campaign();
    let analysis = focus_analysis(&out, 25);
    let n = analysis.data().n_rows();
    let part = Partition::paper_default(n, 42);
    let vr = analysis.run(&part, &mut VarianceReduction).expect("AL");
    let ce = analysis.run(&part, &mut CostEfficiency).expect("AL");
    let vr_cost = vr.history.last().expect("non-empty").cumulative_cost;
    let ce_cost = ce.history.last().expect("non-empty").cumulative_cost;
    assert!(
        ce_cost < 0.8 * vr_cost,
        "CE cost {ce_cost} not clearly below VR cost {vr_cost}"
    );
}

#[test]
fn offline_replay_is_deterministic() {
    let out = small_campaign();
    let analysis = focus_analysis(&out, 10);
    let n = analysis.data().n_rows();
    let part = Partition::paper_default(n, 5);
    let a = analysis.run(&part, &mut VarianceReduction).expect("AL");
    let b = analysis.run(&part, &mut VarianceReduction).expect("AL");
    assert_eq!(a.history, b.history);
}

#[test]
fn memory_usage_is_a_modelable_response() {
    // The paper's prototype covers "models for application runtime, energy
    // consumption, memory usage, and many others" — Memory is the third
    // response our campaign records (SLURM MaxRSS analogue).
    let out = small_campaign();
    let slice = out
        .performance
        .fix_level(COL_OPERATOR, "poisson1")
        .expect("operator")
        .fix_variable(COL_FREQ, 2.4)
        .expect("freq");
    let config = AnalysisConfig {
        variables: vec![COL_SIZE.into(), COL_NP.into()],
        log_variables: vec![COL_SIZE.into(), COL_NP.into()],
        response: "Memory".into(),
        log_response: true,
        np_column: Some(COL_NP.into()),
        runtime_column: "Runtime".into(),
        noise_floor: NoiseFloor::recommended(),
        restarts: 2,
        max_iters: 20,
        hyper_refit_every: 1,
        seed: 8,
    };
    let n = slice.n_rows();
    let analysis = PerformanceAnalysis::new(slice, config);
    let part = Partition::random(n, 2, 0.8, 4);
    let run = analysis.run(&part, &mut VarianceReduction).expect("AL");
    let last = run.history.last().expect("non-empty");
    // Memory is nearly deterministic (2% noise): the model should nail it.
    assert!(last.rmse < 0.2, "memory RMSE {}", last.rmse);
    assert!(last.rmse < run.history[0].rmse);
}

#[test]
fn power_dataset_supports_energy_modeling() {
    let out = small_campaign();
    assert!(out.power.n_rows() > 20, "power dataset too small");
    let slice = out
        .power
        .fix_level(COL_OPERATOR, "poisson1")
        .expect("operator");
    let config = AnalysisConfig {
        variables: vec![COL_SIZE.into(), COL_NP.into()],
        log_variables: vec![COL_SIZE.into(), COL_NP.into()],
        response: "Energy".into(),
        log_response: true,
        np_column: Some(COL_NP.into()),
        runtime_column: "Runtime".into(),
        noise_floor: NoiseFloor::recommended(),
        restarts: 2,
        max_iters: 15,
        hyper_refit_every: 1,
        seed: 2,
    };
    let n = slice.n_rows();
    if n < 25 {
        return; // tiny campaign variant: nothing meaningful to assert
    }
    let analysis = PerformanceAnalysis::new(slice, config);
    let part = Partition::random(n, 2, 0.8, 1);
    let run = analysis.run(&part, &mut VarianceReduction).expect("AL");
    let last = run.history.last().expect("non-empty");
    assert!(last.rmse.is_finite());
    // Energy spans ~2 decades; a usable model predicts within ~0.3 decades.
    assert!(last.rmse < 0.3, "energy RMSE too large: {}", last.rmse);
}
