//! Integration tests pinning the paper's qualitative claims at test scale.
//! The full-scale versions live in `crates/bench/src/bin/repro_*`; these
//! are fast, assertive versions run by `cargo test --workspace`.

use alperf::al::convergence::ConvergenceDetector;
use alperf::al::runner::{run_al, AlConfig};
use alperf::al::strategy::VarianceReduction;
use alperf::cluster::campaign::{Campaign, COL_FREQ, COL_NP, COL_OPERATOR, COL_SIZE};
use alperf::cluster::workload::WorkloadSpec;
use alperf::data::partition::Partition;
use alperf::framework::analysis::paper_kernel_bounds;
use alperf::gp::kernel::ArdSquaredExponential;
use alperf::gp::noise::NoiseFloor;
use alperf::gp::optimize::GprConfig;
use alperf::linalg::matrix::Matrix;

fn focus_problem() -> (Matrix, Vec<f64>, Vec<f64>) {
    let out = Campaign {
        spec: WorkloadSpec {
            focus_size_levels: 9,
            default_size_levels: 2,
            ..Default::default()
        },
        workers: 2,
        ..Default::default()
    }
    .run()
    .expect("campaign");
    let sub = out
        .performance
        .fix_level(COL_OPERATOR, "poisson1")
        .expect("operator")
        .fix_variable(COL_NP, 32.0)
        .expect("NP");
    let sizes = &sub.variable(COL_SIZE).expect("size").values;
    let freqs = &sub.variable(COL_FREQ).expect("freq").values;
    let y: Vec<f64> = sub
        .response("Runtime")
        .expect("runtime")
        .iter()
        .map(|v| v.log10())
        .collect();
    let n = sub.n_rows();
    let mut flat = Vec::with_capacity(2 * n);
    for i in 0..n {
        flat.push(sizes[i].log10());
        flat.push(freqs[i]);
    }
    (
        Matrix::from_vec(n, 2, flat).expect("matrix"),
        y,
        vec![1.0; n],
    )
}

fn gpr(floor: NoiseFloor, seed: u64) -> GprConfig {
    GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
        .with_noise_floor(floor)
        .with_kernel_bounds(paper_kernel_bounds(2))
        .with_restarts(2)
        .with_standardize(false)
        .with_seed(seed)
}

/// Paper Fig. 7: the loose noise floor lets early predictive uncertainty
/// collapse; the recommended floor prevents it.
#[test]
fn noise_floor_prevents_early_uncertainty_collapse() {
    let (x, y, cost) = focus_problem();
    let min_early = |floor: NoiseFloor| -> f64 {
        let mut worst: f64 = f64::INFINITY;
        for rep in 0..5u64 {
            let cfg = AlConfig {
                max_iters: 8,
                seed: rep,
                ..AlConfig::new(gpr(floor, 50 + rep))
            };
            let part = Partition::paper_default(x.nrows(), 900 + rep);
            let run = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).expect("AL");
            for r in run.history.iter().take(5) {
                worst = worst.min(r.amsd);
            }
        }
        worst
    };
    let loose = min_early(NoiseFloor::loose());
    let tight = min_early(NoiseFloor::recommended());
    assert!(
        loose < tight / 3.0,
        "loose floor min AMSD {loose:.3e} should be well below tight {tight:.3e}"
    );
}

/// Paper Fig. 6: starting from a single seed, Variance Reduction explores
/// the domain boundary before the interior.
#[test]
fn variance_reduction_explores_edges_first() {
    let (x, y, cost) = focus_problem();
    let cfg = AlConfig {
        max_iters: 6,
        seed: 0,
        ..AlConfig::new(gpr(NoiseFloor::recommended(), 1))
    };
    let part = Partition::paper_default(x.nrows(), 77);
    let run = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).expect("AL");
    // "Edge" in either dimension — the star pattern visits size extremes
    // *and* frequency extremes.
    let col = |j: usize| -> (f64, f64) {
        let v: Vec<f64> = (0..x.nrows()).map(|i| x[(i, j)]).collect();
        (
            v.iter().cloned().fold(f64::INFINITY, f64::min),
            v.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        )
    };
    let (s_lo, s_hi) = col(0);
    let (f_lo, f_hi) = col(1);
    let third = (s_hi - s_lo) / 3.0;
    let is_edge = |r: &alperf::al::runner::IterationRecord| {
        r.x[0] < s_lo + third
            || r.x[0] > s_hi - third
            || r.x[1] <= f_lo + 1e-9
            || r.x[1] >= f_hi - 1e-9
    };
    let outer = run.history.iter().take(4).filter(|r| is_edge(r)).count();
    assert!(
        outer >= 3,
        "expected >=3 of the first 4 picks on the domain edge, got {outer}"
    );
}

/// Paper §V-B4: when AMSD converges, RMSE has also stabilized — stopping at
/// AMSD convergence loses (almost) nothing.
#[test]
fn amsd_convergence_implies_rmse_convergence() {
    let (x, y, cost) = focus_problem();
    let cfg = AlConfig {
        max_iters: 60,
        seed: 4,
        ..AlConfig::new(gpr(NoiseFloor::recommended(), 9))
    };
    let part = Partition::paper_default(x.nrows(), 55);
    let run = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).expect("AL");
    let amsd: Vec<f64> = run.history.iter().map(|r| r.amsd).collect();
    let rmse: Vec<f64> = run.history.iter().map(|r| r.rmse).collect();
    let detector = ConvergenceDetector {
        window: 6,
        rel_tolerance: 0.12,
    };
    let Some(stop) = detector.converged_at(&amsd) else {
        // Convergence within 60 iterations is data-dependent; if AMSD never
        // stabilizes there is nothing to check.
        return;
    };
    let rmse_at_stop = rmse[stop];
    let rmse_final = *rmse.last().expect("non-empty");
    assert!(
        rmse_at_stop <= rmse_final * 2.5 + 0.02,
        "stopping at AMSD convergence (iter {stop}) left RMSE {rmse_at_stop:.4} \
         far above the final {rmse_final:.4}"
    );
}
