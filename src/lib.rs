#![warn(missing_docs)]
//! # alperf — Active Learning in Performance Analysis
//!
//! A from-scratch Rust reproduction of *Active Learning in Performance
//! Analysis* (Duplyakin, Brown, Ricci — IEEE CLUSTER 2016): adaptive
//! experiment design for performance/energy studies of HPC codes, built on
//! Gaussian Process Regression.
//!
//! ## The 30-second tour
//!
//! ```
//! use alperf::gp::kernel::SquaredExponential;
//! use alperf::gp::noise::NoiseFloor;
//! use alperf::gp::optimize::{fit_gpr, GprConfig};
//! use alperf::linalg::matrix::Matrix;
//!
//! // Measurements of a noisy performance curve.
//! let x = Matrix::from_vec(5, 1, vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
//! let y = vec![1.1, 1.9, 3.2, 3.9, 5.1];
//!
//! // Fit a GPR with marginal-likelihood hyperparameter optimization and
//! // the paper's recommended noise floor (sigma_n >= 0.1).
//! let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
//!     .with_noise_floor(NoiseFloor::recommended());
//! let (model, _) = fit_gpr(&x, &y, &cfg).unwrap();
//!
//! // Predict with uncertainty — the quantity Active Learning feeds on.
//! let p = model.predict_one(&[2.5]).unwrap();
//! assert!((p.mean - 2.5).abs() < 0.5);
//! assert!(p.std > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`linalg`] | dense matrices, Cholesky, triangular solves |
//! | [`gp`] | GPR, kernels, LML optimization, noise floors |
//! | [`data`] | datasets, partitions, transforms, CSV, factor grids |
//! | [`hpgmg`] | full-multigrid Poisson solver + calibrated perf/energy model |
//! | [`cluster`] | SLURM-like scheduler, IPMI power traces, campaign pipeline |
//! | [`al`] | acquisition strategies, AL loop, metrics, tradeoff analysis |
//! | [`framework`] | high-level offline/online analysis sessions |
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the per-figure reproduction binaries.

pub use alperf_al as al;
pub use alperf_cluster as cluster;
pub use alperf_core as framework;
pub use alperf_data as data;
pub use alperf_gp as gp;
pub use alperf_hpgmg as hpgmg;
pub use alperf_linalg as linalg;
