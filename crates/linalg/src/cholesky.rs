//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The single most important numerical routine in the workspace: every GPR
//! fit, prediction, and log-marginal-likelihood evaluation goes through
//! `K_y = L L^T`. Covariance matrices built from a squared-exponential
//! kernel are notoriously ill-conditioned when training inputs are close
//! together relative to the length scale, so [`Cholesky::decompose_jittered`]
//! retries with geometrically increasing diagonal jitter — the same strategy
//! scikit-learn's `GaussianProcessRegressor` (used by the paper) employs.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::triangular::{
    solve_lower, solve_lower_matrix, solve_lower_rhs_rows, solve_lower_transpose,
    solve_lower_transpose_matrix,
};

/// A lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Jitter that had to be added to the diagonal for the factorization to
    /// succeed (0.0 when the matrix was PD as given).
    jitter: f64,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix. Only the lower triangle
    /// of `a` is read.
    ///
    /// # Errors
    /// [`LinalgError::NotPositiveDefinite`] if a pivot is `<= 0`;
    /// [`LinalgError::DimensionMismatch`] if `a` is not square;
    /// [`LinalgError::NonFinite`] if the input contains NaN/inf.
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        Self::decompose_with_jitter(a, 0.0)
    }

    /// Factor with retries: if the plain factorization fails, add
    /// `jitter = first_jitter * 10^k` (k = 0, 1, ..., `max_tries-1`) to the
    /// diagonal until it succeeds. `first_jitter` is scaled by the mean
    /// diagonal magnitude so the retry ladder is dimensionally sensible.
    ///
    /// Returns the factor together with the jitter that was used (see
    /// [`Cholesky::jitter`]).
    pub fn decompose_jittered(
        a: &Matrix,
        first_jitter: f64,
        max_tries: usize,
    ) -> Result<Self, LinalgError> {
        let n = a.nrows();
        let mean_diag = if n == 0 {
            1.0
        } else {
            a.diagonal().iter().map(|v| v.abs()).sum::<f64>() / n as f64
        };
        let base = first_jitter * mean_diag.max(f64::MIN_POSITIVE);
        let mut last_err = None;
        for k in 0..max_tries.max(1) {
            let jitter = if k == 0 {
                0.0
            } else {
                base * 10f64.powi(k as i32 - 1)
            };
            match Self::decompose_with_jitter(a, jitter) {
                Ok(c) => return Ok(c),
                Err(e @ LinalgError::NotPositiveDefinite { .. }) => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or(LinalgError::NotPositiveDefinite {
            pivot: 0,
            value: f64::NAN,
        }))
    }

    fn decompose_with_jitter(a: &Matrix, jitter: f64) -> Result<Self, LinalgError> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky",
                details: format!("{}x{} is not square", a.nrows(), a.ncols()),
            });
        }
        if !a.all_finite() {
            return Err(LinalgError::NonFinite { op: "cholesky" });
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal element.
            let mut d = a[(j, j)] + jitter;
            for k in 0..j {
                let ljk = l[(j, k)];
                d -= ljk * ljk;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j, value: d });
            }
            let dsqrt = d.sqrt();
            l[(j, j)] = dsqrt;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dsqrt;
            }
        }
        Ok(Cholesky { l, jitter })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Diagonal jitter that was added for the factorization to succeed.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.nrows()
    }

    /// Solve `A x = b` via the two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let y = solve_lower(&self.l, b)?;
        solve_lower_transpose(&self.l, &y)
    }

    /// Forward solve only: `L z = b`. The norm of `z` gives the variance
    /// reduction term in GPR prediction.
    pub fn solve_forward(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        solve_lower(&self.l, b)
    }

    /// Multi-RHS solve `A X = B`, one column of `X` per column of `B`.
    /// Delegates to the blocked (and, for large systems, parallel)
    /// triangular kernels, so it is much faster than calling [`Self::solve`]
    /// per column while producing bit-identical results.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let y = solve_lower_matrix(&self.l, b)?;
        solve_lower_transpose_matrix(&self.l, &y)
    }

    /// Multi-RHS forward solve `L Z = B`. Column norms of `Z` give the
    /// variance-reduction terms for a whole batch of prediction points.
    pub fn solve_forward_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        solve_lower_matrix(&self.l, b)
    }

    /// Forward solve with the right-hand sides given as the *rows* of `bt`
    /// (see [`solve_lower_rhs_rows`]); row `r` of the result is
    /// `L^{-1} bt[r]`. This is the batched-prediction fast path: it fuses
    /// the transpose of a row-per-candidate cross-covariance into the
    /// solve's block packing.
    ///
    /// # Errors
    /// Same conditions as [`CholeskyFactor::solve_forward_matrix`].
    pub fn solve_forward_rhs_rows(&self, bt: &Matrix) -> Result<Matrix, LinalgError> {
        solve_lower_rhs_rows(&self.l, bt)
    }

    /// `log det A = 2 * sum_i log L_ii` — the complexity-penalty term of the
    /// log marginal likelihood (Eq. 12 of the paper).
    pub fn log_det(&self) -> f64 {
        2.0 * (0..self.l.nrows())
            .map(|i| self.l[(i, i)].ln())
            .sum::<f64>()
    }

    /// Explicit inverse `A^{-1}`, needed once per LML-gradient evaluation
    /// (the gradient is `0.5 tr((aa^T - A^{-1}) dA/dtheta)`). Computed by
    /// solving against the identity — O(n^3) like the factorization itself,
    /// but through the blocked multi-RHS path so all columns share one pass
    /// over `L`.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.order()))
    }

    /// Extend the factorization by one row/column in `O(n^2)`: given the
    /// factor of `A`, produce the factor of
    /// `[[A, a], [a^T, alpha]]` where `a` is the new off-diagonal column
    /// and `alpha` the new diagonal entry.
    ///
    /// This is the engine of incremental GPR updates: adding one training
    /// point extends `K_y` exactly this way, so the AL loop can recondition
    /// in `O(n^2)` instead of refactoring in `O(n^3)`.
    ///
    /// # Errors
    /// [`LinalgError::NotPositiveDefinite`] if the extended matrix is not
    /// PD (`alpha - ||L^{-1} a||^2 <= 0`);
    /// [`LinalgError::DimensionMismatch`] if `a.len() != order()`.
    pub fn extend(&self, a: &[f64], alpha: f64) -> Result<Cholesky, LinalgError> {
        let n = self.order();
        if a.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_extend",
                details: format!("column has {} entries, factor order is {n}", a.len()),
            });
        }
        let z = solve_lower(&self.l, a)?;
        let d2 = alpha - crate::vector::dot(&z, &z);
        if d2 <= 0.0 || !d2.is_finite() {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: n,
                value: d2,
            });
        }
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..=i {
                l[(i, j)] = self.l[(i, j)];
            }
        }
        for (j, zj) in z.iter().enumerate() {
            l[(n, j)] = *zj;
        }
        l[(n, n)] = d2.sqrt();
        Ok(Cholesky {
            l,
            jitter: self.jitter,
        })
    }

    /// Reconstruct `A = L L^T` (testing / diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let lt = self.l.transpose();
        self.l.matmul(&lt).expect("square factor")
    }

    /// Rough 2-norm condition estimate from the extreme diagonal entries of
    /// `L`: `cond(A) ~ (max L_ii / min L_ii)^2`. Cheap and adequate for
    /// deciding when to warn about ill-conditioned covariance matrices.
    pub fn condition_estimate(&self) -> f64 {
        let n = self.order();
        if n == 0 {
            return 1.0;
        }
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for i in 0..n {
            let d = self.l[(i, i)];
            lo = lo.min(d);
            hi = hi.max(d);
        }
        (hi / lo).powi(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B B^T + I for B random-ish => SPD.
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]).unwrap()
    }

    #[test]
    fn decompose_reconstructs() {
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        assert!(c.reconstruct().max_abs_diff(&a) < 1e-12);
        assert_eq!(c.jitter(), 0.0);
    }

    #[test]
    fn known_2x2_factor() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 5.0]]).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        let l = c.factor();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-15);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-15);
        assert!((l[(1, 1)] - 2.0).abs() < 1e-15);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = c.solve(&b).unwrap();
        for (xi, e) in x.iter().zip(&x_true) {
            assert!((xi - e).abs() < 1e-12);
        }
    }

    #[test]
    fn log_det_matches_known() {
        // det of diag(2, 3, 4) = 24.
        let a = Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[0.0, 3.0, 0.0], &[0.0, 0.0, 4.0]]).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        assert!((c.log_det() - 24f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn inverse_matches_identity() {
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        let inv = c.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn not_pd_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        match Cholesky::decompose(&a) {
            Err(LinalgError::NotPositiveDefinite { .. }) => {}
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 matrix: PSD but not PD.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(Cholesky::decompose(&a).is_err());
        let c = Cholesky::decompose_jittered(&a, 1e-10, 12).unwrap();
        assert!(c.jitter() > 0.0);
        // Reconstruction should be close to A (within the jitter magnitude).
        assert!(c.reconstruct().max_abs_diff(&a) < 1e-3);
    }

    #[test]
    fn jitter_gives_up_eventually() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]).unwrap();
        assert!(Cholesky::decompose_jittered(&a, 1e-10, 3).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn empty_matrix_ok() {
        let a = Matrix::zeros(0, 0);
        let c = Cholesky::decompose(&a).unwrap();
        assert_eq!(c.order(), 0);
        assert_eq!(c.log_det(), 0.0);
    }

    #[test]
    fn condition_estimate_identity_is_one() {
        let c = Cholesky::decompose(&Matrix::identity(4)).unwrap();
        assert!((c.condition_estimate() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn condition_estimate_grows_with_spread() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1e6]]).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        assert!((c.condition_estimate() - 1e6).abs() / 1e6 < 1e-9);
    }

    #[test]
    fn extend_matches_full_factorization() {
        // Factor the 2x2 leading block of spd3, extend by the third
        // row/column, and compare against factoring the full matrix.
        let a = spd3();
        let lead = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 5.0]]).unwrap();
        let c2 = Cholesky::decompose(&lead).unwrap();
        let c3 = c2.extend(&[0.6, 1.0], 3.0).unwrap();
        let full = Cholesky::decompose(&a).unwrap();
        assert!(c3.factor().max_abs_diff(full.factor()) < 1e-12);
        assert!((c3.log_det() - full.log_det()).abs() < 1e-12);
        // Solves agree too.
        let rhs = vec![1.0, -0.5, 2.0];
        let x1 = c3.solve(&rhs).unwrap();
        let x2 = full.solve(&rhs).unwrap();
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn extend_detects_indefinite_extension() {
        let lead = Matrix::from_rows(&[&[1.0]]).unwrap();
        let c = Cholesky::decompose(&lead).unwrap();
        // [[1, 2], [2, 1]] has eigenvalues 3 and -1.
        assert!(matches!(
            c.extend(&[2.0], 1.0),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        assert!(matches!(
            c.extend(&[1.0, 2.0], 5.0),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn extend_from_empty_builds_scalar_factor() {
        let empty = Cholesky::decompose(&Matrix::zeros(0, 0)).unwrap();
        let one = empty.extend(&[], 9.0).unwrap();
        assert_eq!(one.order(), 1);
        assert!((one.factor()[(0, 0)] - 3.0).abs() < 1e-15);
    }

    #[test]
    fn repeated_extension_builds_full_factor() {
        let a = spd3();
        let mut c = Cholesky::decompose(&Matrix::zeros(0, 0)).unwrap();
        for k in 0..3 {
            let col: Vec<f64> = (0..k).map(|j| a[(k, j)]).collect();
            c = c.extend(&col, a[(k, k)]).unwrap();
        }
        let full = Cholesky::decompose(&a).unwrap();
        assert!(c.factor().max_abs_diff(full.factor()) < 1e-12);
    }

    #[test]
    fn solve_forward_norm_is_variance_term() {
        // For A = L L^T and k, ||L^{-1} k||^2 == k^T A^{-1} k.
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        let k = vec![0.3, -1.2, 0.9];
        let z = c.solve_forward(&k).unwrap();
        let quad: f64 = crate::vector::dot(&k, &c.solve(&k).unwrap());
        let nz: f64 = crate::vector::dot(&z, &z);
        assert!((quad - nz).abs() < 1e-12);
    }
}
