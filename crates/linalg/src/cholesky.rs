//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The single most important numerical routine in the workspace: every GPR
//! fit, prediction, and log-marginal-likelihood evaluation goes through
//! `K_y = L L^T`. Covariance matrices built from a squared-exponential
//! kernel are notoriously ill-conditioned when training inputs are close
//! together relative to the length scale, so [`Cholesky::decompose_jittered`]
//! retries with geometrically increasing diagonal jitter — the same strategy
//! scikit-learn's `GaussianProcessRegressor` (used by the paper) employs.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::triangular::{
    solve_lower, solve_lower_matrix, solve_lower_rhs_rows, solve_lower_transpose,
    solve_lower_transpose_matrix,
};

/// Panel width of the blocked right-looking factorization. Matches the
/// multi-RHS triangular solver's `RHS_BLOCK` so the TRSM step packs into a
/// single block pass.
const BLOCK: usize = 64;
/// Below this order the unblocked reference path wins: the blocked variant's
/// panel copies and matmul dispatch cost more than they save.
const BLOCKED_MIN: usize = 128;

/// A lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Jitter that had to be added to the diagonal for the factorization to
    /// succeed (0.0 when the matrix was PD as given).
    jitter: f64,
}

/// Check that `a` is square with finite entries. Hoisted out of the
/// factorization so the jitter retry ladder validates exactly once.
fn validate(a: &Matrix) -> Result<(), LinalgError> {
    if a.ncols() != a.nrows() {
        return Err(LinalgError::DimensionMismatch {
            op: "cholesky",
            details: format!("{}x{} is not square", a.nrows(), a.ncols()),
        });
    }
    if !a.all_finite() {
        return Err(LinalgError::NonFinite { op: "cholesky" });
    }
    Ok(())
}

/// (Re)initialize the factor buffer from `a`: off-diagonal lower-triangle
/// entries of columns `0..dirty_cols` are copied back, and every diagonal
/// entry is set to `a_ii + jitter` (the jitter changes between retries, so
/// the diagonal is always refreshed). Columns at or beyond `dirty_cols` were
/// never written by the failed attempt and still hold `a`'s values. The
/// strict upper triangle is never touched by any factor path and stays zero.
fn restore_lower(l: &mut Matrix, a: &Matrix, jitter: f64, dirty_cols: usize) {
    let n = a.nrows();
    for i in 0..n {
        let lim = i.min(dirty_cols);
        let dst = l.row_mut(i);
        let src = a.row(i);
        dst[..lim].copy_from_slice(&src[..lim]);
        dst[i] = src[i] + jitter;
    }
}

/// In-place unblocked factorization of the lower triangle of `l` (which on
/// entry holds `A + jitter I`). Bit-identical to the historical scalar
/// column sweep; kept as the reference path for small orders and for
/// blocked-vs-unblocked equivalence tests.
///
/// On failure returns the offending pivot/value plus the number of columns
/// the attempt dirtied (so a retry only has to restore those).
fn factor_unblocked(l: &mut Matrix) -> Result<(), (LinalgError, usize)> {
    let n = l.nrows();
    for j in 0..n {
        // Diagonal element.
        let mut d = l[(j, j)];
        for k in 0..j {
            let ljk = l[(j, k)];
            d -= ljk * ljk;
        }
        if d <= 0.0 || !d.is_finite() {
            // Columns 0..j are final; column j itself was only read.
            return Err((LinalgError::NotPositiveDefinite { pivot: j, value: d }, j));
        }
        let dsqrt = d.sqrt();
        l[(j, j)] = dsqrt;
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = l[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / dsqrt;
        }
    }
    Ok(())
}

/// In-place blocked right-looking factorization: per `BLOCK`-wide panel,
/// (1) unblocked factor of the diagonal block, (2) TRSM of the sub-diagonal
/// panel through the runtime-dispatched multi-RHS solver
/// (`L21 L11^T = A21`, one row per RHS), (3) SYRK-style trailing update
/// `A22 -= L21 L21^T` evaluated in row chunks through the cache-blocked
/// matmul, subtracting only the lower triangle.
///
/// A genuine mid-factorization *resume* across jitter retries is impossible
/// — the jitter perturbs every pivot, so every retry must refactor from the
/// top — but the failure report carries how far the attempt got so the
/// retry's `restore_lower` only re-copies the dirtied columns: a failure in
/// panel 0 (the common case for indefinite matrices) makes retries nearly
/// copy-free.
fn factor_blocked(l: &mut Matrix) -> Result<(), (LinalgError, usize)> {
    let n = l.nrows();
    let mut k0 = 0usize;
    while k0 < n {
        let nb = BLOCK.min(n - k0);
        let k1 = k0 + nb;
        // Panel diagonal block, unblocked in place.
        for j in 0..nb {
            let gj = k0 + j;
            let mut d = l[(gj, gj)];
            for k in 0..j {
                let v = l[(gj, k0 + k)];
                d -= v * v;
            }
            if d <= 0.0 || !d.is_finite() {
                // Before any trailing update ran (panel 0) only the columns
                // written so far are dirty; afterwards everything is.
                let dirty = if k0 == 0 { gj } else { n };
                return Err((
                    LinalgError::NotPositiveDefinite {
                        pivot: gj,
                        value: d,
                    },
                    dirty,
                ));
            }
            let dsqrt = d.sqrt();
            l[(gj, gj)] = dsqrt;
            for i in (j + 1)..nb {
                let gi = k0 + i;
                let mut s = l[(gi, gj)];
                for k in 0..j {
                    s -= l[(gi, k0 + k)] * l[(gj, k0 + k)];
                }
                l[(gi, gj)] = s / dsqrt;
            }
        }
        let m = n - k1;
        if m > 0 {
            // Pack the diagonal block (lower triangle) and the sub-diagonal
            // panel; solve all panel rows against L11 in one blocked pass.
            let mut l11 = Matrix::zeros(nb, nb);
            for i in 0..nb {
                let src = &l.row(k0 + i)[k0..k0 + i + 1];
                l11.row_mut(i)[..=i].copy_from_slice(src);
            }
            let mut a21 = Matrix::zeros(m, nb);
            for r in 0..m {
                a21.row_mut(r).copy_from_slice(&l.row(k1 + r)[k0..k1]);
            }
            let l21 = solve_lower_rhs_rows(&l11, &a21).map_err(|e| (e, n))?;
            for r in 0..m {
                l.row_mut(k1 + r)[k0..k1].copy_from_slice(l21.row(r));
            }
            // Trailing update in row chunks: chunk rows [r0, r1) of the
            // trailing matrix only need products against rows 0..r1 of L21
            // (columns past the diagonal belong to the upper triangle), so
            // each chunk multiplies (r1-r0) x nb by nb x r1 — about half the
            // flops of the full square product.
            let mut r0 = 0usize;
            while r0 < m {
                let r1 = (r0 + BLOCK).min(m);
                let lhs = Matrix::from_vec(r1 - r0, nb, l21.as_slice()[r0 * nb..r1 * nb].to_vec())
                    .expect("chunk shape");
                let mut rt = Matrix::zeros(nb, r1);
                for r in 0..r1 {
                    let row = l21.row(r);
                    for (c, v) in row.iter().enumerate() {
                        rt[(c, r)] = *v;
                    }
                }
                let p = lhs.matmul(&rt).map_err(|e| (e, n))?;
                for r in r0..r1 {
                    let prow = p.row(r - r0);
                    let lrow = &mut l.row_mut(k1 + r)[k1..];
                    for c in 0..=r {
                        lrow[c] -= prow[c];
                    }
                }
                r0 = r1;
            }
        }
        k0 = k1;
    }
    Ok(())
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix. Only the lower triangle
    /// of `a` is read. Dispatches to the blocked right-looking algorithm for
    /// large orders and the unblocked reference sweep below [`BLOCKED_MIN`].
    ///
    /// # Errors
    /// [`LinalgError::NotPositiveDefinite`] if a pivot is `<= 0`;
    /// [`LinalgError::DimensionMismatch`] if `a` is not square;
    /// [`LinalgError::NonFinite`] if the input contains NaN/inf.
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        Self::decompose_impl(a, 0.0, None)
    }

    /// Force the unblocked reference factorization regardless of order.
    /// Bit-identical to the pre-blocked implementation; used by equivalence
    /// tests and available for debugging.
    pub fn decompose_unblocked(a: &Matrix) -> Result<Self, LinalgError> {
        Self::decompose_impl(a, 0.0, Some(false))
    }

    /// Force the blocked right-looking factorization regardless of order
    /// (exercises the panel/TRSM/SYRK path even for small matrices; agrees
    /// with [`Self::decompose_unblocked`] to ~1e-12 on well-conditioned
    /// inputs, differing only in floating-point summation grouping).
    pub fn decompose_blocked(a: &Matrix) -> Result<Self, LinalgError> {
        Self::decompose_impl(a, 0.0, Some(true))
    }

    fn decompose_impl(
        a: &Matrix,
        jitter: f64,
        force_blocked: Option<bool>,
    ) -> Result<Self, LinalgError> {
        validate(a)?;
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        restore_lower(&mut l, a, jitter, n);
        let blocked = force_blocked.unwrap_or(n >= BLOCKED_MIN);
        let res = if blocked {
            factor_blocked(&mut l)
        } else {
            factor_unblocked(&mut l)
        };
        match res {
            Ok(()) => Ok(Cholesky { l, jitter }),
            Err((e, _)) => Err(e),
        }
    }

    /// Factor with retries: if the plain factorization fails, add
    /// `jitter = first_jitter * 10^k` (k = 0, 1, ..., `max_tries-1`) to the
    /// diagonal until it succeeds. `first_jitter` is scaled by the mean
    /// diagonal magnitude so the retry ladder is dimensionally sensible.
    ///
    /// The input is validated (shape + finiteness) once up front, every
    /// retry reuses the same factor buffer, and a retry only restores the
    /// columns the previous attempt actually dirtied — for matrices that
    /// fail at an early pivot of the first panel, each rung of the ladder
    /// costs little beyond the factorization work it performs itself.
    ///
    /// Returns the factor together with the jitter that was used (see
    /// [`Cholesky::jitter`]).
    pub fn decompose_jittered(
        a: &Matrix,
        first_jitter: f64,
        max_tries: usize,
    ) -> Result<Self, LinalgError> {
        let _span = alperf_obs::span("linalg.cholesky");
        validate(a)?;
        let n = a.nrows();
        let mean_diag = if n == 0 {
            1.0
        } else {
            a.diagonal().iter().map(|v| v.abs()).sum::<f64>() / n as f64
        };
        let base = first_jitter * mean_diag.max(f64::MIN_POSITIVE);
        let blocked = n >= BLOCKED_MIN;
        let mut l = Matrix::zeros(n, n);
        let mut dirty = n;
        let mut last_err = None;
        for k in 0..max_tries.max(1) {
            let jitter = if k == 0 {
                0.0
            } else {
                base * 10f64.powi(k as i32 - 1)
            };
            restore_lower(&mut l, a, jitter, dirty);
            let res = if blocked {
                factor_blocked(&mut l)
            } else {
                factor_unblocked(&mut l)
            };
            match res {
                Ok(()) => return Ok(Cholesky { l, jitter }),
                Err((e @ LinalgError::NotPositiveDefinite { .. }, d)) => {
                    alperf_obs::inc("linalg.cholesky.jitter_retry");
                    dirty = d;
                    last_err = Some(e);
                }
                Err((e, _)) => return Err(e),
            }
        }
        Err(last_err.unwrap_or(LinalgError::NotPositiveDefinite {
            pivot: 0,
            value: f64::NAN,
        }))
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Diagonal jitter that was added for the factorization to succeed.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.nrows()
    }

    /// Solve `A x = b` via the two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let y = solve_lower(&self.l, b)?;
        solve_lower_transpose(&self.l, &y)
    }

    /// Forward solve only: `L z = b`. The norm of `z` gives the variance
    /// reduction term in GPR prediction.
    pub fn solve_forward(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        solve_lower(&self.l, b)
    }

    /// Backward solve only: `L^T x = b` — the second half of
    /// [`Self::solve`], exposed for consumers that assemble products like
    /// `L^{-T} w` directly (the sparse-GPR mean weights).
    pub fn solve_backward(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        solve_lower_transpose(&self.l, b)
    }

    /// Multi-RHS solve `A X = B`, one column of `X` per column of `B`.
    /// Delegates to the blocked (and, for large systems, parallel)
    /// triangular kernels, so it is much faster than calling [`Self::solve`]
    /// per column while producing bit-identical results.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let y = solve_lower_matrix(&self.l, b)?;
        solve_lower_transpose_matrix(&self.l, &y)
    }

    /// Multi-RHS forward solve `L Z = B`. Column norms of `Z` give the
    /// variance-reduction terms for a whole batch of prediction points.
    pub fn solve_forward_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        solve_lower_matrix(&self.l, b)
    }

    /// Forward solve with the right-hand sides given as the *rows* of `bt`
    /// (see [`solve_lower_rhs_rows`]); row `r` of the result is
    /// `L^{-1} bt[r]`. This is the batched-prediction fast path: it fuses
    /// the transpose of a row-per-candidate cross-covariance into the
    /// solve's block packing.
    ///
    /// # Errors
    /// Same conditions as [`CholeskyFactor::solve_forward_matrix`].
    pub fn solve_forward_rhs_rows(&self, bt: &Matrix) -> Result<Matrix, LinalgError> {
        solve_lower_rhs_rows(&self.l, bt)
    }

    /// Explicit triangular inverse `L^{-1}` (lower triangular).
    ///
    /// Exploits the identity right-hand side's structure: column `j` of
    /// `L^{-1}` is zero above row `j`, so each [`BLOCK`]-wide column block
    /// is solved against the *trailing* submatrix `L[j0.., j0..]` only —
    /// about `n^3/6` multiply-adds through the SIMD multi-RHS kernel versus
    /// `n^3/2` for a dense forward solve against the full identity.
    ///
    /// # Errors
    /// [`LinalgError::Singular`] if a diagonal entry is zero.
    pub fn factor_inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.order();
        let mut inv = Matrix::zeros(n, n);
        let mut j0 = 0;
        while j0 < n {
            let nb = BLOCK.min(n - j0);
            let m = n - j0;
            // Trailing submatrix L[j0.., j0..] (lower triangle only; the
            // strict upper of the copy stays zero).
            let mut lsub = Matrix::zeros(m, m);
            for i in 0..m {
                lsub.row_mut(i)[..=i].copy_from_slice(&self.l.row(j0 + i)[j0..=j0 + i]);
            }
            // RHS rows: unit vectors e_0..e_{nb-1} in submatrix coordinates.
            let mut rhs = Matrix::zeros(nb, m);
            for c in 0..nb {
                rhs[(c, c)] = 1.0;
            }
            let sol = solve_lower_rhs_rows(&lsub, &rhs)?;
            // Row c of `sol` is column j0+c of L^{-1}, rows j0 and below;
            // its first c entries are exactly zero.
            for c in 0..nb {
                let src = sol.row(c);
                for i in c..m {
                    inv[(j0 + i, j0 + c)] = src[i];
                }
            }
            j0 += nb;
        }
        Ok(inv)
    }

    /// Lower triangle of `A^{-1}` (strict upper left zero), computed as the
    /// SYRK-style product `L^{-T} L^{-1}` from [`Self::factor_inverse`] in
    /// [`BLOCK`]-row chunks routed through the cache-blocked matmul.
    ///
    /// `A^{-1}` is symmetric, so this is the whole inverse for consumers
    /// that read one triangle — the LML gradient's weight matrix
    /// `W = alpha alpha^T - K_y^{-1}` is contracted against symmetric
    /// `dK/dtheta` terms and only ever touches `i >= j` (see
    /// `alperf-gp::lml`). Roughly 3x cheaper than a dense identity solve
    /// for the full inverse: `(K^{-1})_{ij} = sum_{k >= i} (L^{-1})_{ki}
    /// (L^{-1})_{kj}` for `i >= j`, and the triangular solves skip the
    /// structural zeros.
    ///
    /// # Errors
    /// [`LinalgError::Singular`] if a diagonal entry is zero.
    pub fn inverse_lower(&self) -> Result<Matrix, LinalgError> {
        let n = self.order();
        let linv = self.factor_inverse()?;
        let mut w = Matrix::zeros(n, n);
        let mut r0 = 0;
        while r0 < n {
            let r1 = (r0 + BLOCK).min(n);
            let cr = r1 - r0;
            let k = n - r0;
            // A = (L^{-1}[r0.., r0..r1])^T, shape cr x k: only rows >= r0 of
            // those columns are nonzero, so the leading rows are skipped.
            let mut a = Matrix::zeros(cr, k);
            for kk in 0..k {
                let src = &linv.row(r0 + kk)[r0..r1];
                for (t, v) in src.iter().enumerate() {
                    a[(t, kk)] = *v;
                }
            }
            // B = L^{-1}[r0.., 0..r1], shape k x r1 (columns j <= i only).
            let mut b = Matrix::zeros(k, r1);
            for kk in 0..k {
                b.row_mut(kk).copy_from_slice(&linv.row(r0 + kk)[..r1]);
            }
            let p = a.matmul(&b)?;
            for t in 0..cr {
                let i = r0 + t;
                w.row_mut(i)[..=i].copy_from_slice(&p.row(t)[..=i]);
            }
            r0 = r1;
        }
        Ok(w)
    }

    /// `log det A = 2 * sum_i log L_ii` — the complexity-penalty term of the
    /// log marginal likelihood (Eq. 12 of the paper).
    pub fn log_det(&self) -> f64 {
        2.0 * (0..self.l.nrows())
            .map(|i| self.l[(i, i)].ln())
            .sum::<f64>()
    }

    /// Extend the factorization by one row/column in `O(n^2)`: given the
    /// factor of `A`, produce the factor of
    /// `[[A, a], [a^T, alpha]]` where `a` is the new off-diagonal column
    /// and `alpha` the new diagonal entry.
    ///
    /// This is the engine of incremental GPR updates: adding one training
    /// point extends `K_y` exactly this way, so the AL loop can recondition
    /// in `O(n^2)` instead of refactoring in `O(n^3)`.
    ///
    /// # Errors
    /// [`LinalgError::NotPositiveDefinite`] if the extended matrix is not
    /// PD (`alpha - ||L^{-1} a||^2 <= 0`);
    /// [`LinalgError::DimensionMismatch`] if `a.len() != order()`.
    pub fn extend(&self, a: &[f64], alpha: f64) -> Result<Cholesky, LinalgError> {
        let n = self.order();
        if a.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_extend",
                details: format!("column has {} entries, factor order is {n}", a.len()),
            });
        }
        let z = solve_lower(&self.l, a)?;
        let d2 = alpha - crate::vector::dot(&z, &z);
        if d2 <= 0.0 || !d2.is_finite() {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: n,
                value: d2,
            });
        }
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..=i {
                l[(i, j)] = self.l[(i, j)];
            }
        }
        for (j, zj) in z.iter().enumerate() {
            l[(n, j)] = *zj;
        }
        l[(n, n)] = d2.sqrt();
        Ok(Cholesky {
            l,
            jitter: self.jitter,
        })
    }

    /// Reconstruct `A = L L^T` (testing / diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let lt = self.l.transpose();
        self.l.matmul(&lt).expect("square factor")
    }

    /// Rough 2-norm condition estimate from the extreme diagonal entries of
    /// `L`: `cond(A) ~ (max L_ii / min L_ii)^2`. Cheap and adequate for
    /// deciding when to warn about ill-conditioned covariance matrices.
    pub fn condition_estimate(&self) -> f64 {
        let n = self.order();
        if n == 0 {
            return 1.0;
        }
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for i in 0..n {
            let d = self.l[(i, i)];
            lo = lo.min(d);
            hi = hi.max(d);
        }
        (hi / lo).powi(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B B^T + I for B random-ish => SPD.
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]).unwrap()
    }

    /// Deterministic well-conditioned SPD matrix: `B B^T / n + I`.
    fn well_conditioned_spd(n: usize) -> Matrix {
        let mut s = 0x9e3779b97f4a7c15u64 ^ n as u64;
        let data: Vec<f64> = (0..n * n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 - 1.0
            })
            .collect();
        let b = Matrix::from_vec(n, n, data).unwrap();
        let mut a = b.matmul(&b.transpose()).unwrap();
        let inv_n = 1.0 / n as f64;
        for v in a.as_mut_slice() {
            *v *= inv_n;
        }
        a.add_diagonal(1.0);
        a
    }

    #[test]
    fn decompose_reconstructs() {
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        assert!(c.reconstruct().max_abs_diff(&a) < 1e-12);
        assert_eq!(c.jitter(), 0.0);
    }

    #[test]
    fn known_2x2_factor() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 5.0]]).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        let l = c.factor();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-15);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-15);
        assert!((l[(1, 1)] - 2.0).abs() < 1e-15);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = c.solve(&b).unwrap();
        for (xi, e) in x.iter().zip(&x_true) {
            assert!((xi - e).abs() < 1e-12);
        }
    }

    #[test]
    fn log_det_matches_known() {
        // det of diag(2, 3, 4) = 24.
        let a = Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[0.0, 3.0, 0.0], &[0.0, 0.0, 4.0]]).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        assert!((c.log_det() - 24f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_against_identity_yields_inverse() {
        // The deprecated `inverse()` convenience is gone; consumers that do
        // want a full inverse spell out the identity solve, which is what
        // this exercises.
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        let inv = c.solve_matrix(&Matrix::identity(3)).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn factor_inverse_inverts_the_factor() {
        // Sizes on both sides of the column-block width.
        for n in [1usize, 3, 40, 64, 70, 130] {
            let a = well_conditioned_spd(n);
            let c = Cholesky::decompose(&a).unwrap();
            let linv = c.factor_inverse().unwrap();
            let prod = c.factor().matmul(&linv).unwrap();
            let diff = prod.max_abs_diff(&Matrix::identity(n));
            assert!(diff < 1e-10, "n={n}: L * L^-1 differs from I by {diff}");
            // Strict upper triangle is structurally zero.
            for i in 0..n {
                for j in i + 1..n {
                    assert_eq!(linv[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn inverse_lower_matches_full_inverse() {
        for n in [1usize, 3, 40, 64, 70, 130] {
            let a = well_conditioned_spd(n);
            let c = Cholesky::decompose(&a).unwrap();
            let wl = c.inverse_lower().unwrap();
            let full = c.solve_matrix(&Matrix::identity(n)).unwrap();
            for i in 0..n {
                for j in 0..n {
                    if j <= i {
                        let d = (wl[(i, j)] - full[(i, j)]).abs();
                        assert!(d < 1e-10, "n={n} ({i},{j}): {d}");
                    } else {
                        assert_eq!(wl[(i, j)], 0.0, "strict upper must stay zero");
                    }
                }
            }
        }
    }

    #[test]
    fn not_pd_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        match Cholesky::decompose(&a) {
            Err(LinalgError::NotPositiveDefinite { .. }) => {}
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 matrix: PSD but not PD.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(Cholesky::decompose(&a).is_err());
        let c = Cholesky::decompose_jittered(&a, 1e-10, 12).unwrap();
        assert!(c.jitter() > 0.0);
        // Reconstruction should be close to A (within the jitter magnitude).
        assert!(c.reconstruct().max_abs_diff(&a) < 1e-3);
    }

    #[test]
    fn jitter_gives_up_eventually() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]).unwrap();
        assert!(Cholesky::decompose_jittered(&a, 1e-10, 3).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn empty_matrix_ok() {
        let a = Matrix::zeros(0, 0);
        let c = Cholesky::decompose(&a).unwrap();
        assert_eq!(c.order(), 0);
        assert_eq!(c.log_det(), 0.0);
    }

    #[test]
    fn condition_estimate_identity_is_one() {
        let c = Cholesky::decompose(&Matrix::identity(4)).unwrap();
        assert!((c.condition_estimate() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn condition_estimate_grows_with_spread() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1e6]]).unwrap();
        let c = Cholesky::decompose(&a).unwrap();
        assert!((c.condition_estimate() - 1e6).abs() / 1e6 < 1e-9);
    }

    #[test]
    fn extend_matches_full_factorization() {
        // Factor the 2x2 leading block of spd3, extend by the third
        // row/column, and compare against factoring the full matrix.
        let a = spd3();
        let lead = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 5.0]]).unwrap();
        let c2 = Cholesky::decompose(&lead).unwrap();
        let c3 = c2.extend(&[0.6, 1.0], 3.0).unwrap();
        let full = Cholesky::decompose(&a).unwrap();
        assert!(c3.factor().max_abs_diff(full.factor()) < 1e-12);
        assert!((c3.log_det() - full.log_det()).abs() < 1e-12);
        // Solves agree too.
        let rhs = vec![1.0, -0.5, 2.0];
        let x1 = c3.solve(&rhs).unwrap();
        let x2 = full.solve(&rhs).unwrap();
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn extend_detects_indefinite_extension() {
        let lead = Matrix::from_rows(&[&[1.0]]).unwrap();
        let c = Cholesky::decompose(&lead).unwrap();
        // [[1, 2], [2, 1]] has eigenvalues 3 and -1.
        assert!(matches!(
            c.extend(&[2.0], 1.0),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        assert!(matches!(
            c.extend(&[1.0, 2.0], 5.0),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn extend_from_empty_builds_scalar_factor() {
        let empty = Cholesky::decompose(&Matrix::zeros(0, 0)).unwrap();
        let one = empty.extend(&[], 9.0).unwrap();
        assert_eq!(one.order(), 1);
        assert!((one.factor()[(0, 0)] - 3.0).abs() < 1e-15);
    }

    #[test]
    fn repeated_extension_builds_full_factor() {
        let a = spd3();
        let mut c = Cholesky::decompose(&Matrix::zeros(0, 0)).unwrap();
        for k in 0..3 {
            let col: Vec<f64> = (0..k).map(|j| a[(k, j)]).collect();
            c = c.extend(&col, a[(k, k)]).unwrap();
        }
        let full = Cholesky::decompose(&a).unwrap();
        assert!(c.factor().max_abs_diff(full.factor()) < 1e-12);
    }

    #[test]
    fn solve_forward_norm_is_variance_term() {
        // For A = L L^T and k, ||L^{-1} k||^2 == k^T A^{-1} k.
        let a = spd3();
        let c = Cholesky::decompose(&a).unwrap();
        let k = vec![0.3, -1.2, 0.9];
        let z = c.solve_forward(&k).unwrap();
        let quad: f64 = crate::vector::dot(&k, &c.solve(&k).unwrap());
        let nz: f64 = crate::vector::dot(&z, &z);
        assert!((quad - nz).abs() < 1e-12);
    }
}
