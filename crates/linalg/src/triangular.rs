//! Triangular solves.
//!
//! GPR never forms `K_y^{-1}` explicitly. With the Cholesky factor `L`
//! (`K_y = L L^T`), applying the inverse is two triangular solves:
//! `alpha = L^{-T} (L^{-1} y)`. The predictive variance needs only the
//! forward solve: `sigma_*^2 = k_** - ||L^{-1} k_*||^2`.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Solve `L x = b` where `L` is lower triangular (entries above the diagonal
/// are ignored). Returns the solution vector.
///
/// # Errors
/// [`LinalgError::Singular`] if a diagonal entry is exactly zero;
/// [`LinalgError::DimensionMismatch`] on shape mismatch.
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = l.nrows();
    if l.ncols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_lower",
            details: format!("L is {}x{}, b has {}", l.nrows(), l.ncols(), b.len()),
        });
    }
    let mut x = b.to_vec();
    for i in 0..n {
        let row = l.row(i);
        let mut s = x[i];
        for j in 0..i {
            s -= row[j] * x[j];
        }
        let d = row[i];
        if d == 0.0 {
            return Err(LinalgError::Singular { index: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solve `L^T x = b` where `L` is lower triangular (so `L^T` is upper
/// triangular), without materializing the transpose.
pub fn solve_lower_transpose(l: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = l.nrows();
    if l.ncols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_lower_transpose",
            details: format!("L is {}x{}, b has {}", l.nrows(), l.ncols(), b.len()),
        });
    }
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let mut s = x[i];
        // L^T[i][j] = L[j][i] for j > i.
        for j in (i + 1)..n {
            s -= l[(j, i)] * x[j];
        }
        let d = l[(i, i)];
        if d == 0.0 {
            return Err(LinalgError::Singular { index: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solve `U x = b` where `U` is upper triangular (entries below the diagonal
/// are ignored).
pub fn solve_upper(u: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = u.nrows();
    if u.ncols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_upper",
            details: format!("U is {}x{}, b has {}", u.nrows(), u.ncols(), b.len()),
        });
    }
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let row = u.row(i);
        let mut s = x[i];
        for j in (i + 1)..n {
            s -= row[j] * x[j];
        }
        let d = row[i];
        if d == 0.0 {
            return Err(LinalgError::Singular { index: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solve `L X = B` column-by-column for a matrix right-hand side; used to
/// compute `L^{-1} K` when forming `K_y^{-1}` rows for the LML gradient.
pub fn solve_lower_matrix(l: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let n = l.nrows();
    if b.nrows() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_lower_matrix",
            details: format!("L is {}x{}, B is {}x{}", l.nrows(), l.ncols(), b.nrows(), b.ncols()),
        });
    }
    let mut out = Matrix::zeros(n, b.ncols());
    for j in 0..b.ncols() {
        let col = b.col(j);
        let x = solve_lower(l, &col)?;
        for i in 0..n {
            out[(i, j)] = x[i];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower() -> Matrix {
        Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn solve_lower_known() {
        let l = lower();
        // x = [1, 2, 3] => b = L x
        let b = l.matvec(&[1.0, 2.0, 3.0]).unwrap();
        let x = solve_lower(&l, &b).unwrap();
        for (xi, e) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((xi - e).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_lower_transpose_known() {
        let l = lower();
        let lt = l.transpose();
        let b = lt.matvec(&[1.0, -1.0, 2.0]).unwrap();
        let x = solve_lower_transpose(&l, &b).unwrap();
        for (xi, e) in x.iter().zip([1.0, -1.0, 2.0]) {
            assert!((xi - e).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_upper_known() {
        let u = lower().transpose();
        let b = u.matvec(&[0.5, 1.5, -2.0]).unwrap();
        let x = solve_upper(&u, &b).unwrap();
        for (xi, e) in x.iter().zip([0.5, 1.5, -2.0]) {
            assert!((xi - e).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_detected() {
        let l = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0]]).unwrap();
        assert_eq!(
            solve_lower(&l, &[1.0, 1.0]),
            Err(LinalgError::Singular { index: 1 })
        );
        assert!(solve_lower_transpose(&l, &[1.0, 1.0]).is_err());
        assert!(solve_upper(&l.transpose(), &[1.0, 1.0]).is_err());
    }

    #[test]
    fn dimension_mismatch_detected() {
        let l = lower();
        assert!(solve_lower(&l, &[1.0]).is_err());
        assert!(solve_lower_transpose(&l, &[1.0]).is_err());
        assert!(solve_upper(&l, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn solve_lower_matrix_matches_columnwise() {
        let l = lower();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let x = solve_lower_matrix(&l, &b).unwrap();
        // L * X should reproduce B.
        let lb = l.matmul(&x).unwrap();
        assert!(lb.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn upper_entries_ignored_by_lower_solve() {
        let mut l = lower();
        l[(0, 2)] = 99.0; // garbage above the diagonal must not matter
        let b = vec![2.0, 4.0, 15.0];
        let x1 = solve_lower(&l, &b).unwrap();
        let x2 = solve_lower(&lower(), &b).unwrap();
        for (a, b) in x1.iter().zip(&x2) {
            assert_eq!(a, b);
        }
    }
}
