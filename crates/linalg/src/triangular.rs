//! Triangular solves.
//!
//! GPR never forms `K_y^{-1}` explicitly. With the Cholesky factor `L`
//! (`K_y = L L^T`), applying the inverse is two triangular solves:
//! `alpha = L^{-T} (L^{-1} y)`. The predictive variance needs only the
//! forward solve: `sigma_*^2 = k_** - ||L^{-1} k_*||^2`.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use rayon::prelude::*;

/// Number of right-hand-side columns handled per block in the multi-RHS
/// solves. Each block is copied into a compact `n x RHS_BLOCK` buffer so the
/// substitution sweeps contiguous memory, and blocks run in parallel under
/// rayon — the RHS columns are independent even though the `n` dimension is
/// sequential.
const RHS_BLOCK: usize = 64;

/// Below this many total RHS elements the multi-RHS solves stay serial;
/// fork-join overhead dominates tiny problems.
const RHS_PAR_THRESHOLD: usize = 64 * 64;

/// Solve `L x = b` where `L` is lower triangular (entries above the diagonal
/// are ignored). Returns the solution vector.
///
/// # Errors
/// [`LinalgError::Singular`] if a diagonal entry is exactly zero;
/// [`LinalgError::DimensionMismatch`] on shape mismatch.
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = l.nrows();
    if l.ncols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_lower",
            details: format!("L is {}x{}, b has {}", l.nrows(), l.ncols(), b.len()),
        });
    }
    let mut x = b.to_vec();
    for i in 0..n {
        let row = l.row(i);
        let mut s = x[i];
        for j in 0..i {
            s -= row[j] * x[j];
        }
        let d = row[i];
        if d == 0.0 {
            return Err(LinalgError::Singular { index: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solve `L^T x = b` where `L` is lower triangular (so `L^T` is upper
/// triangular), without materializing the transpose.
pub fn solve_lower_transpose(l: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = l.nrows();
    if l.ncols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_lower_transpose",
            details: format!("L is {}x{}, b has {}", l.nrows(), l.ncols(), b.len()),
        });
    }
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let mut s = x[i];
        // L^T[i][j] = L[j][i] for j > i.
        for j in (i + 1)..n {
            s -= l[(j, i)] * x[j];
        }
        let d = l[(i, i)];
        if d == 0.0 {
            return Err(LinalgError::Singular { index: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solve `U x = b` where `U` is upper triangular (entries below the diagonal
/// are ignored).
pub fn solve_upper(u: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = u.nrows();
    if u.ncols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_upper",
            details: format!("U is {}x{}, b has {}", u.nrows(), u.ncols(), b.len()),
        });
    }
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let row = u.row(i);
        let mut s = x[i];
        for j in (i + 1)..n {
            s -= row[j] * x[j];
        }
        let d = row[i];
        if d == 0.0 {
            return Err(LinalgError::Singular { index: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solve `L X = B` for a matrix right-hand side with blocked multi-RHS
/// forward substitution; used for `L^{-1} K` in the LML gradient and for
/// batched GPR prediction (`Z = L^{-1} K(X, X*)`).
///
/// The RHS is processed in column blocks of [`RHS_BLOCK`]: each block is
/// copied into a compact `n x bs` row-major buffer so the substitution's
/// inner loop sweeps contiguous memory (a row operation over the block)
/// instead of striding through `B`, and blocks run in parallel under rayon
/// above [`RHS_PAR_THRESHOLD`]. Every element sees the same update *order*
/// as [`solve_lower`] on its column; the portable path is bit-identical to
/// the scalar solve, while the runtime-detected x86-64 FMA kernels fuse
/// each multiply-subtract and agree with it to a few ulps.
pub fn solve_lower_matrix(l: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    multi_rhs_solve(l, b, "solve_lower_matrix", forward_sub_block)
}

/// Solve `L X = B^T` where the right-hand sides arrive as the *rows* of
/// `bt` (an `m x n` matrix), returning the solutions as the rows of an
/// `m x n` result — i.e. row `r` of the output is `L^{-1} bt[r]`.
///
/// This is the layout batched GPR prediction wants: the cross-covariance
/// `K(X*, X)` is naturally `m x n` with one candidate per row, and the
/// per-candidate variance reduction needs the squared norm of each solved
/// row. Packing straight from (and back to) the row layout fuses the
/// transpose into the block copy the solve performs anyway, instead of
/// materializing an `n x m` intermediate. Element-for-element the result is
/// bit-identical to `solve_lower_matrix(l, &bt.transpose())` transposed.
///
/// # Errors
/// Same conditions as [`solve_lower_matrix`].
pub fn solve_lower_rhs_rows(l: &Matrix, bt: &Matrix) -> Result<Matrix, LinalgError> {
    let n = l.nrows();
    if l.ncols() != n || bt.ncols() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_lower_rhs_rows",
            details: format!(
                "L is {}x{}, B^T is {}x{}",
                l.nrows(),
                l.ncols(),
                bt.nrows(),
                bt.ncols()
            ),
        });
    }
    for i in 0..n {
        if l[(i, i)] == 0.0 {
            return Err(LinalgError::Singular { index: i });
        }
    }
    let m = bt.nrows();
    let mut out = Matrix::zeros(m, n);
    if n == 0 || m == 0 {
        return Ok(out);
    }
    let starts: Vec<usize> = (0..m).step_by(RHS_BLOCK).collect();
    let solve_block = |r0: usize| -> Vec<f64> {
        let bs = RHS_BLOCK.min(m - r0);
        // Pack RHS rows r0..r0+bs as the *columns* of a compact n x bs
        // buffer (the transpose happens inside this copy).
        let mut buf = vec![0.0; n * bs];
        for (c, row) in (r0..r0 + bs).map(|r| bt.row(r)).enumerate() {
            for i in 0..n {
                buf[i * bs + c] = row[i];
            }
        }
        forward_sub_block(l, &mut buf, bs);
        buf
    };
    let blocks: Vec<Vec<f64>> = if n * m >= RHS_PAR_THRESHOLD {
        starts.par_iter().map(|&r0| solve_block(r0)).collect()
    } else {
        starts.iter().map(|&r0| solve_block(r0)).collect()
    };
    for (&r0, buf) in starts.iter().zip(&blocks) {
        let bs = RHS_BLOCK.min(m - r0);
        for (c, r) in (r0..r0 + bs).enumerate() {
            let dst = out.row_mut(r);
            for i in 0..n {
                dst[i] = buf[i * bs + c];
            }
        }
    }
    Ok(out)
}

/// Solve `L^T X = B` for a matrix right-hand side (backward substitution,
/// without materializing the transpose) — the multi-RHS analog of
/// [`solve_lower_transpose`], bit-identical to it column-for-column.
pub fn solve_lower_transpose_matrix(l: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    multi_rhs_solve(l, b, "solve_lower_transpose_matrix", backward_sub_block)
}

/// Rows solved together in [`forward_sub_block`]: each solved row `x_j`
/// loaded from the buffer updates `PANEL` pending rows at once, cutting the
/// buffer traffic (the bandwidth bound of the substitution) by the same
/// factor. Per `(row, column)` element the update order over `j` is
/// unchanged, so the panelled sweep matches the scalar one to roundoff
/// (bit-identical on the portable path; the x86-64 FMA kernels fuse each
/// multiply-subtract, which differs from the scalar path by at most one
/// rounding per update).
const PANEL: usize = 4;

/// Column-tile width of the panel update: PANEL x KCHUNK accumulators stay
/// in registers across the whole solved-rows sweep (8 AVX2 registers at
/// PANEL = 4, KCHUNK = 8).
const KCHUNK: usize = 8;

/// Update four pending panel rows against all previously solved rows:
/// `r_t[k] -= L[p0 + t][j] * done[j][k]` for `j` ascending. Dispatches to a
/// runtime-detected FMA kernel on x86-64 and to the portable tiled loop
/// elsewhere.
fn panel_update(
    lrows: (&[f64], &[f64], &[f64], &[f64]),
    done: &[f64],
    r0: &mut [f64],
    r1: &mut [f64],
    r2: &mut [f64],
    r3: &mut [f64],
    bs: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        match simd::isa() {
            simd::Isa::Avx512 => {
                // SAFETY: `isa()` verified avx512f support on this CPU.
                unsafe { simd::panel_update_avx512(lrows, done, r0, r1, r2, r3, bs) };
                return;
            }
            simd::Isa::Fma => {
                // SAFETY: `isa()` verified avx2+fma support on this CPU.
                unsafe { simd::panel_update_fma(lrows, done, r0, r1, r2, r3, bs) };
                return;
            }
            simd::Isa::Portable => {}
        }
    }
    panel_update_portable(lrows, done, r0, r1, r2, r3, bs);
}

/// Portable panel update: the column dimension is tiled by [`KCHUNK`] so
/// each tile's PANEL x KCHUNK accumulators live in registers for the whole
/// `j` sweep; `x_j` values are loaded once per panel instead of once per
/// row, and the accumulators incur no per-`j` store/reload traffic.
/// Bit-identical to the scalar substitution (separate multiply and
/// subtract, `j` ascending).
fn panel_update_portable(
    lrows: (&[f64], &[f64], &[f64], &[f64]),
    done: &[f64],
    r0: &mut [f64],
    r1: &mut [f64],
    r2: &mut [f64],
    r3: &mut [f64],
    bs: usize,
) {
    let (l0, l1, l2, l3) = lrows;
    let mut k0 = 0;
    while k0 + KCHUNK <= bs {
        let mut a0 = [0.0f64; KCHUNK];
        let mut a1 = [0.0f64; KCHUNK];
        let mut a2 = [0.0f64; KCHUNK];
        let mut a3 = [0.0f64; KCHUNK];
        a0.copy_from_slice(&r0[k0..k0 + KCHUNK]);
        a1.copy_from_slice(&r1[k0..k0 + KCHUNK]);
        a2.copy_from_slice(&r2[k0..k0 + KCHUNK]);
        a3.copy_from_slice(&r3[k0..k0 + KCHUNK]);
        for (j, xj) in done.chunks_exact(bs).enumerate() {
            let (c0, c1, c2, c3) = (l0[j], l1[j], l2[j], l3[j]);
            let b = &xj[k0..k0 + KCHUNK];
            for t in 0..KCHUNK {
                a0[t] -= c0 * b[t];
                a1[t] -= c1 * b[t];
                a2[t] -= c2 * b[t];
                a3[t] -= c3 * b[t];
            }
        }
        r0[k0..k0 + KCHUNK].copy_from_slice(&a0);
        r1[k0..k0 + KCHUNK].copy_from_slice(&a1);
        r2[k0..k0 + KCHUNK].copy_from_slice(&a2);
        r3[k0..k0 + KCHUNK].copy_from_slice(&a3);
        k0 += KCHUNK;
    }
    // Ragged column remainder of the block.
    if k0 < bs {
        for (j, xj) in done.chunks_exact(bs).enumerate() {
            let (c0, c1, c2, c3) = (l0[j], l1[j], l2[j], l3[j]);
            for k in k0..bs {
                let b = xj[k];
                r0[k] -= c0 * b;
                r1[k] -= c1 * b;
                r2[k] -= c2 * b;
                r3[k] -= c3 * b;
            }
        }
    }
}

/// Runtime-dispatched x86-64 FMA kernels for the panel update. The Rust
/// baseline target is SSE2; these widen the column loop to 256/512-bit
/// lanes and fuse each multiply-subtract. Detection runs once and is
/// cached.
#[cfg(target_arch = "x86_64")]
mod simd {
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    /// Best instruction set available on this CPU for the panel kernels.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Isa {
        /// AVX-512F: 8-lane f64 FMA.
        Avx512,
        /// AVX2 + FMA: 4-lane f64 FMA.
        Fma,
        /// Neither — use the portable tiled loop.
        Portable,
    }

    /// Detect (once) the widest usable kernel.
    pub fn isa() -> Isa {
        static ISA: OnceLock<Isa> = OnceLock::new();
        *ISA.get_or_init(|| {
            if is_x86_feature_detected!("avx512f") {
                Isa::Avx512
            } else if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                Isa::Fma
            } else {
                Isa::Portable
            }
        })
    }

    /// Scalar column remainder shared by both kernels: same update order,
    /// unfused ops (the remainder is at most KCHUNK - 1 columns).
    #[allow(clippy::too_many_arguments)]
    fn remainder(
        lrows: (&[f64], &[f64], &[f64], &[f64]),
        done: &[f64],
        r0: &mut [f64],
        r1: &mut [f64],
        r2: &mut [f64],
        r3: &mut [f64],
        bs: usize,
        k0: usize,
    ) {
        let (l0, l1, l2, l3) = lrows;
        for k in k0..bs {
            let (mut s0, mut s1, mut s2, mut s3) = (r0[k], r1[k], r2[k], r3[k]);
            for (j, xj) in done.chunks_exact(bs).enumerate() {
                let b = xj[k];
                s0 -= l0[j] * b;
                s1 -= l1[j] * b;
                s2 -= l2[j] * b;
                s3 -= l3[j] * b;
            }
            r0[k] = s0;
            r1[k] = s1;
            r2[k] = s2;
            r3[k] = s3;
        }
    }

    /// AVX2 + FMA panel update: 8 ymm accumulators (4 rows x 8 columns).
    ///
    /// # Safety
    /// The CPU must support `avx2` and `fma` (checked by [`isa`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn panel_update_fma(
        lrows: (&[f64], &[f64], &[f64], &[f64]),
        done: &[f64],
        r0: &mut [f64],
        r1: &mut [f64],
        r2: &mut [f64],
        r3: &mut [f64],
        bs: usize,
    ) {
        let (l0, l1, l2, l3) = lrows;
        let p0 = done.len() / bs;
        let dp = done.as_ptr();
        let mut k0 = 0usize;
        while k0 + 8 <= bs {
            unsafe {
                let mut a00 = _mm256_loadu_pd(r0.as_ptr().add(k0));
                let mut a01 = _mm256_loadu_pd(r0.as_ptr().add(k0 + 4));
                let mut a10 = _mm256_loadu_pd(r1.as_ptr().add(k0));
                let mut a11 = _mm256_loadu_pd(r1.as_ptr().add(k0 + 4));
                let mut a20 = _mm256_loadu_pd(r2.as_ptr().add(k0));
                let mut a21 = _mm256_loadu_pd(r2.as_ptr().add(k0 + 4));
                let mut a30 = _mm256_loadu_pd(r3.as_ptr().add(k0));
                let mut a31 = _mm256_loadu_pd(r3.as_ptr().add(k0 + 4));
                for j in 0..p0 {
                    let xj = dp.add(j * bs + k0);
                    let b0 = _mm256_loadu_pd(xj);
                    let b1 = _mm256_loadu_pd(xj.add(4));
                    let c0 = _mm256_set1_pd(*l0.get_unchecked(j));
                    a00 = _mm256_fnmadd_pd(c0, b0, a00);
                    a01 = _mm256_fnmadd_pd(c0, b1, a01);
                    let c1 = _mm256_set1_pd(*l1.get_unchecked(j));
                    a10 = _mm256_fnmadd_pd(c1, b0, a10);
                    a11 = _mm256_fnmadd_pd(c1, b1, a11);
                    let c2 = _mm256_set1_pd(*l2.get_unchecked(j));
                    a20 = _mm256_fnmadd_pd(c2, b0, a20);
                    a21 = _mm256_fnmadd_pd(c2, b1, a21);
                    let c3 = _mm256_set1_pd(*l3.get_unchecked(j));
                    a30 = _mm256_fnmadd_pd(c3, b0, a30);
                    a31 = _mm256_fnmadd_pd(c3, b1, a31);
                }
                _mm256_storeu_pd(r0.as_mut_ptr().add(k0), a00);
                _mm256_storeu_pd(r0.as_mut_ptr().add(k0 + 4), a01);
                _mm256_storeu_pd(r1.as_mut_ptr().add(k0), a10);
                _mm256_storeu_pd(r1.as_mut_ptr().add(k0 + 4), a11);
                _mm256_storeu_pd(r2.as_mut_ptr().add(k0), a20);
                _mm256_storeu_pd(r2.as_mut_ptr().add(k0 + 4), a21);
                _mm256_storeu_pd(r3.as_mut_ptr().add(k0), a30);
                _mm256_storeu_pd(r3.as_mut_ptr().add(k0 + 4), a31);
            }
            k0 += 8;
        }
        remainder(lrows, done, r0, r1, r2, r3, bs, k0);
    }

    /// AVX-512F panel update: 8 zmm accumulators (4 rows x 16 columns).
    ///
    /// # Safety
    /// The CPU must support `avx512f` (checked by [`isa`]).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn panel_update_avx512(
        lrows: (&[f64], &[f64], &[f64], &[f64]),
        done: &[f64],
        r0: &mut [f64],
        r1: &mut [f64],
        r2: &mut [f64],
        r3: &mut [f64],
        bs: usize,
    ) {
        let (l0, l1, l2, l3) = lrows;
        let p0 = done.len() / bs;
        let dp = done.as_ptr();
        let mut k0 = 0usize;
        while k0 + 16 <= bs {
            unsafe {
                let mut a00 = _mm512_loadu_pd(r0.as_ptr().add(k0));
                let mut a01 = _mm512_loadu_pd(r0.as_ptr().add(k0 + 8));
                let mut a10 = _mm512_loadu_pd(r1.as_ptr().add(k0));
                let mut a11 = _mm512_loadu_pd(r1.as_ptr().add(k0 + 8));
                let mut a20 = _mm512_loadu_pd(r2.as_ptr().add(k0));
                let mut a21 = _mm512_loadu_pd(r2.as_ptr().add(k0 + 8));
                let mut a30 = _mm512_loadu_pd(r3.as_ptr().add(k0));
                let mut a31 = _mm512_loadu_pd(r3.as_ptr().add(k0 + 8));
                for j in 0..p0 {
                    let xj = dp.add(j * bs + k0);
                    let b0 = _mm512_loadu_pd(xj);
                    let b1 = _mm512_loadu_pd(xj.add(8));
                    let c0 = _mm512_set1_pd(*l0.get_unchecked(j));
                    a00 = _mm512_fnmadd_pd(c0, b0, a00);
                    a01 = _mm512_fnmadd_pd(c0, b1, a01);
                    let c1 = _mm512_set1_pd(*l1.get_unchecked(j));
                    a10 = _mm512_fnmadd_pd(c1, b0, a10);
                    a11 = _mm512_fnmadd_pd(c1, b1, a11);
                    let c2 = _mm512_set1_pd(*l2.get_unchecked(j));
                    a20 = _mm512_fnmadd_pd(c2, b0, a20);
                    a21 = _mm512_fnmadd_pd(c2, b1, a21);
                    let c3 = _mm512_set1_pd(*l3.get_unchecked(j));
                    a30 = _mm512_fnmadd_pd(c3, b0, a30);
                    a31 = _mm512_fnmadd_pd(c3, b1, a31);
                }
                _mm512_storeu_pd(r0.as_mut_ptr().add(k0), a00);
                _mm512_storeu_pd(r0.as_mut_ptr().add(k0 + 8), a01);
                _mm512_storeu_pd(r1.as_mut_ptr().add(k0), a10);
                _mm512_storeu_pd(r1.as_mut_ptr().add(k0 + 8), a11);
                _mm512_storeu_pd(r2.as_mut_ptr().add(k0), a20);
                _mm512_storeu_pd(r2.as_mut_ptr().add(k0 + 8), a21);
                _mm512_storeu_pd(r3.as_mut_ptr().add(k0), a30);
                _mm512_storeu_pd(r3.as_mut_ptr().add(k0 + 8), a31);
            }
            k0 += 16;
        }
        remainder(lrows, done, r0, r1, r2, r3, bs, k0);
    }

    /// Double-height AVX-512 panel update on the raw block buffer: rows
    /// `p0..p0 + 8` updated against solved rows `0..p0` with 16 zmm
    /// accumulators (8 rows x 16 columns), so each `x_j` load serves eight
    /// pending rows — half the buffer traffic of the 4-row kernel.
    ///
    /// # Safety
    /// The CPU must support `avx512f` (checked by [`isa`]); `buf` must hold
    /// at least `(p0 + 8) * bs` elements (it is a full `n x bs` block).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn panel_update8_avx512(
        l: &crate::matrix::Matrix,
        p0: usize,
        buf: &mut [f64],
        bs: usize,
    ) {
        let lp: [&[f64]; 8] = std::array::from_fn(|t| l.row(p0 + t));
        let base = buf.as_mut_ptr();
        let mut k0 = 0usize;
        while k0 + 16 <= bs {
            unsafe {
                let mut acc0: [__m512d; 8] = std::array::from_fn(|t| {
                    _mm512_loadu_pd(base.add((p0 + t) * bs + k0) as *const f64)
                });
                let mut acc1: [__m512d; 8] = std::array::from_fn(|t| {
                    _mm512_loadu_pd(base.add((p0 + t) * bs + k0 + 8) as *const f64)
                });
                for j in 0..p0 {
                    let xj = base.add(j * bs + k0) as *const f64;
                    let b0 = _mm512_loadu_pd(xj);
                    let b1 = _mm512_loadu_pd(xj.add(8));
                    for t in 0..8 {
                        let c = _mm512_set1_pd(*lp[t].get_unchecked(j));
                        acc0[t] = _mm512_fnmadd_pd(c, b0, acc0[t]);
                        acc1[t] = _mm512_fnmadd_pd(c, b1, acc1[t]);
                    }
                }
                for t in 0..8 {
                    _mm512_storeu_pd(base.add((p0 + t) * bs + k0), acc0[t]);
                    _mm512_storeu_pd(base.add((p0 + t) * bs + k0 + 8), acc1[t]);
                }
            }
            k0 += 16;
        }
        // Scalar column remainder, same update order.
        for k in k0..bs {
            let mut s: [f64; 8] = std::array::from_fn(|t| buf[(p0 + t) * bs + k]);
            for j in 0..p0 {
                let b = buf[j * bs + k];
                for (st, lt) in s.iter_mut().zip(&lp) {
                    *st -= lt[j] * b;
                }
            }
            for (t, &st) in s.iter().enumerate() {
                buf[(p0 + t) * bs + k] = st;
            }
        }
    }
}

/// Forward substitution on a compact `n x bs` row-major block buffer.
/// Row op `x_i -= L[i][j] * x_j` (j ascending), then `x_i /= L[i][i]` —
/// the exact per-element op order of [`solve_lower`].
///
/// Rows are processed in panels of [`PANEL`]: the panel is first updated
/// against all previously solved rows (`j` ascending, four pending rows
/// sharing each `x_j` load), then the small triangle inside the panel is
/// finished row by row. Each element still sees `x_i -= L[i][j] * x_j` for
/// `j = 0..i` in ascending order followed by one divide, exactly as
/// [`solve_lower`] computes it.
fn forward_sub_block(l: &Matrix, buf: &mut [f64], bs: usize) {
    let n = l.nrows();
    let mut p0 = 0;
    // AVX-512 gets double-height panels: 16 zmm accumulators cover
    // 8 rows x 16 columns, so each `x_j` load serves 8 pending rows.
    #[cfg(target_arch = "x86_64")]
    if simd::isa() == simd::Isa::Avx512 {
        while n - p0 >= 2 * PANEL {
            if p0 > 0 {
                // SAFETY: `isa()` verified avx512f support on this CPU.
                unsafe { simd::panel_update8_avx512(l, p0, buf, bs) };
            }
            finish_triangle(l, buf, bs, p0, 2 * PANEL);
            p0 += 2 * PANEL;
        }
    }
    while p0 < n {
        let ph = PANEL.min(n - p0);
        // Panel update against rows [0, p0) — the bulk of the work.
        if ph == PANEL && p0 > 0 {
            let (done, rest) = buf.split_at_mut(p0 * bs);
            let (r0, rest) = rest.split_at_mut(bs);
            let (r1, rest) = rest.split_at_mut(bs);
            let (r2, rest) = rest.split_at_mut(bs);
            let r3 = &mut rest[..bs];
            let lrows = (l.row(p0), l.row(p0 + 1), l.row(p0 + 2), l.row(p0 + 3));
            panel_update(lrows, done, r0, r1, r2, r3, bs);
        } else if p0 > 0 {
            // Ragged final panel: plain row-at-a-time update.
            for i in p0..p0 + ph {
                let lrow = l.row(i);
                let (done, rest) = buf.split_at_mut(i * bs);
                let xi = &mut rest[..bs];
                for (j, xj) in done.chunks_exact(bs).enumerate().take(p0) {
                    let lij = lrow[j];
                    for (a, &b) in xi.iter_mut().zip(xj) {
                        *a -= lij * b;
                    }
                }
            }
        }
        finish_triangle(l, buf, bs, p0, ph);
        p0 += ph;
    }
}

/// Finish a panel: the triangle of updates internal to rows
/// `p0..p0 + ph` (`j` in `[p0, i)`, ascending), then the diagonal divide.
fn finish_triangle(l: &Matrix, buf: &mut [f64], bs: usize, p0: usize, ph: usize) {
    for i in p0..p0 + ph {
        let lrow = l.row(i);
        let (done, rest) = buf.split_at_mut(i * bs);
        let xi = &mut rest[..bs];
        for (j, xj) in done.chunks_exact(bs).enumerate().skip(p0) {
            let lij = lrow[j];
            for (a, &b) in xi.iter_mut().zip(xj) {
                *a -= lij * b;
            }
        }
        let d = lrow[i];
        for a in xi.iter_mut() {
            *a /= d;
        }
    }
}

/// Backward substitution (`L^T x = b`) on a compact block buffer; the exact
/// per-element op order of [`solve_lower_transpose`].
fn backward_sub_block(l: &Matrix, buf: &mut [f64], bs: usize) {
    let n = l.nrows();
    for i in (0..n).rev() {
        let (head, tail) = buf.split_at_mut((i + 1) * bs);
        let xi = &mut head[i * bs..];
        for (k, xj) in tail.chunks_exact(bs).enumerate() {
            // L^T[i][j] = L[j][i] for j = i + 1 + k.
            let lji = l[(i + 1 + k, i)];
            for (a, &b) in xi.iter_mut().zip(xj) {
                *a -= lji * b;
            }
        }
        let d = l[(i, i)];
        for a in xi.iter_mut() {
            *a /= d;
        }
    }
}

fn multi_rhs_solve(
    l: &Matrix,
    b: &Matrix,
    op: &'static str,
    substitute: fn(&Matrix, &mut [f64], usize),
) -> Result<Matrix, LinalgError> {
    let n = l.nrows();
    if l.ncols() != n || b.nrows() != n {
        return Err(LinalgError::DimensionMismatch {
            op,
            details: format!(
                "L is {}x{}, B is {}x{}",
                l.nrows(),
                l.ncols(),
                b.nrows(),
                b.ncols()
            ),
        });
    }
    // Validate the diagonal up front so the blocks can run infallibly in
    // parallel afterwards.
    for i in 0..n {
        if l[(i, i)] == 0.0 {
            return Err(LinalgError::Singular { index: i });
        }
    }
    let m = b.ncols();
    let mut out = Matrix::zeros(n, m);
    if n == 0 || m == 0 {
        return Ok(out);
    }
    let starts: Vec<usize> = (0..m).step_by(RHS_BLOCK).collect();
    let solve_block = |j0: usize| -> Vec<f64> {
        let bs = RHS_BLOCK.min(m - j0);
        let mut buf = vec![0.0; n * bs];
        for i in 0..n {
            buf[i * bs..(i + 1) * bs].copy_from_slice(&b.row(i)[j0..j0 + bs]);
        }
        substitute(l, &mut buf, bs);
        buf
    };
    let blocks: Vec<Vec<f64>> = if n * m >= RHS_PAR_THRESHOLD {
        starts.par_iter().map(|&j0| solve_block(j0)).collect()
    } else {
        starts.iter().map(|&j0| solve_block(j0)).collect()
    };
    for (&j0, buf) in starts.iter().zip(&blocks) {
        let bs = RHS_BLOCK.min(m - j0);
        for i in 0..n {
            out.row_mut(i)[j0..j0 + bs].copy_from_slice(&buf[i * bs..(i + 1) * bs]);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower() -> Matrix {
        Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn solve_lower_known() {
        let l = lower();
        // x = [1, 2, 3] => b = L x
        let b = l.matvec(&[1.0, 2.0, 3.0]).unwrap();
        let x = solve_lower(&l, &b).unwrap();
        for (xi, e) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((xi - e).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_lower_transpose_known() {
        let l = lower();
        let lt = l.transpose();
        let b = lt.matvec(&[1.0, -1.0, 2.0]).unwrap();
        let x = solve_lower_transpose(&l, &b).unwrap();
        for (xi, e) in x.iter().zip([1.0, -1.0, 2.0]) {
            assert!((xi - e).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_upper_known() {
        let u = lower().transpose();
        let b = u.matvec(&[0.5, 1.5, -2.0]).unwrap();
        let x = solve_upper(&u, &b).unwrap();
        for (xi, e) in x.iter().zip([0.5, 1.5, -2.0]) {
            assert!((xi - e).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_detected() {
        let l = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0]]).unwrap();
        assert_eq!(
            solve_lower(&l, &[1.0, 1.0]),
            Err(LinalgError::Singular { index: 1 })
        );
        assert!(solve_lower_transpose(&l, &[1.0, 1.0]).is_err());
        assert!(solve_upper(&l.transpose(), &[1.0, 1.0]).is_err());
    }

    #[test]
    fn dimension_mismatch_detected() {
        let l = lower();
        assert!(solve_lower(&l, &[1.0]).is_err());
        assert!(solve_lower_transpose(&l, &[1.0]).is_err());
        assert!(solve_upper(&l, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn solve_lower_matrix_matches_columnwise() {
        let l = lower();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let x = solve_lower_matrix(&l, &b).unwrap();
        // L * X should reproduce B.
        let lb = l.matmul(&x).unwrap();
        assert!(lb.max_abs_diff(&b) < 1e-12);
    }

    /// Dense pseudo-random lower-triangular factor with a safe diagonal.
    fn random_lower(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..i {
                l[(i, j)] = next();
            }
            l[(i, i)] = 1.0 + next().abs();
        }
        l
    }

    fn random_rhs(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_fn(rows, cols, move |i, j| {
            let mut s = seed ^ ((i as u64) << 32) ^ (j as u64);
            s = s.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            s ^= s >> 27;
            s = s.wrapping_mul(0x94D0_49BB_1331_11EB);
            s ^= s >> 31;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        })
    }

    #[test]
    fn solve_lower_matrix_matches_columnwise_to_roundoff() {
        // Wide enough to cross RHS_PAR_THRESHOLD and exercise a ragged
        // final block (RHS_BLOCK does not divide 150). The multi-RHS path
        // shares the scalar update order but may fuse multiply-subtract in
        // its FMA kernels, so the comparison allows roundoff-level error
        // (bit-identical on the portable path).
        let l = random_lower(48, 3);
        let b = random_rhs(48, 150, 5);
        let x = solve_lower_matrix(&l, &b).unwrap();
        for j in 0..b.ncols() {
            let xj = solve_lower(&l, &b.col(j)).unwrap();
            for i in 0..b.nrows() {
                let (got, want) = (x[(i, j)], xj[i]);
                assert!(
                    (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                    "mismatch at ({i}, {j}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn solve_lower_rhs_rows_matches_transposed_solve() {
        // The fused-transpose entry point must agree with transposing the
        // RHS explicitly — exactly, since both run the same block kernels.
        let l = random_lower(48, 7);
        let bt = random_rhs(150, 48, 9);
        let rows = solve_lower_rhs_rows(&l, &bt).unwrap();
        let cols = solve_lower_matrix(&l, &bt.transpose()).unwrap();
        for r in 0..bt.nrows() {
            for i in 0..48 {
                assert_eq!(rows[(r, i)], cols[(i, r)], "mismatch at ({r}, {i})");
            }
        }
        // Error cases mirror solve_lower_matrix.
        assert!(solve_lower_rhs_rows(&l, &random_rhs(10, 47, 1)).is_err());
        let sing = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0]]).unwrap();
        assert_eq!(
            solve_lower_rhs_rows(&sing, &Matrix::zeros(3, 2)),
            Err(LinalgError::Singular { index: 1 })
        );
        // Empty RHS and empty system both round-trip.
        assert_eq!(
            solve_lower_rhs_rows(&l, &Matrix::zeros(0, 48))
                .unwrap()
                .nrows(),
            0
        );
    }

    #[test]
    fn solve_lower_transpose_matrix_bit_identical_to_columnwise() {
        let l = random_lower(48, 11);
        let b = random_rhs(48, 150, 13);
        let x = solve_lower_transpose_matrix(&l, &b).unwrap();
        for j in 0..b.ncols() {
            let xj = solve_lower_transpose(&l, &b.col(j)).unwrap();
            for i in 0..b.nrows() {
                assert_eq!(x[(i, j)], xj[i], "mismatch at ({i}, {j})");
            }
        }
    }

    #[test]
    fn matrix_solves_handle_empty_and_single_rhs() {
        let l = lower();
        let empty = Matrix::zeros(3, 0);
        assert_eq!(solve_lower_matrix(&l, &empty).unwrap().ncols(), 0);
        assert_eq!(solve_lower_transpose_matrix(&l, &empty).unwrap().ncols(), 0);
        let single = random_rhs(3, 1, 1);
        let x = solve_lower_transpose_matrix(&l, &single).unwrap();
        let xs = solve_lower_transpose(&l, &single.col(0)).unwrap();
        for i in 0..3 {
            assert_eq!(x[(i, 0)], xs[i]);
        }
    }

    #[test]
    fn matrix_solves_reject_singular_and_mismatch() {
        let l = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0]]).unwrap();
        let b = Matrix::zeros(2, 3);
        assert_eq!(
            solve_lower_matrix(&l, &b),
            Err(LinalgError::Singular { index: 1 })
        );
        assert!(solve_lower_transpose_matrix(&l, &b).is_err());
        let bad = Matrix::zeros(2, 3);
        assert!(solve_lower_matrix(&lower(), &bad).is_err());
    }

    #[test]
    fn upper_entries_ignored_by_lower_solve() {
        let mut l = lower();
        l[(0, 2)] = 99.0; // garbage above the diagonal must not matter
        let b = vec![2.0, 4.0, 15.0];
        let x1 = solve_lower(&l, &b).unwrap();
        let x2 = solve_lower(&lower(), &b).unwrap();
        for (a, b) in x1.iter().zip(&x2) {
            assert_eq!(a, b);
        }
    }
}
