//! Error type shared by all fallible linear-algebra operations.

use std::fmt;

/// Errors produced by the dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Matrix dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Dimensions that were supplied, formatted by the caller.
        details: String,
    },
    /// The matrix is not positive definite (Cholesky pivot `<= 0`), even
    /// after the maximum permitted jitter was added to the diagonal.
    NotPositiveDefinite {
        /// Index of the first failing pivot.
        pivot: usize,
        /// Value of that pivot before taking the square root.
        value: f64,
    },
    /// The matrix is singular to working precision (zero diagonal entry in a
    /// triangular solve).
    Singular {
        /// Index of the zero diagonal entry.
        index: usize,
    },
    /// A non-finite value (NaN or infinity) was encountered where finite
    /// input is required.
    NonFinite {
        /// Name of the operation that detected the bad value.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, details } => {
                write!(f, "dimension mismatch in {op}: {details}")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} = {value:e}"
            ),
            LinalgError::Singular { index } => {
                write!(f, "matrix is singular: zero diagonal at index {index}")
            }
            LinalgError::NonFinite { op } => {
                write!(f, "non-finite value encountered in {op}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            op: "matmul",
            details: "2x3 * 4x2".into(),
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("2x3 * 4x2"));
    }

    #[test]
    fn display_not_positive_definite() {
        let e = LinalgError::NotPositiveDefinite {
            pivot: 3,
            value: -1e-12,
        };
        let s = e.to_string();
        assert!(s.contains("positive definite"));
        assert!(s.contains('3'));
    }

    #[test]
    fn display_singular_and_nonfinite() {
        assert!(LinalgError::Singular { index: 0 }
            .to_string()
            .contains("singular"));
        assert!(LinalgError::NonFinite { op: "dot" }
            .to_string()
            .contains("dot"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&LinalgError::Singular { index: 1 });
    }
}
