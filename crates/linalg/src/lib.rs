#![warn(missing_docs)]
//! # alperf-linalg
//!
//! Dense linear-algebra substrate for the Active-Learning performance-analysis
//! framework. The Gaussian Process Regression layer (`alperf-gp`) needs
//! exactly the operations implemented here:
//!
//! * a row-major dense [`Matrix`] with (parallel) matrix–vector and
//!   matrix–matrix products,
//! * a robust [Cholesky factorization](cholesky::Cholesky) of symmetric
//!   positive-definite matrices with jitter-based retry (covariance matrices
//!   are SPD in exact arithmetic but frequently borderline in `f64`),
//! * forward/backward [triangular solves](triangular) used to apply
//!   `K_y^{-1}` without ever forming an explicit inverse,
//! * small [statistics helpers](stats) (mean, variance, standardization)
//!   shared by the dataset and metric layers.
//!
//! Everything is `f64`; the library is deliberately free of external
//! linear-algebra dependencies so that the whole reproduction is
//! self-contained. Hot loops (covariance assembly, GEMM) use
//! [rayon](https://docs.rs/rayon) data parallelism with serial fallbacks for
//! small problem sizes where the fork-join overhead would dominate.

pub mod cholesky;
pub mod error;
pub mod fastmath;
pub mod lowrank;
pub mod matrix;
pub mod stats;
pub mod threads;
pub mod triangular;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;
