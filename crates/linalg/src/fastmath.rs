//! Branch-free transcendental kernels written so LLVM auto-vectorizes them.
//!
//! `libm`'s `exp` is a function call per element with data-dependent
//! branches, which blocks vectorization of the elementwise pass that turns
//! squared distances into covariance entries. For a pool of `m` candidates
//! against `n` training points that pass touches `m * n` elements and is
//! one of the three costs of batched prediction (alongside the
//! cross-covariance matmul and the multi-RHS triangular solve).
//!
//! The routine here uses Cody–Waite range reduction (`x = k ln2 + r`,
//! `|r| <= ln2/2`) with the rounding-shift trick to extract `k` without a
//! float→int conversion, a degree-13 Taylor polynomial for `e^r`, and an
//! exponent-field rebuild for `2^k` — all straight-line arithmetic and bit
//! ops on `f64`/`u64`, so the compiler turns the slice loop into SIMD code
//! on any target (and into FMA-heavy AVX code with `-C target-cpu` set).

/// `ln 2` split so that `k * LN2_HI` is exact for `|k| < 2^20` (the low
/// mantissa bits of `LN2_HI` are zero).
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// `1.5 * 2^52`: adding it forces round-to-nearest-integer in the mantissa.
const SHIFT: f64 = 6_755_399_441_055_744.0;
/// Below this `exp(x)` is subnormal-or-zero; we flush to exactly 0.
const UNDERFLOW: f64 = -708.0;
/// Above this `exp(x)` overflows; inputs saturate at `exp(709)`.
const OVERFLOW: f64 = 709.0;

/// One branch-free `exp` evaluation; a few ulps of `f64::exp`.
// The coefficient literals carry full 1/k! decimal expansions; the extra
// digits round to the same f64 but keep the provenance obvious.
#[allow(clippy::excessive_precision)]
#[inline(always)]
fn exp_approx(x: f64) -> f64 {
    let xc = x.clamp(UNDERFLOW, OVERFLOW);
    let kf = xc * std::f64::consts::LOG2_E + SHIFT;
    // The integer k sits in the low mantissa bits, offset by 2^51.
    let ki = (kf.to_bits() & ((1u64 << 52) - 1)) as i64 - (1i64 << 51);
    let kr = kf - SHIFT;
    let r = (xc - kr * LN2_HI) - kr * LN2_LO;
    // Taylor e^r to degree 13; truncation < 5e-18 for |r| <= ln2/2.
    let mut p = 1.605_904_383_682_161_5e-10; // 1/13!
    p = p * r + 2.087_675_698_786_810_0e-9; // 1/12!
    p = p * r + 2.505_210_838_544_171_9e-8; // 1/11!
    p = p * r + 2.755_731_922_398_589_1e-7; // 1/10!
    p = p * r + 2.755_731_922_398_589_4e-6; // 1/9!
    p = p * r + 2.480_158_730_158_730_2e-5; // 1/8!
    p = p * r + 1.984_126_984_126_984_1e-4; // 1/7!
    p = p * r + 1.388_888_888_888_888_9e-3; // 1/6!
    p = p * r + 8.333_333_333_333_333_3e-3; // 1/5!
    p = p * r + 4.166_666_666_666_666_4e-2; // 1/4!
    p = p * r + 1.666_666_666_666_666_6e-1; // 1/3!
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    // 2^k via the exponent field; `ki` is in [-1022, 1023] after the clamp.
    let two_k = f64::from_bits(((1023 + ki) as u64) << 52);
    let y = p * two_k;
    if x < UNDERFLOW {
        0.0
    } else {
        y
    }
}

/// Overwrite every element with `scale * exp(x)`.
///
/// Accuracy: a few ulps (~1e-15 relative) of `scale * f64::exp(x)`;
/// `exp(0)` is exactly `1`, so diagonal covariance entries stay exact.
/// Domain: finite inputs. `x < -708` flushes to exactly `0.0`; `x > 709`
/// saturates at `exp(709) * scale` instead of overflowing. NaN inputs
/// produce unspecified finite output — callers here pass (negated halved)
/// squared distances, which are finite by construction.
///
/// On x86-64 the loop is re-compiled under AVX2+FMA and dispatched at
/// runtime (like the triangular-solve kernels), so a baseline build still
/// gets 4-wide FMA code; the fused Horner steps differ from the portable
/// path by at most a few ulps.
pub fn exp_inplace_scaled(xs: &mut [f64], scale: f64) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static HAS_FMA: OnceLock<bool> = OnceLock::new();
        let fma = *HAS_FMA.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        });
        if fma {
            // SAFETY: avx2+fma presence was just verified.
            unsafe { exp_slice_fma(xs, scale) };
            return;
        }
    }
    exp_slice_portable(xs, scale);
}

fn exp_slice_portable(xs: &mut [f64], scale: f64) {
    for x in xs.iter_mut() {
        *x = exp_approx(*x) * scale;
    }
}

/// The same straight-line loop compiled with AVX2+FMA enabled; the
/// `#[target_feature]` boundary lets LLVM vectorize it 4-wide with fused
/// multiply-adds even when the crate is built for baseline x86-64.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn exp_slice_fma(xs: &mut [f64], scale: f64) {
    for x in xs.iter_mut() {
        *x = exp_approx(*x) * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(got: f64, want: f64) -> f64 {
        (got - want).abs() / want.abs().max(f64::MIN_POSITIVE)
    }

    #[test]
    fn matches_libm_on_kernel_range() {
        // The covariance pass feeds arguments in (-inf, 0]; sweep the part
        // that produces non-negligible kernel values densely.
        let mut worst = 0.0f64;
        let mut x = -60.0;
        while x <= 0.0 {
            let mut v = [x];
            exp_inplace_scaled(&mut v, 1.0);
            worst = worst.max(rel_err(v[0], x.exp()));
            x += 1e-3;
        }
        assert!(worst < 1e-14, "worst rel err {worst:e}");
    }

    #[test]
    fn matches_libm_on_broad_range() {
        let mut worst = 0.0f64;
        for i in -7000..=7000 {
            let x = i as f64 * 0.1;
            if !(UNDERFLOW..=OVERFLOW).contains(&x) {
                continue;
            }
            let mut v = [x];
            exp_inplace_scaled(&mut v, 1.0);
            worst = worst.max(rel_err(v[0], x.exp()));
        }
        assert!(worst < 1e-13, "worst rel err {worst:e}");
    }

    #[test]
    fn zero_is_exact_and_scale_applies() {
        let mut v = [0.0, -1.0];
        exp_inplace_scaled(&mut v, 2.25);
        assert_eq!(v[0], 2.25);
        assert!(rel_err(v[1], 2.25 * (-1.0f64).exp()) < 1e-14);
    }

    #[test]
    fn deep_negative_flushes_to_zero() {
        let mut v = [-709.0, -1.0e6, f64::NEG_INFINITY.max(f64::MIN), -750.0];
        exp_inplace_scaled(&mut v, 3.0);
        for (i, got) in v.iter().enumerate() {
            assert_eq!(*got, 0.0, "element {i}");
        }
    }

    #[test]
    fn positive_side_stays_finite() {
        let mut v = [700.0, 709.0, 800.0];
        exp_inplace_scaled(&mut v, 1.0);
        assert!(rel_err(v[0], 700.0f64.exp()) < 1e-13);
        assert!(v[1].is_finite() && v[2].is_finite());
        assert_eq!(v[2], v[1], "above the clamp everything saturates");
    }
}
