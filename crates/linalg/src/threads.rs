//! Process-wide thread-pool configuration.
//!
//! Every parallel region in the workspace (covariance assembly, GEMM,
//! multi-RHS solves, GPR restart fan-out, pool scoring, the pipelined AL
//! runner) sizes itself from the rayon pool width. Historically that width
//! was whatever `available_parallelism` said at each call site; bench
//! thread counts were therefore neither controlled nor recorded. This
//! module builds the global pool **once** from the `ALPERF_NUM_THREADS`
//! environment variable and exposes the two primitives everything else
//! needs:
//!
//! * [`configure_from_env`] — idempotent process-wide setup, called from
//!   bin entry points (next to `obs_from_env`-style helpers);
//! * [`with_threads`] — scoped width override for in-process sweeps
//!   (the thread-scaling bench measures 1/2/4/8 threads in one run).
//!
//! `ALPERF_NUM_THREADS=0`, unset, or unparsable all mean "use all
//! available cores". The configured width is what the bench gate records
//! in its machine metadata, so per-thread-count baselines only compare
//! against runs at the same width.

use std::sync::OnceLock;

/// Environment variable naming the global pool width. `0` or unset means
/// "all available cores".
pub const ENV_NUM_THREADS: &str = "ALPERF_NUM_THREADS";

/// How the global pool width was chosen — recorded in bench-gate machine
/// metadata so baselines are only compared against like-configured runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolSource {
    /// `ALPERF_NUM_THREADS` was set to a positive integer.
    Env,
    /// Unset / zero / unparsable: the pool follows `available_parallelism`.
    Default,
}

impl PoolSource {
    /// Stable lowercase label for serialized metadata.
    pub fn label(self) -> &'static str {
        match self {
            PoolSource::Env => "env",
            PoolSource::Default => "default",
        }
    }
}

fn parse_env() -> (usize, PoolSource) {
    match std::env::var(ENV_NUM_THREADS) {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n > 0 => (n, PoolSource::Env),
            _ => (0, PoolSource::Default),
        },
        Err(_) => (0, PoolSource::Default),
    }
}

fn configured() -> &'static (usize, PoolSource) {
    static CONFIGURED: OnceLock<(usize, PoolSource)> = OnceLock::new();
    CONFIGURED.get_or_init(|| {
        let (n, source) = parse_env();
        // `build_global(0)` leaves the pool at "all cores", matching the
        // pre-configuration default, so calling this unconditionally is safe.
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global();
        (n, source)
    })
}

/// Build the global rayon pool from `ALPERF_NUM_THREADS`, once per process.
/// Subsequent calls are no-ops returning the first result. Returns the
/// configured width (`0` = all cores) and where it came from.
pub fn configure_from_env() -> (usize, PoolSource) {
    *configured()
}

/// The fan-out width parallel calls on this thread would currently use,
/// honouring scoped [`with_threads`] overrides, the global configuration,
/// and `available_parallelism`, in that order. Always ≥ 1.
pub fn current() -> usize {
    rayon::current_num_threads().max(1)
}

/// Run `f` with the pool width scoped to `n` threads on this thread
/// (restored afterwards). `0` means "all cores". Parallel regions entered
/// inside `f` — including ones on threads *spawned by* shim parallel
/// calls — see the limit via the shim's install mechanism; threads the
/// caller spawns directly see the global width instead.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("shim thread pool build is infallible");
    pool.install(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_scopes_and_restores() {
        let before = current();
        let inside = with_threads(3, current);
        assert_eq!(inside, 3);
        assert_eq!(current(), before);
        // Nested scopes: innermost wins.
        let nested = with_threads(2, || with_threads(5, current));
        assert_eq!(nested, 5);
    }

    #[test]
    fn configure_from_env_is_idempotent() {
        let first = configure_from_env();
        let second = configure_from_env();
        assert_eq!(first, second);
        // This test environment does not set the variable at test-spawn
        // time in a way we can rely on, so only check internal consistency:
        // a width of 0 must come from Default, a positive width from Env.
        match first {
            (0, src) => assert_eq!(src, PoolSource::Default),
            (_, src) => assert_eq!(src, PoolSource::Env),
        }
        assert!(current() >= 1);
    }

    #[test]
    fn pool_source_labels_are_stable() {
        assert_eq!(PoolSource::Env.label(), "env");
        assert_eq!(PoolSource::Default.label(), "default");
    }
}
