//! Summary statistics and standardization helpers.
//!
//! Shared by the dataset layer (Table I summaries), the GPR layer (response
//! standardization before fitting), and the AL metric layer (RMSE, mean
//! predictive standard deviation).

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Unbiased sample variance (denominator `n-1`); `0.0` for fewer than two
/// elements.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Population variance (denominator `n`); used where the "spread of this
/// exact finite set" is wanted rather than an estimator.
pub fn population_variance(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Minimum (ignoring NaN); `None` when empty or all-NaN.
pub fn min(x: &[f64]) -> Option<f64> {
    x.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |m, v| {
            Some(match m {
                None => v,
                Some(m) => m.min(v),
            })
        })
}

/// Maximum (ignoring NaN); `None` when empty or all-NaN.
pub fn max(x: &[f64]) -> Option<f64> {
    x.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |m, v| {
            Some(match m {
                None => v,
                Some(m) => m.max(v),
            })
        })
}

/// Geometric mean of strictly positive values; `None` if any value is
/// non-positive or the slice is empty. (The paper mentions evaluating a
/// geometric-mean variant of the AMSD convergence metric.)
pub fn geometric_mean(x: &[f64]) -> Option<f64> {
    if x.is_empty() || x.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let s: f64 = x.iter().map(|v| v.ln()).sum();
    Some((s / x.len() as f64).exp())
}

/// Quantile via linear interpolation on the sorted copy, `q` in `[0, 1]`.
pub fn quantile(x: &[f64], q: f64) -> Option<f64> {
    if x.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut v: Vec<f64> = x.iter().copied().filter(|v| !v.is_nan()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// Root mean squared error between predictions and ground truth (Eq. 2 of
/// the paper).
///
/// # Panics
/// Panics on length mismatch.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "rmse: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let s: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    (s / pred.len() as f64).sqrt()
}

/// Mean absolute error.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "mae: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Affine standardization `z = (x - mean) / std` and its inverse.
///
/// GPR fitting standardizes the response so that a unit-amplitude prior is
/// reasonable; predictions are mapped back through [`Standardizer::inverse`]
/// (means) and [`Standardizer::inverse_scale`] (standard deviations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Standardizer {
    /// Mean removed from the data.
    pub mean: f64,
    /// Scale divided out of the data (never zero).
    pub std: f64,
}

impl Standardizer {
    /// Fit to the given data. A zero or non-finite standard deviation falls
    /// back to `1.0` so constant responses remain representable.
    pub fn fit(x: &[f64]) -> Self {
        let m = mean(x);
        let s = std_dev(x);
        let s = if s > 0.0 && s.is_finite() { s } else { 1.0 };
        Standardizer { mean: m, std: s }
    }

    /// Identity transform (mean 0, scale 1).
    pub fn identity() -> Self {
        Standardizer {
            mean: 0.0,
            std: 1.0,
        }
    }

    /// Apply the transform to one value.
    #[inline]
    pub fn apply(&self, v: f64) -> f64 {
        (v - self.mean) / self.std
    }

    /// Apply to a slice, producing a fresh vector.
    pub fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| self.apply(v)).collect()
    }

    /// Invert the transform for a mean-like quantity.
    #[inline]
    pub fn inverse(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }

    /// Invert the transform for a scale-like quantity (standard deviation):
    /// only the multiplicative part applies.
    #[inline]
    pub fn inverse_scale(&self, s: f64) -> f64 {
        s * self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < 1e-15);
        // Sample variance = 32/7.
        assert!((variance(&x) - 32.0 / 7.0).abs() < 1e-12);
        assert!((population_variance(&x) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[f64::NAN]), None);
    }

    #[test]
    fn min_max_ignore_nan() {
        let x = [3.0, f64::NAN, -1.0, 2.0];
        assert_eq!(min(&x), Some(-1.0));
        assert_eq!(max(&x), Some(3.0));
    }

    #[test]
    fn geometric_mean_known() {
        assert!((geometric_mean(&[1.0, 100.0]).unwrap() - 10.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[1.0, -1.0]), None);
        assert_eq!(geometric_mean(&[]), None);
    }

    #[test]
    fn quantile_interpolates() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&x, 0.0), Some(1.0));
        assert_eq!(quantile(&x, 1.0), Some(4.0));
        assert!((quantile(&x, 0.5).unwrap() - 2.5).abs() < 1e-15);
        assert_eq!(quantile(&x, 1.5), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn rmse_known() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn mae_known() {
        assert!((mae(&[0.0, 0.0], &[1.0, -3.0]) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn standardizer_round_trip() {
        let x = [10.0, 20.0, 30.0];
        let s = Standardizer::fit(&x);
        let z = s.apply_vec(&x);
        assert!(mean(&z).abs() < 1e-12);
        assert!((std_dev(&z) - 1.0).abs() < 1e-12);
        for (orig, zi) in x.iter().zip(&z) {
            assert!((s.inverse(*zi) - orig).abs() < 1e-12);
        }
    }

    #[test]
    fn standardizer_constant_data_falls_back() {
        let s = Standardizer::fit(&[5.0, 5.0, 5.0]);
        assert_eq!(s.std, 1.0);
        assert_eq!(s.apply(5.0), 0.0);
        assert_eq!(s.inverse(0.0), 5.0);
    }

    #[test]
    fn standardizer_scale_inverse() {
        let s = Standardizer {
            mean: 7.0,
            std: 2.0,
        };
        assert_eq!(s.inverse_scale(1.5), 3.0);
        // Scale inversion must not add the mean back.
        assert_ne!(s.inverse_scale(0.0), s.inverse(0.0));
    }

    #[test]
    fn identity_standardizer() {
        let s = Standardizer::identity();
        assert_eq!(s.apply(3.25), 3.25);
        assert_eq!(s.inverse(3.25), 3.25);
    }
}
