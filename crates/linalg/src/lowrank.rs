//! Partial pivoted-Cholesky low-rank factorization and Woodbury-form
//! solves — the linear-algebra substrate of the approximate-GPR tier.
//!
//! [`pivoted_cholesky`] builds a rank-`m` approximation `K ≈ Vᵀ V`
//! (`V` stored row-per-factor, `m × n`) of an SPD matrix it never
//! materializes: the caller supplies the diagonal and a column oracle, and
//! the greedy pivot rule (largest residual diagonal) touches only the `m`
//! columns it actually selects — `O(n m²)` work and `O(n m)` memory. The
//! pivot sequence doubles as an inducing-point selection for sparse GPR
//! (the same points a Nyström approximation would anchor on).
//!
//! [`Woodbury`] then solves against `V Vᵀ + Λ` (diagonal `Λ > 0`) through
//! the `m × m` capacitance factor `A = I + Vᵀ Λ⁻¹ V` instead of the
//! `n × n` matrix — the identity that turns an `O(n³)` GPR fit into
//! `O(n m²)`. Both pieces are strictly serial per factor column, so
//! results are bit-identical regardless of rayon worker count.

use crate::cholesky::Cholesky;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::dot;

/// Result of a partial pivoted-Cholesky factorization: `K ≈ Vᵀ V` with
/// `V` of shape `rank × n` (row `r` is the factor column produced by the
/// `r`-th pivot).
#[derive(Debug, Clone)]
pub struct PivotedCholesky {
    /// Factor rows, `rank × n`: `K ≈ v.transpose() * v`.
    v: Matrix,
    /// Selected pivot indices, in selection order (all distinct).
    pivots: Vec<usize>,
    /// `trace(K)` before any pivot was eliminated.
    initial_trace: f64,
    /// Residual trace `trace(K - Vᵀ V)` after the last accepted pivot
    /// (clamped at zero; exact arithmetic would keep it nonnegative).
    residual_trace: f64,
}

impl PivotedCholesky {
    /// Factor rows `V` (`rank × n`), so `K ≈ Vᵀ V`.
    pub fn factor_rows(&self) -> &Matrix {
        &self.v
    }

    /// Number of accepted pivots (the approximation rank).
    pub fn rank(&self) -> usize {
        self.pivots.len()
    }

    /// Pivot indices in selection order.
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// `trace(K)` of the matrix being approximated.
    pub fn initial_trace(&self) -> f64 {
        self.initial_trace
    }

    /// Residual trace `trace(K - Vᵀ V)` — the factorization's built-in
    /// error certificate (for SPD `K` the trace bounds the nuclear norm
    /// of the residual).
    pub fn residual_trace(&self) -> f64 {
        self.residual_trace
    }

    /// Dense reconstruction `Vᵀ V` (testing / diagnostics; `O(n² m)`).
    pub fn reconstruct(&self) -> Matrix {
        let vt = self.v.transpose();
        vt.matmul(&self.v).expect("factor shapes agree")
    }
}

/// Partial pivoted-Cholesky factorization of an SPD matrix given by its
/// diagonal and a column oracle.
///
/// `diag[i] = K_ii`; `column(p)` must return the full `p`-th column of
/// `K` (length `diag.len()`). Pivots are chosen greedily as the largest
/// residual diagonal entry (lowest index on ties — the rule that makes
/// the selection bit-identical across machines and worker counts), and
/// the iteration stops when either `max_rank` columns were accepted or
/// the residual trace has fallen to `rel_tol * trace(K)`.
///
/// Residual diagonal entries that go negative through rounding are
/// clamped to zero, matching the convention of GPML's `chol_incomplete`
/// and scikit-learn's Nyström helpers.
///
/// # Errors
/// [`LinalgError::NonFinite`] if the diagonal or a selected column
/// contains NaN/inf; [`LinalgError::DimensionMismatch`] if `column`
/// returns the wrong length.
pub fn pivoted_cholesky(
    diag: &[f64],
    column: &mut dyn FnMut(usize) -> Vec<f64>,
    max_rank: usize,
    rel_tol: f64,
) -> Result<PivotedCholesky, LinalgError> {
    let _span = alperf_obs::span("linalg.pivoted_cholesky");
    let n = diag.len();
    if diag.iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::NonFinite {
            op: "pivoted_cholesky",
        });
    }
    let initial_trace: f64 = diag.iter().sum();
    let mut d = diag.to_vec();
    let mut rows: Vec<f64> = Vec::new();
    let mut pivots: Vec<usize> = Vec::new();
    let mut residual_trace = initial_trace;
    let stop_trace = rel_tol.max(0.0) * initial_trace.max(0.0);
    let rank_cap = max_rank.min(n);

    while pivots.len() < rank_cap && residual_trace > stop_trace {
        // Greedy pivot: largest residual diagonal, lowest index wins ties.
        let (p, dp) =
            d.iter()
                .copied()
                .enumerate()
                .fold((0usize, f64::NEG_INFINITY), |(bi, bv), (i, v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                });
        if dp <= 0.0 {
            break;
        }
        let col = column(p);
        if col.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "pivoted_cholesky",
                details: format!("column {p} has {} entries, expected {n}", col.len()),
            });
        }
        if col.iter().any(|v| !v.is_finite()) {
            return Err(LinalgError::NonFinite {
                op: "pivoted_cholesky",
            });
        }
        let r = pivots.len();
        let scale = 1.0 / dp.sqrt();
        // new_row[i] = (K_ip - sum_{s<r} V_sp V_si) / sqrt(d_p)
        let mut new_row = col;
        for s in 0..r {
            let vsp = rows[s * n + p];
            if vsp == 0.0 {
                continue;
            }
            let vrow = &rows[s * n..(s + 1) * n];
            for (t, v) in new_row.iter_mut().zip(vrow) {
                *t -= vsp * v;
            }
        }
        for t in new_row.iter_mut() {
            *t *= scale;
        }
        new_row[p] = dp.sqrt();
        // Residual diagonal update, clamped at zero.
        residual_trace = 0.0;
        for (di, vi) in d.iter_mut().zip(&new_row) {
            *di = (*di - vi * vi).max(0.0);
            residual_trace += *di;
        }
        d[p] = 0.0;
        rows.extend_from_slice(&new_row);
        pivots.push(p);
    }

    let rank = pivots.len();
    let v = Matrix::from_vec(rank, n, rows).expect("row buffer shape");
    alperf_obs::add("linalg.pivoted_cholesky.rank", rank as u64);
    Ok(PivotedCholesky {
        v,
        pivots,
        initial_trace,
        residual_trace,
    })
}

/// Woodbury-form solver for `M = V Vᵀ + Λ` with `V = vtᵀ` (`vt` holds
/// `v_i` as row `i`, shape `n × m`) and diagonal `Λ = diag(lambda) > 0`.
///
/// Everything routes through the `m × m` capacitance matrix
/// `A = I + Vᵀ Λ⁻¹ V` and its Cholesky factor `L_A`:
///
/// * `M⁻¹ b = Λ⁻¹ b − Λ⁻¹ V A⁻¹ Vᵀ Λ⁻¹ b` (Woodbury identity),
/// * `log det M = log det A + Σ log λ_i` (matrix determinant lemma),
/// * `yᵀ M⁻¹ y = Σ y_i²/λ_i − ‖L_A⁻¹ Vᵀ Λ⁻¹ y‖²`.
#[derive(Debug, Clone)]
pub struct Woodbury {
    vt: Matrix,
    lambda: Vec<f64>,
    a_chol: Cholesky,
}

impl Woodbury {
    /// Build the capacitance factor for `V Vᵀ + diag(lambda)`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `lambda.len() != vt.nrows()`;
    /// [`LinalgError::NonFinite`] if `lambda` has a nonpositive or
    /// non-finite entry; any Cholesky failure on the capacitance matrix
    /// (jitter-retried first — `A` is an identity plus a Gram matrix, so
    /// failures indicate severe scaling problems upstream).
    pub fn new(vt: &Matrix, lambda: &[f64]) -> Result<Self, LinalgError> {
        let (n, m) = (vt.nrows(), vt.ncols());
        if lambda.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "woodbury",
                details: format!("{} lambda entries for {n} rows", lambda.len()),
            });
        }
        if lambda.iter().any(|l| !l.is_finite() || *l <= 0.0) {
            return Err(LinalgError::NonFinite { op: "woodbury" });
        }
        // A = I + Vᵀ Λ⁻¹ V, assembled as (Λ⁻¹ vt)ᵀ-style row scaling fused
        // into the Gram accumulation: A += v_i v_iᵀ / λ_i, lower triangle
        // then mirrored. Serial over rows — bit-identical across workers.
        let mut a = Matrix::identity(m);
        for (i, &li) in lambda.iter().enumerate() {
            let row = vt.row(i);
            let inv_l = 1.0 / li;
            for r in 0..m {
                let w = row[r] * inv_l;
                if w == 0.0 {
                    continue;
                }
                let arow = a.row_mut(r);
                for c in 0..=r {
                    arow[c] += w * row[c];
                }
            }
        }
        for r in 0..m {
            for c in 0..r {
                a[(c, r)] = a[(r, c)];
            }
        }
        let a_chol = Cholesky::decompose_jittered(&a, 1e-12, 8)?;
        Ok(Woodbury {
            vt: vt.clone(),
            lambda: lambda.to_vec(),
            a_chol,
        })
    }

    /// Build with a constant diagonal `Λ = lambda I`.
    pub fn new_uniform(vt: &Matrix, lambda: f64) -> Result<Self, LinalgError> {
        Self::new(vt, &vec![lambda; vt.nrows()])
    }

    /// Number of rows `n` of the implicit `n × n` matrix.
    pub fn order(&self) -> usize {
        self.vt.nrows()
    }

    /// Low-rank width `m`.
    pub fn rank(&self) -> usize {
        self.vt.ncols()
    }

    /// The Cholesky factor of the capacitance matrix `A = I + Vᵀ Λ⁻¹ V`.
    pub fn factor(&self) -> &Cholesky {
        &self.a_chol
    }

    /// `Vᵀ Λ⁻¹ y` — the `m`-vector the Woodbury identity pivots on.
    fn vt_lambda_inv(&self, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let (n, m) = (self.vt.nrows(), self.vt.ncols());
        if y.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "woodbury_apply",
                details: format!("rhs has {} entries, order is {n}", y.len()),
            });
        }
        let mut s = vec![0.0; m];
        for (i, (yi, li)) in y.iter().zip(&self.lambda).enumerate() {
            let w = yi / li;
            if w == 0.0 {
                continue;
            }
            for (sj, vj) in s.iter_mut().zip(self.vt.row(i)) {
                *sj += w * vj;
            }
        }
        Ok(s)
    }

    /// Solve `(V Vᵀ + Λ) x = b` in `O(n m + m²)`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `b.len() != order()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let s = self.vt_lambda_inv(b)?;
        let w = self.a_chol.solve(&s)?;
        let mut x: Vec<f64> = b.iter().zip(&self.lambda).map(|(bi, li)| bi / li).collect();
        for (i, xi) in x.iter_mut().enumerate() {
            *xi -= dot(self.vt.row(i), &w) / self.lambda[i];
        }
        Ok(x)
    }

    /// `L_A⁻¹ Vᵀ Λ⁻¹ y` — the projected coefficient vector sparse-GPR
    /// posteriors are built from.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `y.len() != order()`.
    pub fn project(&self, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let s = self.vt_lambda_inv(y)?;
        self.a_chol.solve_forward(&s)
    }

    /// `log det(V Vᵀ + Λ)` via the matrix determinant lemma.
    pub fn log_det(&self) -> f64 {
        self.a_chol.log_det() + self.lambda.iter().map(|l| l.ln()).sum::<f64>()
    }

    /// Quadratic form `yᵀ (V Vᵀ + Λ)⁻¹ y` without forming the solve.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `y.len() != order()`.
    pub fn quad(&self, y: &[f64]) -> Result<f64, LinalgError> {
        let c = self.project(y)?;
        let direct: f64 = y
            .iter()
            .zip(&self.lambda)
            .map(|(yi, li)| yi * yi / li)
            .sum();
        Ok(direct - dot(&c, &c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic well-conditioned SPD matrix (same xorshift recipe as
    /// the Cholesky tests): `B Bᵀ / n + I`.
    fn well_conditioned_spd(n: usize) -> Matrix {
        let mut s = 0x9e3779b97f4a7c15u64 ^ n as u64;
        let data: Vec<f64> = (0..n * n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 - 1.0
            })
            .collect();
        let b = Matrix::from_vec(n, n, data).unwrap();
        let mut a = b.matmul(&b.transpose()).unwrap();
        let inv_n = 1.0 / n as f64;
        for v in a.as_mut_slice() {
            *v *= inv_n;
        }
        a.add_diagonal(1.0);
        a
    }

    /// Low-rank-plus-ridge SPD matrix: `C Cᵀ + eps I` with `C` of width
    /// `r` — pivoted Cholesky should capture it at rank ≈ r.
    fn low_rank_spd(n: usize, r: usize, eps: f64) -> Matrix {
        let mut s = 0xdeadbeefcafef00du64 ^ (n as u64) << 8 ^ r as u64;
        let data: Vec<f64> = (0..n * r)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 - 1.0
            })
            .collect();
        let c = Matrix::from_vec(n, r, data).unwrap();
        let mut a = c.matmul(&c.transpose()).unwrap();
        a.add_diagonal(eps);
        a
    }

    fn factor_full(a: &Matrix, max_rank: usize, tol: f64) -> PivotedCholesky {
        let diag = a.diagonal();
        let n = a.nrows();
        let mut col = |p: usize| (0..n).map(|i| a[(i, p)]).collect::<Vec<f64>>();
        pivoted_cholesky(&diag, &mut col, max_rank, tol).unwrap()
    }

    #[test]
    fn full_rank_reconstructs_exactly() {
        for n in [1usize, 5, 23] {
            let a = well_conditioned_spd(n);
            let pc = factor_full(&a, n, 0.0);
            assert_eq!(pc.rank(), n);
            let diff = pc.reconstruct().max_abs_diff(&a);
            assert!(diff < 1e-9, "n={n}: reconstruction error {diff}");
            assert!(pc.residual_trace() < 1e-9 * pc.initial_trace());
        }
    }

    #[test]
    fn low_rank_matrix_stops_early() {
        let a = low_rank_spd(40, 5, 1e-10);
        let pc = factor_full(&a, 40, 1e-8);
        assert!(
            pc.rank() <= 7,
            "rank-5 + tiny ridge should stop near 5, got {}",
            pc.rank()
        );
        let diff = pc.reconstruct().max_abs_diff(&a);
        assert!(diff < 1e-4, "residual too large: {diff}");
    }

    #[test]
    fn pivots_are_distinct_and_trace_monotone() {
        let a = well_conditioned_spd(30);
        let diag = a.diagonal();
        let mut col = |p: usize| (0..30).map(|i| a[(i, p)]).collect::<Vec<f64>>();
        // Re-run rank by rank; residual trace must be nonincreasing.
        let mut prev = f64::INFINITY;
        for m in 1..=30 {
            let pc = pivoted_cholesky(&diag, &mut col, m, 0.0).unwrap();
            assert!(pc.residual_trace() <= prev + 1e-12);
            prev = pc.residual_trace();
            let mut sorted = pc.pivots().to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), pc.rank(), "duplicate pivot");
        }
        assert!(prev < 1e-9);
    }

    #[test]
    fn rank_cap_respected() {
        let a = well_conditioned_spd(20);
        let pc = factor_full(&a, 4, 0.0);
        assert_eq!(pc.rank(), 4);
        assert_eq!(pc.factor_rows().nrows(), 4);
        assert_eq!(pc.factor_rows().ncols(), 20);
        assert!(pc.residual_trace() > 0.0);
        assert!(pc.residual_trace() < pc.initial_trace());
    }

    #[test]
    fn zero_matrix_yields_rank_zero() {
        let diag = vec![0.0; 6];
        let mut col = |_p: usize| vec![0.0; 6];
        let pc = pivoted_cholesky(&diag, &mut col, 6, 0.0).unwrap();
        assert_eq!(pc.rank(), 0);
        assert_eq!(pc.residual_trace(), 0.0);
    }

    #[test]
    fn bad_column_length_rejected() {
        let diag = vec![1.0, 2.0];
        let mut col = |_p: usize| vec![1.0];
        assert!(matches!(
            pivoted_cholesky(&diag, &mut col, 2, 0.0),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    fn dense_m(vt: &Matrix, lambda: &[f64]) -> Matrix {
        let v = vt.transpose();
        let mut m = vt.matmul(&v).unwrap();
        for (i, l) in lambda.iter().enumerate() {
            m[(i, i)] += l;
        }
        m
    }

    fn test_vt(n: usize, m: usize) -> Matrix {
        let mut s = 0x1234_5678_9abc_def0u64 ^ (n as u64) << 7 ^ m as u64;
        let data: Vec<f64> = (0..n * m)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 - 1.0
            })
            .collect();
        Matrix::from_vec(n, m, data).unwrap()
    }

    #[test]
    fn woodbury_solve_matches_dense() {
        let (n, m) = (25, 4);
        let vt = test_vt(n, m);
        let lambda: Vec<f64> = (0..n).map(|i| 0.5 + 0.1 * i as f64).collect();
        let wb = Woodbury::new(&vt, &lambda).unwrap();
        let dense = dense_m(&vt, &lambda);
        let chol = Cholesky::decompose(&dense).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let x_w = wb.solve(&b).unwrap();
        let x_d = chol.solve(&b).unwrap();
        for (a, c) in x_w.iter().zip(&x_d) {
            assert!((a - c).abs() < 1e-10, "{a} vs {c}");
        }
    }

    #[test]
    fn woodbury_log_det_and_quad_match_dense() {
        let (n, m) = (18, 3);
        let vt = test_vt(n, m);
        let lambda = vec![0.3; n];
        let wb = Woodbury::new_uniform(&vt, 0.3).unwrap();
        let dense = dense_m(&vt, &lambda);
        let chol = Cholesky::decompose(&dense).unwrap();
        assert!((wb.log_det() - chol.log_det()).abs() < 1e-10);
        let y: Vec<f64> = (0..n).map(|i| 1.0 - 0.05 * i as f64).collect();
        let quad_dense = dot(&y, &chol.solve(&y).unwrap());
        assert!((wb.quad(&y).unwrap() - quad_dense).abs() < 1e-10);
        // project() is the forward half of quad's correction term.
        let c = wb.project(&y).unwrap();
        let direct: f64 = y.iter().map(|v| v * v / 0.3).sum();
        assert!((direct - dot(&c, &c) - quad_dense).abs() < 1e-10);
    }

    #[test]
    fn woodbury_rejects_bad_lambda() {
        let vt = test_vt(4, 2);
        assert!(Woodbury::new(&vt, &[1.0, 1.0]).is_err());
        assert!(Woodbury::new(&vt, &[1.0, 1.0, 0.0, 1.0]).is_err());
        assert!(Woodbury::new(&vt, &[1.0, 1.0, f64::NAN, 1.0]).is_err());
    }
}
