//! Row-major dense matrix.
//!
//! The GPR layer assembles covariance matrices of a few hundred to a few
//! thousand rows; the cluster simulator and benchmark harness use matrices as
//! design matrices (rows = experiments, columns = controlled variables).
//! Storage is a single contiguous `Vec<f64>` so rows can be handed out as
//! slices — the access pattern every consumer in this workspace wants.

use crate::error::LinalgError;
use crate::vector::dot;
use rayon::prelude::*;

/// Below this many total elements, parallel products fall back to the serial
/// path: rayon's fork-join overhead dominates for tiny matrices (see the
/// `matmul` criterion bench in `alperf-bench`).
const PAR_THRESHOLD: usize = 64 * 64;

/// Tile sizes for the blocked matrix product: `MM_ROW_BLOCK` output rows are
/// produced per rayon task, and the inner (`k`) dimension is walked in
/// `MM_K_BLOCK`-wide stripes so the corresponding rows of `B` stay cached
/// while they are reused across the whole row block.
const MM_ROW_BLOCK: usize = 32;
const MM_K_BLOCK: usize = 64;

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero-filled `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::from_vec",
                details: format!(
                    "{rows}x{cols} needs {} elements, got {}",
                    rows * cols,
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "Matrix::from_rows",
                    details: format!("row {i} has {} columns, expected {cols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Build an `n x n` matrix from a function of the index pair. Used for
    /// covariance assembly; runs rows in parallel when the matrix is large.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        if rows * cols >= PAR_THRESHOLD {
            m.data
                .par_chunks_mut(cols)
                .enumerate()
                .for_each(|(i, row)| {
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = f(i, j);
                    }
                });
        } else {
            for i in 0..rows {
                for j in 0..cols {
                    m[(i, j)] = f(i, j);
                }
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a fresh vector. Allocates; hot paths that read
    /// columns repeatedly should use [`Matrix::copy_col_into`] with a reused
    /// buffer instead.
    pub fn col(&self, j: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.copy_col_into(j, &mut out);
        out
    }

    /// Copy column `j` into a caller-provided buffer of length `nrows`,
    /// avoiding the per-call allocation of [`Matrix::col`].
    ///
    /// # Panics
    /// Panics if `out.len() != nrows` or `j >= ncols`.
    pub fn copy_col_into(&self, j: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.rows, "copy_col_into: buffer length");
        assert!(j < self.cols, "copy_col_into: column out of range");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data[i * self.cols + j];
        }
    }

    /// Squared Euclidean norm of every row. The batched kernel evaluation
    /// uses these in the `‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b` expansion.
    pub fn row_sq_norms(&self) -> Vec<f64> {
        self.data
            .chunks(self.cols.max(1))
            .map(|r| dot(r, r))
            .collect()
    }

    /// Squared Euclidean norm of every column, accumulated row-by-row so the
    /// summation order per column matches a sequential `dot` over that
    /// column — batched GPR variances stay bit-comparable to the per-point
    /// path.
    pub fn col_sq_norms(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.cols];
        for row in self.data.chunks(self.cols.max(1)) {
            for (a, &v) in acc.iter_mut().zip(row) {
                *a += v * v;
            }
        }
        acc
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.cols.max(1))
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                details: format!("{}x{} * {}", self.rows, self.cols, x.len()),
            });
        }
        if self.rows * self.cols >= PAR_THRESHOLD {
            Ok(self
                .data
                .par_chunks(self.cols)
                .map(|row| dot(row, x))
                .collect())
        } else {
            Ok(self.data.chunks(self.cols).map(|row| dot(row, x)).collect())
        }
    }

    /// Matrix–matrix product `A B`.
    ///
    /// Cache-blocked i-k-j order over the row-major layout: output rows are
    /// produced in `MM_ROW_BLOCK`-row tiles (one rayon task each for large
    /// problems) and the `k` dimension is walked in `MM_K_BLOCK` stripes so
    /// each stripe of `B` rows is reused across the whole tile while still
    /// hot. The `k` accumulation order is unchanged, so results are
    /// bit-identical to the naive i-k-j product.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                details: format!(
                    "{}x{} * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        if self.rows == 0 || n == 0 {
            return Ok(out);
        }
        let compute_tile = |row0: usize, tile: &mut [f64]| {
            for k0 in (0..self.cols).step_by(MM_K_BLOCK) {
                let k1 = (k0 + MM_K_BLOCK).min(self.cols);
                for (t, orow) in tile.chunks_mut(n).enumerate() {
                    let arow = self.row(row0 + t);
                    for (k, &aik) in arow.iter().enumerate().take(k1).skip(k0) {
                        let brow = other.row(k);
                        for (o, &b) in orow.iter_mut().zip(brow) {
                            *o += aik * b;
                        }
                    }
                }
            }
        };
        if self.rows * n >= PAR_THRESHOLD {
            out.data
                .par_chunks_mut(n * MM_ROW_BLOCK)
                .enumerate()
                .for_each(|(t, tile)| compute_tile(t * MM_ROW_BLOCK, tile));
        } else {
            for (t, tile) in out.data.chunks_mut(n * MM_ROW_BLOCK).enumerate() {
                compute_tile(t * MM_ROW_BLOCK, tile);
            }
        }
        Ok(out)
    }

    /// `self + a * other`, elementwise.
    pub fn add_scaled(&self, a: f64, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "add_scaled",
                details: format!(
                    "{}x{} + {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(x, y)| x + a * y)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Add `a` to every diagonal element in place (e.g. `K + sigma_n^2 I`).
    pub fn add_diagonal(&mut self, a: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += a;
        }
    }

    /// Diagonal as a vector.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Trace (sum of diagonal elements).
    pub fn trace(&self) -> f64 {
        self.diagonal().iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::vector::norm2(&self.data)
    }

    /// Maximum absolute elementwise difference to another matrix of the same
    /// shape; used in tests and convergence checks.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Symmetrize in place: `A <- (A + A^T) / 2`. Covariance matrices drift
    /// from exact symmetry after repeated floating-point assembly; Cholesky
    /// assumes symmetry.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize: matrix must be square");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = v;
                self[(j, i)] = v;
            }
        }
    }

    /// `true` if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Select a subset of rows (by index, in the given order) into a new
    /// matrix. Indices may repeat — used by the bootstrap resampler in the
    /// EMCM baseline.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(idx.len(), self.cols);
        for (r, &i) in idx.iter().enumerate() {
            m.row_mut(r).copy_from_slice(self.row(i));
        }
        m
    }

    /// Append a row, returning a new matrix. The AL loop grows the training
    /// design matrix one experiment at a time.
    pub fn with_row(&self, row: &[f64]) -> Result<Matrix, LinalgError> {
        if self.rows > 0 && row.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "with_row",
                details: format!("row has {} columns, matrix has {}", row.len(), self.cols),
            });
        }
        let cols = if self.rows == 0 { row.len() } else { self.cols };
        let mut data = self.data.clone();
        data.extend_from_slice(row);
        Ok(Matrix {
            rows: self.rows + 1,
            cols,
            data,
        })
    }

    /// Append a column in place. Rebuilds the row-major backing store once;
    /// the pool-prediction cache uses this to extend `K(pool, train)` by a
    /// single kernel column when one training point is added.
    pub fn push_col(&mut self, col: &[f64]) -> Result<(), LinalgError> {
        if col.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "push_col",
                details: format!("column has {} rows, matrix has {}", col.len(), self.rows),
            });
        }
        let new_cols = self.cols + 1;
        let mut data = Vec::with_capacity(self.rows * new_cols);
        for (row, &v) in self.data.chunks(self.cols.max(1)).zip(col) {
            data.extend_from_slice(row);
            data.push(v);
        }
        self.data = data;
        self.cols = new_cols;
        Ok(())
    }

    /// Remove row `i` in O(row) by moving the last row into its place
    /// (order is NOT preserved) — mirrors `Vec::swap_remove`, matching how
    /// the AL loop removes a chosen candidate from its pool.
    pub fn swap_remove_row(&mut self, i: usize) {
        assert!(i < self.rows, "swap_remove_row: row out of range");
        let last = self.rows - 1;
        if i != last {
            let (head, tail) = self.data.split_at_mut(last * self.cols);
            head[i * self.cols..(i + 1) * self.cols].copy_from_slice(tail);
        }
        self.data.truncate(last * self.cols);
        self.rows = last;
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.nrows(), 2);
        assert_eq!(z.ncols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_ragged_rejected() {
        let r: Result<Matrix, _> = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
        assert!(r.is_err());
    }

    #[test]
    fn from_fn_matches_manual() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(2, 1)], 21.0);
    }

    #[test]
    fn from_fn_parallel_path_consistent() {
        // Large enough to take the parallel path.
        let f = |i: usize, j: usize| ((i as f64) * 0.01 - (j as f64) * 0.02).sin();
        let big = Matrix::from_fn(80, 80, f);
        for &(i, j) in &[(0, 0), (79, 79), (13, 57)] {
            assert_eq!(big[(i, j)], f(i, j));
        }
    }

    #[test]
    fn row_and_col_access() {
        let m = abc();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = abc();
        let t = m.transpose();
        assert_eq!(t.nrows(), 2);
        assert_eq!(t[(0, 2)], 5.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_small() {
        let m = abc();
        let y = m.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0, 11.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matvec_parallel_matches_serial() {
        let n = 100;
        let m = Matrix::from_fn(n, n, |i, j| ((i + 2 * j) as f64).cos());
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y = m.matvec(&x).unwrap();
        for (i, yi) in y.iter().enumerate() {
            let expect = dot(m.row(i), &x);
            assert!((yi - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_identity() {
        let m = abc();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_dimension_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn add_scaled_and_diagonal() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let c = a.add_scaled(2.0, &b).unwrap();
        assert_eq!(c[(0, 0)], 3.0);
        assert_eq!(c[(0, 1)], 2.0);
        let mut d = Matrix::zeros(2, 2);
        d.add_diagonal(4.0);
        assert_eq!(d.diagonal(), vec![4.0, 4.0]);
    }

    #[test]
    fn trace_and_frobenius() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert_eq!(m.trace(), 7.0);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]).unwrap();
        m.symmetrize();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn select_rows_with_repeats() {
        let m = abc();
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn with_row_grows_matrix() {
        let m = Matrix::zeros(0, 0);
        let m = m.with_row(&[1.0, 2.0]).unwrap();
        let m = m.with_row(&[3.0, 4.0]).unwrap();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert!(m.with_row(&[1.0]).is_err());
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.all_finite());
        m[(1, 1)] = f64::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn max_abs_diff_basic() {
        let a = Matrix::identity(2);
        let mut b = Matrix::identity(2);
        b[(0, 1)] = 0.25;
        assert_eq!(a.max_abs_diff(&b), 0.25);
    }

    #[test]
    fn display_does_not_panic() {
        let s = format!("{}", abc());
        assert!(s.contains('\n'));
    }
}
