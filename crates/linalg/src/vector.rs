//! Free functions over `&[f64]` vectors.
//!
//! The GPR layer works with plain slices rather than a wrapper type: the
//! response vector `y`, the weight vector `alpha = K_y^{-1} y`, and kernel
//! rows are all just `Vec<f64>`. These helpers keep that code readable while
//! staying allocation-free where possible.

use crate::error::LinalgError;

/// Dot product `x . y`.
///
/// # Panics
/// Panics if the slices have different lengths (programmer error, not data
/// error — lengths are structural in all call sites).
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Manual 4-way unrolling: LLVM reliably vectorizes this form, and the
    // reduction order is deterministic (important for reproducible LML
    // values across runs).
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for i in 0..chunks {
        let b = i * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in chunks * 4..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// `y += a * x` (BLAS `axpy`).
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `x *= a` in place.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= a;
    }
}

/// Euclidean norm `||x||_2`, computed with scaling to avoid overflow for
/// large magnitudes.
pub fn norm2(x: &[f64]) -> f64 {
    let max = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return if max.is_finite() { 0.0 } else { f64::INFINITY };
    }
    let mut s = 0.0;
    for v in x {
        let t = v / max;
        s += t * t;
    }
    max * s.sqrt()
}

/// Infinity norm `max_i |x_i|`.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Squared Euclidean distance between two points, `||a - b||^2`.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    let mut s = 0.0;
    for (ai, bi) in a.iter().zip(b) {
        let d = ai - bi;
        s += d * d;
    }
    s
}

/// Anisotropic (per-dimension-scaled) squared distance
/// `sum_d ((a_d - b_d) / l_d)^2` — the quadratic form inside an ARD squared
/// exponential kernel.
#[inline]
pub fn scaled_sq_dist(a: &[f64], b: &[f64], inv_lengths: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "scaled_sq_dist: length mismatch");
    assert_eq!(a.len(), inv_lengths.len(), "scaled_sq_dist: scale mismatch");
    let mut s = 0.0;
    for ((ai, bi), il) in a.iter().zip(b).zip(inv_lengths) {
        let d = (ai - bi) * il;
        s += d * d;
    }
    s
}

/// Elementwise subtraction `x - y` into a fresh vector.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Validate that every element is finite.
pub fn check_finite(x: &[f64], op: &'static str) -> Result<(), LinalgError> {
    if x.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(LinalgError::NonFinite { op })
    }
}

/// Linearly spaced grid of `n` points covering `[lo, hi]` inclusive.
///
/// `n == 1` yields `[lo]`. Used throughout the benchmark harness to build
/// prediction grids for figures.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n > 0, "linspace: need at least one point");
    if n == 1 {
        return vec![lo];
    }
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

/// Log-spaced grid: `n` points whose base-10 logarithms are linearly spaced
/// over `[log10(lo), log10(hi)]`.
pub fn logspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > 0.0, "logspace: bounds must be positive");
    linspace(lo.log10(), hi.log10(), n)
        .into_iter()
        .map(|e| 10f64.powf(e))
        .collect()
}

/// Index of the maximum element; ties resolve to the first occurrence.
/// Returns `None` for an empty slice or if all elements are NaN.
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element; ties resolve to the first occurrence.
pub fn argmin(x: &[f64]) -> Option<usize> {
    argmax(&x.iter().map(|v| -v).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_unrolled_matches_naive_for_many_lengths() {
        for n in 0..35 {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).sin()).collect();
            let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
            let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!((dot(&x, &y) - naive).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn norm2_pythagoras() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn norm2_avoids_overflow() {
        let big = 1e300;
        let n = norm2(&[big, big]);
        assert!(n.is_finite());
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-12);
    }

    #[test]
    fn norm2_zero_vector() {
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn norm_inf_basic() {
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
    }

    #[test]
    fn sq_dist_basic() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn scaled_sq_dist_matches_manual() {
        let d = scaled_sq_dist(&[1.0, 2.0], &[3.0, 5.0], &[0.5, 2.0]);
        // ((1-3)*0.5)^2 + ((2-5)*2)^2 = 1 + 36
        assert!((d - 37.0).abs() < 1e-12);
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[5.0, 1.0], &[2.0, 3.0]), vec![3.0, -2.0]);
    }

    #[test]
    fn check_finite_detects_nan_and_inf() {
        assert!(check_finite(&[1.0, 2.0], "t").is_ok());
        assert!(check_finite(&[1.0, f64::NAN], "t").is_err());
        assert!(check_finite(&[f64::INFINITY], "t").is_err());
    }

    #[test]
    fn linspace_endpoints_and_spacing() {
        let g = linspace(0.0, 1.0, 5);
        assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(linspace(2.0, 9.0, 1), vec![2.0]);
    }

    #[test]
    fn logspace_endpoints() {
        let g = logspace(1.0, 1000.0, 4);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[1] - 10.0).abs() < 1e-9);
        assert!((g[3] - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn argmax_and_argmin() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), Some(1));
        assert_eq!(argmin(&[1.0, -5.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 2.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
    }
}
