//! Property-based tests for the linear-algebra substrate.

use alperf_linalg::{cholesky::Cholesky, lowrank, matrix::Matrix, stats, triangular, vector};
use proptest::prelude::*;

/// Strategy: vector of `n` finite floats in a tame range.
fn vec_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0..100.0f64, n)
}

/// Build a random SPD matrix as `B B^T + (n * eps) I`.
fn spd_from(b_data: Vec<f64>, n: usize) -> Matrix {
    let b = Matrix::from_vec(n, n, b_data).unwrap();
    let bt = b.transpose();
    let mut a = b.matmul(&bt).unwrap();
    a.add_diagonal(n as f64 * 1e-6 + 1e-6);
    a
}

/// Cheap deterministic `rows x cols` matrix with entries in [-1, 1)
/// (xorshift64; proptest vectors of n^2 floats are too slow at n ~ 150).
fn pseudo_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut s = seed | 1;
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 1.0
        })
        .collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

/// Well-conditioned SPD: `B B^T / n + I` with `B` from [`pseudo_mat`].
fn pseudo_spd(n: usize, seed: u64) -> Matrix {
    let b = pseudo_mat(n, n, seed);
    let mut a = b.matmul(&b.transpose()).unwrap();
    let inv_n = 1.0 / n as f64;
    for v in a.as_mut_slice() {
        *v *= inv_n;
    }
    a.add_diagonal(1.0);
    a
}

proptest! {
    #[test]
    fn pivoted_cholesky_trace_error_monotone_in_rank(seed in 0u64..1_000_000, n in 8..48usize) {
        // Each extra pivot eliminates a nonnegative amount of residual
        // trace: the reported trace error must be nonincreasing in the rank
        // cap, start at trace(K), and the reported value must match the
        // true trace of K - VᵀV.
        let a = pseudo_spd(n, seed);
        let diag: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
        let trace: f64 = diag.iter().sum();
        let mut prev = trace;
        let mut rank = 1usize;
        while rank <= n {
            let mut column = |j: usize| (0..n).map(|i| a[(i, j)]).collect::<Vec<f64>>();
            let pc = lowrank::pivoted_cholesky(&diag, &mut column, rank, 0.0).unwrap();
            prop_assert!(pc.rank() <= rank);
            let rt = pc.residual_trace();
            prop_assert!(rt >= 0.0);
            prop_assert!(
                rt <= prev + 1e-9 * trace,
                "residual trace grew with rank: {} -> {} at rank {}",
                prev, rt, rank
            );
            prev = rt;
            let rec = pc.reconstruct();
            let true_rt: f64 = (0..n).map(|i| a[(i, i)] - rec[(i, i)]).sum();
            prop_assert!(
                (true_rt - rt).abs() <= 1e-8 * (1.0 + trace),
                "reported residual trace {} != true {}",
                rt, true_rt
            );
            rank *= 2;
        }
        // At full rank the factorization is (numerically) exact.
        let mut column = |j: usize| (0..n).map(|i| a[(i, j)]).collect::<Vec<f64>>();
        let full = lowrank::pivoted_cholesky(&diag, &mut column, n, 0.0).unwrap();
        prop_assert!(full.residual_trace() <= 1e-8 * (1.0 + trace));
    }

    #[test]
    fn dot_is_commutative(x in vec_strategy(17), y in vec_strategy(17)) {
        let a = vector::dot(&x, &y);
        let b = vector::dot(&y, &x);
        prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn dot_linearity(x in vec_strategy(9), y in vec_strategy(9), c in -10.0..10.0f64) {
        let cx: Vec<f64> = x.iter().map(|v| c * v).collect();
        let lhs = vector::dot(&cx, &y);
        let rhs = c * vector::dot(&x, &y);
        prop_assert!((lhs - rhs).abs() <= 1e-7 * (1.0 + rhs.abs()));
    }

    #[test]
    fn norm2_triangle_inequality(x in vec_strategy(11), y in vec_strategy(11)) {
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        prop_assert!(vector::norm2(&sum) <= vector::norm2(&x) + vector::norm2(&y) + 1e-9);
    }

    #[test]
    fn sq_dist_symmetric_nonnegative(x in vec_strategy(5), y in vec_strategy(5)) {
        let d1 = vector::sq_dist(&x, &y);
        let d2 = vector::sq_dist(&y, &x);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-9 * (1.0 + d1));
        prop_assert_eq!(vector::sq_dist(&x, &x), 0.0);
    }

    #[test]
    fn cholesky_round_trip(b in vec_strategy(16)) {
        let a = spd_from(b, 4);
        let c = Cholesky::decompose(&a).unwrap();
        let diff = c.reconstruct().max_abs_diff(&a);
        let scale = a.frobenius_norm().max(1.0);
        prop_assert!(diff <= 1e-10 * scale, "diff={diff}, scale={scale}");
    }

    #[test]
    fn cholesky_solve_residual_small(b in vec_strategy(16), rhs in vec_strategy(4)) {
        let a = spd_from(b, 4);
        let c = Cholesky::decompose(&a).unwrap();
        let x = c.solve(&rhs).unwrap();
        let ax = a.matvec(&x).unwrap();
        let resid = vector::norm2(&vector::sub(&ax, &rhs));
        // Residual relative to conditioning: generous but catches real bugs.
        let cond = c.condition_estimate();
        prop_assert!(resid <= 1e-6 * cond.max(1.0) * (1.0 + vector::norm2(&rhs)));
    }

    #[test]
    fn log_det_positive_for_diagonally_dominant(d in prop::collection::vec(1.5..50.0f64, 5)) {
        let n = d.len();
        let mut a = Matrix::zeros(n, n);
        for i in 0..n { a[(i, i)] = d[i]; }
        let c = Cholesky::decompose(&a).unwrap();
        let expect: f64 = d.iter().map(|v| v.ln()).sum();
        prop_assert!((c.log_det() - expect).abs() < 1e-9);
    }

    #[test]
    fn triangular_solves_invert_each_other(b in vec_strategy(16), rhs in vec_strategy(4)) {
        let a = spd_from(b, 4);
        let c = Cholesky::decompose(&a).unwrap();
        let l = c.factor();
        let y = triangular::solve_lower(l, &rhs).unwrap();
        let ly = l.matvec(&y).unwrap();
        let resid = vector::norm2(&vector::sub(&ly, &rhs));
        prop_assert!(resid <= 1e-7 * (1.0 + vector::norm2(&rhs)));
    }

    #[test]
    fn matmul_associative_small(a in vec_strategy(9), b in vec_strategy(9), c in vec_strategy(9)) {
        let ma = Matrix::from_vec(3, 3, a).unwrap();
        let mb = Matrix::from_vec(3, 3, b).unwrap();
        let mc = Matrix::from_vec(3, 3, c).unwrap();
        let left = ma.matmul(&mb).unwrap().matmul(&mc).unwrap();
        let right = ma.matmul(&mb.matmul(&mc).unwrap()).unwrap();
        let scale = left.frobenius_norm().max(1.0);
        prop_assert!(left.max_abs_diff(&right) <= 1e-7 * scale);
    }

    #[test]
    fn transpose_involution(v in vec_strategy(12)) {
        let m = Matrix::from_vec(3, 4, v).unwrap();
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn standardizer_round_trips(x in prop::collection::vec(-1e4..1e4f64, 2..40)) {
        let s = stats::Standardizer::fit(&x);
        for &v in &x {
            let back = s.inverse(s.apply(v));
            prop_assert!((back - v).abs() <= 1e-8 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn quantile_bounded_by_min_max(x in prop::collection::vec(-1e3..1e3f64, 1..50), q in 0.0..1.0f64) {
        let v = stats::quantile(&x, q).unwrap();
        prop_assert!(v >= stats::min(&x).unwrap() - 1e-12);
        prop_assert!(v <= stats::max(&x).unwrap() + 1e-12);
    }

    #[test]
    fn rmse_zero_iff_equal(x in prop::collection::vec(-50.0..50.0f64, 1..20)) {
        prop_assert_eq!(stats::rmse(&x, &x), 0.0);
    }

    #[test]
    fn blocked_cholesky_matches_unblocked(n in 40usize..150, seed in 1u64..1_000_000) {
        // Sizes straddle both panel boundaries (64, 128): 1, 2, or 3 panels.
        let a = pseudo_spd(n, seed);
        let cb = Cholesky::decompose_blocked(&a).unwrap();
        let cu = Cholesky::decompose_unblocked(&a).unwrap();
        let scale = cu
            .factor()
            .as_slice()
            .iter()
            .fold(1.0f64, |m, v| m.max(v.abs()));
        let diff = cb.factor().max_abs_diff(cu.factor());
        prop_assert!(diff <= 1e-12 * scale, "n={n} diff={diff} scale={scale}");
    }

    #[test]
    fn blocked_cholesky_matches_unblocked_on_jittered_rank_deficient(
        n in 80usize..140,
        seed in 1u64..1_000_000,
    ) {
        // Rank-deficient Gram matrix rescued by an explicit diagonal jitter:
        // both paths must factor it and agree to rounding amplified by the
        // (deliberately poor) conditioning.
        let b = pseudo_mat(n, n / 2, seed);
        let mut a = b.matmul(&b.transpose()).unwrap();
        let mean_diag = a.diagonal().iter().sum::<f64>() / n as f64;
        a.add_diagonal(1e-6 * mean_diag);
        let cb = Cholesky::decompose_blocked(&a).unwrap();
        let cu = Cholesky::decompose_unblocked(&a).unwrap();
        let scale = cu
            .factor()
            .as_slice()
            .iter()
            .fold(1.0f64, |m, v| m.max(v.abs()));
        let diff = cb.factor().max_abs_diff(cu.factor());
        prop_assert!(diff <= 1e-8 * scale, "n={n} diff={diff} scale={scale}");
        // Both reconstruct A to working accuracy.
        let fro = a.frobenius_norm().max(1.0);
        prop_assert!(cb.reconstruct().max_abs_diff(&a) <= 1e-9 * fro);
        prop_assert!(cu.reconstruct().max_abs_diff(&a) <= 1e-9 * fro);
    }

    #[test]
    fn jitter_ladder_rescues_rank_deficient_on_blocked_path(
        n in 128usize..150,
        seed in 1u64..1_000_000,
    ) {
        // n >= 128 exercises the blocked factorization inside the retry
        // ladder, including the dirty-column restore between rungs.
        let b = pseudo_mat(n, n / 3, seed);
        let a = b.matmul(&b.transpose()).unwrap();
        prop_assert!(Cholesky::decompose(&a).is_err());
        let c = Cholesky::decompose_jittered(&a, 1e-10, 12).unwrap();
        prop_assert!(c.jitter() > 0.0);
        let fro = a.frobenius_norm().max(1.0);
        let diff = c.reconstruct().max_abs_diff(&a);
        prop_assert!(diff <= 1e-3 * fro, "n={n} diff={diff} fro={fro}");
    }

    #[test]
    fn linspace_is_monotone(lo in -100.0..100.0f64, span in 0.1..100.0f64, n in 2..50usize) {
        let g = vector::linspace(lo, lo + span, n);
        prop_assert_eq!(g.len(), n);
        for w in g.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        prop_assert!((g[0] - lo).abs() < 1e-9);
        prop_assert!((g[n - 1] - (lo + span)).abs() < 1e-9);
    }
}

/// Exact panel-boundary orders (1 panel, boundary +/- 1, partial last
/// panel): the blocked and unblocked factors must agree to 1e-12.
#[test]
fn blocked_cholesky_boundary_sizes() {
    for &n in &[1usize, 2, 63, 64, 65, 96, 127, 128, 129, 160] {
        let a = pseudo_spd(n, 0x5eed + n as u64);
        let cb = Cholesky::decompose_blocked(&a).unwrap();
        let cu = Cholesky::decompose_unblocked(&a).unwrap();
        let diff = cb.factor().max_abs_diff(cu.factor());
        assert!(diff <= 1e-12, "n={n}: blocked vs unblocked diff {diff}");
        // The auto path must agree with whichever variant it dispatches to.
        let ca = Cholesky::decompose(&a).unwrap();
        let expect = if n >= 128 { &cb } else { &cu };
        assert_eq!(ca.factor().as_slice(), expect.factor().as_slice(), "n={n}");
    }
}
