//! Online Active Learning: select -> run -> update, with a live oracle.
//!
//! "The target use case for practical applications is the 'online'
//! operation, where every iteration of AL includes selecting an experiment,
//! running it, and using the experiment outcome to update the underlying
//! GPR model" (Section V-A). Unlike the offline replay, the candidate pool
//! here is a fixed set of *settings* that can be measured repeatedly —
//! noisy experiments justify re-running a configuration whose predictive
//! variance stays high (Section III).

use alperf_al::strategy::{SelectionContext, Strategy};
use alperf_gp::model::{GpError, Prediction};
use alperf_gp::optimize::{fit_surrogate, GprConfig};
use alperf_linalg::matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Something that can run one experiment at a setting and report the
/// measured response plus what it cost.
pub trait ExperimentOracle {
    /// Run the experiment at `x`; returns `(response, cost)`. The response
    /// is on whatever scale the GPR models (the caller handles log
    /// transforms); the cost is in the campaign's budget unit.
    fn measure(&mut self, x: &[f64]) -> (f64, f64);
}

/// Blanket impl so closures can be oracles.
impl<F: FnMut(&[f64]) -> (f64, f64)> ExperimentOracle for F {
    fn measure(&mut self, x: &[f64]) -> (f64, f64) {
        self(x)
    }
}

/// One completed online iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineRecord {
    /// Iteration number.
    pub iter: usize,
    /// Candidate index selected.
    pub candidate: usize,
    /// Setting measured.
    pub x: Vec<f64>,
    /// Measured response.
    pub y: f64,
    /// Predictive SD at the candidate before measuring.
    pub sigma_before: f64,
    /// Mean predictive SD over all candidates (AMSD).
    pub amsd: f64,
    /// Cumulative cost so far.
    pub cumulative_cost: f64,
}

/// Online AL driver.
pub struct OnlineAl {
    /// Candidate settings (rows). All remain selectable forever.
    pub candidates: Matrix,
    /// GPR configuration used at every refit.
    pub gpr: GprConfig,
    /// RNG seed for strategy randomness.
    pub seed: u64,
}

impl OnlineAl {
    /// New driver over a candidate matrix.
    pub fn new(candidates: Matrix, gpr: GprConfig) -> Self {
        OnlineAl {
            candidates,
            gpr,
            seed: 0,
        }
    }

    /// Run `iters` iterations: the first measurement is taken at candidate
    /// `seed_candidate` (the paper's "run it once first to verify
    /// correctness" scenario), then the strategy drives.
    ///
    /// # Errors
    /// Propagates GPR fitting failures.
    pub fn run(
        &self,
        oracle: &mut dyn ExperimentOracle,
        strategy: &mut dyn Strategy,
        seed_candidate: usize,
        iters: usize,
    ) -> Result<Vec<OnlineRecord>, GpError> {
        assert!(
            seed_candidate < self.candidates.nrows(),
            "seed candidate out of range"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut x_train = Matrix::zeros(0, 0);
        let mut y_train: Vec<f64> = Vec::new();
        let mut records = Vec::new();
        let mut cumulative_cost = 0.0;
        // Seed measurement.
        let x0 = self.candidates.row(seed_candidate).to_vec();
        let (y0, c0) = oracle.measure(&x0);
        x_train = x_train.with_row(&x0).expect("first row");
        y_train.push(y0);
        cumulative_cost += c0;
        records.push(OnlineRecord {
            iter: 0,
            candidate: seed_candidate,
            x: x0,
            y: y0,
            sigma_before: f64::NAN, // no model yet
            amsd: f64::NAN,
            cumulative_cost,
        });
        // AL iterations.
        let all_rows: Vec<usize> = (0..self.candidates.nrows()).collect();
        for iter in 1..iters {
            let (model, _) = fit_surrogate(&x_train, &y_train, &self.gpr)?;
            let predictions: Vec<Prediction> = all_rows
                .iter()
                .map(|&i| model.predict_one(self.candidates.row(i)))
                .collect::<Result<_, _>>()?;
            let amsd =
                predictions.iter().map(|p| p.std).sum::<f64>() / predictions.len().max(1) as f64;
            let ctx = SelectionContext {
                model: &model,
                x_all: &self.candidates,
                y_all: &y_train, // note: only train responses exist online
                train: &all_rows[..0],
                pool: &all_rows,
                predictions: &predictions,
            };
            let Some(pos) = strategy.select(&ctx, &mut rng) else {
                break;
            };
            let x = self.candidates.row(pos).to_vec();
            let (y, c) = oracle.measure(&x);
            cumulative_cost += c;
            records.push(OnlineRecord {
                iter,
                candidate: pos,
                x: x.clone(),
                y,
                sigma_before: predictions[pos].std,
                amsd,
                cumulative_cost,
            });
            x_train = x_train.with_row(&x).expect("consistent dims");
            y_train.push(y);
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_al::strategy::VarianceReduction;
    use alperf_gp::kernel::SquaredExponential;
    use alperf_gp::noise::NoiseFloor;

    fn grid(n: usize) -> Matrix {
        Matrix::from_vec(
            n,
            1,
            (0..n).map(|i| i as f64 / (n - 1) as f64 * 6.0).collect(),
        )
        .unwrap()
    }

    fn gpr() -> GprConfig {
        GprConfig::new(Box::new(SquaredExponential::unit()))
            .with_noise_floor(NoiseFloor::Fixed(0.05))
            .with_restarts(2)
    }

    #[test]
    fn online_loop_measures_and_learns() {
        let driver = OnlineAl::new(grid(13), gpr());
        let mut calls = 0usize;
        let mut oracle = |x: &[f64]| {
            calls += 1;
            ((x[0]).cos() * 2.0, 1.0)
        };
        let recs = driver
            .run(&mut oracle, &mut VarianceReduction, 6, 12)
            .unwrap();
        assert_eq!(recs.len(), 12);
        assert_eq!(calls, 12);
        assert_eq!(recs[0].candidate, 6);
        // AMSD decreases over the run (compare early vs late, skipping the
        // model-free record 0 and small-sample wobble).
        let early = recs[2].amsd;
        let late = recs.last().unwrap().amsd;
        assert!(late < early, "amsd {early} -> {late}");
    }

    #[test]
    fn candidates_can_repeat() {
        // A pure-noise oracle keeps variance high everywhere; with a small
        // grid the strategy must eventually revisit settings.
        let driver = OnlineAl::new(grid(3), gpr());
        let mut state = 0u64;
        let mut oracle = move |_x: &[f64]| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (((state >> 33) as f64 / 2f64.powi(31)) - 1.0, 1.0)
        };
        let recs = driver
            .run(&mut oracle, &mut VarianceReduction, 0, 10)
            .unwrap();
        let distinct: std::collections::BTreeSet<usize> =
            recs.iter().map(|r| r.candidate).collect();
        assert!(distinct.len() <= 3);
        assert!(recs.len() == 10, "repeats must be allowed");
    }

    #[test]
    fn cumulative_cost_accumulates_oracle_costs() {
        let driver = OnlineAl::new(grid(8), gpr());
        let mut oracle = |x: &[f64]| (x[0], 2.5);
        let recs = driver
            .run(&mut oracle, &mut VarianceReduction, 0, 5)
            .unwrap();
        assert!((recs.last().unwrap().cumulative_cost - 12.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_seed_candidate_panics() {
        let driver = OnlineAl::new(grid(4), gpr());
        let mut oracle = |_: &[f64]| (0.0, 1.0);
        let _ = driver.run(&mut oracle, &mut VarianceReduction, 99, 3);
    }
}
