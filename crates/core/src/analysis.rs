//! Offline performance analysis: the paper's prototype workflow over a
//! measurement database.
//!
//! [`PerformanceAnalysis`] wraps a [`DataSet`] and a declarative
//! [`AnalysisConfig`] (which variables, which response, what to
//! log-transform, which noise floor) and exposes:
//!
//! * [`PerformanceAnalysis::prepare`] — build the numeric problem
//!   (design matrix, transformed response, per-row cost = runtime x NP);
//! * [`PerformanceAnalysis::run`] — one AL realization over one partition;
//! * [`PerformanceAnalysis::run_batch`] — many partitions in parallel
//!   (rayon), the way the paper generates Figs. 7 and 8.

use alperf_al::runner::{run_al, AlConfig, AlError, AlRun};
use alperf_al::strategy::Strategy;
use alperf_data::dataset::{DataSet, DataSetError};
use alperf_data::partition::Partition;
use alperf_data::transform::Transform;
use alperf_gp::kernel::ArdSquaredExponential;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::GprConfig;
use alperf_linalg::matrix::Matrix;
use rayon::prelude::*;

/// Declarative description of one analysis problem.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Controlled variables forming the design matrix, in order.
    pub variables: Vec<String>,
    /// Variables to log10-transform before modeling (paper: Global
    /// Problem Size).
    pub log_variables: Vec<String>,
    /// Response to model (paper: Runtime or Energy).
    pub response: String,
    /// Log10-transform the response (paper: always, Section V-A).
    pub log_response: bool,
    /// Column holding the rank count, used for the cost unit
    /// runtime x cores; `None` makes cost = runtime alone.
    pub np_column: Option<String>,
    /// Column holding the per-row runtime for cost computation (may equal
    /// `response`). Values are used on the raw (non-log) scale.
    pub runtime_column: String,
    /// Noise floor for GPR hyperparameter fitting (Fig. 7's knob).
    pub noise_floor: NoiseFloor,
    /// Optimizer restarts per fit.
    pub restarts: usize,
    /// AL iterations per run.
    pub max_iters: usize,
    /// Re-optimize GPR hyperparameters every this many iterations (1 =
    /// every iteration, the paper's behaviour; the model is still
    /// re-conditioned on new data every iteration either way).
    pub hyper_refit_every: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl AnalysisConfig {
    /// Paper-style defaults for modeling `Runtime` over the given variables.
    pub fn runtime_model(variables: &[&str]) -> Self {
        AnalysisConfig {
            variables: variables.iter().map(|s| s.to_string()).collect(),
            log_variables: vec![],
            response: "Runtime".into(),
            log_response: true,
            np_column: None,
            runtime_column: "Runtime".into(),
            noise_floor: NoiseFloor::recommended(),
            restarts: 3,
            max_iters: 100,
            hyper_refit_every: 1,
            seed: 0,
        }
    }
}

/// The numeric problem extracted from the dataset.
#[derive(Debug, Clone)]
pub struct PreparedProblem {
    /// Design matrix (rows = jobs, columns = `config.variables`, transforms
    /// applied).
    pub x: Matrix,
    /// Response vector (transform applied).
    pub y: Vec<f64>,
    /// Per-row experiment cost (raw runtime x cores).
    pub cost: Vec<f64>,
}

/// Offline analysis session over one dataset.
pub struct PerformanceAnalysis {
    data: DataSet,
    config: AnalysisConfig,
}

impl PerformanceAnalysis {
    /// New session. The dataset is typically a cross-section (operators
    /// fixed) of a campaign's Performance or Power dataset.
    pub fn new(data: DataSet, config: AnalysisConfig) -> Self {
        PerformanceAnalysis { data, config }
    }

    /// Borrow the dataset.
    pub fn data(&self) -> &DataSet {
        &self.data
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Extract the numeric problem.
    ///
    /// # Errors
    /// Unknown columns, non-positive values under a log transform.
    pub fn prepare(&self) -> Result<PreparedProblem, DataSetError> {
        let vars: Vec<&str> = self.config.variables.iter().map(|s| s.as_str()).collect();
        let mut x = self.data.design_matrix(&vars)?;
        // Apply variable log transforms by column.
        for (j, name) in self.config.variables.iter().enumerate() {
            if self.config.log_variables.contains(name) {
                for i in 0..x.nrows() {
                    let v = x[(i, j)];
                    if !Transform::Log10.accepts(v) {
                        return Err(DataSetError::Invalid(format!(
                            "variable {name} has non-positive value {v}"
                        )));
                    }
                    x[(i, j)] = v.log10();
                }
            }
        }
        let raw_y = self.data.response(&self.config.response)?;
        let y: Vec<f64> = if self.config.log_response {
            if let Some(bad) = raw_y.iter().find(|v| !Transform::Log10.accepts(**v)) {
                return Err(DataSetError::Invalid(format!(
                    "response {} has non-positive value {bad}",
                    self.config.response
                )));
            }
            raw_y.iter().map(|v| v.log10()).collect()
        } else {
            raw_y.to_vec()
        };
        // Cost: raw runtime x cores.
        let runtime = self
            .data
            .response(&self.config.runtime_column)
            .or_else(|_| {
                // Runtime may be a variable in exotic setups.
                self.data
                    .variable(&self.config.runtime_column)
                    .map(|v| v.values.as_slice())
            })?;
        let cost: Vec<f64> = match &self.config.np_column {
            Some(npc) => {
                let np = &self.data.variable(npc)?.values;
                runtime.iter().zip(np).map(|(r, n)| r * n).collect()
            }
            None => runtime.to_vec(),
        };
        Ok(PreparedProblem { x, y, cost })
    }

    /// GPR configuration for this problem (ARD squared exponential over the
    /// declared variables, the configured noise floor). Responses are fit
    /// on the raw (log-transformed) scale, matching the paper's prototype
    /// (`normalize_y=False`): standardizing the 1-point Initial set would
    /// re-center it to zero and collapse the fitted amplitude.
    pub fn gpr_config(&self) -> GprConfig {
        let dim = self.config.variables.len();
        GprConfig::new(Box::new(ArdSquaredExponential::unit(dim)))
            .with_noise_floor(self.config.noise_floor)
            .with_kernel_bounds(paper_kernel_bounds(dim))
            .with_restarts(self.config.restarts)
            .with_seed(self.config.seed)
            .with_standardize(false)
    }

    /// One AL realization over the given partition.
    ///
    /// # Errors
    /// Propagates preparation and AL-loop failures.
    pub fn run(
        &self,
        partition: &Partition,
        strategy: &mut dyn Strategy,
    ) -> Result<AlRun, AnalysisError> {
        let prob = self.prepare()?;
        let al = AlConfig {
            max_iters: self.config.max_iters,
            refit_every: self.config.hyper_refit_every.max(1),
            seed: self.config.seed,
            ..AlConfig::new(self.gpr_config())
        };
        Ok(run_al(
            &prob.x, &prob.y, &prob.cost, partition, strategy, &al,
        )?)
    }

    /// Batch evaluation: `n_partitions` random paper-style partitions
    /// (single initial experiment, 8:2 Active:Test), run in parallel.
    /// `make_strategy` builds a fresh strategy per run (strategies are
    /// stateful).
    ///
    /// # Errors
    /// Fails on the first erroring run.
    pub fn run_batch(
        &self,
        n_partitions: usize,
        make_strategy: impl Fn() -> Box<dyn Strategy> + Sync,
    ) -> Result<Vec<AlRun>, AnalysisError> {
        let prob = self.prepare()?;
        let n = prob.x.nrows();
        (0..n_partitions)
            .into_par_iter()
            .map(|i| {
                let partition = Partition::paper_default(n, self.config.seed ^ (i as u64) << 17);
                let al = AlConfig {
                    max_iters: self.config.max_iters,
                    refit_every: self.config.hyper_refit_every.max(1),
                    seed: self.config.seed.wrapping_add(i as u64),
                    ..AlConfig::new(self.gpr_config())
                };
                let mut strategy = make_strategy();
                run_al(
                    &prob.x,
                    &prob.y,
                    &prob.cost,
                    &partition,
                    strategy.as_mut(),
                    &al,
                )
                .map_err(AnalysisError::from)
            })
            .collect()
    }
}

/// Log-space kernel bounds for an ARD squared exponential over `dim`
/// variables, matching the paper's modeling assumptions: length scales are
/// free over `[1e-2, 1e3]`, but the amplitude is confined to `[0.5, 50]` —
/// the spread of log10-responses across the domain is O(1), and letting the
/// amplitude collapse toward zero would assert a constant function, the
/// degenerate all-noise fit the paper's Fig. 7 analysis guards against
/// (its LML landscapes treat `(l, sigma_n)` as the parameters being fit,
/// with the amplitude on a sane prior scale).
pub fn paper_kernel_bounds(dim: usize) -> Vec<(f64, f64)> {
    let mut bounds = vec![(1e-2f64.ln(), 1e3f64.ln()); dim];
    bounds.push((0.5f64.ln(), 50f64.ln()));
    bounds
}

/// Errors from the analysis layer.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// Dataset problem (unknown column, bad transform input).
    Data(DataSetError),
    /// AL loop failure.
    Al(AlError),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Data(e) => write!(f, "data error: {e}"),
            AnalysisError::Al(e) => write!(f, "AL error: {e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<DataSetError> for AnalysisError {
    fn from(e: DataSetError) -> Self {
        AnalysisError::Data(e)
    }
}

impl From<AlError> for AnalysisError {
    fn from(e: AlError) -> Self {
        AnalysisError::Al(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_al::strategy::{CostEfficiency, VarianceReduction};

    /// A small synthetic "performance dataset": runtime grows linearly with
    /// size in log-log space, shrinks with NP.
    fn dataset() -> DataSet {
        let mut d = DataSet::new();
        let sizes: Vec<f64> = (0..8).map(|i| 1e3 * 10f64.powf(i as f64 * 0.5)).collect();
        let nps = [1.0, 4.0, 16.0];
        let mut size_col = Vec::new();
        let mut np_col = Vec::new();
        let mut rt_col = Vec::new();
        for (k, &s) in sizes.iter().enumerate() {
            for (j, &np) in nps.iter().enumerate() {
                for rep in 0..2 {
                    size_col.push(s);
                    np_col.push(np);
                    // Deterministic pseudo-noise from indices.
                    let noise = 1.0 + 0.02 * ((k * 7 + j * 3 + rep) % 5) as f64;
                    rt_col.push(s / (2e4 * np) * noise + 0.004);
                }
            }
        }
        d.add_numeric_variable("Global Problem Size", size_col)
            .unwrap();
        d.add_numeric_variable("NP", np_col).unwrap();
        d.add_response("Runtime", rt_col).unwrap();
        d
    }

    fn config() -> AnalysisConfig {
        AnalysisConfig {
            variables: vec!["Global Problem Size".into()],
            log_variables: vec!["Global Problem Size".into()],
            np_column: Some("NP".into()),
            max_iters: 15,
            restarts: 2,
            ..AnalysisConfig::runtime_model(&["Global Problem Size"])
        }
    }

    #[test]
    fn prepare_applies_transforms_and_cost() {
        let pa = PerformanceAnalysis::new(dataset(), config());
        let prob = pa.prepare().unwrap();
        assert_eq!(prob.x.nrows(), 48);
        assert_eq!(prob.x.ncols(), 1);
        // Log size: first row = log10(1e3) = 3.
        assert!((prob.x[(0, 0)] - 3.0).abs() < 1e-12);
        // Log runtime.
        let raw = pa.data().response("Runtime").unwrap()[0];
        assert!((prob.y[0] - raw.log10()).abs() < 1e-12);
        // Cost = raw runtime x NP.
        let np = pa.data().variable("NP").unwrap().values[0];
        assert!((prob.cost[0] - raw * np).abs() < 1e-12);
    }

    #[test]
    fn unknown_columns_rejected() {
        let mut cfg = config();
        cfg.response = "nope".into();
        let pa = PerformanceAnalysis::new(dataset(), cfg);
        assert!(pa.prepare().is_err());
        let mut cfg2 = config();
        cfg2.variables = vec!["nope".into()];
        assert!(PerformanceAnalysis::new(dataset(), cfg2).prepare().is_err());
    }

    #[test]
    fn log_of_nonpositive_response_rejected() {
        let mut d = DataSet::new();
        d.add_numeric_variable("Global Problem Size", vec![1.0, 2.0])
            .unwrap();
        d.add_numeric_variable("NP", vec![1.0, 1.0]).unwrap();
        d.add_response("Runtime", vec![1.0, -1.0]).unwrap();
        let pa = PerformanceAnalysis::new(d, config());
        assert!(matches!(pa.prepare(), Err(DataSetError::Invalid(_))));
    }

    #[test]
    fn single_run_learns() {
        let pa = PerformanceAnalysis::new(dataset(), config());
        let part = Partition::paper_default(48, 3);
        let run = pa.run(&part, &mut VarianceReduction).unwrap();
        assert_eq!(run.history.len(), 15);
        let first = run.history[0].rmse;
        let last = run.history.last().unwrap().rmse;
        assert!(last < first, "rmse {first} -> {last}");
    }

    #[test]
    fn batch_runs_are_distinct_realizations() {
        let pa = PerformanceAnalysis::new(dataset(), config());
        let runs = pa.run_batch(4, || Box::new(CostEfficiency)).unwrap();
        assert_eq!(runs.len(), 4);
        // Different partitions: first selected rows should differ somewhere.
        let firsts: std::collections::BTreeSet<usize> =
            runs.iter().map(|r| r.history[0].chosen_row).collect();
        assert!(firsts.len() > 1, "all batch runs identical");
        // All learned.
        for r in &runs {
            assert!(r.history.last().unwrap().rmse.is_finite());
        }
    }

    #[test]
    fn cost_without_np_column_is_runtime() {
        let mut cfg = config();
        cfg.np_column = None;
        let pa = PerformanceAnalysis::new(dataset(), cfg);
        let prob = pa.prepare().unwrap();
        let raw = pa.data().response("Runtime").unwrap();
        for (c, r) in prob.cost.iter().zip(raw) {
            assert_eq!(c, r);
        }
    }
}
