//! Parallel experiment campaigns: batch Active Learning meets the cluster
//! scheduler.
//!
//! Paper §VI: "some experiments could reasonably be run in parallel which
//! adds additional scheduling concerns and may indicate a less greedy
//! selection strategy." This module closes that loop: each AL round selects
//! a *batch* of q experiments (greedy fantasy-variance selection,
//! `alperf_al::batch`), submits them to the simulated SLURM scheduler
//! together, and advances the campaign clock by the batch's **makespan** —
//! so the tradeoff the paper anticipates becomes measurable: batches lose a
//! little statistical efficiency per experiment but win wall-clock time by
//! overlapping jobs on the cluster's nodes.

use alperf_al::batch::select_batch;
use alperf_al::runner::test_rmse;
use alperf_cluster::job::JobRequest;
use alperf_cluster::scheduler::schedule_batch;
use alperf_data::partition::Partition;
use alperf_gp::optimize::{fit_surrogate, GprConfig};
use alperf_hpgmg::model::PerfModel;
use alperf_linalg::matrix::Matrix;

use crate::analysis::AnalysisError;

/// One round of a parallel campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Round number (0-based).
    pub round: usize,
    /// Dataset rows executed this round.
    pub rows: Vec<usize>,
    /// Scheduler makespan of this round's batch, seconds.
    pub makespan: f64,
    /// Campaign wall-clock after this round, seconds.
    pub wall_clock: f64,
    /// Cumulative core-seconds consumed.
    pub core_seconds: f64,
    /// Test RMSE after retraining on everything measured so far.
    pub rmse: f64,
}

/// Configuration for a parallel campaign over an offline dataset.
pub struct ParallelCampaign<'a> {
    /// Design matrix over all rows.
    pub x_all: &'a Matrix,
    /// Response (log scale) over all rows.
    pub y_all: &'a [f64],
    /// Per-row job descriptions (for the scheduler) aligned with rows.
    pub requests: &'a [JobRequest],
    /// Per-row measured runtimes, seconds (the scheduler's job lengths).
    pub runtimes: &'a [f64],
    /// Machine/performance model (node counts for the scheduler).
    pub perf: &'a PerfModel,
    /// GPR configuration for the per-round fits.
    pub gpr: GprConfig,
    /// Batch size q (1 = sequential).
    pub q: usize,
}

impl ParallelCampaign<'_> {
    /// Run `rounds` rounds from the given partition; returns per-round
    /// records.
    ///
    /// # Errors
    /// Propagates GPR fitting errors; rejects inconsistent input lengths.
    pub fn run(
        &self,
        partition: &Partition,
        rounds: usize,
    ) -> Result<Vec<RoundRecord>, AnalysisError> {
        let n = self.x_all.nrows();
        if self.y_all.len() != n || self.requests.len() != n || self.runtimes.len() != n {
            return Err(AnalysisError::Data(
                alperf_data::dataset::DataSetError::LengthMismatch(format!(
                    "x has {n} rows; y/requests/runtimes have {}/{}/{}",
                    self.y_all.len(),
                    self.requests.len(),
                    self.runtimes.len()
                )),
            ));
        }
        let mut train = partition.initial.clone();
        let mut pool = partition.active.clone();
        let mut wall_clock = 0.0;
        let mut core_seconds: f64 = train
            .iter()
            .map(|&i| self.runtimes[i] * self.requests[i].np as f64)
            .sum();
        let mut records = Vec::new();
        for round in 0..rounds {
            if pool.is_empty() {
                break;
            }
            let xs = self.x_all.select_rows(&train);
            let ys: Vec<f64> = train.iter().map(|&i| self.y_all[i]).collect();
            let (model, _) = fit_surrogate(&xs, &ys, &self.gpr).map_err(AnalysisError::from_gp)?;
            let picks = select_batch(&model, self.x_all, &train, &ys, &pool, self.q)
                .map_err(AnalysisError::from_gp)?;
            if picks.is_empty() {
                break;
            }
            let rows: Vec<usize> = picks.iter().map(|&p| pool[p]).collect();
            // Schedule the batch on the cluster.
            let reqs: Vec<JobRequest> = rows.iter().map(|&r| self.requests[r]).collect();
            let rts: Vec<f64> = rows.iter().map(|&r| self.runtimes[r]).collect();
            let sched = schedule_batch(self.perf, &reqs, &rts);
            wall_clock += sched.makespan;
            core_seconds += rows
                .iter()
                .map(|&r| self.runtimes[r] * self.requests[r].np as f64)
                .sum::<f64>();
            // Consume the pool (descending positions keep indices valid).
            let mut positions = picks;
            positions.sort_unstable_by(|a, b| b.cmp(a));
            for p in positions {
                let row = pool.swap_remove(p);
                train.push(row);
            }
            // Retrain and evaluate.
            let xs = self.x_all.select_rows(&train);
            let ys: Vec<f64> = train.iter().map(|&i| self.y_all[i]).collect();
            let (model, _) = fit_surrogate(&xs, &ys, &self.gpr).map_err(AnalysisError::from_gp)?;
            let rmse = test_rmse(&model, self.x_all, self.y_all, &partition.test);
            records.push(RoundRecord {
                round,
                rows,
                makespan: sched.makespan,
                wall_clock,
                core_seconds,
                rmse,
            });
        }
        Ok(records)
    }
}

impl AnalysisError {
    /// Adapter: wrap a bare GPR error.
    fn from_gp(e: alperf_gp::model::GpError) -> Self {
        AnalysisError::Al(alperf_al::runner::AlError::Gp(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_gp::kernel::ArdSquaredExponential;
    use alperf_gp::noise::NoiseFloor;
    use alperf_hpgmg::operator::OperatorKind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    struct Fixture {
        x: Matrix,
        y: Vec<f64>,
        requests: Vec<JobRequest>,
        runtimes: Vec<f64>,
        perf: PerfModel,
    }

    fn fixture() -> Fixture {
        // Jobs over (log size, log np) with model-driven runtimes.
        let perf = PerfModel::calibrated();
        let mut rng = StdRng::seed_from_u64(5);
        let mut rows = Vec::new();
        let mut requests = Vec::new();
        let mut runtimes = Vec::new();
        let mut y = Vec::new();
        for i in 0..48 {
            let size = 10f64.powf(4.0 + (i % 8) as f64 * 0.5);
            let np = [4usize, 16, 64][(i / 8) % 3];
            let req = JobRequest {
                op: OperatorKind::Poisson1,
                size,
                np,
                freq: 1.8,
                repeat: i % 2,
            };
            let t = perf.runtime_mean(req.op, size, np, 1.8) * rng.gen_range(0.97..1.03);
            rows.push(vec![size.log10(), (np as f64).log2()]);
            requests.push(req);
            runtimes.push(t);
            y.push(t.log10());
        }
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        Fixture {
            x: Matrix::from_vec(48, 2, flat).unwrap(),
            y,
            requests,
            runtimes,
            perf,
        }
    }

    fn gpr() -> GprConfig {
        GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
            .with_noise_floor(NoiseFloor::recommended())
            .with_restarts(2)
            .with_standardize(false)
    }

    fn campaign(fx: &Fixture, q: usize) -> ParallelCampaign<'_> {
        ParallelCampaign {
            x_all: &fx.x,
            y_all: &fx.y,
            requests: &fx.requests,
            runtimes: &fx.runtimes,
            perf: &fx.perf,
            gpr: gpr(),
            q,
        }
    }

    #[test]
    fn rounds_execute_q_jobs_each() {
        let fx = fixture();
        let part = Partition::random(48, 2, 0.8, 1);
        let recs = campaign(&fx, 4).run(&part, 5).unwrap();
        assert_eq!(recs.len(), 5);
        for r in &recs {
            assert_eq!(r.rows.len(), 4);
            assert!(r.makespan > 0.0);
            assert!(r.rmse.is_finite());
        }
        // Wall clock accumulates monotonically.
        assert!(recs.windows(2).all(|w| w[1].wall_clock > w[0].wall_clock));
    }

    #[test]
    fn batching_wins_wall_clock_at_equal_experiment_count() {
        let fx = fixture();
        let part = Partition::random(48, 2, 0.8, 2);
        // 16 experiments: 4 rounds of 4 vs 16 rounds of 1.
        let batch = campaign(&fx, 4).run(&part, 4).unwrap();
        let seq = campaign(&fx, 1).run(&part, 16).unwrap();
        let batch_wall = batch.last().unwrap().wall_clock;
        let seq_wall = seq.last().unwrap().wall_clock;
        assert!(
            batch_wall < seq_wall,
            "batched {batch_wall:.1}s should beat sequential {seq_wall:.1}s"
        );
        // Statistical quality comparable (within 3x on this easy surface).
        let batch_rmse = batch.last().unwrap().rmse;
        let seq_rmse = seq.last().unwrap().rmse;
        assert!(
            batch_rmse < seq_rmse * 3.0 + 0.05,
            "batch rmse {batch_rmse} vs sequential {seq_rmse}"
        );
    }

    #[test]
    fn makespan_bounded_by_serial_sum_of_round() {
        let fx = fixture();
        let part = Partition::random(48, 2, 0.8, 3);
        let recs = campaign(&fx, 4).run(&part, 3).unwrap();
        for r in &recs {
            let serial: f64 = r.rows.iter().map(|&row| fx.runtimes[row]).sum();
            assert!(r.makespan <= serial + 1e-9);
        }
    }

    #[test]
    fn inconsistent_lengths_rejected() {
        let fx = fixture();
        let part = Partition::random(48, 2, 0.8, 0);
        let bad = ParallelCampaign {
            runtimes: &fx.runtimes[..10],
            ..campaign(&fx, 2)
        };
        assert!(bad.run(&part, 2).is_err());
    }

    #[test]
    fn pool_exhaustion_stops_early() {
        let fx = fixture();
        let part = Partition::random(48, 2, 0.1, 0); // tiny pool (~5 rows)
        let recs = campaign(&fx, 4).run(&part, 10).unwrap();
        let total: usize = recs.iter().map(|r| r.rows.len()).sum();
        assert!(total <= part.active.len());
    }
}
