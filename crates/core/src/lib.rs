#![warn(missing_docs)]
//! # alperf-core
//!
//! The paper's framework, assembled: "a new framework for performance
//! analysis based on Active Learning and Gaussian Process Regressions
//! [that] helps identify optimal sequences of experiments for reducing
//! uncertainty about various quantities of interest" (Section I).
//!
//! Two modes, mirroring Section V-A:
//!
//! * **Offline** ([`analysis`]): replay AL against a database of collected
//!   measurements — partition into Initial/Active/Test, iterate, compare
//!   strategies across many random partitions. This is how every figure in
//!   the paper is produced.
//! * **Online** ([`online`]): "the target use case ... where every
//!   iteration of AL includes selecting an experiment, running it, and
//!   using the experiment outcome to update the underlying GPR model."
//!   The oracle can be anything that measures — the `online_al` example
//!   plugs in the real multigrid solver from `alperf-hpgmg`.

pub mod analysis;
pub mod online;
pub mod parallel;

pub use analysis::{AnalysisConfig, PerformanceAnalysis, PreparedProblem};
pub use online::{ExperimentOracle, OnlineAl, OnlineRecord};
pub use parallel::{ParallelCampaign, RoundRecord};
