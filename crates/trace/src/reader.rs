//! Streaming `alperf-obs-v1` trace reading.
//!
//! Traces can be large (one line per span; a full `repro_fig7` run emits
//! hundreds of thousands), so the reader consumes the input line by line
//! through any [`BufRead`] instead of slurping the file, keeping only the
//! typed events. Error classification is part of the contract: CI gates
//! need to tell "the trace was never written" from "the trace is from a
//! newer schema" from "the trace is corrupt", so each failure mode is its
//! own [`TraceError`] variant with its own conventional exit code.

use alperf_obs::event::{Event, RecordEvent, SampleEvent, SpanEvent};
use alperf_obs::sink::SCHEMA;
use std::fmt;
use std::io::BufRead;
use std::path::Path;

/// A fully read trace: schema-checked meta plus all spans, records, and
/// profiler samples in file (= span close) order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Schema identifier from the meta line.
    pub schema: String,
    /// All span events, in emission (close) order.
    pub spans: Vec<SpanEvent>,
    /// All record events, in emission order.
    pub records: Vec<RecordEvent>,
    /// All profiler stack samples, in capture order.
    pub samples: Vec<SampleEvent>,
}

impl Trace {
    /// Record events named `name`, in emission order.
    pub fn records_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a RecordEvent> {
        self.records.iter().filter(move |r| r.name == name)
    }
}

/// Why a trace could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file does not exist or cannot be opened/read.
    Io(String),
    /// The file exists but contains no lines (not even a meta record).
    Empty,
    /// The first line is not a meta record.
    MissingMeta,
    /// The meta record declares a schema this reader does not understand.
    UnknownSchema(String),
    /// A line failed to parse as a v1 event.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        msg: String,
    },
}

impl TraceError {
    /// Conventional process exit code for this failure class, used by the
    /// `validate_trace` / `trace_report` CI gates: missing or unreadable
    /// input is 3, an empty trace is 4, a schema mismatch is 5, and
    /// malformed content is 1. (2 is reserved for usage errors.)
    pub fn exit_code(&self) -> u8 {
        match self {
            TraceError::Io(_) => 3,
            TraceError::Empty => 4,
            TraceError::MissingMeta | TraceError::UnknownSchema(_) => 5,
            TraceError::Malformed { .. } => 1,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "cannot read trace: {e}"),
            TraceError::Empty => write!(f, "empty trace file (no meta record)"),
            TraceError::MissingMeta => write!(f, "line 1: first line must be the meta record"),
            TraceError::UnknownSchema(s) => {
                write!(f, "unknown schema {s:?} (expected {SCHEMA:?})")
            }
            TraceError::Malformed { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Read a trace from any buffered reader. The first line must be a meta
/// record declaring schema [`SCHEMA`]; every further line must parse as a
/// v1 `span`/`record`/`meta` event (extra meta lines are tolerated and
/// ignored so concatenated traces from one process still read).
pub fn read_trace<R: BufRead>(reader: R) -> Result<Trace, TraceError> {
    let mut trace = Trace::default();
    let mut saw_meta = false;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| TraceError::Io(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::parse(&line).map_err(|e| {
            if saw_meta {
                TraceError::Malformed {
                    line: line_no,
                    msg: e.0,
                }
            } else {
                TraceError::MissingMeta
            }
        })?;
        match event {
            Event::Meta(meta) => {
                if meta.schema != SCHEMA {
                    return Err(TraceError::UnknownSchema(meta.schema));
                }
                if !saw_meta {
                    trace.schema = meta.schema;
                    saw_meta = true;
                }
            }
            Event::Span(span) if saw_meta => trace.spans.push(span),
            Event::Record(record) if saw_meta => trace.records.push(record),
            Event::Sample(sample) if saw_meta => trace.samples.push(sample),
            Event::Span(_) | Event::Record(_) | Event::Sample(_) => {
                return Err(TraceError::MissingMeta)
            }
        }
    }
    if !saw_meta {
        return Err(TraceError::Empty);
    }
    Ok(trace)
}

/// Read a trace file from disk (see [`read_trace`] for the format rules).
pub fn read_path(path: &Path) -> Result<Trace, TraceError> {
    let file = std::fs::File::open(path)
        .map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
    read_trace(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: &str = "{\"v\":1,\"t\":\"meta\",\"schema\":\"alperf-obs-v1\",\"unit\":\"ns\"}";

    fn read_str(s: &str) -> Result<Trace, TraceError> {
        read_trace(s.as_bytes())
    }

    #[test]
    fn reads_spans_and_records() {
        let text = format!(
            "{META}\n\
             {{\"v\":1,\"t\":\"span\",\"name\":\"a\",\"tid\":1,\"id\":2,\"start_ns\":5,\"dur_ns\":7}}\n\
             {{\"v\":1,\"t\":\"record\",\"name\":\"r\",\"tid\":1,\"fields\":{{\"k\":3}}}}\n"
        );
        let trace = read_str(&text).unwrap();
        assert_eq!(trace.schema, SCHEMA);
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "a");
        assert_eq!(trace.spans[0].end_ns(), 12);
        assert_eq!(trace.records.len(), 1);
        assert_eq!(trace.records_named("r").count(), 1);
        assert_eq!(trace.records[0].f64("k"), Some(3.0));
    }

    #[test]
    fn reads_profiler_samples() {
        let text = format!(
            "{META}\n\
             {{\"v\":1,\"t\":\"sample\",\"sv\":1,\"tid\":2,\"t_ns\":10,\"stack\":[\"al.iteration\",\"gp.fit\"]}}\n\
             {{\"v\":1,\"t\":\"sample\",\"sv\":1,\"tid\":2,\"t_ns\":20,\"stack\":[\"al.iteration\"]}}\n"
        );
        let trace = read_str(&text).unwrap();
        assert_eq!(trace.samples.len(), 2);
        assert_eq!(trace.samples[0].folded_key(), "al.iteration;gp.fit");
        assert_eq!(trace.samples[1].t_ns, 20);
    }

    #[test]
    fn empty_input_is_its_own_error() {
        assert_eq!(read_str(""), Err(TraceError::Empty));
        assert_eq!(read_str("\n  \n"), Err(TraceError::Empty));
        assert_eq!(TraceError::Empty.exit_code(), 4);
    }

    #[test]
    fn unknown_schema_is_its_own_error() {
        let text = "{\"v\":1,\"t\":\"meta\",\"schema\":\"alperf-obs-v9\",\"unit\":\"ns\"}\n";
        match read_str(text) {
            Err(TraceError::UnknownSchema(s)) => {
                assert_eq!(s, "alperf-obs-v9");
                assert_eq!(TraceError::UnknownSchema(s).exit_code(), 5);
            }
            other => panic!("expected UnknownSchema, got {other:?}"),
        }
    }

    #[test]
    fn missing_meta_first_line_rejected() {
        let text =
            "{\"v\":1,\"t\":\"span\",\"name\":\"a\",\"tid\":1,\"start_ns\":0,\"dur_ns\":1}\n";
        assert_eq!(read_str(text), Err(TraceError::MissingMeta));
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let text = format!("{META}\nnot json\n");
        match read_str(&text) {
            Err(TraceError::Malformed { line: 2, .. }) => {}
            other => panic!("expected Malformed at line 2, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_io() {
        let err = read_path(Path::new("/nonexistent/alperf/trace.jsonl")).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
        assert_eq!(err.exit_code(), 3);
    }
}
