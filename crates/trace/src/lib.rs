#![warn(missing_docs)]
//! # alperf-trace
//!
//! The analysis counterpart to `alperf-obs`: where the obs crate *emits*
//! schema-versioned `alperf-obs-v1` JSONL traces, this crate *consumes*
//! them. The pipeline is
//!
//! ```text
//! JSONL lines ──reader──▶ events ──tree──▶ span forest ──▶ analyze / folded / diff
//! ```
//!
//! * [`reader`] — streaming line-at-a-time trace reading with typed errors
//!   that distinguish a missing file, an empty file, an unknown schema,
//!   and a malformed line (each maps to its own CI exit code).
//! * [`tree`] — span-forest reconstruction. Spans written by current
//!   `alperf-obs` carry process-unique ids + parent ids, so linking is
//!   exact (including spans that crossed a rayon thread boundary via
//!   `span_with_parent`); pre-id traces fall back to parent-name plus
//!   interval-containment matching. Connectivity is asserted: a span that
//!   names a parent which cannot be found is an error, not a silent root.
//! * [`analyze`] — per-name total/self-time aggregation and critical
//!   (longest root-to-leaf) path extraction, so an `al.iteration` span
//!   decomposes exactly into its fit/predict/select/cholesky children.
//! * [`folded`] — folded-stack (flamegraph) export, byte-stable and
//!   compatible with inferno / speedscope / `flamegraph.pl`.
//! * [`bootstrap`] — the seeded bootstrap comparison itself (relative
//!   mean change + percentile CI) with typed degenerate-input verdicts,
//!   shared by [`diff`] and the `alperf-grid` significance ranker.
//! * [`diff`] — cross-run per-span-name comparison with seeded bootstrap
//!   confidence intervals; flags statistically significant regressions.
//! * [`postmortem`] — `alperf-blackbox-v1` flight-recorder dump reader
//!   with a *lenient* tree builder (ring overwrite orphans spans, so
//!   orphans render as roots instead of erroring) for last-seconds
//!   crash forensics.
//!
//! No external dependencies: JSON comes from `alperf_obs::json`, the
//! bootstrap RNG is the workspace's deterministic `StdRng`.

pub mod analyze;
pub mod bootstrap;
pub mod diff;
pub mod folded;
pub mod postmortem;
pub mod reader;
pub mod tree;

pub use analyze::{
    aggregate, child_coverage, critical_path, critical_path_from, ChildCoverage, CriticalPath,
    PathStep, SpanStats,
};
pub use bootstrap::{bootstrap_delta_pct, DegenerateReason, Verdict};
pub use diff::{
    diff_traces, render_json as render_diff_json, render_table as render_diff_table,
    significant_regressions, DiffConfig, SpanDiff,
};
pub use folded::{folded_stacks, sampled_stacks};
pub use postmortem::{read_dump, Postmortem};
pub use reader::{read_path, read_trace, Trace, TraceError};
pub use tree::{SpanForest, SpanNode, TreeError};
