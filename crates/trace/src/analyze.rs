//! Critical-path analysis and per-span-name time aggregation.
//!
//! *Total* time of a name is the sum of all its spans' durations; *self*
//! time subtracts each span's direct children, so a table of self times
//! sums (per tree level) back to the wall time actually spent — this is
//! what decomposes an `al.iteration` span exactly into its
//! fit/predict/select (and, transitively, cholesky) constituents. The
//! *critical path* of a span is the greedy longest root-to-leaf descent
//! by child duration: the chain of stages a wall-clock optimization has
//! to shorten.

use crate::tree::SpanForest;

/// Aggregated timing for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of durations, ns.
    pub total_ns: u64,
    /// Sum of self times (duration minus direct children), ns.
    pub self_ns: u64,
    /// Smallest single duration, ns.
    pub min_ns: u64,
    /// Largest single duration, ns.
    pub max_ns: u64,
}

/// Per-name total/self aggregation over the whole forest, sorted by
/// descending self time (the profiler's "where does the time actually
/// go" order), name as tie-break.
pub fn aggregate(forest: &SpanForest) -> Vec<SpanStats> {
    let mut by_name: std::collections::BTreeMap<&str, SpanStats> = Default::default();
    for i in 0..forest.nodes.len() {
        let span = &forest.nodes[i].span;
        let entry = by_name
            .entry(span.name.as_str())
            .or_insert_with(|| SpanStats {
                name: span.name.clone(),
                count: 0,
                total_ns: 0,
                self_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            });
        entry.count += 1;
        entry.total_ns += span.dur_ns;
        entry.self_ns += forest.self_ns(i);
        entry.min_ns = entry.min_ns.min(span.dur_ns);
        entry.max_ns = entry.max_ns.max(span.dur_ns);
    }
    let mut stats: Vec<SpanStats> = by_name.into_values().collect();
    stats.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    stats
}

/// One step of a critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// Span name at this depth.
    pub name: String,
    /// The span's duration, ns.
    pub dur_ns: u64,
    /// The span's self time, ns.
    pub self_ns: u64,
}

/// The longest root-to-leaf chain under one span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Steps from the starting span down to a leaf.
    pub steps: Vec<PathStep>,
    /// Duration of the starting span, ns.
    pub total_ns: u64,
}

impl CriticalPath {
    /// Render as a `name dur_ms (self_ms)` indent chain.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (depth, step) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "{:indent$}{} {:.3} ms (self {:.3} ms)\n",
                "",
                step.name,
                step.dur_ns as f64 / 1e6,
                step.self_ns as f64 / 1e6,
                indent = depth * 2
            ));
        }
        out
    }
}

/// Critical path starting at node `idx`: descend into the heaviest child
/// until a leaf.
pub fn critical_path_from(forest: &SpanForest, idx: usize) -> CriticalPath {
    let total_ns = forest.nodes[idx].span.dur_ns;
    let mut steps = Vec::new();
    let mut i = idx;
    loop {
        let node = &forest.nodes[i];
        steps.push(PathStep {
            name: node.span.name.clone(),
            dur_ns: node.span.dur_ns,
            self_ns: forest.self_ns(i),
        });
        // Heaviest child; emission order breaks exact ties deterministically.
        match node
            .children
            .iter()
            .copied()
            .max_by_key(|&c| (forest.nodes[c].span.dur_ns, std::cmp::Reverse(c)))
        {
            Some(c) => i = c,
            None => break,
        }
    }
    CriticalPath { steps, total_ns }
}

/// Critical path under the single heaviest span named `name`, or `None`
/// when the trace has no such span.
pub fn critical_path(forest: &SpanForest, name: &str) -> Option<CriticalPath> {
    let idx = forest
        .named(name)
        .into_iter()
        .max_by_key(|&i| (forest.nodes[i].span.dur_ns, std::cmp::Reverse(i)))?;
    Some(critical_path_from(forest, idx))
}

/// How much of a name's total time its direct children account for —
/// the `al.iteration`-decomposes-into-its-stages check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChildCoverage {
    /// Number of spans with the name.
    pub count: u64,
    /// Sum of their durations, ns.
    pub total_ns: u64,
    /// Sum of their direct children's durations, ns.
    pub children_ns: u64,
}

impl ChildCoverage {
    /// Children's share of the total, in percent (100 = exact cover).
    pub fn pct(&self) -> f64 {
        if self.total_ns == 0 {
            100.0
        } else {
            self.children_ns as f64 / self.total_ns as f64 * 100.0
        }
    }
}

/// Compute [`ChildCoverage`] for all spans named `name`.
pub fn child_coverage(forest: &SpanForest, name: &str) -> Option<ChildCoverage> {
    let idxs = forest.named(name);
    if idxs.is_empty() {
        return None;
    }
    let mut cov = ChildCoverage {
        count: 0,
        total_ns: 0,
        children_ns: 0,
    };
    for i in idxs {
        cov.count += 1;
        cov.total_ns += forest.nodes[i].span.dur_ns;
        cov.children_ns += forest.children_dur_ns(i);
    }
    Some(cov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_obs::event::SpanEvent;

    fn span(name: &str, id: u64, pid: Option<u64>, start: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            name: name.into(),
            tid: 1,
            id: Some(id),
            parent: None,
            parent_id: pid,
            start_ns: start,
            dur_ns: dur,
        }
    }

    /// iteration(100) -> fit(70) -> cholesky(50); iteration -> predict(20)
    fn forest() -> SpanForest {
        SpanForest::build(&[
            span("cholesky", 3, Some(2), 5, 50),
            span("fit", 2, Some(1), 0, 70),
            span("predict", 4, Some(1), 70, 20),
            span("iteration", 1, None, 0, 100),
        ])
        .unwrap()
    }

    #[test]
    fn aggregate_computes_self_time() {
        let stats = aggregate(&forest());
        let get = |n: &str| stats.iter().find(|s| s.name == n).unwrap().clone();
        assert_eq!(get("iteration").total_ns, 100);
        assert_eq!(get("iteration").self_ns, 10); // 100 - 70 - 20
        assert_eq!(get("fit").self_ns, 20); // 70 - 50
        assert_eq!(get("cholesky").self_ns, 50);
        assert_eq!(get("predict").self_ns, 20);
        // Self times over the whole forest sum to root wall time.
        let total_self: u64 = stats.iter().map(|s| s.self_ns).sum();
        assert_eq!(total_self, 100);
        // Sorted by descending self time.
        assert_eq!(stats[0].name, "cholesky");
    }

    #[test]
    fn critical_path_follows_heaviest_child() {
        let cp = critical_path(&forest(), "iteration").unwrap();
        let names: Vec<&str> = cp.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["iteration", "fit", "cholesky"]);
        assert_eq!(cp.total_ns, 100);
        assert!(cp.render().contains("cholesky"));
        assert!(critical_path(&forest(), "nope").is_none());
    }

    #[test]
    fn coverage_measures_decomposition() {
        let cov = child_coverage(&forest(), "iteration").unwrap();
        assert_eq!(cov.total_ns, 100);
        assert_eq!(cov.children_ns, 90);
        assert!((cov.pct() - 90.0).abs() < 1e-12);
        assert!(child_coverage(&forest(), "nope").is_none());
    }
}
