//! Cross-run trace diffing with bootstrap confidence intervals.
//!
//! Comparing two performance runs span-name by span-name on means alone
//! invites noise-chasing: per-iteration timings are skewed and a handful
//! of outliers can fabricate a "regression". Instead the relative delta
//! of each name's mean duration gets a 95% bootstrap confidence interval
//! (resampling both runs with replacement, seeded and therefore fully
//! deterministic); a difference counts as *significant* only when the CI
//! excludes zero **and** the point estimate exceeds the configured
//! threshold. Diffing a run against itself yields zero significant
//! entries by construction — the property the CI gate relies on.
//!
//! The statistics live in [`crate::bootstrap`], shared with the
//! campaign-grid ranker; this module adds the per-span-name plumbing,
//! sorting, and rendering.

use crate::bootstrap::bootstrap_delta_pct;
use crate::reader::Trace;
use alperf_obs::json;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::BTreeMap;

/// Tuning for [`diff_traces`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// RNG seed; the same seed and inputs give byte-identical output.
    pub seed: u64,
    /// Bootstrap resamples per span name.
    pub resamples: usize,
    /// Relative-change threshold (0.05 = 5%) a significant delta must
    /// also exceed to be flagged.
    pub threshold: f64,
    /// Minimum samples on *both* sides to attempt a bootstrap; below it
    /// the delta is reported but never flagged significant.
    pub min_count: usize,
    /// Cap on samples per side fed to the bootstrap (strided subsample),
    /// bounding cost on huge traces.
    pub max_samples: usize,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            seed: 42,
            resamples: 500,
            threshold: 0.05,
            min_count: 5,
            max_samples: 4096,
        }
    }
}

/// Comparison of one span name across two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanDiff {
    /// Span name.
    pub name: String,
    /// Sample count in run A.
    pub count_a: u64,
    /// Sample count in run B.
    pub count_b: u64,
    /// Mean duration in run A, ns (NaN when absent).
    pub mean_a_ns: f64,
    /// Mean duration in run B, ns (NaN when absent).
    pub mean_b_ns: f64,
    /// Relative change of the mean, percent: `(b - a) / a * 100`.
    pub delta_pct: f64,
    /// Lower end of the 95% bootstrap CI of `delta_pct` (NaN when the
    /// bootstrap was not run).
    pub ci_lo_pct: f64,
    /// Upper end of the 95% bootstrap CI of `delta_pct`.
    pub ci_hi_pct: f64,
    /// CI excludes zero and |delta| exceeds the threshold.
    pub significant: bool,
    /// Significant *and* slower in B — the gate-failing direction.
    pub regression: bool,
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Strided subsample keeping first/last coverage, deterministic.
fn cap_samples(xs: Vec<f64>, cap: usize) -> Vec<f64> {
    if xs.len() <= cap {
        return xs;
    }
    let step = xs.len() as f64 / cap as f64;
    (0..cap).map(|i| xs[(i as f64 * step) as usize]).collect()
}

/// Diff two traces per span name (union of names, sorted). Names missing
/// from one side are reported with zero count and a NaN delta; shared
/// names with enough samples get a seeded bootstrap CI. Output order:
/// regressions first, then other significant diffs, then by descending
/// |delta|, name as final tie-break — deterministic for fixed inputs.
pub fn diff_traces(a: &Trace, b: &Trace, cfg: &DiffConfig) -> Vec<SpanDiff> {
    let collect = |t: &Trace| -> BTreeMap<String, Vec<f64>> {
        let mut by_name: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for s in &t.spans {
            by_name
                .entry(s.name.clone())
                .or_default()
                .push(s.dur_ns as f64);
        }
        by_name
    };
    let durs_a = collect(a);
    let durs_b = collect(b);
    let names: Vec<&String> = {
        let mut names: Vec<&String> = durs_a.keys().chain(durs_b.keys()).collect();
        names.sort();
        names.dedup();
        names
    };

    // One RNG over the name-sorted list: deterministic for fixed inputs.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut diffs = Vec::with_capacity(names.len());
    for name in names {
        let xa = durs_a.get(name).cloned().unwrap_or_default();
        let xb = durs_b.get(name).cloned().unwrap_or_default();
        let (count_a, count_b) = (xa.len() as u64, xb.len() as u64);
        let mean_a = if xa.is_empty() { f64::NAN } else { mean(&xa) };
        let mean_b = if xb.is_empty() { f64::NAN } else { mean(&xb) };
        let delta_pct = if mean_a > 0.0 {
            (mean_b - mean_a) / mean_a * 100.0
        } else {
            f64::NAN
        };

        let xa = cap_samples(xa, cfg.max_samples);
        let xb = cap_samples(xb, cfg.max_samples);
        let v = bootstrap_delta_pct(
            &xa,
            &xb,
            cfg.resamples,
            cfg.min_count,
            cfg.threshold * 100.0,
            &mut rng,
        );
        diffs.push(SpanDiff {
            name: name.clone(),
            count_a,
            count_b,
            mean_a_ns: mean_a,
            mean_b_ns: mean_b,
            delta_pct,
            ci_lo_pct: v.ci_lo_pct,
            ci_hi_pct: v.ci_hi_pct,
            significant: v.significant,
            regression: v.significant && delta_pct > 0.0,
        });
    }

    diffs.sort_by(|x, y| {
        y.regression
            .cmp(&x.regression)
            .then(y.significant.cmp(&x.significant))
            .then(
                y.delta_pct
                    .abs()
                    .partial_cmp(&x.delta_pct.abs())
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(x.name.cmp(&y.name))
    });
    diffs
}

/// Count of significant regressions (the gate-failing entries).
pub fn significant_regressions(diffs: &[SpanDiff]) -> usize {
    diffs.iter().filter(|d| d.regression).count()
}

fn fmt_ms(ns: f64) -> String {
    if ns.is_nan() {
        "-".to_string()
    } else {
        format!("{:.3}", ns / 1e6)
    }
}

fn fmt_pct(p: f64) -> String {
    if p.is_nan() {
        "-".to_string()
    } else {
        format!("{p:+.2}%")
    }
}

/// Human-readable diff table.
pub fn render_table(diffs: &[SpanDiff]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>7} {:>7} {:>12} {:>12} {:>9} {:>18}  {}\n",
        "span", "n_a", "n_b", "mean_a_ms", "mean_b_ms", "delta", "95% CI", "verdict"
    ));
    for d in diffs {
        let ci = if d.ci_lo_pct.is_nan() {
            "-".to_string()
        } else {
            format!("[{:+.2}%, {:+.2}%]", d.ci_lo_pct, d.ci_hi_pct)
        };
        let verdict = if d.regression {
            "REGRESSION"
        } else if d.significant {
            "improved"
        } else {
            ""
        };
        out.push_str(&format!(
            "{:<28} {:>7} {:>7} {:>12} {:>12} {:>9} {:>18}  {}\n",
            d.name,
            d.count_a,
            d.count_b,
            fmt_ms(d.mean_a_ns),
            fmt_ms(d.mean_b_ns),
            fmt_pct(d.delta_pct),
            ci,
            verdict
        ));
    }
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        json::number(v)
    } else {
        "null".to_string()
    }
}

/// Machine-readable diff report (`alperf-trace-diff-v1`). NaN fields
/// (absent side, no bootstrap) serialize as `null`.
pub fn render_json(diffs: &[SpanDiff], cfg: &DiffConfig) -> String {
    let mut out = String::from("{\"schema\":\"alperf-trace-diff-v1\"");
    out.push_str(&format!(
        ",\"seed\":{},\"resamples\":{},\"threshold_pct\":{}",
        cfg.seed,
        cfg.resamples,
        json::number(cfg.threshold * 100.0)
    ));
    out.push_str(&format!(
        ",\"regressions\":{},\"diffs\":[",
        significant_regressions(diffs)
    ));
    for (i, d) in diffs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut name = String::new();
        json::escape_into(&mut name, &d.name); // emits surrounding quotes
        out.push_str(&format!(
            "{{\"name\":{name},\"count_a\":{},\"count_b\":{},\"mean_a_ns\":{},\
             \"mean_b_ns\":{},\"delta_pct\":{},\"ci_lo_pct\":{},\"ci_hi_pct\":{},\
             \"significant\":{},\"regression\":{}}}",
            d.count_a,
            d.count_b,
            json_num(d.mean_a_ns),
            json_num(d.mean_b_ns),
            json_num(d.delta_pct),
            json_num(d.ci_lo_pct),
            json_num(d.ci_hi_pct),
            d.significant,
            d.regression
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_obs::event::SpanEvent;

    fn trace_with(durs: &[(&str, &[u64])]) -> Trace {
        let mut trace = Trace {
            schema: "alperf-obs-v1".into(),
            ..Default::default()
        };
        let mut id = 1;
        for (name, ds) in durs {
            for (k, &d) in ds.iter().enumerate() {
                trace.spans.push(SpanEvent {
                    name: name.to_string(),
                    tid: 1,
                    id: Some(id),
                    parent: None,
                    parent_id: None,
                    start_ns: k as u64 * 1000,
                    dur_ns: d,
                });
                id += 1;
            }
        }
        trace
    }

    #[test]
    fn self_diff_has_zero_regressions() {
        let t = trace_with(&[("fit", &[100, 110, 90, 105, 95, 102, 98])]);
        let diffs = diff_traces(&t, &t, &DiffConfig::default());
        assert_eq!(diffs.len(), 1);
        assert_eq!(significant_regressions(&diffs), 0);
        assert!(!diffs[0].significant);
        assert_eq!(diffs[0].delta_pct, 0.0);
    }

    #[test]
    fn clear_slowdown_is_flagged_as_regression() {
        let a = trace_with(&[("fit", &[100, 101, 99, 100, 102, 98, 100, 101])]);
        let b = trace_with(&[("fit", &[200, 202, 198, 201, 199, 200, 203, 197])]);
        let diffs = diff_traces(&a, &b, &DiffConfig::default());
        assert!(diffs[0].regression, "{:?}", diffs[0]);
        assert!((diffs[0].delta_pct - 100.0).abs() < 5.0);
        assert!(diffs[0].ci_lo_pct > 0.0);
        // Opposite direction: significant improvement, not a regression.
        let diffs = diff_traces(&b, &a, &DiffConfig::default());
        assert!(diffs[0].significant && !diffs[0].regression);
    }

    #[test]
    fn below_min_count_never_significant() {
        let a = trace_with(&[("fit", &[100, 100])]);
        let b = trace_with(&[("fit", &[500, 500])]);
        let diffs = diff_traces(&a, &b, &DiffConfig::default());
        assert!(!diffs[0].significant);
        assert!(diffs[0].ci_lo_pct.is_nan());
        assert!((diffs[0].delta_pct - 400.0).abs() < 1e-9);
    }

    #[test]
    fn one_sided_names_reported_not_flagged() {
        let a = trace_with(&[("only_a", &[10, 10, 10, 10, 10])]);
        let b = trace_with(&[("only_b", &[20, 20, 20, 20, 20])]);
        let diffs = diff_traces(&a, &b, &DiffConfig::default());
        assert_eq!(diffs.len(), 2);
        for d in &diffs {
            assert!(!d.significant);
            assert!(d.delta_pct.is_nan() || d.mean_a_ns.is_nan());
        }
        let only_a = diffs.iter().find(|d| d.name == "only_a").unwrap();
        assert_eq!((only_a.count_a, only_a.count_b), (5, 0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = trace_with(&[("fit", &[100, 120, 90, 105, 95, 130, 85])]);
        let b = trace_with(&[("fit", &[110, 125, 95, 115, 100, 140, 90])]);
        let cfg = DiffConfig::default();
        let d1 = diff_traces(&a, &b, &cfg);
        let d2 = diff_traces(&a, &b, &cfg);
        assert_eq!(d1, d2);
        assert_eq!(render_json(&d1, &cfg), render_json(&d2, &cfg));
        let other = diff_traces(&a, &b, &DiffConfig { seed: 7, ..cfg });
        // Same decision, (almost surely) different CI endpoints.
        assert_eq!(d1[0].significant, other[0].significant);
    }

    #[test]
    fn renders_table_and_json() {
        let a = trace_with(&[("fit", &[100, 101, 99, 100, 102, 98])]);
        let b = trace_with(&[("fit", &[300, 301, 299, 300, 302, 298])]);
        let cfg = DiffConfig::default();
        let diffs = diff_traces(&a, &b, &cfg);
        let table = render_table(&diffs);
        assert!(table.contains("fit"));
        assert!(table.contains("REGRESSION"));
        let jsonl = render_json(&diffs, &cfg);
        let parsed = json::parse(&jsonl).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(|s| s.as_str()),
            Some("alperf-trace-diff-v1")
        );
        assert_eq!(
            parsed.get("regressions").and_then(|r| r.as_f64()),
            Some(1.0)
        );
    }
}
