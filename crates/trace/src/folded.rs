//! Folded-stack (flamegraph) export.
//!
//! One line per unique root-to-span path, `root;child;leaf value`, where
//! the value is the path's accumulated *self* time in ns — the format
//! consumed by `inferno-flamegraph`, Brendan Gregg's `flamegraph.pl`,
//! and speedscope. Using self time (not total) keeps the invariant those
//! tools rely on: a frame's width equals its own value plus its
//! children's.
//!
//! Output is byte-stable for a given forest: paths are merged through a
//! `BTreeMap` and emitted in lexicographic order, so golden tests can
//! compare exact bytes.

//! Two sources fold to this format: span trees ([`folded_stacks`], value
//! = self time in ns) and profiler stack samples ([`sampled_stacks`],
//! value = sample count — a wall-clock estimate that, unlike span self
//! time, also weights time spans spend blocked). `trace_report` exports
//! either view from the same trace (`--folded` / `--folded-samples`) so
//! the two flamegraphs can be compared side by side.

use crate::tree::SpanForest;
use alperf_obs::event::SampleEvent;
use std::collections::BTreeMap;

/// Sanitize a span name for the folded format: `;` separates frames and
/// the last space separates the value, so both are replaced.
fn sanitize(name: &str) -> String {
    name.replace([';', ' '], "_")
}

/// Render the forest as folded stacks. Zero-self-time paths are kept
/// (value 0) only if they have no children, so every leaf frame appears.
pub fn folded_stacks(forest: &SpanForest) -> String {
    let mut merged: BTreeMap<String, u64> = BTreeMap::new();
    // Depth-first with the accumulated path; iterative to survive deep trees.
    let mut stack: Vec<(usize, String)> = forest
        .roots
        .iter()
        .map(|&r| (r, sanitize(&forest.nodes[r].span.name)))
        .collect();
    while let Some((i, path)) = stack.pop() {
        let node = &forest.nodes[i];
        let self_ns = forest.self_ns(i);
        if self_ns > 0 || node.children.is_empty() {
            *merged.entry(path.clone()).or_insert(0) += self_ns;
        }
        for &c in &node.children {
            let child_path = format!("{path};{}", sanitize(&forest.nodes[c].span.name));
            stack.push((c, child_path));
        }
    }
    let mut out = String::new();
    for (path, ns) in merged {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// Render profiler samples as folded stacks, one line per unique sampled
/// stack, value = number of samples. Same sanitization and lexicographic
/// ordering as [`folded_stacks`], so output is byte-stable; an empty
/// sample set renders as an empty string.
pub fn sampled_stacks(samples: &[SampleEvent]) -> String {
    let mut merged: BTreeMap<String, u64> = BTreeMap::new();
    for s in samples {
        let path: Vec<String> = s.stack.iter().map(|f| sanitize(f)).collect();
        *merged.entry(path.join(";")).or_insert(0) += 1;
    }
    let mut out = String::new();
    for (path, count) in merged {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_obs::event::SpanEvent;

    fn span(name: &str, id: u64, pid: Option<u64>, start: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            name: name.into(),
            tid: 1,
            id: Some(id),
            parent: None,
            parent_id: pid,
            start_ns: start,
            dur_ns: dur,
        }
    }

    #[test]
    fn emits_merged_sorted_self_time_stacks() {
        // root(100) -> fit(70) -> chol(50), root -> fit#2(10): the two fit
        // instances merge into one path.
        let forest = SpanForest::build(&[
            span("chol", 3, Some(2), 5, 50),
            span("fit", 2, Some(1), 0, 70),
            span("fit", 4, Some(1), 80, 10),
            span("root", 1, None, 0, 100),
        ])
        .unwrap();
        let folded = folded_stacks(&forest);
        assert_eq!(folded, "root 20\nroot;fit 30\nroot;fit;chol 50\n");
        // Total value equals total wall time of the root.
        let total: u64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn sanitizes_separator_characters() {
        let forest = SpanForest::build(&[span("a b;c", 1, None, 0, 5)]).unwrap();
        assert_eq!(folded_stacks(&forest), "a_b_c 5\n");
    }

    #[test]
    fn zero_self_leaf_still_appears() {
        let forest = SpanForest::build(&[span("instant", 1, None, 0, 0)]).unwrap();
        assert_eq!(folded_stacks(&forest), "instant 0\n");
    }

    #[test]
    fn sampled_stacks_fold_counts() {
        let sample = |stack: &[&str], t_ns: u64| SampleEvent {
            tid: 1,
            t_ns,
            stack: stack.iter().map(|s| s.to_string()).collect(),
        };
        let samples = vec![
            sample(&["al.iteration", "gp.fit"], 0),
            sample(&["al.iteration"], 1),
            sample(&["al.iteration", "gp.fit"], 2),
            sample(&["al.iteration", "gp.fit;odd name"], 3),
        ];
        let folded = sampled_stacks(&samples);
        assert_eq!(
            folded,
            "al.iteration 1\nal.iteration;gp.fit 2\nal.iteration;gp.fit_odd_name 1\n"
        );
        assert_eq!(sampled_stacks(&[]), "");
    }

    #[test]
    fn byte_stable_across_builds() {
        let spans = vec![
            span("b", 2, Some(1), 1, 3),
            span("a", 3, Some(1), 4, 2),
            span("root", 1, None, 0, 10),
        ];
        let f1 = SpanForest::build(&spans).unwrap();
        let f2 = SpanForest::build(&spans).unwrap();
        assert_eq!(folded_stacks(&f1), folded_stacks(&f2));
        assert_eq!(folded_stacks(&f1), "root 5\nroot;a 2\nroot;b 3\n");
    }
}
