//! Seeded bootstrap comparison of two samples — the statistical core
//! shared by cross-run trace diffing ([`crate::diff`]) and the
//! campaign-grid significance verdicts (`alperf-grid`).
//!
//! The estimator is the relative change of the mean, `(mean_b - mean_a)
//! / mean_a * 100`, with a 95% percentile confidence interval from
//! resampling both sides with replacement. Everything is driven by a
//! caller-supplied [`StdRng`], so verdicts are deterministic for a fixed
//! seed and input.
//!
//! Degenerate inputs — the edge cases a batch ranker over thousands of
//! campaign summaries hits constantly — never panic, never divide by
//! zero, and never come back "significant". Instead the verdict carries
//! a typed [`DegenerateReason`]:
//!
//! * too few samples on either side (`n = 1` arms included);
//! * non-finite values, a non-positive baseline mean, or a non-finite
//!   delta (the division guard);
//! * both arms constant with equal values (all ties: the delta is
//!   exactly zero and there is nothing to test);
//! * both arms constant with different values (zero variance: the
//!   bootstrap distribution collapses to a point, so the CI "excluding
//!   zero" is an artifact of having no spread to resample, not
//!   evidence).

use rand::{rngs::StdRng, RngCore};

/// Why a comparison could not produce a meaningful significance verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegenerateReason {
    /// One side has fewer samples than the configured minimum.
    TooFewSamples,
    /// A non-finite value, non-positive baseline mean, or non-finite
    /// delta made the relative-change estimator undefined.
    NonFinite,
    /// Both arms are constant and equal — the delta is exactly zero.
    AllTies,
    /// Both arms are constant (but different): the bootstrap
    /// distribution is a point mass and carries no evidence.
    ZeroVariance,
}

impl DegenerateReason {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DegenerateReason::TooFewSamples => "too_few_samples",
            DegenerateReason::NonFinite => "non_finite",
            DegenerateReason::AllTies => "all_ties",
            DegenerateReason::ZeroVariance => "zero_variance",
        }
    }
}

/// Outcome of one bootstrap comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Sample count of side A.
    pub n_a: usize,
    /// Sample count of side B.
    pub n_b: usize,
    /// Mean of side A (NaN when empty).
    pub mean_a: f64,
    /// Mean of side B (NaN when empty).
    pub mean_b: f64,
    /// Relative change of the mean, percent (NaN when undefined).
    pub delta_pct: f64,
    /// Lower 95% CI bound of `delta_pct` (NaN when no bootstrap ran).
    pub ci_lo_pct: f64,
    /// Upper 95% CI bound of `delta_pct`.
    pub ci_hi_pct: f64,
    /// CI excludes zero, |delta| exceeds the threshold, and the input
    /// was not degenerate.
    pub significant: bool,
    /// Why the verdict is forced to "not significant", when it is.
    pub degenerate: Option<DegenerateReason>,
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn resampled_mean(xs: &[f64], rng: &mut StdRng) -> f64 {
    let n = xs.len() as u64;
    let sum: f64 = (0..xs.len())
        .map(|_| xs[(rng.next_u64() % n) as usize])
        .sum();
    sum / xs.len() as f64
}

fn is_constant(xs: &[f64]) -> bool {
    xs.windows(2).all(|w| w[0] == w[1])
}

/// Bootstrap the relative mean change `(mean_b - mean_a) / mean_a` in
/// percent, with `resamples` resamples of both sides. `min_count` is the
/// minimum per-side sample count to attempt a bootstrap; `threshold_pct`
/// is the absolute delta (percent) a significant result must also
/// exceed.
///
/// Degenerate inputs return a typed, never-significant verdict instead
/// of panicking — see the module docs for the taxonomy. The RNG is
/// consumed *only* when a bootstrap actually runs (the same draw pattern
/// for every non-degenerate input shape), so a caller sharing one RNG
/// across many comparisons stays deterministic.
pub fn bootstrap_delta_pct(
    a: &[f64],
    b: &[f64],
    resamples: usize,
    min_count: usize,
    threshold_pct: f64,
    rng: &mut StdRng,
) -> Verdict {
    let mean_a = mean(a);
    let mean_b = mean(b);
    let delta_pct = if mean_a > 0.0 {
        (mean_b - mean_a) / mean_a * 100.0
    } else {
        f64::NAN
    };
    let mut v = Verdict {
        n_a: a.len(),
        n_b: b.len(),
        mean_a,
        mean_b,
        delta_pct,
        ci_lo_pct: f64::NAN,
        ci_hi_pct: f64::NAN,
        significant: false,
        degenerate: None,
    };
    if a.len() < min_count || b.len() < min_count {
        v.degenerate = Some(DegenerateReason::TooFewSamples);
        return v;
    }
    let finite = a.iter().chain(b).all(|x| x.is_finite());
    // `finite` guarantees mean_a is a number here, so `<= 0.0` covers
    // exactly the non-positive baselines a percent delta can't describe.
    if !finite || mean_a <= 0.0 || !delta_pct.is_finite() {
        v.degenerate = Some(DegenerateReason::NonFinite);
        return v;
    }
    if resamples == 0 {
        return v;
    }
    // Non-degenerate shape so far: run the resampling. (Constant arms
    // still consume the RNG here so one shared RNG stream stays aligned
    // across a sequence of comparisons regardless of which ones turn
    // out to be degenerate.)
    let mut deltas: Vec<f64> = (0..resamples)
        .map(|_| {
            let ma = resampled_mean(a, rng);
            let mb = resampled_mean(b, rng);
            if ma > 0.0 {
                (mb - ma) / ma * 100.0
            } else {
                0.0
            }
        })
        .collect();
    deltas.sort_by(|x, y| x.partial_cmp(y).expect("finite deltas"));
    let pick = |q: f64| deltas[((deltas.len() - 1) as f64 * q).round() as usize];
    v.ci_lo_pct = pick(0.025);
    v.ci_hi_pct = pick(0.975);
    if is_constant(a) && is_constant(b) {
        // A point-mass bootstrap: the CI trivially "excludes zero"
        // whenever the constants differ, which is no evidence at all.
        v.degenerate = Some(if a[0] == b[0] {
            DegenerateReason::AllTies
        } else {
            DegenerateReason::ZeroVariance
        });
        return v;
    }
    let excludes_zero = v.ci_lo_pct > 0.0 || v.ci_hi_pct < 0.0;
    v.significant = excludes_zero && delta_pct.abs() > threshold_pct;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn clear_difference_is_significant() {
        let a = [100.0, 101.0, 99.0, 100.0, 102.0, 98.0];
        let b = [200.0, 202.0, 198.0, 201.0, 199.0, 200.0];
        let v = bootstrap_delta_pct(&a, &b, 500, 5, 5.0, &mut rng());
        assert!(v.significant, "{v:?}");
        assert_eq!(v.degenerate, None);
        assert!((v.delta_pct - 100.0).abs() < 5.0);
        assert!(v.ci_lo_pct > 0.0);
    }

    #[test]
    fn n1_arms_are_too_few_samples_not_a_panic() {
        let v = bootstrap_delta_pct(&[10.0], &[20.0], 500, 2, 5.0, &mut rng());
        assert!(!v.significant);
        assert_eq!(v.degenerate, Some(DegenerateReason::TooFewSamples));
        assert!(v.ci_lo_pct.is_nan());
        // Even min_count = 1 runs without dividing by zero.
        let v = bootstrap_delta_pct(&[10.0], &[20.0], 500, 1, 5.0, &mut rng());
        assert!(!v.significant, "single constant samples carry no spread");
        assert_eq!(v.degenerate, Some(DegenerateReason::ZeroVariance));
    }

    #[test]
    fn empty_sides_never_panic() {
        let v = bootstrap_delta_pct(&[], &[], 500, 5, 5.0, &mut rng());
        assert_eq!(v.degenerate, Some(DegenerateReason::TooFewSamples));
        assert!(v.mean_a.is_nan() && v.mean_b.is_nan());
        let v = bootstrap_delta_pct(&[], &[1.0; 8], 500, 0, 5.0, &mut rng());
        assert_eq!(v.degenerate, Some(DegenerateReason::NonFinite));
    }

    #[test]
    fn all_ties_report_typed_reason() {
        let a = [3.0; 6];
        let v = bootstrap_delta_pct(&a, &a, 500, 5, 5.0, &mut rng());
        assert!(!v.significant);
        assert_eq!(v.degenerate, Some(DegenerateReason::AllTies));
        assert_eq!(v.delta_pct, 0.0);
    }

    #[test]
    fn zero_variance_arms_are_not_significant() {
        // Constant arms with a huge difference: the naive CI is a point
        // far from zero, but there is no spread to support inference.
        let a = [1.0; 8];
        let b = [5.0; 8];
        let v = bootstrap_delta_pct(&a, &b, 500, 5, 5.0, &mut rng());
        assert!(!v.significant, "{v:?}");
        assert_eq!(v.degenerate, Some(DegenerateReason::ZeroVariance));
        assert!((v.delta_pct - 400.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_and_non_positive_means_guarded() {
        let v = bootstrap_delta_pct(&[1.0, f64::NAN, 2.0], &[1.0; 5], 500, 2, 5.0, &mut rng());
        assert_eq!(v.degenerate, Some(DegenerateReason::NonFinite));
        let v = bootstrap_delta_pct(&[0.0; 5], &[1.0; 5], 500, 5, 5.0, &mut rng());
        assert_eq!(v.degenerate, Some(DegenerateReason::NonFinite));
        let v = bootstrap_delta_pct(&[-2.0; 5], &[1.0; 5], 500, 5, 5.0, &mut rng());
        assert_eq!(v.degenerate, Some(DegenerateReason::NonFinite));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = [100.0, 120.0, 90.0, 105.0, 95.0, 130.0];
        let b = [110.0, 125.0, 95.0, 115.0, 100.0, 140.0];
        let v1 = bootstrap_delta_pct(&a, &b, 500, 5, 5.0, &mut rng());
        let v2 = bootstrap_delta_pct(&a, &b, 500, 5, 5.0, &mut rng());
        assert_eq!(v1, v2);
    }

    #[test]
    fn rng_stream_alignment_is_shape_independent() {
        // A degenerate comparison mid-stream must not consume RNG draws
        // the old inline implementation would not have consumed: the
        // next comparison sees the same stream either way.
        let a = [100.0, 120.0, 90.0, 105.0, 95.0, 130.0];
        let b = [110.0, 125.0, 95.0, 115.0, 100.0, 140.0];
        let mut r1 = rng();
        bootstrap_delta_pct(&[1.0], &[2.0], 500, 5, 5.0, &mut r1); // no draws
        let after_degen = bootstrap_delta_pct(&a, &b, 500, 5, 5.0, &mut r1);
        let mut r2 = rng();
        let direct = bootstrap_delta_pct(&a, &b, 500, 5, 5.0, &mut r2);
        assert_eq!(after_degen, direct);
    }

    #[test]
    fn resamples_zero_reports_no_ci_and_no_reason() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 3.0, 4.0, 5.0, 6.0];
        let v = bootstrap_delta_pct(&a, &b, 0, 5, 5.0, &mut rng());
        assert!(!v.significant);
        assert_eq!(v.degenerate, None);
        assert!(v.ci_lo_pct.is_nan());
    }
}
