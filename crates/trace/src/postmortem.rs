//! Postmortem reconstruction from `alperf-blackbox-v1` flight-recorder
//! dumps.
//!
//! The black-box recorder (`alperf_obs::blackbox`) keeps the last few
//! thousand span/record events per thread in lock-free rings and dumps
//! them on panic, executor fault, or exit. This module reads such a
//! dump back and reconstructs what the process was doing in its final
//! seconds: a span tree, the record traffic, and the alerts that were
//! firing at dump time.
//!
//! Unlike [`crate::tree::SpanForest`], the builder here is *lenient*:
//! the rings are bounded, so a span's parent may have been overwritten
//! long before the dump. A span whose parent id is absent becomes a
//! root instead of an error — a postmortem must render whatever
//! survived, not demand a complete trace.

use alperf_obs::json::{self, Json};
use std::collections::BTreeMap;
use std::path::Path;

/// One flight-recorder event from the dump.
#[derive(Debug, Clone, PartialEq)]
pub struct BbEvent {
    /// `"span"` or `"record"`.
    pub kind: String,
    /// Span or record name.
    pub name: String,
    /// Recording thread.
    pub tid: u64,
    /// Event time (span start for spans), monotonic ns.
    pub t_ns: u64,
    /// Span duration (0 for records).
    pub dur_ns: u64,
    /// Span id (0 for records).
    pub id: u64,
    /// Parent span id (0 = none/unknown).
    pub pid: u64,
}

/// An alert that was firing when the dump was written.
#[derive(Debug, Clone, PartialEq)]
pub struct FiringAlert {
    /// Rule name.
    pub rule: String,
    /// When it started firing, monotonic ns.
    pub since_ns: u64,
}

/// A parsed black-box dump.
#[derive(Debug, Clone, PartialEq)]
pub struct Postmortem {
    /// Why the dump was written (`panic`, `cluster.worker_panic`, ...).
    pub reason: String,
    /// Dump wall point on the monotonic clock, ns.
    pub dumped_at_ns: u64,
    /// Every surviving event, time-sorted by the dumper.
    pub events: Vec<BbEvent>,
    /// Rules firing at dump time.
    pub alerts: Vec<FiringAlert>,
}

fn field_u64(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(|x| x.as_f64()).unwrap_or(0.0) as u64
}

/// Parse a dump from its JSONL text.
pub fn read_dump_str(text: &str) -> Result<Postmortem, String> {
    let mut lines = text.lines().enumerate();
    let Some((_, meta_line)) = lines.next() else {
        return Err("empty dump".into());
    };
    let meta = json::parse(meta_line).map_err(|e| format!("meta line: {e}"))?;
    match meta.get("schema").and_then(|s| s.as_str()) {
        Some("alperf-blackbox-v1") => {}
        Some(other) => return Err(format!("unknown schema {other:?}")),
        None => return Err("meta line missing \"schema\"".into()),
    }
    let reason = meta
        .get("reason")
        .and_then(|r| r.as_str())
        .ok_or("meta line missing \"reason\"")?
        .to_string();
    let dumped_at_ns = field_u64(&meta, "dumped_at_ns");
    let (mut events, mut alerts) = (Vec::new(), Vec::new());
    for (i, line) in lines {
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        match v.get("t").and_then(|t| t.as_str()) {
            Some("bb") => events.push(BbEvent {
                kind: v
                    .get("kind")
                    .and_then(|k| k.as_str())
                    .unwrap_or("?")
                    .to_string(),
                name: v
                    .get("name")
                    .and_then(|n| n.as_str())
                    .unwrap_or("?")
                    .to_string(),
                tid: field_u64(&v, "tid"),
                t_ns: field_u64(&v, "t_ns"),
                dur_ns: field_u64(&v, "dur_ns"),
                id: field_u64(&v, "id"),
                pid: field_u64(&v, "pid"),
            }),
            Some("alert") => alerts.push(FiringAlert {
                rule: v
                    .get("rule")
                    .and_then(|r| r.as_str())
                    .unwrap_or("?")
                    .to_string(),
                since_ns: field_u64(&v, "since_ns"),
            }),
            t => return Err(format!("line {}: unknown line type {t:?}", i + 1)),
        }
    }
    Ok(Postmortem {
        reason,
        dumped_at_ns,
        events,
        alerts,
    })
}

/// Parse a dump file.
pub fn read_dump(path: &Path) -> Result<Postmortem, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    read_dump_str(&text)
}

/// Lenient span node for rendering.
struct Node {
    idx: usize,
    children: Vec<usize>,
}

/// Lines the rendered span tree is capped at (dumps hold thousands of
/// events; a postmortem is for eyes, not pipelines).
const MAX_TREE_LINES: usize = 400;

impl Postmortem {
    /// The newest event timestamp (dump time when no events survived).
    pub fn end_ns(&self) -> u64 {
        self.events
            .iter()
            .map(|e| e.t_ns + e.dur_ns)
            .max()
            .unwrap_or(self.dumped_at_ns)
            .max(self.dumped_at_ns)
    }

    /// Render the last `window_ns` of the recording: firing alerts, the
    /// reconstructed span tree (orphans as roots), and record traffic.
    pub fn render(&self, window_ns: u64) -> String {
        let cutoff = self.end_ns().saturating_sub(window_ns);
        let recent: Vec<&BbEvent> = self
            .events
            .iter()
            .filter(|e| e.t_ns + e.dur_ns >= cutoff)
            .collect();
        let mut out = format!(
            "postmortem: reason {:?}, {} of {} events in the last {:.1} s\n",
            self.reason,
            recent.len(),
            self.events.len(),
            window_ns as f64 / 1e9
        );
        out.push_str("firing alerts:\n");
        if self.alerts.is_empty() {
            out.push_str("  (none)\n");
        }
        for a in &self.alerts {
            out.push_str(&format!(
                "  {} (firing since t={:.3} s)\n",
                a.rule,
                a.since_ns as f64 / 1e9
            ));
        }

        // Lenient tree: index spans by id, attach to the parent when it
        // survived in the window, promote to root otherwise.
        let spans: Vec<&BbEvent> = recent
            .iter()
            .copied()
            .filter(|e| e.kind == "span")
            .collect();
        let by_id: BTreeMap<u64, usize> = spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.id != 0)
            .map(|(i, s)| (s.id, i))
            .collect();
        let mut nodes: Vec<Node> = (0..spans.len())
            .map(|idx| Node {
                idx,
                children: Vec::new(),
            })
            .collect();
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match (s.pid != 0).then(|| by_id.get(&s.pid)).flatten() {
                Some(&p) if p != i => nodes[p].children.push(i),
                _ => roots.push(i),
            }
        }
        let order =
            |xs: &mut Vec<usize>| xs.sort_by_key(|&i| (spans[i].t_ns, spans[i].tid, spans[i].id));
        order(&mut roots);
        for n in &mut nodes {
            order(&mut n.children);
        }
        out.push_str(&format!(
            "span tree ({} spans, {} roots):\n",
            spans.len(),
            roots.len()
        ));
        let mut lines = 0usize;
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&r| (r, 1)).collect();
        while let Some((i, depth)) = stack.pop() {
            if lines >= MAX_TREE_LINES {
                out.push_str("  ... (tree truncated)\n");
                break;
            }
            let s = spans[nodes[i].idx];
            out.push_str(&format!(
                "{:indent$}{} {:.3} ms [tid {}]\n",
                "",
                s.name,
                s.dur_ns as f64 / 1e6,
                s.tid,
                indent = depth * 2
            ));
            lines += 1;
            for &c in nodes[i].children.iter().rev() {
                stack.push((c, depth + 1));
            }
        }

        let mut record_counts: BTreeMap<&str, usize> = BTreeMap::new();
        for e in recent.iter().filter(|e| e.kind == "record") {
            *record_counts.entry(e.name.as_str()).or_insert(0) += 1;
        }
        out.push_str("records:\n");
        if record_counts.is_empty() {
            out.push_str("  (none)\n");
        }
        for (name, count) in record_counts {
            out.push_str(&format!("  {name} x{count}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dump_text() -> String {
        [
            r#"{"v":1,"t":"meta","schema":"alperf-blackbox-v1","reason":"unit","dumped_at_ns":10000000000}"#,
            // parent overwritten long ago: id 5 never appears
            r#"{"v":1,"t":"bb","kind":"span","name":"orphan.child","tid":1,"t_ns":9000000000,"dur_ns":1000,"id":7,"pid":5}"#,
            r#"{"v":1,"t":"bb","kind":"span","name":"root","tid":1,"t_ns":9100000000,"dur_ns":5000000,"id":8,"pid":0}"#,
            r#"{"v":1,"t":"bb","kind":"span","name":"root.child","tid":1,"t_ns":9100001000,"dur_ns":1000000,"id":9,"pid":8}"#,
            r#"{"v":1,"t":"bb","kind":"record","name":"obs.alert","tid":2,"t_ns":9200000000,"dur_ns":0,"id":0,"pid":0}"#,
            // ancient event, outside any reasonable window
            r#"{"v":1,"t":"bb","kind":"span","name":"ancient","tid":1,"t_ns":1,"dur_ns":10,"id":2,"pid":0}"#,
            r#"{"v":1,"t":"alert","rule":"chaos_stall","state":"firing","since_ns":9150000000}"#,
        ]
        .join("\n")
    }

    #[test]
    fn parses_events_and_alerts() {
        let pm = read_dump_str(&dump_text()).unwrap();
        assert_eq!(pm.reason, "unit");
        assert_eq!(pm.events.len(), 5);
        assert_eq!(pm.alerts.len(), 1);
        assert_eq!(pm.alerts[0].rule, "chaos_stall");
    }

    #[test]
    fn orphans_become_roots_and_window_filters() {
        let pm = read_dump_str(&dump_text()).unwrap();
        let r = pm.render(2_000_000_000);
        // orphan.child kept as a root, root.child nested under root.
        assert!(r.contains("orphan.child"), "orphan survives:\n{r}");
        assert!(r.contains("3 spans, 2 roots"), "lenient tree shape:\n{r}");
        assert!(r.contains("\n    root.child"), "nesting preserved:\n{r}");
        assert!(!r.contains("ancient"), "window filter applies:\n{r}");
        assert!(r.contains("obs.alert x1"), "record traffic:\n{r}");
        assert!(r.contains("chaos_stall"), "firing alert listed:\n{r}");
    }

    #[test]
    fn rejects_foreign_schema() {
        let text = r#"{"v":1,"t":"meta","schema":"alperf-obs-v1"}"#;
        assert!(read_dump_str(text).unwrap_err().contains("unknown schema"));
    }
}
