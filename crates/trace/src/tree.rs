//! Span-forest reconstruction from a flat span event list.
//!
//! Spans are emitted on guard *drop*, so a parent's line always appears
//! after its children's and linking must tolerate forward references: the
//! builder first indexes every span, then resolves parents.
//!
//! Linking rules, in precedence order per span:
//!
//! 1. **By parent id** (`pid` field) — exact, and the only rule that can
//!    attach across threads (rayon restart spans opened with
//!    `span_with_parent` carry the dispatching span's id).
//! 2. **By parent name + interval containment** — the fallback for
//!    pre-id traces: the innermost span with the declared name whose
//!    interval contains the child's, preferring candidates on the same
//!    thread.
//! 3. No declared parent → root span.
//!
//! Connectivity is *asserted*: a span that declares a parent which cannot
//! be resolved is a [`TreeError::MissingParent`], not a silent extra root
//! — this is the regression guard for the historical bug where spans
//! opened inside rayon-parallel GPR restarts lost their parent entirely.

use alperf_obs::event::SpanEvent;
use std::collections::HashMap;
use std::fmt;

/// One span plus its resolved position in the forest.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The underlying span event.
    pub span: SpanEvent,
    /// Index of the parent node, if any.
    pub parent: Option<usize>,
    /// Indices of child nodes, sorted by start time (emission order tie-break).
    pub children: Vec<usize>,
}

/// A reconstructed forest of span trees.
#[derive(Debug, Clone, Default)]
pub struct SpanForest {
    /// All nodes, in the trace's emission (close) order.
    pub nodes: Vec<SpanNode>,
    /// Indices of root nodes, sorted by start time.
    pub roots: Vec<usize>,
}

/// Why a span list does not form a forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A span declared a parent that cannot be resolved.
    MissingParent {
        /// Name of the orphaned span.
        name: String,
        /// The parent it declared (name or `#id`).
        parent: String,
    },
    /// Two spans carry the same id.
    DuplicateId(u64),
    /// Parent links form a cycle (malformed trace).
    Cycle,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::MissingParent { name, parent } => write!(
                f,
                "span {name:?} declares parent {parent} but no such span exists \
                 (tree connectivity violated)"
            ),
            TreeError::DuplicateId(id) => write!(f, "duplicate span id {id}"),
            TreeError::Cycle => write!(f, "span parent links form a cycle"),
        }
    }
}

impl std::error::Error for TreeError {}

impl SpanForest {
    /// Build the forest from a span list (see module docs for the linking
    /// rules). Fails rather than guessing when connectivity is violated.
    pub fn build(spans: &[SpanEvent]) -> Result<SpanForest, TreeError> {
        let mut by_id: HashMap<u64, usize> = HashMap::with_capacity(spans.len());
        for (i, s) in spans.iter().enumerate() {
            if let Some(id) = s.id {
                if by_id.insert(id, i).is_some() {
                    return Err(TreeError::DuplicateId(id));
                }
            }
        }
        let mut parents: Vec<Option<usize>> = vec![None; spans.len()];
        for (i, s) in spans.iter().enumerate() {
            if let Some(pid) = s.parent_id {
                match by_id.get(&pid) {
                    Some(&j) if j != i => parents[i] = Some(j),
                    _ => {
                        return Err(TreeError::MissingParent {
                            name: s.name.clone(),
                            parent: format!("#{pid}"),
                        })
                    }
                }
            } else if let Some(pname) = &s.parent {
                parents[i] = Some(containment_parent(spans, i, pname).ok_or_else(|| {
                    TreeError::MissingParent {
                        name: s.name.clone(),
                        parent: format!("{pname:?}"),
                    }
                })?);
            }
        }

        let mut nodes: Vec<SpanNode> = spans
            .iter()
            .zip(&parents)
            .map(|(s, p)| SpanNode {
                span: s.clone(),
                parent: *p,
                children: Vec::new(),
            })
            .collect();
        let mut roots = Vec::new();
        for (i, p) in parents.iter().enumerate() {
            match p {
                Some(j) => nodes[*j].children.push(i),
                None => roots.push(i),
            }
        }
        let start_key = |&i: &usize| (spans[i].start_ns, i);
        roots.sort_by_key(start_key);
        for node in &mut nodes {
            node.children.sort_by_key(start_key);
        }

        // Connectivity: every node must be reachable from a root; anything
        // unreachable means the parent links loop back on themselves.
        let mut seen = vec![false; nodes.len()];
        let mut stack: Vec<usize> = roots.clone();
        let mut reached = 0usize;
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut seen[i], true) {
                continue;
            }
            reached += 1;
            stack.extend(nodes[i].children.iter().copied());
        }
        if reached != nodes.len() {
            return Err(TreeError::Cycle);
        }
        Ok(SpanForest { nodes, roots })
    }

    /// Number of spans in the forest.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the forest empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Indices of all nodes named `name`, in emission order.
    pub fn named(&self, name: &str) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].span.name == name)
            .collect()
    }

    /// Sum of the direct children's durations of node `i`.
    pub fn children_dur_ns(&self, i: usize) -> u64 {
        self.nodes[i]
            .children
            .iter()
            .map(|&c| self.nodes[c].span.dur_ns)
            .sum()
    }

    /// Self time of node `i`: its duration minus its direct children's.
    /// Saturating — children running concurrently on worker threads (e.g.
    /// parallel restarts under `gp.fit`) can sum past the parent's wall
    /// time, which honestly means "no exclusive self time".
    pub fn self_ns(&self, i: usize) -> u64 {
        self.nodes[i]
            .span
            .dur_ns
            .saturating_sub(self.children_dur_ns(i))
    }
}

/// Fallback parent resolution: the innermost span named `pname` whose
/// interval contains span `i`'s, preferring same-thread candidates.
fn containment_parent(spans: &[SpanEvent], i: usize, pname: &str) -> Option<usize> {
    let child = &spans[i];
    let best = |same_tid: bool| -> Option<usize> {
        spans
            .iter()
            .enumerate()
            .filter(|&(j, s)| {
                j != i && s.name == pname && (s.tid == child.tid) == same_tid && s.contains(child)
            })
            // Innermost: smallest enclosing interval, then latest start.
            .min_by_key(|&(j, s)| (s.dur_ns, std::cmp::Reverse(s.start_ns), j))
            .map(|(j, _)| j)
    };
    best(true).or_else(|| best(false))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        name: &str,
        tid: u64,
        id: u64,
        parent: Option<(&str, u64)>,
        start: u64,
        dur: u64,
    ) -> SpanEvent {
        SpanEvent {
            name: name.into(),
            tid,
            id: Some(id),
            parent: parent.map(|(n, _)| n.to_string()),
            parent_id: parent.map(|(_, id)| id),
            start_ns: start,
            dur_ns: dur,
        }
    }

    #[test]
    fn links_by_id_across_threads() {
        // Emission order: children close first. The restart spans live on
        // other threads but carry the parent's id.
        let spans = vec![
            span("gp.fit.restart", 2, 11, Some(("gp.fit", 10)), 5, 20),
            span("gp.fit.restart", 3, 12, Some(("gp.fit", 10)), 6, 25),
            span("gp.fit", 1, 10, None, 0, 40),
        ];
        let f = SpanForest::build(&spans).unwrap();
        assert_eq!(f.roots, vec![2]);
        assert_eq!(f.nodes[2].children, vec![0, 1]);
        assert_eq!(f.nodes[0].parent, Some(2));
        // Parallel children may sum past the parent: self time saturates.
        assert_eq!(f.children_dur_ns(2), 45);
        assert_eq!(f.self_ns(2), 0);
    }

    #[test]
    fn falls_back_to_containment_without_ids() {
        let mut outer = span("outer", 1, 0, None, 0, 100);
        outer.id = None;
        let mut inner = span("inner", 1, 0, None, 10, 30);
        inner.id = None;
        inner.parent = Some("outer".into());
        let spans = vec![inner, outer];
        let f = SpanForest::build(&spans).unwrap();
        assert_eq!(f.roots, vec![1]);
        assert_eq!(f.nodes[1].children, vec![0]);
        assert_eq!(f.self_ns(1), 70);
    }

    #[test]
    fn containment_picks_innermost_candidate() {
        let mk = |id: u64, start: u64, dur: u64| span("wrap", 1, id, None, start, dur);
        let mut child = span("leaf", 1, 99, None, 20, 5);
        child.parent = Some("wrap".into());
        child.parent_id = None;
        let spans = vec![child, mk(1, 0, 100), mk(2, 10, 40)];
        let f = SpanForest::build(&spans).unwrap();
        // Attached to the inner wrap (id 2), which itself has no parent.
        assert_eq!(f.nodes[0].parent, Some(2));
    }

    #[test]
    fn orphan_is_an_error_not_a_root() {
        let spans = vec![span("child", 1, 2, Some(("ghost", 77)), 0, 1)];
        match SpanForest::build(&spans) {
            Err(TreeError::MissingParent { name, parent }) => {
                assert_eq!(name, "child");
                assert_eq!(parent, "#77");
            }
            other => panic!("expected MissingParent, got {other:?}"),
        }
    }

    #[test]
    fn named_parent_without_candidate_is_an_error() {
        let mut child = span("child", 1, 0, None, 0, 1);
        child.id = None;
        child.parent = Some("ghost".into());
        assert!(matches!(
            SpanForest::build(&[child]),
            Err(TreeError::MissingParent { .. })
        ));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let spans = vec![span("a", 1, 5, None, 0, 1), span("b", 1, 5, None, 2, 1)];
        assert_eq!(
            SpanForest::build(&spans).unwrap_err(),
            TreeError::DuplicateId(5)
        );
    }

    #[test]
    fn cycle_detected() {
        let spans = vec![
            span("a", 1, 1, Some(("b", 2)), 0, 10),
            span("b", 1, 2, Some(("a", 1)), 0, 10),
        ];
        assert_eq!(SpanForest::build(&spans).unwrap_err(), TreeError::Cycle);
    }

    #[test]
    fn empty_forest_builds() {
        let f = SpanForest::build(&[]).unwrap();
        assert!(f.is_empty());
        assert!(f.roots.is_empty());
    }
}
