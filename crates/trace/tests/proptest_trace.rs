//! Property test: arbitrary span trees written through the v1 wire format
//! read back losslessly, and the reconstructed forest reproduces the
//! generating parent structure exactly.

use alperf_obs::event::SpanEvent;
use alperf_trace::{folded_stacks, read_trace, SpanForest};
use proptest::prelude::*;

const META: &str = "{\"v\":1,\"t\":\"meta\",\"schema\":\"alperf-obs-v1\",\"unit\":\"ns\"}";
const NAMES: [&str; 5] = ["al.iteration", "gp.fit", "gp.fit.restart", "chol", "x;y z"];

/// Deterministically derive a span tree from per-node seeds: node 0 is
/// the root, node `i > 0` hangs under `seeds[i] % i`. Returns the spans
/// in children-close-first emission order plus the parent index table.
fn tree_from_seeds(seeds: &[u64]) -> (Vec<SpanEvent>, Vec<Option<usize>>) {
    let n = seeds.len();
    let mut parents: Vec<Option<usize>> = vec![None; n];
    let mut spans = Vec::with_capacity(n);
    for i in 0..n {
        let parent_idx = if i == 0 {
            None
        } else {
            Some((seeds[i] % i as u64) as usize)
        };
        parents[i] = parent_idx;
        spans.push(SpanEvent {
            name: NAMES[(seeds[i] % NAMES.len() as u64) as usize].to_string(),
            tid: seeds[i] % 3 + 1,
            id: Some(i as u64 + 1),
            parent: parent_idx.map(|p| NAMES[(seeds[p] % NAMES.len() as u64) as usize].to_string()),
            parent_id: parent_idx.map(|p| p as u64 + 1),
            start_ns: i as u64 * 1_000,
            dur_ns: seeds[i] % 500_000,
        });
    }
    // Guards drop innermost-first: deeper nodes (higher index) close first.
    spans.reverse();
    (spans, parents)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn writer_reader_round_trip_is_lossless(
        seeds in prop::collection::vec(0u64..1_000_000, 1..24),
    ) {
        let (spans, parents) = tree_from_seeds(&seeds);

        let mut text = String::from(META);
        text.push('\n');
        for s in &spans {
            text.push_str(&s.to_line());
            text.push('\n');
        }

        let trace = read_trace(text.as_bytes()).expect("written trace must read");
        prop_assert_eq!(&trace.spans, &spans, "wire round trip dropped information");

        let forest = SpanForest::build(&trace.spans).expect("generated tree must connect");
        prop_assert_eq!(forest.len(), seeds.len());
        prop_assert_eq!(forest.roots.len(), 1);
        // The reconstructed parent of node id i+1 must be id parents[i]+1.
        for node in &forest.nodes {
            let i = (node.span.id.unwrap() - 1) as usize;
            let got = node.parent.map(|p| forest.nodes[p].span.id.unwrap());
            prop_assert_eq!(got, parents[i].map(|p| p as u64 + 1));
        }

        // Folded export is deterministic and covers every leaf path.
        let folded = folded_stacks(&forest);
        prop_assert_eq!(&folded, &folded_stacks(&forest));
        let leaves = forest.nodes.iter().filter(|n| n.children.is_empty()).count();
        prop_assert!(folded.lines().count() >= 1);
        prop_assert!(folded.lines().count() <= forest.len());
        prop_assert!(leaves >= 1);
    }
}
