//! Chaos-trace round trip: a checked-in `alperf-obs-v1` trace shaped like
//! a fault-injected campaign — a `cluster.measure_batch` root with
//! cross-thread `cluster.retry`/`cluster.failed` child spans, the
//! `cluster.fault_plan` replay record, and an AL run whose iteration
//! indices skip over a degraded (lost) iteration — must parse, reconstruct
//! into a connected forest, and produce byte-identical analytics. This
//! pins the trace toolchain's handling of the fault-injection vocabulary:
//! retry spans attach under the batch even though they fire on worker
//! threads, degraded iterations leave a record but no span, and the
//! self-time/critical-path/folded outputs stay stable.

use alperf_trace::{
    aggregate, child_coverage, critical_path, diff_traces, folded_stacks, read_path,
    significant_regressions, DiffConfig, SpanForest,
};
use std::path::Path;

fn fixture() -> alperf_trace::Trace {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/chaos.jsonl");
    read_path(&path).expect("chaos fixture must parse")
}

#[test]
fn chaos_trace_parses_with_fault_vocabulary() {
    let trace = fixture();
    assert_eq!(trace.schema, "alperf-obs-v1");
    assert_eq!(trace.spans.len(), 13);
    assert_eq!(trace.records.len(), 8);

    // The fault-plan record carries everything a replay needs.
    let plan = trace
        .records_named("cluster.fault_plan")
        .next()
        .expect("fault plan record");
    for key in [
        "plan_seed",
        "failure_rate",
        "permanent_fraction",
        "campaign_seed",
        "max_attempts",
        "base_backoff_ns",
    ] {
        assert!(plan.f64(key).is_some(), "fault_plan missing {key}");
    }

    // Retry records name the taxonomy and the backoff actually applied.
    let retries: Vec<_> = trace.records_named("cluster.retry").collect();
    assert_eq!(retries.len(), 3);
    for r in &retries {
        assert!(r.str("kind").is_some());
        assert!(r.f64("backoff_ns").unwrap() > 0.0);
    }
    let failed = trace
        .records_named("cluster.failed")
        .next()
        .expect("failed record");
    assert_eq!(failed.str("persistence"), Some("permanent"));
    assert_eq!(failed.f64("attempts"), Some(3.0));

    // The degraded iteration left a record but no al.iteration span/record
    // for its index: iter goes 0 -> 2 with 1 only in al.degraded_iteration.
    let iters: Vec<f64> = trace
        .records_named("al.iteration")
        .map(|r| r.f64("iter").unwrap())
        .collect();
    assert_eq!(iters, vec![0.0, 2.0]);
    let degraded = trace
        .records_named("al.degraded_iteration")
        .next()
        .expect("degraded record");
    assert_eq!(degraded.f64("iter"), Some(1.0));
    assert_eq!(degraded.f64("attempts"), Some(3.0));
}

#[test]
fn chaos_forest_attaches_retries_across_threads() {
    let trace = fixture();
    let forest = SpanForest::build(&trace.spans).expect("forest must connect");
    assert_eq!(forest.len(), 13);
    assert_eq!(forest.roots.len(), 3, "batch + two al.iterations");

    // Worker-side retry/failed spans (tids 2, 3) attach under the batch
    // span on tid 1 — the explicit-parent linkage the executor relies on.
    for name in ["cluster.retry", "cluster.failed"] {
        for i in forest.named(name) {
            let parent = forest.nodes[i].parent.expect("must have parent");
            assert_eq!(forest.nodes[parent].span.name, "cluster.measure_batch");
            assert_ne!(forest.nodes[parent].span.tid, forest.nodes[i].span.tid);
        }
    }
}

#[test]
fn chaos_analytics_are_byte_stable() {
    let trace = fixture();
    let forest = SpanForest::build(&trace.spans).unwrap();

    // Self times partition the roots' wall time (3000 + 900 + 800).
    let stats = aggregate(&forest);
    let total_self: u64 = stats.iter().map(|s| s.self_ns).sum();
    assert_eq!(total_self, 4700);

    // The batch decomposes into its retry/failed children.
    let cov = child_coverage(&forest, "cluster.measure_batch").unwrap();
    assert_eq!(cov.count, 1);
    assert_eq!(cov.total_ns, 3000);
    assert_eq!(cov.children_ns, 230);

    // Critical path through the batch ends at the terminal failure.
    let cp = critical_path(&forest, "cluster.measure_batch").unwrap();
    let names: Vec<&str> = cp.steps.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, vec!["cluster.measure_batch", "cluster.failed"]);

    assert_eq!(
        folded_stacks(&forest),
        include_str!("fixtures/chaos.folded"),
        "folded-stack bytes drifted from the checked-in chaos file"
    );
}

#[test]
fn chaos_self_diff_is_clean() {
    let trace = fixture();
    let diffs = diff_traces(&trace, &trace, &DiffConfig::default());
    assert_eq!(significant_regressions(&diffs), 0);
    assert!(diffs.iter().all(|d| !d.significant));
}
