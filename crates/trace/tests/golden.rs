//! Golden-fixture round trip: a checked-in `alperf-obs-v1` trace (shaped
//! like a two-iteration AL run, including a cross-thread `gp.fit.restart`
//! span) must parse, reconstruct into a connected forest, and produce
//! byte-identical folded-stack output. Any change to the parser, tree
//! builder, or folded exporter that alters bytes shows up here.

use alperf_trace::{
    aggregate, child_coverage, critical_path, diff_traces, folded_stacks, read_path,
    significant_regressions, DiffConfig, SpanForest,
};
use std::path::Path;

fn fixture() -> alperf_trace::Trace {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden.jsonl");
    read_path(&path).expect("golden fixture must parse")
}

#[test]
fn golden_trace_parses() {
    let trace = fixture();
    assert_eq!(trace.schema, "alperf-obs-v1");
    assert_eq!(trace.spans.len(), 12);
    assert_eq!(trace.records.len(), 2);
    let iters: Vec<f64> = trace
        .records_named("al.iteration")
        .map(|r| r.f64("iter").unwrap())
        .collect();
    assert_eq!(iters, vec![1.0, 2.0]);
}

#[test]
fn golden_forest_is_connected_with_cross_thread_restarts() {
    let trace = fixture();
    let forest = SpanForest::build(&trace.spans).expect("forest must connect");
    assert_eq!(forest.len(), 12);
    assert_eq!(forest.roots.len(), 2, "one root per al.iteration");

    // The rayon-side restart spans (tid 2 and 3) attach under gp.fit on
    // tid 1 — the exact linkage the explicit-parent fix exists for.
    for i in forest.named("gp.fit.restart") {
        let parent = forest.nodes[i].parent.expect("restart must have parent");
        assert_eq!(forest.nodes[parent].span.name, "gp.fit");
        assert_ne!(forest.nodes[parent].span.tid, forest.nodes[i].span.tid);
    }
}

#[test]
fn golden_iteration_decomposes_into_children() {
    let trace = fixture();
    let forest = SpanForest::build(&trace.spans).unwrap();
    let cov = child_coverage(&forest, "al.iteration").unwrap();
    assert_eq!(cov.count, 2);
    assert_eq!(cov.total_ns, 1700);
    assert_eq!(cov.children_ns, 1610);
    assert!(cov.pct() > 90.0);

    let stats = aggregate(&forest);
    let total_self: u64 = stats.iter().map(|s| s.self_ns).sum();
    assert_eq!(total_self, 1700, "self times partition the root wall time");

    let cp = critical_path(&forest, "al.iteration").unwrap();
    let names: Vec<&str> = cp.steps.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "al.iteration",
            "al.iteration.fit",
            "gp.fit",
            "gp.fit.restart"
        ]
    );
}

#[test]
fn golden_folded_output_is_byte_stable() {
    let trace = fixture();
    let forest = SpanForest::build(&trace.spans).unwrap();
    assert_eq!(
        folded_stacks(&forest),
        include_str!("fixtures/golden.folded"),
        "folded-stack bytes drifted from the checked-in golden file"
    );
}

#[test]
fn golden_self_diff_is_clean() {
    let trace = fixture();
    let diffs = diff_traces(&trace, &trace, &DiffConfig::default());
    assert_eq!(significant_regressions(&diffs), 0);
    assert!(diffs.iter().all(|d| !d.significant));
}
