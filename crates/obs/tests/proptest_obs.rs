//! Property-based tests for the histogram/counter internals.
//!
//! The log-linear histogram's quantiles are checked against a
//! sorted-vector nearest-rank oracle: the estimate must land in the same
//! log-linear bucket as the true order statistic (which bounds the
//! relative error by `1/SUB`), and the exact side statistics (count, sum,
//! min, max) must match the oracle exactly. Counters — plain and labeled
//! families — are hammered from many threads and must sum exactly per
//! label set; the family cardinality cap must route every excess tuple to
//! the overflow series without losing a count. The watchdog's stall
//! detection is driven through arbitrary beat/advance schedules on a
//! `FakeClock` and must flag exactly the keys whose idle gap crossed the
//! threshold.

use alperf_obs::labels::{CounterVec, HistogramVec, OVERFLOW_VALUE};
use alperf_obs::metrics::{bucket_bounds, bucket_index, Counter, Histogram, BUCKETS, SUB};
use alperf_obs::{FakeClock, Watchdog};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Nearest-rank quantile of a sorted slice (the oracle definition the
/// histogram mirrors).
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn bucket_bounds_invert_bucket_index(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "v={v} outside [{lo},{hi}]");
        // Relative bucket width is bounded by 1/SUB.
        prop_assert!(hi - lo <= lo.max(1) / SUB as u64 + 1);
    }

    #[test]
    fn quantiles_match_sorted_vector_oracle(
        values in prop::collection::vec(0u64..10_000_000_000u64, 1..400),
        q in 0.01f64..1.0f64,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();

        // Exact side statistics.
        let s = h.stats();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        prop_assert_eq!(s.min_ns, sorted[0]);
        prop_assert_eq!(s.max_ns, *sorted.last().unwrap());

        // The quantile estimate lives in the same log-linear bucket as the
        // true nearest-rank order statistic...
        let truth = oracle_quantile(&sorted, q);
        let est = h.quantile(q);
        prop_assert_eq!(
            bucket_index(est),
            bucket_index(truth),
            "q={} est={} truth={}",
            q,
            est,
            truth
        );
        // ...which bounds the relative error by the bucket width.
        let tol = (truth / SUB as u64).max(1);
        prop_assert!(
            est.abs_diff(truth) <= tol,
            "q={} est={} truth={} tol={}",
            q,
            est,
            truth,
            tol
        );
    }

    #[test]
    fn merged_histogram_equals_single_histogram(
        a in prop::collection::vec(0u64..1_000_000u64, 0..200),
        b in prop::collection::vec(0u64..1_000_000u64, 0..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.stats(), hall.stats());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.quantile(q), hall.quantile(q));
        }
    }
}

proptest! {
    // Thread-spawning and map-heavy cases: fewer, bigger cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent labeled increments through families equal the serial
    /// per-label-set sums — each thread resolves its own child handles,
    /// so the double-checked `with()` creation path races too.
    #[test]
    fn concurrent_labeled_increments_sum_exactly_per_series(
        ops in prop::collection::vec(prop::collection::vec(0usize..6, 1..200), 2..5),
    ) {
        let cv = Arc::new(CounterVec::new("prop.labeled.counter", &["series"]));
        let hv = Arc::new(HistogramVec::new("prop.labeled.hist", &["series"]));
        let handles: Vec<_> = ops
            .iter()
            .map(|thread_ops| {
                let cv = Arc::clone(&cv);
                let hv = Arc::clone(&hv);
                let thread_ops = thread_ops.clone();
                std::thread::spawn(move || {
                    for &i in &thread_ops {
                        let label = format!("s{i}");
                        cv.with(&[&label]).inc();
                        hv.with(&[&label]).record(i as u64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut expected: BTreeMap<usize, u64> = BTreeMap::new();
        for &i in ops.iter().flatten() {
            *expected.entry(i).or_insert(0) += 1;
        }
        let counts: BTreeMap<usize, u64> = cv
            .snapshot()
            .into_iter()
            .map(|(values, v)| (values[0][1..].parse().unwrap(), v))
            .collect();
        prop_assert_eq!(&counts, &expected);
        for (values, stats) in hv.snapshot() {
            let i: usize = values[0][1..].parse().unwrap();
            prop_assert_eq!(stats.count, expected[&i]);
            prop_assert_eq!(stats.sum, expected[&i] * i as u64);
        }
    }

    /// The cardinality cap keeps exactly the first `cap` distinct label
    /// sets as named series and routes every later tuple to the overflow
    /// series — no count is ever lost.
    #[test]
    fn cap_routes_excess_series_to_overflow_without_losing_counts(
        idxs in prop::collection::vec(0usize..20, 1..300),
        cap in 1usize..8,
    ) {
        let cv = CounterVec::with_cap("prop.cap", &["k"], cap);
        for &i in &idxs {
            cv.with(&[&format!("v{i:02}")]).inc();
        }
        // Model: first-come distinct labels up to `cap` get named series.
        let mut kept: Vec<usize> = Vec::new();
        for &i in &idxs {
            if !kept.contains(&i) && kept.len() < cap {
                kept.push(i);
            }
        }
        let mut expected: BTreeMap<String, u64> = BTreeMap::new();
        for &i in &idxs {
            let key = if kept.contains(&i) {
                format!("v{i:02}")
            } else {
                OVERFLOW_VALUE.to_string()
            };
            *expected.entry(key).or_insert(0) += 1;
        }
        let snapshot: BTreeMap<String, u64> = cv
            .snapshot()
            .into_iter()
            .map(|(values, v)| (values[0].clone(), v))
            .collect();
        prop_assert_eq!(&snapshot, &expected);
        let total: u64 = snapshot.values().sum();
        prop_assert_eq!(total, idxs.len() as u64);
    }

    /// Watchdog stall detection against a straightforward model: run an
    /// arbitrary beat/advance schedule on a FakeClock, then a final idle
    /// gap; `check()` must flag exactly the watched keys whose idle time
    /// exceeds the threshold.
    #[test]
    fn watchdog_flags_exactly_the_keys_past_threshold(
        schedule in prop::collection::vec((0usize..4, 0u64..800), 1..40),
        final_gap in 0u64..3_000,
    ) {
        const STALL_NS: u64 = 1_000;
        let clock = Arc::new(FakeClock::new());
        let wd = Watchdog::new(Arc::clone(&clock) as Arc<dyn alperf_obs::Clock>, STALL_NS);
        let mut now = 0u64;
        let mut last_beat: BTreeMap<usize, u64> = BTreeMap::new();
        for &(key, advance) in &schedule {
            clock.advance(advance);
            now += advance;
            wd.beat(&format!("k{key}"));
            last_beat.insert(key, now);
        }
        clock.advance(final_gap);
        now += final_gap;
        let expected: Vec<String> = last_beat
            .iter()
            .filter(|(_, &t)| now - t > STALL_NS)
            .map(|(k, _)| format!("k{k}"))
            .collect();
        let flagged: Vec<String> = wd.check().into_iter().map(|r| r.key).collect();
        prop_assert_eq!(&flagged, &expected, "stalled-key set diverged from model");
        // Flag-once: an immediate re-check reports nothing new.
        prop_assert!(wd.check().is_empty());
        // Recovery: beating every flagged key un-flags it; after another
        // full threshold of idleness *every* watched key has stalled (the
        // recovered ones again, the rest for the first time).
        for key in &expected {
            wd.beat(key);
        }
        prop_assert!(wd.flagged().is_empty());
        clock.advance(STALL_NS + 1);
        let reflagged: Vec<String> = wd.check().into_iter().map(|r| r.key).collect();
        let all_keys: Vec<String> = last_beat.keys().map(|k| format!("k{k}")).collect();
        prop_assert_eq!(&reflagged, &all_keys);
    }
}

#[test]
fn concurrent_counter_increments_sum_exactly() {
    let c = Arc::new(Counter::new());
    let threads = 8;
    let per_thread = 25_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    if (i + t) % 3 == 0 {
                        c.add(2);
                    } else {
                        c.inc();
                    }
                }
            })
        })
        .collect();
    let mut expected = 0u64;
    for t in 0..threads {
        for i in 0..per_thread {
            expected += if (i + t) % 3 == 0 { 2 } else { 1 };
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.get(), expected);
}

#[test]
fn concurrent_histogram_records_sum_exactly() {
    let h = Arc::new(Histogram::new());
    let threads = 8;
    let per_thread = 10_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    h.record(t * 1_000 + i);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let s = h.stats();
    assert_eq!(s.count, threads * per_thread);
    let expected_sum: u64 = (0..threads)
        .map(|t| (0..per_thread).map(|i| t * 1_000 + i).sum::<u64>())
        .sum();
    assert_eq!(s.sum, expected_sum);
    assert_eq!(s.min_ns, 0);
    assert_eq!(s.max_ns, (threads - 1) * 1_000 + per_thread - 1);
}
