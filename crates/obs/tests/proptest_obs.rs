//! Property-based tests for the histogram/counter internals.
//!
//! The log-linear histogram's quantiles are checked against a
//! sorted-vector nearest-rank oracle: the estimate must land in the same
//! log-linear bucket as the true order statistic (which bounds the
//! relative error by `1/SUB`), and the exact side statistics (count, sum,
//! min, max) must match the oracle exactly. Counters are hammered from
//! many threads and must sum exactly.

use alperf_obs::metrics::{bucket_bounds, bucket_index, Counter, Histogram, BUCKETS, SUB};
use proptest::prelude::*;
use std::sync::Arc;

/// Nearest-rank quantile of a sorted slice (the oracle definition the
/// histogram mirrors).
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn bucket_bounds_invert_bucket_index(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "v={v} outside [{lo},{hi}]");
        // Relative bucket width is bounded by 1/SUB.
        prop_assert!(hi - lo <= lo.max(1) / SUB as u64 + 1);
    }

    #[test]
    fn quantiles_match_sorted_vector_oracle(
        values in prop::collection::vec(0u64..10_000_000_000u64, 1..400),
        q in 0.01f64..1.0f64,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();

        // Exact side statistics.
        let s = h.stats();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        prop_assert_eq!(s.min_ns, sorted[0]);
        prop_assert_eq!(s.max_ns, *sorted.last().unwrap());

        // The quantile estimate lives in the same log-linear bucket as the
        // true nearest-rank order statistic...
        let truth = oracle_quantile(&sorted, q);
        let est = h.quantile(q);
        prop_assert_eq!(
            bucket_index(est),
            bucket_index(truth),
            "q={} est={} truth={}",
            q,
            est,
            truth
        );
        // ...which bounds the relative error by the bucket width.
        let tol = (truth / SUB as u64).max(1);
        prop_assert!(
            est.abs_diff(truth) <= tol,
            "q={} est={} truth={} tol={}",
            q,
            est,
            truth,
            tol
        );
    }

    #[test]
    fn merged_histogram_equals_single_histogram(
        a in prop::collection::vec(0u64..1_000_000u64, 0..200),
        b in prop::collection::vec(0u64..1_000_000u64, 0..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.stats(), hall.stats());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.quantile(q), hall.quantile(q));
        }
    }
}

#[test]
fn concurrent_counter_increments_sum_exactly() {
    let c = Arc::new(Counter::new());
    let threads = 8;
    let per_thread = 25_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    if (i + t) % 3 == 0 {
                        c.add(2);
                    } else {
                        c.inc();
                    }
                }
            })
        })
        .collect();
    let mut expected = 0u64;
    for t in 0..threads {
        for i in 0..per_thread {
            expected += if (i + t) % 3 == 0 { 2 } else { 1 };
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.get(), expected);
}

#[test]
fn concurrent_histogram_records_sum_exactly() {
    let h = Arc::new(Histogram::new());
    let threads = 8;
    let per_thread = 10_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    h.record(t * 1_000 + i);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let s = h.stats();
    assert_eq!(s.count, threads * per_thread);
    let expected_sum: u64 = (0..threads)
        .map(|t| (0..per_thread).map(|i| t * 1_000 + i).sum::<u64>())
        .sum();
    assert_eq!(s.sum, expected_sum);
    assert_eq!(s.min_ns, 0);
    assert_eq!(s.max_ns, (threads - 1) * 1_000 + per_thread - 1);
}
