//! Property-based tests for the tsdb retention tiers and the alert
//! engine's state machine.
//!
//! The ring/rollup store is checked against a naive full-history oracle:
//! replay an arbitrary scrape timeline into both, and the tsdb's raw ring
//! must equal the tail of the full point sequence while each rollup tier
//! must equal the tail of the bucketed sequence (same flush rule). Delta
//! conservation is checked under genuinely concurrent increments: however
//! the scraper interleaves with writer threads, the retained deltas must
//! telescope to the counter's final value. The alert engine is run
//! against an independently written reference state machine over
//! arbitrary advance/increment/evaluate schedules on a fabricated
//! [`FakeClock`] timeline, and the full transition sequence must match —
//! and replay bit-identically on a second run, which is the determinism
//! contract `trace_report`/CI rely on.

use alperf_obs::alerts::{Cmp, Condition, Engine, Rule};
use alperf_obs::tsdb::{Point, Tier, Tsdb, TsdbConfig, TIER_10S_NS, TIER_60S_NS};
use alperf_obs::{Clock, FakeClock, Registry};
use proptest::prelude::*;
use std::sync::Arc;

const S: u64 = 1_000_000_000;

/// Naive full-history model of one series: every raw point ever pushed,
/// plus per-tier bucketed sequences built with the same flush rule the
/// store uses (bucket start = `t / width * width`; flush when a scrape
/// lands in a later bucket; the open bucket is not yet visible).
#[derive(Default)]
struct ModelSeries {
    raw: Vec<Point>,
    total: u64,
}

impl ModelSeries {
    fn scrape(&mut self, t_ns: u64, value: u64) {
        let delta = value - self.total.min(value);
        self.total = value;
        self.raw.push(Point {
            t_ns,
            delta,
            total: value,
        });
    }

    /// Closed buckets of `width_ns`, oldest first.
    fn rollup(&self, width_ns: u64) -> Vec<Point> {
        let mut out = Vec::new();
        let mut open: Option<Point> = None;
        for p in &self.raw {
            let start = p.t_ns / width_ns * width_ns;
            match open.as_mut() {
                Some(b) if start <= b.t_ns => {
                    b.delta += p.delta;
                    b.total = p.total;
                }
                Some(b) => {
                    out.push(*b);
                    open = Some(Point {
                        t_ns: start,
                        delta: p.delta,
                        total: p.total,
                    });
                }
                None => {
                    open = Some(Point {
                        t_ns: start,
                        delta: p.delta,
                        total: p.total,
                    });
                }
            }
        }
        out
    }
}

fn tail(v: &[Point], cap: usize) -> Vec<Point> {
    v[v.len().saturating_sub(cap)..].to_vec()
}

proptest! {
    /// Ring + rollup contents equal the bounded tail of the full-history
    /// oracle for every tier, for arbitrary scrape timelines and ring
    /// geometries.
    #[test]
    fn rings_and_rollups_match_full_history_model(
        steps in prop::collection::vec((1u64..15, 0u64..100), 1..80),
        raw_cap in 1usize..12,
        rollup_cap in 1usize..6,
    ) {
        let reg = Registry::new();
        let tsdb = Tsdb::new(TsdbConfig {
            raw_capacity: raw_cap,
            rollup_capacity: rollup_cap,
            max_series: 64,
        });
        let c = reg.counter("prop.tsdb.series");
        let mut model = ModelSeries::default();
        let mut now = 0u64;
        let mut pushed = 0u64;
        for &(dt_s, add) in &steps {
            now += dt_s * S;
            c.add(add);
            pushed += add;
            tsdb.scrape_registry_at(&reg, now);
            model.scrape(now, pushed);
        }
        let q = |tier| {
            tsdb.query("prop.tsdb.series", 0, u64::MAX, Some(tier))
                .unwrap()
                .points
        };
        prop_assert_eq!(q(Tier::Raw), tail(&model.raw, raw_cap));
        prop_assert_eq!(q(Tier::R10s), tail(&model.rollup(TIER_10S_NS), rollup_cap));
        prop_assert_eq!(q(Tier::R60s), tail(&model.rollup(TIER_60S_NS), rollup_cap));
        // Telescoping: with no eviction, deltas in (a, b] sum to the
        // total difference — checked on the model, which the store's
        // tail must agree with pointwise (asserted above).
        let sum: u64 = model.raw.iter().map(|p| p.delta).sum();
        prop_assert_eq!(sum, pushed);
    }

    /// Auto-tier selection picks the finest tier whose retained history
    /// covers the query start.
    #[test]
    fn auto_tier_matches_coverage_rule(
        steps in prop::collection::vec((1u64..20, 0u64..10), 4..60),
        start_s in 0u64..400,
    ) {
        let reg = Registry::new();
        let (raw_cap, rollup_cap) = (4usize, 8usize);
        let tsdb = Tsdb::new(TsdbConfig {
            raw_capacity: raw_cap,
            rollup_capacity: rollup_cap,
            max_series: 64,
        });
        let c = reg.counter("prop.tsdb.auto");
        let mut model = ModelSeries::default();
        let mut now = 0u64;
        let mut pushed = 0u64;
        for &(dt_s, add) in &steps {
            now += dt_s * S;
            c.add(add);
            pushed += add;
            tsdb.scrape_registry_at(&reg, now);
            model.scrape(now, pushed);
        }
        let start = start_s * S;
        let got = tsdb.query("prop.tsdb.auto", start, u64::MAX, None).unwrap().tier;
        let covers = |pts: &[Point]| pts.first().map(|p| p.t_ns <= start).unwrap_or(false);
        let raw = tail(&model.raw, raw_cap);
        let r10 = tail(&model.rollup(TIER_10S_NS), rollup_cap);
        let r60 = tail(&model.rollup(TIER_60S_NS), rollup_cap);
        let expect = if covers(&raw) {
            Tier::Raw
        } else if covers(&r10) {
            Tier::R10s
        } else if !r60.is_empty() {
            Tier::R60s
        } else if !r10.is_empty() {
            Tier::R10s
        } else {
            Tier::Raw
        };
        prop_assert_eq!(got, expect);
    }
}

/// Reference implementation of the pending → firing → resolved machine,
/// written independently of `alerts.rs` (full-history window sums, plain
/// enum state).
struct RefMachine {
    window_ns: u64,
    threshold: u64,
    for_ns: u64,
    resolve_after_ns: u64,
    state: RefState,
}

#[derive(Clone, Copy, PartialEq)]
enum RefState {
    Inactive,
    Pending(u64),
    Firing(Option<u64>),
}

impl RefMachine {
    /// Evaluate at `now` over the full scrape history; returns the edge
    /// label pair if a transition fired.
    fn eval(&mut self, history: &[Point], now: u64) -> Option<(&'static str, &'static str)> {
        let from = now.saturating_sub(self.window_ns);
        let sum: u64 = history
            .iter()
            .filter(|p| p.t_ns > from && p.t_ns <= now)
            .map(|p| p.delta)
            .sum();
        let holds = sum >= self.threshold;
        match self.state {
            RefState::Inactive if holds => {
                if self.for_ns == 0 {
                    self.state = RefState::Firing(None);
                    Some(("inactive", "firing"))
                } else {
                    self.state = RefState::Pending(now);
                    Some(("inactive", "pending"))
                }
            }
            RefState::Pending(_) if !holds => {
                self.state = RefState::Inactive;
                Some(("pending", "inactive"))
            }
            RefState::Pending(since) if now.saturating_sub(since) >= self.for_ns => {
                self.state = RefState::Firing(None);
                Some(("pending", "firing"))
            }
            RefState::Firing(clear) if !holds => {
                let clear_since = clear.unwrap_or(now);
                if now.saturating_sub(clear_since) >= self.resolve_after_ns {
                    self.state = RefState::Inactive;
                    Some(("firing", "resolved"))
                } else {
                    self.state = RefState::Firing(Some(clear_since));
                    None
                }
            }
            RefState::Firing(Some(_)) if holds => {
                self.state = RefState::Firing(None);
                None
            }
            _ => None,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine's transition sequence equals the reference machine's
    /// over arbitrary advance/increment/scrape-evaluate schedules on a
    /// FakeClock timeline — and replaying the identical schedule yields
    /// the bit-identical sequence.
    #[test]
    fn alert_machine_matches_reference_model(
        ops in prop::collection::vec((0usize..3, 1u64..8, 0u64..6), 1..120),
        window_s in 1u64..20,
        threshold in 1u64..12,
        for_s in 0u64..6,
        resolve_s in 0u64..6,
    ) {
        let run = || {
            let clock = FakeClock::new();
            let reg = Registry::new();
            // Capacities large enough that nothing evicts: the reference
            // model keeps full history, so eviction would diverge (by
            // design — the engine only sees the raw ring).
            let tsdb = Tsdb::new(TsdbConfig {
                raw_capacity: 4096,
                rollup_capacity: 4096,
                max_series: 64,
            });
            let engine = Engine::new(vec![Rule::new(
                "prop.rule",
                Condition::Threshold {
                    series: "prop.alerts.series".to_string(),
                    cmp: Cmp::Ge,
                    value: threshold as f64,
                    window_ns: window_s * S,
                },
                for_s * S,
                resolve_s * S,
            )]);
            let mut reference = RefMachine {
                window_ns: window_s * S,
                threshold,
                for_ns: for_s * S,
                resolve_after_ns: resolve_s * S,
                state: RefState::Inactive,
            };
            let c = reg.counter("prop.alerts.series");
            let mut history: Vec<Point> = Vec::new();
            let mut total = 0u64;
            let mut engine_edges = Vec::new();
            let mut reference_edges = Vec::new();
            for &(kind, dt_s, amt) in &ops {
                match kind {
                    0 => clock.advance(dt_s * S),
                    1 => {
                        c.add(amt);
                        total += amt;
                    }
                    _ => {
                        let now = clock.now_ns();
                        tsdb.scrape_registry_at(&reg, now);
                        let delta = total - history.last().map(|p| p.total).unwrap_or(0);
                        history.push(Point { t_ns: now, delta, total });
                        for t in engine.evaluate_at(&tsdb, now) {
                            engine_edges.push((t.from, t.to, t.t_ns));
                        }
                        if let Some((from, to)) = reference.eval(&history, now) {
                            reference_edges.push((from, to, now));
                        }
                    }
                }
            }
            (engine_edges, reference_edges)
        };
        let (engine_edges, reference_edges) = run();
        prop_assert_eq!(&engine_edges, &reference_edges, "engine diverged from reference");
        let (replay, _) = run();
        prop_assert_eq!(&engine_edges, &replay, "replay was not bit-identical");
    }
}

/// Delta conservation under concurrency: writer threads hammer a counter
/// while the scraper samples it at fabricated timestamps; whatever the
/// interleaving, the final scrape's cumulative total must equal the
/// counter, and the retained deltas must telescope to it exactly (no
/// count lost or double-seen across scrape boundaries).
#[test]
fn concurrent_increments_conserve_scraped_deltas() {
    let reg = Arc::new(Registry::new());
    let tsdb = Tsdb::new(TsdbConfig {
        raw_capacity: 100_000,
        rollup_capacity: 4,
        max_series: 16,
    });
    let threads = 4;
    let per_thread = 20_000u64;
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                let c = reg.counter("prop.tsdb.conc");
                for _ in 0..per_thread {
                    c.inc();
                }
            })
        })
        .collect();
    // Scrape concurrently with the writers at fabricated times.
    let mut now = 0u64;
    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
        now += S;
        tsdb.scrape_registry_at(&reg, now);
        if handles.iter().all(|h| h.is_finished()) {
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    // Final scrape after all writers joined.
    tsdb.scrape_registry_at(&reg, now + S);
    let expected = threads as u64 * per_thread;
    assert_eq!(reg.counter("prop.tsdb.conc").get(), expected);
    assert_eq!(tsdb.last_total("prop.tsdb.conc"), Some(expected));
    let q = tsdb
        .query("prop.tsdb.conc", 0, u64::MAX, Some(Tier::Raw))
        .unwrap();
    let sum: u64 = q.points.iter().map(|p| p.delta).sum();
    assert_eq!(sum, expected, "deltas must telescope to the final total");
    // And the telescoping identity holds on any sub-window.
    let mid = q.points[q.points.len() / 2];
    assert_eq!(
        tsdb.window_sum("prop.tsdb.conc", mid.t_ns, u64::MAX),
        Some(expected - mid.total)
    );
}
