//! Black-box flight recorder: lock-free bounded rings of recent events.
//!
//! When [`arm`]ed, every span close and record emission also appends one
//! fixed-size slot to a per-thread seqlock ring. The rings hold only the
//! most recent events (old slots are overwritten in place), so memory is
//! bounded and the hot-path cost is a handful of relaxed stores — no
//! locks, no allocation after the ring exists. On a fault (worker panic,
//! terminal [`ExecError`]-style failure, or an installed panic hook) the
//! rings are drained and written as an `alperf-blackbox-v1` JSONL dump:
//! the flight recorder's answer to "what was every thread doing in the
//! seconds before it died". `trace_report --postmortem` renders the dump
//! as a span tree plus the alerts firing at the time of death.
//!
//! Dump schema `alperf-blackbox-v1`:
//!
//! ```json
//! {"v":1,"t":"meta","schema":"alperf-blackbox-v1","reason":"panic","dumped_at_ns":123}
//! {"v":1,"t":"bb","kind":"span","name":"gp.fit","tid":2,"t_ns":100,"dur_ns":40,"id":7,"pid":3}
//! {"v":1,"t":"bb","kind":"record","name":"al.iteration","tid":1,"t_ns":150,"dur_ns":0,"id":0,"pid":0}
//! {"v":1,"t":"alert","rule":"watchdog_stall","state":"firing","since_ns":90}
//! ```
//!
//! Readers must tolerate torn tails: a slot being overwritten during the
//! dump is skipped (its seqlock stamp fails the double-read check), so a
//! dump is always well-formed, just possibly one event short per thread.

use crate::clock::monotonic_ns;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Once};

/// Schema identifier written in the meta line of every dump.
pub const BLACKBOX_SCHEMA: &str = "alperf-blackbox-v1";

/// Default slots per thread ring.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Dead-thread rings retained for postmortems before the oldest are
/// pruned at registration time.
const MAX_RINGS: usize = 64;

/// Interned names kept before new names collapse to index 0 ("?").
const MAX_NAMES: usize = 4096;

const KIND_SPAN: u64 = 1;
const KIND_RECORD: u64 = 2;

/// One recorded event, as read back out of a ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlackboxEvent {
    /// `"span"` or `"record"`.
    pub kind: &'static str,
    /// Event name (interned; `"?"` if the intern table overflowed).
    pub name: String,
    /// Recording thread's sink thread id.
    pub tid: u64,
    /// Span start / record emission time (process-monotonic ns).
    pub t_ns: u64,
    /// Span duration (0 for records).
    pub dur_ns: u64,
    /// Span id (0 for records).
    pub id: u64,
    /// Parent span id (0 for roots and records).
    pub pid: u64,
}

// ---- name interner ----
// Span names are &'static str literals but record names may be dynamic;
// both intern to a u32 so a ring slot stays six u64s. Index 0 is the
// overflow/unknown sentinel.

struct Interner {
    by_name: BTreeMap<String, u32>,
    names: Vec<String>,
}

static NAMES: RwLock<Option<Interner>> = RwLock::new(None);

fn intern(name: &str) -> u32 {
    if let Some(i) = NAMES.read().as_ref().and_then(|t| t.by_name.get(name)) {
        return *i;
    }
    let mut guard = NAMES.write();
    let table = guard.get_or_insert_with(|| Interner {
        by_name: BTreeMap::new(),
        names: vec!["?".to_string()],
    });
    if let Some(i) = table.by_name.get(name) {
        return *i;
    }
    if table.names.len() >= MAX_NAMES {
        return 0;
    }
    let idx = table.names.len() as u32;
    table.names.push(name.to_string());
    table.by_name.insert(name.to_string(), idx);
    idx
}

fn resolve(idx: u32) -> String {
    NAMES
        .read()
        .as_ref()
        .and_then(|t| t.names.get(idx as usize).cloned())
        .unwrap_or_else(|| "?".to_string())
}

// ---- per-thread seqlock ring ----

struct Slot {
    /// Seqlock stamp: 0 = never written, odd = write in progress, even
    /// nonzero = stable. Writers are single-threaded per ring; the stamp
    /// only guards readers on *other* threads (the dumper).
    seq: AtomicU64,
    t_ns: AtomicU64,
    dur_ns: AtomicU64,
    id: AtomicU64,
    pid: AtomicU64,
    /// `kind << 32 | name_idx`.
    kind_name: AtomicU64,
}

struct Ring {
    tid: u64,
    head: AtomicUsize,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(tid: u64, capacity: usize) -> Ring {
        let slots: Vec<Slot> = (0..capacity.max(1))
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                t_ns: AtomicU64::new(0),
                dur_ns: AtomicU64::new(0),
                id: AtomicU64::new(0),
                pid: AtomicU64::new(0),
                kind_name: AtomicU64::new(0),
            })
            .collect();
        Ring {
            tid,
            head: AtomicUsize::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Single-writer append (only the owning thread calls this).
    fn push(&self, kind: u64, name_idx: u32, t_ns: u64, dur_ns: u64, id: u64, pid: u64) {
        let i = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let slot = &self.slots[i];
        slot.seq.fetch_add(1, Ordering::Release); // -> odd: in progress
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.id.store(id, Ordering::Relaxed);
        slot.pid.store(pid, Ordering::Relaxed);
        slot.kind_name
            .store(kind << 32 | name_idx as u64, Ordering::Relaxed);
        slot.seq.fetch_add(1, Ordering::Release); // -> even: stable
    }

    /// Drain stable slots (any thread). Torn slots are skipped.
    fn snapshot(&self, out: &mut Vec<BlackboxEvent>) {
        for slot in self.slots.iter() {
            for _ in 0..4 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 || s1 % 2 == 1 {
                    break;
                }
                let t_ns = slot.t_ns.load(Ordering::Relaxed);
                let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
                let id = slot.id.load(Ordering::Relaxed);
                let pid = slot.pid.load(Ordering::Relaxed);
                let kind_name = slot.kind_name.load(Ordering::Relaxed);
                std::sync::atomic::fence(Ordering::Acquire);
                if slot.seq.load(Ordering::Relaxed) != s1 {
                    continue; // torn by a concurrent overwrite; retry
                }
                let kind = match kind_name >> 32 {
                    KIND_SPAN => "span",
                    KIND_RECORD => "record",
                    _ => break,
                };
                out.push(BlackboxEvent {
                    kind,
                    name: resolve((kind_name & 0xffff_ffff) as u32),
                    tid: self.tid,
                    t_ns,
                    dur_ns,
                    id,
                    pid,
                });
                break;
            }
        }
    }
}

// ---- global state ----

static ARMED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

thread_local! {
    static MY_RING: std::cell::RefCell<Option<Arc<Ring>>> =
        const { std::cell::RefCell::new(None) };
}

/// Is the flight recorder armed? One relaxed load — the hot-path gate.
#[inline(always)]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arm the recorder with `capacity` slots per thread ring (existing
/// thread rings keep their size). Recording starts immediately.
pub fn arm(capacity: usize) {
    CAPACITY.store(capacity.max(1), Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
}

/// Stop recording. Rings and their contents are retained, so a dump after
/// disarm still sees the final moments.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
}

/// Set (or clear) the file [`dump_on_fault`] and the panic hook write to.
pub fn set_dump_path(path: Option<PathBuf>) {
    *DUMP_PATH.lock() = path;
}

/// The configured fault-dump path, if any.
pub fn dump_path() -> Option<PathBuf> {
    DUMP_PATH.lock().clone()
}

fn with_ring(f: impl FnOnce(&Ring)) {
    MY_RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_none() {
            let ring = Arc::new(Ring::new(
                crate::sink::thread_id(),
                CAPACITY.load(Ordering::Relaxed),
            ));
            let mut rings = RINGS.lock();
            // Rings of dead threads stay dumpable; prune the oldest only
            // once thread churn would grow the registry unboundedly.
            if rings.len() >= MAX_RINGS {
                let mut kept: Vec<Arc<Ring>> = rings
                    .drain(..)
                    .filter(|r| Arc::strong_count(r) > 1)
                    .collect();
                std::mem::swap(&mut *rings, &mut kept);
            }
            rings.push(Arc::clone(&ring));
            *slot = Some(ring);
        }
        f(slot.as_ref().unwrap());
    });
}

/// Record a closed span (called from the span guard's drop when armed).
pub fn note_span(name: &'static str, id: u64, pid: u64, start_ns: u64, dur_ns: u64) {
    if !armed() {
        return;
    }
    let idx = intern(name);
    with_ring(|r| r.push(KIND_SPAN, idx, start_ns, dur_ns, id, pid));
}

/// Record an emitted record event (called from [`crate::record`] when
/// armed).
pub fn note_record(name: &str) {
    if !armed() {
        return;
    }
    let idx = intern(name);
    with_ring(|r| r.push(KIND_RECORD, idx, monotonic_ns(), 0, 0, 0));
}

/// Drain every thread ring into one time-sorted event list.
pub fn snapshot() -> Vec<BlackboxEvent> {
    let rings: Vec<Arc<Ring>> = RINGS.lock().iter().map(Arc::clone).collect();
    let mut out = Vec::new();
    for ring in &rings {
        ring.snapshot(&mut out);
    }
    out.sort_by_key(|e| (e.t_ns, e.tid, e.id));
    out
}

/// Write an `alperf-blackbox-v1` dump of every ring (plus the alerts
/// currently firing on the global engine) to `path`, truncating. Returns
/// the number of `bb` event lines written.
pub fn dump_to(path: &Path, reason: &str) -> std::io::Result<usize> {
    let events = snapshot();
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let mut meta = String::with_capacity(96);
    meta.push_str("{\"v\":1,\"t\":\"meta\",\"schema\":\"");
    meta.push_str(BLACKBOX_SCHEMA);
    meta.push_str("\",\"reason\":");
    crate::json::escape_into(&mut meta, reason);
    meta.push_str(&format!(",\"dumped_at_ns\":{}}}", monotonic_ns()));
    writeln!(w, "{meta}")?;
    for e in &events {
        let mut line = String::with_capacity(128);
        line.push_str("{\"v\":1,\"t\":\"bb\",\"kind\":\"");
        line.push_str(e.kind);
        line.push_str("\",\"name\":");
        crate::json::escape_into(&mut line, &e.name);
        line.push_str(&format!(
            ",\"tid\":{},\"t_ns\":{},\"dur_ns\":{},\"id\":{},\"pid\":{}}}",
            e.tid, e.t_ns, e.dur_ns, e.id, e.pid
        ));
        writeln!(w, "{line}")?;
    }
    if let Some(engine) = crate::alerts::global() {
        for r in engine.snapshot() {
            if r.state == crate::alerts::AlertState::Firing {
                let mut line = String::with_capacity(96);
                line.push_str("{\"v\":1,\"t\":\"alert\",\"rule\":");
                crate::json::escape_into(&mut line, &r.rule);
                line.push_str(&format!(
                    ",\"state\":\"firing\",\"since_ns\":{}}}",
                    r.since_ns
                ));
                writeln!(w, "{line}")?;
            }
        }
    }
    w.flush()?;
    // Count unconditionally (dumps are rare and always noteworthy), not
    // through the telemetry-enabled gate.
    crate::registry::global()
        .counter(crate::names::OBS_BLACKBOX_DUMPS)
        .inc();
    Ok(events.len())
}

/// Fault-path dump: write to the configured [`set_dump_path`] file if the
/// recorder is armed and a path is set; errors are swallowed (the caller
/// is already on a failure path). Returns the dump path when a dump was
/// written.
pub fn dump_on_fault(reason: &str) -> Option<PathBuf> {
    if !armed() {
        return None;
    }
    let path = dump_path()?;
    dump_to(&path, reason).ok().map(|_| path)
}

/// Install a process panic hook (once) that dumps the rings before
/// delegating to the previous hook. A no-op dump when the recorder is
/// disarmed or has no dump path.
pub fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_on_fault("panic");
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rings_record_and_snapshot_in_time_order() {
        let _l = crate::tests::TEST_LOCK.lock();
        arm(DEFAULT_CAPACITY);
        note_span("unit.bbring.alpha", 11, 0, 100, 40);
        note_span("unit.bbring.beta", 12, 11, 120, 10);
        note_record("unit.bbring.rec");
        disarm();
        let events = snapshot();
        let mine: Vec<&BlackboxEvent> = events
            .iter()
            .filter(|e| e.name.starts_with("unit.bbring."))
            .collect();
        assert_eq!(mine.len(), 3);
        assert_eq!(mine[0].name, "unit.bbring.alpha");
        assert_eq!(mine[0].kind, "span");
        assert_eq!((mine[0].id, mine[0].pid, mine[0].dur_ns), (11, 0, 40));
        assert_eq!(mine[1].pid, 11);
        assert_eq!(mine[2].kind, "record");
        assert!(mine[2].t_ns >= mine[1].t_ns);
    }

    #[test]
    fn disarmed_notes_are_noops() {
        let _l = crate::tests::TEST_LOCK.lock();
        disarm();
        let before = snapshot().len();
        note_span("unit.bb.disarmed", 1, 0, 1, 1);
        note_record("unit.bb.disarmed");
        assert_eq!(snapshot().len(), before);
        assert!(!snapshot().iter().any(|e| e.name == "unit.bb.disarmed"));
    }

    #[test]
    fn ring_overwrites_keep_only_recent() {
        let _l = crate::tests::TEST_LOCK.lock();
        // Force a tiny ring on a fresh thread so this test owns it.
        arm(8);
        let events = std::thread::spawn(|| {
            for k in 0..50u64 {
                note_span("unit.bb.wrap", 1000 + k, 0, k, 1);
            }
            let mut out = Vec::new();
            MY_RING.with(|c| c.borrow().as_ref().unwrap().snapshot(&mut out));
            out
        })
        .join()
        .unwrap();
        disarm();
        assert_eq!(events.len(), 8);
        assert!(
            events.iter().all(|e| e.t_ns >= 42),
            "only the tail survives"
        );
    }

    #[test]
    fn dump_writes_schema_meta_events_and_firing_alerts() {
        let _l = crate::tests::TEST_LOCK.lock();
        arm(DEFAULT_CAPACITY);
        note_span("unit.bb.dump", 21, 0, 10, 5);
        disarm();
        // A firing rule so the dump carries an alert line.
        let tsdb = crate::tsdb::install(crate::tsdb::TsdbConfig::default());
        let engine = crate::alerts::install(vec![crate::alerts::Rule::new(
            "unit.bb.rule",
            crate::alerts::Condition::Threshold {
                series: "unit.bb.dump.hits".to_string(),
                cmp: crate::alerts::Cmp::Ge,
                value: 1.0,
                window_ns: u64::MAX,
            },
            0,
            0,
        )]);
        let reg = crate::registry::Registry::new();
        reg.counter("unit.bb.dump.hits").inc();
        tsdb.scrape_registry_at(&reg, 1_000);
        engine.evaluate_at(&tsdb, 1_000);
        let path =
            std::env::temp_dir().join(format!("alperf_bb_dump_{}.jsonl", std::process::id()));
        let n = dump_to(&path, "unit-test").unwrap();
        crate::alerts::uninstall();
        crate::tsdb::uninstall();
        assert!(n >= 1);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut lines = text.lines();
        let meta = crate::json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(
            meta.get("schema").and_then(crate::json::Json::as_str),
            Some(BLACKBOX_SCHEMA)
        );
        assert_eq!(
            meta.get("reason").and_then(crate::json::Json::as_str),
            Some("unit-test")
        );
        let rest: Vec<_> = lines.map(|l| crate::json::parse(l).unwrap()).collect();
        assert!(rest.iter().any(|j| {
            j.get("t").and_then(crate::json::Json::as_str) == Some("bb")
                && j.get("name").and_then(crate::json::Json::as_str) == Some("unit.bb.dump")
        }));
        assert!(rest.iter().any(|j| {
            j.get("t").and_then(crate::json::Json::as_str) == Some("alert")
                && j.get("rule").and_then(crate::json::Json::as_str) == Some("unit.bb.rule")
        }));
    }

    #[test]
    fn dump_on_fault_needs_arm_and_path() {
        let _l = crate::tests::TEST_LOCK.lock();
        disarm();
        set_dump_path(None);
        assert_eq!(dump_on_fault("x"), None);
        arm(DEFAULT_CAPACITY);
        assert_eq!(dump_on_fault("x"), None, "no path set");
        let path =
            std::env::temp_dir().join(format!("alperf_bb_fault_{}.jsonl", std::process::id()));
        set_dump_path(Some(path.clone()));
        note_record("unit.bb.fault");
        assert_eq!(dump_on_fault("fault"), Some(path.clone()));
        disarm();
        set_dump_path(None);
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .contains("\"reason\":\"fault\""));
        std::fs::remove_file(&path).ok();
    }
}
