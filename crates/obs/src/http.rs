//! Minimal HTTP endpoint for live scraping: `/metrics` + `/health`.
//!
//! A std-`TcpListener` server — no framework, no async runtime — serving
//! exactly what a Prometheus scraper (or a `curl` in CI) needs:
//!
//! * `GET /metrics` — the registry's text exposition
//!   ([`crate::registry::Registry::prometheus_snapshot`]), rendered fresh
//!   per request (`text/plain; version=0.0.4`).
//! * `GET /health` — `ok` with the process's watched/flagged watchdog
//!   counts, `200` while the process serves.
//! * anything else — `404`.
//!
//! The accept loop runs on one background thread in non-blocking mode
//! with a short poll sleep, so shutdown needs no self-connect trick and
//! a wedged client cannot hold the loop (per-connection read timeout).
//! The server is opt-in via the `ALPERF_OBS_HTTP` environment variable
//! (see [`serve_from_env`]); nothing listens unless asked.
//!
//! [`fetch`] is the matching std-`TcpStream` one-shot client used by
//! `live_report` and the CI smoke to scrape the endpoint without adding
//! an HTTP dependency.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable gating the endpoint: unset/empty/`0` = off,
/// `1` = `127.0.0.1:0` (ephemeral port), anything else = bind address.
pub const ENV_HTTP: &str = "ALPERF_OBS_HTTP";

/// A running metrics endpoint. Dropping (or [`HttpServer::shutdown`])
/// stops the accept loop and joins the thread.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// The bound address (resolves the port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0`) and serve `/metrics` + `/health` on a
/// background thread until shutdown.
pub fn serve(addr: &str) -> std::io::Result<HttpServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("alperf-obs-http".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => handle_connection(stream),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        })?;
    Ok(HttpServer {
        addr,
        stop,
        join: Some(join),
    })
}

/// Start the endpoint if [`ENV_HTTP`] asks for one. Returns `None` when
/// the variable is unset/off, `Some(Err)` when a bind was requested but
/// failed — callers decide whether that is fatal.
pub fn serve_from_env() -> Option<std::io::Result<HttpServer>> {
    let value = std::env::var(ENV_HTTP).ok()?;
    let value = value.trim();
    if value.is_empty() || value == "0" {
        return None;
    }
    let addr = if value == "1" { "127.0.0.1:0" } else { value };
    Some(serve(addr))
}

fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    // Read until the end of the request head (or timeout). Only the
    // request line matters; bodies are not supported.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 256];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = route(method, path);
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.flush();
}

/// Dispatch one request to its response. Pure, so unit tests cover the
/// routing table without sockets.
fn route(method: &str, path: &str) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".into(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            crate::registry::global().prometheus_snapshot(),
        ),
        "/health" => {
            let wd = crate::watchdog::global();
            (
                "200 OK",
                "text/plain",
                format!(
                    "ok\nwatched {}\nstalled {}\n",
                    wd.watched(),
                    wd.flagged().len()
                ),
            )
        }
        _ => ("404 Not Found", "text/plain", "not found\n".into()),
    }
}

/// One-shot HTTP GET against `addr` with a std `TcpStream`: returns
/// `(status code, body)`. This is the scrape client the CI smoke uses.
pub fn fetch(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let body = match response.find("\r\n\r\n") {
        Some(i) => response[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_cover_metrics_health_and_404() {
        let (status, ct, _) = route("GET", "/metrics");
        assert_eq!(status, "200 OK");
        assert!(ct.starts_with("text/plain; version=0.0.4"));
        let (status, _, body) = route("GET", "/health");
        assert_eq!(status, "200 OK");
        assert!(body.starts_with("ok\n"));
        assert_eq!(route("GET", "/nope").0, "404 Not Found");
        assert_eq!(route("POST", "/metrics").0, "405 Method Not Allowed");
    }

    #[test]
    fn serves_metrics_over_a_real_socket() {
        let _l = crate::tests::TEST_LOCK.lock();
        crate::set_enabled(true);
        crate::inc("test.http.hits");
        crate::set_enabled(false);
        let server = serve("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let (status, body) = fetch(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("alperf_test_http_hits_total"));
        crate::registry::validate_exposition(&body).unwrap();
        let (status, body) = fetch(addr, "/health").unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with("ok"));
        let (status, _) = fetch(addr, "/missing").unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn env_gate_off_means_no_server() {
        // Unset or "0" must not bind anything.
        std::env::remove_var(ENV_HTTP);
        assert!(serve_from_env().is_none());
    }
}
