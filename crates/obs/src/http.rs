//! Minimal HTTP endpoint for live scraping: `/metrics`, `/query`,
//! `/alerts`, `/health`.
//!
//! A std-`TcpListener` server — no framework, no async runtime — serving
//! exactly what a Prometheus scraper (or a `curl` in CI) needs:
//!
//! * `GET /metrics` — the registry's text exposition
//!   ([`crate::registry::Registry::prometheus_snapshot`]), rendered fresh
//!   per request (`text/plain; version=0.0.4`).
//! * `GET /query?name=<series>&last_s=<n>&tier=<raw|10s|60s>` — a range
//!   query against the installed [`crate::tsdb`] store
//!   (`alperf-tsdb-query-v1` JSON); without `name`, the series list.
//! * `GET /alerts` — the installed [`crate::alerts`] engine's rule states
//!   and recent transitions (`alperf-alerts-v1` JSON).
//! * `GET /health` — real liveness: `200 ok` plus watchdog watched/
//!   stalled counts, the stalled key list, and the firing-alert count;
//!   `503 stalled` when any watchdog key is stalled (append `?compat=1`
//!   for the legacy always-200 behavior).
//! * anything else — `404`.
//!
//! The accept loop runs on one background thread in non-blocking mode
//! with a short poll sleep, so shutdown needs no self-connect trick and
//! a wedged client cannot hold the loop (per-connection read timeout).
//! The server is opt-in via the `ALPERF_OBS_HTTP` environment variable
//! (see [`serve_from_env`]); nothing listens unless asked.
//!
//! [`fetch`] is the matching std-`TcpStream` one-shot client used by
//! `live_report` and the CI smoke to scrape the endpoint without adding
//! an HTTP dependency.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable gating the endpoint: unset/empty/`0` = off,
/// `1` = `127.0.0.1:0` (ephemeral port), anything else = bind address.
pub const ENV_HTTP: &str = "ALPERF_OBS_HTTP";

/// A running metrics endpoint. Dropping (or [`HttpServer::shutdown`])
/// stops the accept loop and joins the thread.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// The bound address (resolves the port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0`) and serve `/metrics` + `/health` on a
/// background thread until shutdown.
pub fn serve(addr: &str) -> std::io::Result<HttpServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("alperf-obs-http".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => handle_connection(stream),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        })?;
    Ok(HttpServer {
        addr,
        stop,
        join: Some(join),
    })
}

/// Start the endpoint if [`ENV_HTTP`] asks for one. Returns `None` when
/// the variable is unset/off, `Some(Err)` when a bind was requested but
/// failed — callers decide whether that is fatal.
pub fn serve_from_env() -> Option<std::io::Result<HttpServer>> {
    let value = std::env::var(ENV_HTTP).ok()?;
    let value = value.trim();
    if value.is_empty() || value == "0" {
        return None;
    }
    let addr = if value == "1" { "127.0.0.1:0" } else { value };
    Some(serve(addr))
}

fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    // Read until the end of the request head (or timeout). Only the
    // request line matters; bodies are not supported.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 256];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = route(method, path);
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.flush();
}

/// Dispatch one request to its response. Pure, so unit tests cover the
/// routing table without sockets. The request target arrives with any
/// query string still attached; it is split off here.
fn route(method: &str, path: &str) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".into(),
        );
    }
    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path, ""),
    };
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            crate::registry::global().prometheus_snapshot(),
        ),
        "/query" => route_query(query),
        "/alerts" => match crate::alerts::global() {
            Some(engine) => ("200 OK", "application/json", engine.to_json()),
            None => (
                "200 OK",
                "application/json",
                "{\"schema\":\"alperf-alerts-v1\",\"installed\":false,\"firing\":0,\
                 \"rules\":[],\"transitions\":[]}"
                    .into(),
            ),
        },
        "/health" => route_health(query),
        _ => ("404 Not Found", "text/plain", "not found\n".into()),
    }
}

/// `/health`: watchdog + alert liveness. Stalled watchdog keys flip the
/// status to 503 unless the legacy `compat=1` flag asks for 200-only.
fn route_health(query: &str) -> (&'static str, &'static str, String) {
    let wd = crate::watchdog::global();
    let stalled = wd.flagged();
    let compat = query.split('&').any(|kv| kv == "compat=1");
    let healthy = stalled.is_empty();
    let mut body = String::with_capacity(96);
    body.push_str(if healthy || compat {
        "ok\n"
    } else {
        "stalled\n"
    });
    body.push_str(&format!(
        "watched {}\nstalled {}\n",
        wd.watched(),
        stalled.len()
    ));
    for key in &stalled {
        body.push_str(&format!("stalled_key {key}\n"));
    }
    body.push_str(&format!(
        "alerts_firing {}\n",
        crate::alerts::firing_count_global()
    ));
    if healthy || compat {
        ("200 OK", "text/plain", body)
    } else {
        ("503 Service Unavailable", "text/plain", body)
    }
}

/// `/query`: range queries against the installed tsdb.
fn route_query(query: &str) -> (&'static str, &'static str, String) {
    let Some(tsdb) = crate::tsdb::global() else {
        return (
            "200 OK",
            "application/json",
            "{\"schema\":\"alperf-tsdb-query-v1\",\"installed\":false}".into(),
        );
    };
    let Some(name) = query_param(query, "name") else {
        // No series named: list what the store holds.
        let mut body = String::with_capacity(128);
        body.push_str("{\"schema\":\"alperf-tsdb-series-v1\",\"installed\":true,\"series\":[");
        for (i, s) in tsdb.series_names().iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            crate::json::escape_into(&mut body, s);
        }
        body.push_str("]}");
        return ("200 OK", "application/json", body);
    };
    let last_s = query_param(query, "last_s")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(60);
    let tier = query_param(query, "tier").and_then(|t| crate::tsdb::Tier::parse(&t));
    let now = crate::clock::monotonic_ns();
    let start = now.saturating_sub(last_s.saturating_mul(1_000_000_000));
    match tsdb.query(&name, start, now, tier) {
        Some(result) => ("200 OK", "application/json", result.to_json()),
        None => (
            "404 Not Found",
            "application/json",
            "{\"error\":\"unknown series\"}".into(),
        ),
    }
}

/// Extract and percent-decode one query-string parameter.
fn query_param(query: &str, key: &str) -> Option<String> {
    query.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then(|| percent_decode(v))
    })
}

/// Minimal percent-decoding (`%XX` + `+` as space) — enough for series
/// names carrying label blocks like `name{k="v"}`.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// One-shot HTTP GET against `addr` with a std `TcpStream`: returns
/// `(status code, body)`. This is the scrape client the CI smoke uses.
pub fn fetch(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let body = match response.find("\r\n\r\n") {
        Some(i) => response[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_cover_metrics_health_and_404() {
        let _l = crate::tests::TEST_LOCK.lock();
        let (status, ct, _) = route("GET", "/metrics");
        assert_eq!(status, "200 OK");
        assert!(ct.starts_with("text/plain; version=0.0.4"));
        let (status, _, body) = route("GET", "/health");
        assert_eq!(status, "200 OK");
        assert!(body.starts_with("ok\n"));
        assert!(body.contains("alerts_firing "));
        assert_eq!(route("GET", "/nope").0, "404 Not Found");
        assert_eq!(route("POST", "/metrics").0, "405 Method Not Allowed");
    }

    #[test]
    fn health_reports_stalls_as_503_unless_compat() {
        let _l = crate::tests::TEST_LOCK.lock();
        let wd = crate::watchdog::global();
        wd.beat("unit.http.stalled");
        // Force the key stale against the system clock, then check.
        wd.set_stall_after_ns(1);
        std::thread::sleep(std::time::Duration::from_millis(2));
        wd.check();
        let (status, _, body) = route("GET", "/health");
        assert_eq!(status, "503 Service Unavailable");
        assert!(body.starts_with("stalled\n"));
        assert!(body.contains("stalled_key unit.http.stalled"));
        let (status, _, body) = route("GET", "/health?compat=1");
        assert_eq!(status, "200 OK");
        assert!(body.starts_with("ok\n"));
        // Clear every flagged key (the 1 ns threshold may have tripped
        // bystander keys beaten by other tests) and restore the default.
        for key in wd.flagged() {
            wd.clear(&key);
        }
        wd.set_stall_after_ns(crate::watchdog::DEFAULT_STALL_NS);
        let (status, _, _) = route("GET", "/health");
        assert_eq!(status, "200 OK");
    }

    #[test]
    fn query_endpoint_serves_series_lists_and_ranges() {
        let _l = crate::tests::TEST_LOCK.lock();
        crate::tsdb::uninstall();
        let (_, _, body) = route("GET", "/query?name=x");
        assert!(body.contains("\"installed\":false"));
        let tsdb = crate::tsdb::install(crate::tsdb::TsdbConfig::default());
        let reg = crate::registry::Registry::new();
        reg.counter("unit.http.series").add(3);
        // Scrape at "now" so the default last_s=60 window covers it.
        tsdb.scrape_registry_at(&reg, crate::clock::monotonic_ns());
        let (status, ct, body) = route("GET", "/query");
        assert_eq!(status, "200 OK");
        assert_eq!(ct, "application/json");
        assert!(body.contains("unit.http.series"));
        let (status, _, body) = route("GET", "/query?name=unit.http.series&last_s=3600");
        assert_eq!(status, "200 OK");
        let j = crate::json::parse(&body).unwrap();
        assert_eq!(
            j.get("schema").and_then(crate::json::Json::as_str),
            Some("alperf-tsdb-query-v1")
        );
        assert_eq!(
            route("GET", "/query?name=unit.http.nope").0,
            "404 Not Found"
        );
        crate::tsdb::uninstall();
    }

    #[test]
    fn alerts_endpoint_reflects_installation() {
        let _l = crate::tests::TEST_LOCK.lock();
        crate::alerts::uninstall();
        let (status, ct, body) = route("GET", "/alerts");
        assert_eq!(status, "200 OK");
        assert_eq!(ct, "application/json");
        assert!(body.contains("\"installed\":false"));
        crate::alerts::install(crate::alerts::default_rules());
        let (_, _, body) = route("GET", "/alerts");
        assert!(body.contains("\"installed\":true"));
        assert!(body.contains("watchdog_stall"));
        crate::alerts::uninstall();
    }

    #[test]
    fn percent_decoding_handles_label_blocks() {
        assert_eq!(percent_decode("a.b"), "a.b");
        assert_eq!(
            percent_decode("al.fit%7Btier%3D%22exact%22%7D"),
            "al.fit{tier=\"exact\"}"
        );
        assert_eq!(percent_decode("a+b%2"), "a b%2");
    }

    #[test]
    fn serves_metrics_over_a_real_socket() {
        let _l = crate::tests::TEST_LOCK.lock();
        crate::set_enabled(true);
        crate::inc("test.http.hits");
        crate::set_enabled(false);
        let server = serve("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let (status, body) = fetch(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("alperf_test_http_hits_total"));
        crate::registry::validate_exposition(&body).unwrap();
        let (status, body) = fetch(addr, "/health").unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with("ok"));
        let (status, _) = fetch(addr, "/missing").unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn env_gate_off_means_no_server() {
        // Unset or "0" must not bind anything.
        std::env::remove_var(ENV_HTTP);
        assert!(serve_from_env().is_none());
    }
}
