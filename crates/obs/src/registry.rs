//! Name → metric registry and the Prometheus-style snapshot exporter.

use crate::metrics::{Counter, HistStats, Histogram};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// A collection of named counters and histograms.
///
/// The process-wide instance lives behind [`global`]; tests that need
/// isolation can hold their own `Registry`. Lookups take a read lock and
/// clone an `Arc`; callers on hot paths should cache the handle (or gate
/// on [`crate::enabled`], as [`crate::inc`] does).
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get-or-create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// All counters as `(name, value)`, name-sorted.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All histograms as `(name, stats)`, name-sorted.
    pub fn histograms_snapshot(&self) -> Vec<(String, HistStats)> {
        self.histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.stats()))
            .collect()
    }

    /// Zero every metric (handles stay valid — existing `Arc`s keep
    /// recording into the same, now-empty, metrics).
    pub fn reset(&self) {
        for c in self.counters.read().values() {
            c.reset();
        }
        for h in self.histograms.read().values() {
            h.reset();
        }
    }

    /// Render every metric in the Prometheus text exposition format.
    /// Counters become `<name>_total`; histograms become summaries with
    /// p50/p90/p99 quantile series plus `_sum`/`_count`/`_min`/`_max`.
    pub fn prometheus_snapshot(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counters_snapshot() {
            let m = format!("alperf_{}_total", sanitize(&name));
            out.push_str(&format!("# TYPE {m} counter\n{m} {value}\n"));
        }
        for (name, s) in self.histograms_snapshot() {
            let m = format!("alperf_{}_ns", sanitize(&name));
            out.push_str(&format!("# TYPE {m} summary\n"));
            for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                out.push_str(&format!("{m}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{m}_sum {}\n", s.sum));
            out.push_str(&format!("{m}_count {}\n", s.count));
            out.push_str(&format!("{m}_min {}\n", s.min_ns));
            out.push_str(&format!("{m}_max {}\n", s.max_ns));
        }
        out
    }

    /// A compact human-readable table of all span histograms (the run
    /// report's footer): count, total ms, min/p50/p99 ms per name.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let hists = self.histograms_snapshot();
        if hists.is_empty() {
            return out;
        }
        out.push_str(&format!(
            "{:<28} {:>8} {:>12} {:>10} {:>10} {:>10}\n",
            "span", "count", "total ms", "min ms", "p50 ms", "p99 ms"
        ));
        for (name, s) in hists {
            if s.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<28} {:>8} {:>12.3} {:>10.3} {:>10.3} {:>10.3}\n",
                name,
                s.count,
                s.sum as f64 / 1e6,
                s.min_ns as f64 / 1e6,
                s.p50 as f64 / 1e6,
                s.p99 as f64 / 1e6,
            ));
        }
        out
    }
}

/// Prometheus metric-name sanitization: `[a-zA-Z0-9_]` pass through,
/// everything else becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_metric() {
        let r = Registry::new();
        r.counter("a").add(3);
        r.counter("a").add(4);
        assert_eq!(r.counter("a").get(), 7);
        r.histogram("h").record(10);
        assert_eq!(r.histogram("h").stats().count, 1);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = Registry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        let names: Vec<String> = r.counters_snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a".to_string(), "z".to_string()]);
    }

    #[test]
    fn prometheus_format_shape() {
        let r = Registry::new();
        r.counter("al.cache.hit").add(5);
        r.histogram("gp.fit").record(1_000_000);
        let text = r.prometheus_snapshot();
        assert!(text.contains("# TYPE alperf_al_cache_hit_total counter"));
        assert!(text.contains("alperf_al_cache_hit_total 5"));
        assert!(text.contains("# TYPE alperf_gp_fit_ns summary"));
        assert!(text.contains("alperf_gp_fit_ns{quantile=\"0.5\"}"));
        assert!(text.contains("alperf_gp_fit_ns_count 1"));
    }

    #[test]
    fn reset_keeps_handles_valid() {
        let r = Registry::new();
        let c = r.counter("x");
        c.add(9);
        r.reset();
        assert_eq!(r.counter("x").get(), 0);
        c.inc();
        assert_eq!(r.counter("x").get(), 1);
    }

    #[test]
    fn summary_table_lists_nonempty_histograms() {
        let r = Registry::new();
        r.histogram("seen").record(2_000_000);
        r.histogram("empty");
        let t = r.summary_table();
        assert!(t.contains("seen"));
        assert!(!t.contains("empty"));
    }
}
