//! Name → metric registry and the Prometheus-style snapshot exporter.

use crate::labels::{render_label_block, CounterVec, HistogramVec};
use crate::metrics::{Counter, HistStats, Histogram};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// A collection of named counters and histograms, plus labeled families
/// ([`CounterVec`]/[`HistogramVec`]).
///
/// The process-wide instance lives behind [`global`]; tests that need
/// isolation can hold their own `Registry`. Lookups take a read lock and
/// clone an `Arc`; callers on hot paths should cache the handle (or gate
/// on [`crate::enabled`], as [`crate::inc`] does). Labeled call sites
/// cache the *child* handle — `registry.counter_vec(...).with(...)` once
/// per campaign, then relaxed atomics per event.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    counter_vecs: RwLock<BTreeMap<String, Arc<CounterVec>>>,
    histogram_vecs: RwLock<BTreeMap<String, Arc<HistogramVec>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get-or-create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Get-or-create the labeled counter family named `name` over label
    /// keys `keys`. The first declaration of a family fixes its keys (and
    /// cap); later calls return the existing family regardless of the
    /// keys passed — families are schema, declared once in
    /// [`crate::names`] and referenced from call sites.
    pub fn counter_vec(&self, name: &str, keys: &[&'static str]) -> Arc<CounterVec> {
        if let Some(v) = self.counter_vecs.read().get(name) {
            return Arc::clone(v);
        }
        Arc::clone(
            self.counter_vecs
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(CounterVec::new(name, keys))),
        )
    }

    /// Get-or-create the labeled histogram family named `name`; same
    /// first-declaration-wins semantics as [`Registry::counter_vec`].
    pub fn histogram_vec(&self, name: &str, keys: &[&'static str]) -> Arc<HistogramVec> {
        if let Some(v) = self.histogram_vecs.read().get(name) {
            return Arc::clone(v);
        }
        Arc::clone(
            self.histogram_vecs
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(HistogramVec::new(name, keys))),
        )
    }

    /// All counters as `(name, value)`, name-sorted.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All histograms as `(name, stats)`, name-sorted.
    pub fn histograms_snapshot(&self) -> Vec<(String, HistStats)> {
        self.histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.stats()))
            .collect()
    }

    /// All histograms as `(name, handle)`, name-sorted — for consumers
    /// (the tsdb scraper) that need more than [`HistStats`], e.g. the
    /// span exemplar.
    pub fn histogram_handles(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// All labeled counter families, name-sorted.
    pub fn counter_vecs_snapshot(&self) -> Vec<Arc<CounterVec>> {
        self.counter_vecs.read().values().map(Arc::clone).collect()
    }

    /// All labeled histogram families, name-sorted.
    pub fn histogram_vecs_snapshot(&self) -> Vec<Arc<HistogramVec>> {
        self.histogram_vecs
            .read()
            .values()
            .map(Arc::clone)
            .collect()
    }

    /// Zero every metric (handles stay valid — existing `Arc`s keep
    /// recording into the same, now-empty, metrics).
    pub fn reset(&self) {
        for c in self.counters.read().values() {
            c.reset();
        }
        for h in self.histograms.read().values() {
            h.reset();
        }
        for v in self.counter_vecs.read().values() {
            v.reset();
        }
        for v in self.histogram_vecs.read().values() {
            v.reset();
        }
    }

    /// Render every metric in the Prometheus text exposition format.
    /// Counters become `<name>_total`; histograms become summaries with
    /// p50/p90/p99 quantile series plus `_sum`/`_count`/`_min`/`_max`.
    /// Labeled families render one series per label tuple with values
    /// escaped per the exposition format.
    ///
    /// The output is **byte-stable**: metric blocks sort by exposition
    /// name, label tuples within a family sort by value, so two
    /// snapshots of identical metric state are identical strings no
    /// matter the registration order or thread interleaving that built
    /// the state.
    pub fn prometheus_snapshot(&self) -> String {
        // name -> rendered blocks (a plain metric and a family may
        // sanitize to the same exposition name; both blocks are kept,
        // in plain-then-family order).
        let mut blocks: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (name, value) in self.counters_snapshot() {
            let m = format!("alperf_{}_total", sanitize(&name));
            let b = format!("# TYPE {m} counter\n{m} {value}\n");
            blocks.entry(m).or_default().push(b);
        }
        for (name, s) in self.histograms_snapshot() {
            let m = format!("alperf_{}_ns", sanitize(&name));
            let b = format!("# TYPE {m} summary\n{}", render_series(&m, &[], &[], &s));
            blocks.entry(m).or_default().push(b);
        }
        for fam in self.counter_vecs_snapshot() {
            let m = format!("alperf_{}_total", sanitize(fam.name()));
            let mut b = format!("# TYPE {m} counter\n");
            for (values, v) in fam.snapshot() {
                let lbl = render_label_block(fam.keys(), &values, None);
                b.push_str(&format!("{m}{lbl} {v}\n"));
            }
            blocks.entry(m).or_default().push(b);
        }
        for fam in self.histogram_vecs_snapshot() {
            let m = format!("alperf_{}_ns", sanitize(fam.name()));
            let mut b = format!("# TYPE {m} summary\n");
            for (values, s) in fam.snapshot() {
                b.push_str(&render_series(&m, fam.keys(), &values, &s));
            }
            blocks.entry(m).or_default().push(b);
        }
        let mut out = String::new();
        for bs in blocks.values() {
            for b in bs {
                out.push_str(b);
            }
        }
        out
    }

    /// A compact human-readable table of all span histograms (the run
    /// report's footer): count, total ms, min/p50/p99 ms per name.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let hists = self.histograms_snapshot();
        if hists.is_empty() {
            return out;
        }
        out.push_str(&format!(
            "{:<28} {:>8} {:>12} {:>10} {:>10} {:>10}\n",
            "span", "count", "total ms", "min ms", "p50 ms", "p99 ms"
        ));
        for (name, s) in hists {
            if s.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<28} {:>8} {:>12.3} {:>10.3} {:>10.3} {:>10.3}\n",
                name,
                s.count,
                s.sum as f64 / 1e6,
                s.min_ns as f64 / 1e6,
                s.p50 as f64 / 1e6,
                s.p99 as f64 / 1e6,
            ));
        }
        out
    }
}

/// One summary series (quantiles + `_sum`/`_count`/`_min`/`_max`) for the
/// label tuple `values`, without the `# TYPE` line.
fn render_series(m: &str, keys: &[&'static str], values: &[String], s: &HistStats) -> String {
    let mut b = String::new();
    for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
        let lbl = render_label_block(keys, values, Some(("quantile", q)));
        b.push_str(&format!("{m}{lbl} {v}\n"));
    }
    let lbl = render_label_block(keys, values, None);
    b.push_str(&format!("{m}_sum{lbl} {}\n", s.sum));
    b.push_str(&format!("{m}_count{lbl} {}\n", s.count));
    b.push_str(&format!("{m}_min{lbl} {}\n", s.min_ns));
    b.push_str(&format!("{m}_max{lbl} {}\n", s.max_ns));
    b
}

/// Prometheus metric-name sanitization: `[a-zA-Z0-9_]` pass through,
/// everything else becomes `_`.
pub(crate) fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Validate a Prometheus text exposition body: every line must be a
/// `# TYPE`/`# HELP` comment or a `name[{labels}] value` sample with a
/// well-formed metric name, correctly quoted/escaped label values, and a
/// parseable numeric value. Returns the number of sample lines.
///
/// This is the checker the CI smoke and `live_report` run against the
/// `/metrics` endpoint — deliberately strict about exactly the things the
/// satellite hardening covers (name charset, label escaping).
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() || line.starts_with("# ") {
            continue;
        }
        let rest = parse_metric_name(line).ok_or(format!("line {n}: bad metric name: {line:?}"))?;
        let rest = if let Some(after) = rest.strip_prefix('{') {
            parse_labels(after).ok_or(format!("line {n}: malformed labels: {line:?}"))?
        } else {
            rest
        };
        let value = rest.trim();
        if value.is_empty()
            || value
                .split_whitespace()
                .next()
                .unwrap()
                .parse::<f64>()
                .is_err()
        {
            return Err(format!("line {n}: unparseable value: {line:?}"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition body".to_string());
    }
    Ok(samples)
}

/// Consume a metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`) from the start of
/// `line`; return the remainder, or `None` on an invalid name.
fn parse_metric_name(line: &str) -> Option<&str> {
    let mut chars = line.char_indices();
    match chars.next() {
        Some((_, c)) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return None,
    }
    for (i, c) in chars {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            continue;
        }
        if c == '{' || c == ' ' {
            return Some(&line[i..]);
        }
        return None;
    }
    None // a name with no value is not a sample line
}

/// Consume a `k="v",...}` label-block tail (the leading `{` is already
/// stripped); return the remainder after `}`, or `None` when malformed.
fn parse_labels(mut rest: &str) -> Option<&str> {
    loop {
        // key
        let eq = rest.find('=')?;
        let key = &rest[..eq];
        if key.is_empty()
            || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            || !key.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_')
        {
            return None;
        }
        rest = rest[eq + 1..].strip_prefix('"')?;
        // quoted value with \\, \", \n escapes
        let mut chars = rest.char_indices();
        let close = loop {
            let (i, c) = chars.next()?;
            match c {
                '\\' => {
                    let (_, e) = chars.next()?;
                    if !matches!(e, '\\' | '"' | 'n') {
                        return None;
                    }
                }
                '"' => break i,
                '\n' => return None, // raw newline inside a value
                _ => {}
            }
        };
        rest = &rest[close + 1..];
        match rest.chars().next()? {
            ',' => rest = &rest[1..],
            '}' => return Some(&rest[1..]),
            _ => return None,
        }
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_metric() {
        let r = Registry::new();
        r.counter("a").add(3);
        r.counter("a").add(4);
        assert_eq!(r.counter("a").get(), 7);
        r.histogram("h").record(10);
        assert_eq!(r.histogram("h").stats().count, 1);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = Registry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        let names: Vec<String> = r.counters_snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a".to_string(), "z".to_string()]);
    }

    #[test]
    fn prometheus_format_shape() {
        let r = Registry::new();
        r.counter("al.cache.hit").add(5);
        r.histogram("gp.fit").record(1_000_000);
        let text = r.prometheus_snapshot();
        assert!(text.contains("# TYPE alperf_al_cache_hit_total counter"));
        assert!(text.contains("alperf_al_cache_hit_total 5"));
        assert!(text.contains("# TYPE alperf_gp_fit_ns summary"));
        assert!(text.contains("alperf_gp_fit_ns{quantile=\"0.5\"}"));
        assert!(text.contains("alperf_gp_fit_ns_count 1"));
    }

    #[test]
    fn reset_keeps_handles_valid() {
        let r = Registry::new();
        let c = r.counter("x");
        c.add(9);
        r.reset();
        assert_eq!(r.counter("x").get(), 0);
        c.inc();
        assert_eq!(r.counter("x").get(), 1);
    }

    #[test]
    fn summary_table_lists_nonempty_histograms() {
        let r = Registry::new();
        r.histogram("seen").record(2_000_000);
        r.histogram("empty");
        let t = r.summary_table();
        assert!(t.contains("seen"));
        assert!(!t.contains("empty"));
    }

    #[test]
    fn labeled_families_render_sorted_series() {
        let r = Registry::new();
        let v = r.counter_vec("al.campaign.iterations", &["campaign", "strategy"]);
        v.with(&["2", "cost_effective"]).add(7);
        v.with(&["1", "variance_reduction"]).add(3);
        let h = r.histogram_vec("gp.fit.by_tier", &["tier"]);
        h.with(&["sparse"]).record(10);
        h.with(&["exact"]).record(20);
        let text = r.prometheus_snapshot();
        assert!(text.contains("# TYPE alperf_al_campaign_iterations_total counter"));
        let a = text
            .find("alperf_al_campaign_iterations_total{campaign=\"1\",strategy=\"variance_reduction\"} 3")
            .unwrap();
        let b = text
            .find(
                "alperf_al_campaign_iterations_total{campaign=\"2\",strategy=\"cost_effective\"} 7",
            )
            .unwrap();
        assert!(a < b, "label tuples must render value-sorted");
        assert!(text.contains("alperf_gp_fit_by_tier_ns{tier=\"exact\",quantile=\"0.5\"} 20"));
        assert!(text.contains("alperf_gp_fit_by_tier_ns_sum{tier=\"sparse\"} 10"));
        assert!(text.contains("alperf_gp_fit_by_tier_ns_count{tier=\"exact\"} 1"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn adversarial_label_values_escape_and_validate() {
        let r = Registry::new();
        let v = r.counter_vec("evil family name!", &["fault_kind"]);
        v.with(&["quote\" backslash\\ newline\n end"]).inc();
        v.with(&["{},=\"\\"]).inc();
        let text = r.prometheus_snapshot();
        // Name fully sanitized; values quoted with only legal escapes.
        assert!(text.contains("# TYPE alperf_evil_family_name__total counter"));
        assert!(text.contains(
            r#"alperf_evil_family_name__total{fault_kind="quote\" backslash\\ newline\n end"} 1"#
        ));
        assert!(!text.contains('\u{0}'));
        // No raw newline may survive inside a quoted value: every line
        // must independently validate.
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn snapshot_is_byte_stable_across_registration_order() {
        let build = |order: &[usize]| {
            let r = Registry::new();
            let families = ["fam.a", "fam.b", "fam.c"];
            for &i in order {
                let v = r.counter_vec(families[i], &["k"]);
                v.with(&["x"]).add(i as u64 + 1);
                r.counter(families[i]).add(10 + i as u64);
                r.histogram(families[i]).record(100 * (i as u64 + 1));
            }
            r.prometheus_snapshot()
        };
        assert_eq!(build(&[0, 1, 2]), build(&[2, 0, 1]));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_exposition("ok_metric 1\n").is_ok());
        assert!(validate_exposition("9starts_with_digit 1\n").is_err());
        assert!(validate_exposition("name{k=\"unterminated} 1\n").is_err());
        assert!(validate_exposition("name{k=\"bad\\q\"} 1\n").is_err());
        assert!(validate_exposition("name{k=\"v\"} not_a_number\n").is_err());
        assert!(validate_exposition("name{k=\"v\",} 1\n").is_err());
        assert!(validate_exposition("").is_err());
    }
}
