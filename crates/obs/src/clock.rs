//! Wall-clock abstraction.
//!
//! All telemetry time comes from a [`Clock`] so that tests can inject a
//! [`FakeClock`] and make job timings exact and reproducible instead of
//! depending on the scheduler's mood. Production code uses [`SystemClock`]
//! (monotone, nanoseconds since the first read in this process).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotone nanosecond clock.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds. Only differences are meaningful.
    fn now_ns(&self) -> u64;
}

/// Nanoseconds since the process-wide epoch (first call wins).
pub fn monotonic_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// The real clock: [`monotonic_ns`] behind the [`Clock`] trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        monotonic_ns()
    }
}

/// A deterministic test clock.
///
/// Every [`Clock::now_ns`] call returns the current reading and then
/// advances it by the configured step, so two consecutive reads are
/// exactly `step` apart — which makes span durations assertable to the
/// nanosecond. [`FakeClock::advance`] moves time manually on top.
#[derive(Debug, Default)]
pub struct FakeClock {
    now: AtomicU64,
    step: AtomicU64,
}

impl FakeClock {
    /// A clock frozen at 0 (advance it manually).
    pub fn new() -> Self {
        FakeClock::default()
    }

    /// A clock that advances by `step_ns` on every read.
    pub fn with_step(step_ns: u64) -> Self {
        FakeClock {
            now: AtomicU64::new(0),
            step: AtomicU64::new(step_ns),
        }
    }

    /// Advance the clock by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }

    /// Set the absolute reading.
    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::Relaxed);
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now
            .fetch_add(self.step.load(Ordering::Relaxed), Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock;
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_steps_exactly() {
        let c = FakeClock::with_step(250);
        let a = c.now_ns();
        let b = c.now_ns();
        assert_eq!(b - a, 250);
        c.advance(1_000);
        let d = c.now_ns();
        assert_eq!(d - b, 250 + 1_000);
    }

    #[test]
    fn frozen_clock_needs_manual_advance() {
        let c = FakeClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0);
        c.set(42);
        assert_eq!(c.now_ns(), 42);
    }
}
