//! Cooperative stack-sampling profiler.
//!
//! The span machinery already knows every thread's live span stack — it
//! just keeps it in a thread-local only the owning thread can see. This
//! module adds a *shared mirror* of that stack per thread: when the
//! sampler is armed ([`arm`] / [`start`]), every span open/close also
//! pushes/pops the span name on the thread's mirror (one relaxed atomic
//! load plus a short uncontended mutex op; nothing at all when disarmed).
//! A background sampler thread then sweeps all mirrors at a configurable
//! Hz, folding each non-idle thread's stack into an in-process
//! `stack -> sample count` table and emitting a schema-versioned
//! `sample` line to the JSONL sink when one is installed
//! ([`crate::sink::emit_sample`]).
//!
//! "Cooperative" is the design point: no signals, no ptrace, no unwinding
//! — threads publish their own stacks, the sampler only reads. That keeps
//! the profiler deterministic-by-construction with respect to the
//! workload (it observes, never perturbs numerics — the AL bit-identity
//! test runs with the sampler armed) and portable to any OS the std
//! library supports.
//!
//! Sampling is statistical wall-clock profiling: a stack's share of
//! samples estimates its share of wall time, including time blocked on
//! I/O or locks — which is exactly the view the span-duration histograms
//! cannot give while a span is still open. [`folded_snapshot`] exports
//! the table in folded-stack format for flamegraph tooling; `trace`-side
//! analysis merges emitted sample lines with span-derived stacks.

use crate::clock::monotonic_ns;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default sampling rate for [`start`] when none is configured.
pub const DEFAULT_HZ: f64 = 97.0;

/// One thread's shared span-stack mirror. The owning thread writes on
/// span open/close (only while armed); the sampler thread reads.
struct ThreadMirror {
    tid: u64,
    stack: Mutex<Vec<&'static str>>,
}

/// Armed flag: the one-relaxed-load gate every span open/close pays while
/// telemetry is enabled. Disarmed means span guards never touch mirrors.
static ARMED: AtomicBool = AtomicBool::new(false);

/// All live thread mirrors. Mirrors of exited threads are pruned during
/// sweeps (the thread-local handle is the only other strong reference).
static MIRRORS: Mutex<Vec<Arc<ThreadMirror>>> = Mutex::new(Vec::new());

/// Folded `stack -> sample count` accumulator, sorted by stack key.
static FOLDED: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

thread_local! {
    static MIRROR: Arc<ThreadMirror> = {
        let m = Arc::new(ThreadMirror {
            tid: crate::sink::thread_id(),
            stack: Mutex::new(Vec::new()),
        });
        MIRRORS.lock().push(Arc::clone(&m));
        m
    };
}

/// Is the profiler currently armed? Span guards consult this once per
/// open/close.
#[inline(always)]
pub(crate) fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Push `name` onto this thread's mirror (span open, armed only).
pub(crate) fn mirror_push(name: &'static str) {
    MIRROR.with(|m| m.stack.lock().push(name));
}

/// Pop this thread's mirror (span close; called only when the matching
/// open pushed, so arming mid-span keeps mirrors balanced).
pub(crate) fn mirror_pop() {
    MIRROR.with(|m| {
        m.stack.lock().pop();
    });
}

/// Arm the profiler: subsequent span opens/closes maintain the mirrors.
/// Spans already open when arming happens are *not* backfilled — their
/// frames appear once re-entered, which is the cooperative contract.
pub fn arm() {
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarm the profiler. Open spans that pushed a mirror frame still pop
/// it on drop (the guard remembers), so mirrors drain cleanly.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
}

/// Take one sample of every thread: snapshot each non-empty mirror, fold
/// it into the in-process table, and emit a `sample` trace line per
/// thread when a sink is installed. Returns the sampled
/// `(tid, folded stack key)` pairs, thread-id-sorted — the deterministic
/// building block the background loop (and any test) drives.
pub fn sample_once() -> Vec<(u64, String)> {
    let mirrors: Vec<Arc<ThreadMirror>> = {
        let mut mirrors = MIRRORS.lock();
        // Prune exited threads: their thread-local handle has dropped,
        // leaving this registry as the only owner.
        mirrors.retain(|m| Arc::strong_count(m) > 1);
        mirrors.iter().map(Arc::clone).collect()
    };
    let mut out: Vec<(u64, String)> = Vec::new();
    for m in mirrors {
        let frames: Vec<&'static str> = m.stack.lock().clone();
        if frames.is_empty() {
            continue;
        }
        let t_ns = monotonic_ns();
        crate::sink::emit_sample(m.tid, t_ns, frames.iter().copied());
        out.push((m.tid, frames.join(";")));
    }
    out.sort();
    if !out.is_empty() {
        let mut folded = FOLDED.lock();
        for (_, key) in &out {
            *folded.entry(key.clone()).or_insert(0) += 1;
        }
        crate::registry::global()
            .counter(crate::names::OBS_PROFILER_SAMPLES)
            .add(out.len() as u64);
    }
    out
}

/// The folded-stack table accumulated so far, rendered one
/// `frame;frame;... count` line per stack, key-sorted (byte-stable).
pub fn folded_snapshot() -> String {
    let folded = FOLDED.lock();
    let mut out = String::new();
    for (key, count) in folded.iter() {
        out.push_str(&format!("{key} {count}\n"));
    }
    out
}

/// Total samples folded so far.
pub fn samples_folded() -> u64 {
    FOLDED.lock().values().sum()
}

/// Clear the folded-stack table (between benchmark phases / tests).
pub fn reset_folded() {
    FOLDED.lock().clear();
}

/// A running background sampler. Dropping (or calling
/// [`SamplerHandle::stop`]) disarms the profiler and joins the thread.
pub struct SamplerHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl SamplerHandle {
    /// Stop the sampler thread and disarm the profiler.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        disarm();
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Arm the profiler and start the background sampler thread at `hz`
/// samples per second (clamped to [1, 10_000]). Each tick sweeps every
/// thread mirror ([`sample_once`]) and then runs the global watchdog:
/// a thread whose leaf span is unchanged since the previous tick stops
/// "beating", so a long-stuck span eventually flags as stalled, and
/// campaign heartbeats (beaten by the AL runner) are checked on the same
/// cadence. One sampler at a time is the supported configuration.
pub fn start(hz: f64) -> SamplerHandle {
    let period = Duration::from_secs_f64(1.0 / hz.clamp(1.0, 10_000.0));
    arm();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("alperf-sampler".into())
        .spawn(move || {
            let wd = crate::watchdog::global();
            let mut prev_leaf: BTreeMap<u64, String> = BTreeMap::new();
            while !stop_flag.load(Ordering::Relaxed) {
                let sampled = sample_once();
                let mut seen: BTreeMap<u64, String> = BTreeMap::new();
                for (tid, key) in sampled {
                    seen.insert(tid, key);
                }
                for (tid, key) in &seen {
                    if prev_leaf.get(tid) != Some(key) {
                        wd.beat(&format!("thread:{tid}"));
                    }
                }
                // Threads that went idle stop being watched — idleness
                // is not a stall.
                for tid in prev_leaf.keys() {
                    if !seen.contains_key(tid) {
                        wd.clear(&format!("thread:{tid}"));
                    }
                }
                prev_leaf = seen;
                let _ = wd.check();
                std::thread::sleep(period);
            }
        })
        .expect("spawn sampler thread");
    SamplerHandle {
        stop,
        join: Some(join),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_once_sees_armed_spans_only() {
        let _l = crate::tests::TEST_LOCK.lock();
        crate::set_enabled(true);
        reset_folded();
        {
            let _outer = crate::span("test.prof.unarmed");
            assert!(sample_once().is_empty(), "disarmed spans must not mirror");
        }
        arm();
        {
            let _outer = crate::span("test.prof.outer");
            let _inner = crate::span("test.prof.inner");
            let sampled = sample_once();
            assert_eq!(sampled.len(), 1);
            assert_eq!(sampled[0].1, "test.prof.outer;test.prof.inner");
            let _ = sample_once();
        }
        // All spans closed: nothing to sample.
        assert!(sample_once().is_empty());
        disarm();
        crate::set_enabled(false);
        let folded = folded_snapshot();
        assert_eq!(folded, "test.prof.outer;test.prof.inner 2\n");
        assert_eq!(samples_folded(), 2);
        reset_folded();
    }

    #[test]
    fn arming_mid_span_keeps_mirror_balanced() {
        let _l = crate::tests::TEST_LOCK.lock();
        crate::set_enabled(true);
        reset_folded();
        let outer = crate::span("test.prof.pre_arm");
        arm();
        {
            let _inner = crate::span("test.prof.post_arm");
            // The pre-arm frame is absent by contract; only post-arm shows.
            let sampled = sample_once();
            assert_eq!(sampled.len(), 1);
            assert_eq!(sampled[0].1, "test.prof.post_arm");
        }
        drop(outer); // must not pop the mirror below empty
        {
            let _again = crate::span("test.prof.again");
            let sampled = sample_once();
            assert_eq!(sampled[0].1, "test.prof.again");
        }
        disarm();
        crate::set_enabled(false);
        reset_folded();
    }

    #[test]
    fn sampler_thread_collects_cross_thread_stacks() {
        let _l = crate::tests::TEST_LOCK.lock();
        crate::set_enabled(true);
        reset_folded();
        let handle = start(2_000.0);
        let worker = std::thread::spawn(|| {
            let _s = crate::span("test.prof.worker_busy");
            std::thread::sleep(Duration::from_millis(30));
        });
        worker.join().unwrap();
        handle.stop();
        crate::set_enabled(false);
        assert!(
            folded_snapshot().contains("test.prof.worker_busy"),
            "sampler missed a 30ms span at 2kHz: {:?}",
            folded_snapshot()
        );
        reset_folded();
    }
}
