//! Streaming in-process aggregation of telemetry records.
//!
//! The JSONL sink is post-hoc: you learn what a campaign did after it
//! finished. This module is the *live* view — an [`Aggregator`] observes
//! the same record stream ([`crate::record`] forwards every record when
//! an aggregator is installed) and maintains rolling windows per
//! campaign: iteration rate, RMSE/σ trend over the window, pool-cache
//! warmth, degraded-iteration counts, plus a process-wide retry-pressure
//! window fed by the cluster executor's retry records. Snapshots render
//! as a text table (the `live_report` bin redraws it periodically) and
//! all state is bounded: windows evict by age, campaigns by count.
//!
//! Observation never feeds back into the workload (same determinism
//! contract as the rest of the crate) and costs one relaxed atomic load
//! per record when no aggregator is installed.

use crate::clock::monotonic_ns;
use crate::names;
use crate::sink::Value;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Default rolling-window width: 10 s.
pub const DEFAULT_WINDOW_NS: u64 = 10_000_000_000;

/// Default campaign time-to-live: a campaign whose last record is older
/// than this is evicted from the map on the next observation. 5 min.
pub const DEFAULT_CAMPAIGN_TTL_NS: u64 = 300_000_000_000;

/// Campaigns tracked at once; beyond this the oldest-idle is evicted.
const MAX_CAMPAIGNS: usize = 256;

/// One per-iteration observation inside a campaign's rolling window.
struct IterPoint {
    t_ns: u64,
    rmse: f64,
    sigma: f64,
    cache_warm: bool,
}

struct Campaign {
    strategy: String,
    tier: String,
    window: VecDeque<IterPoint>,
    iters: u64,
    degraded: u64,
    last_ns: u64,
}

#[derive(Default)]
struct Inner {
    campaigns: BTreeMap<u64, Campaign>,
    retries: VecDeque<u64>,
    evictions: u64,
}

/// Live rolling-window statistics for one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStats {
    /// Run id (the `run` field of the campaign's records).
    pub run: u64,
    /// Strategy name from `al.run_start`.
    pub strategy: String,
    /// Most recent fit tier.
    pub tier: String,
    /// Total iterations observed.
    pub iters: u64,
    /// Total degraded (fault-lost) iterations observed.
    pub degraded: u64,
    /// Iterations currently inside the rolling window.
    pub window_len: usize,
    /// Iteration completion rate over the window, Hz.
    pub iter_rate_hz: f64,
    /// Latest RMSE.
    pub rmse_last: f64,
    /// RMSE change across the window (negative = improving).
    pub rmse_trend: f64,
    /// Latest max-σ (the paper's uncertainty signal).
    pub sigma_last: f64,
    /// σ change across the window.
    pub sigma_trend: f64,
    /// Fraction of windowed iterations served by a warm pool cache.
    pub cache_warm_pct: f64,
    /// Nanoseconds since this campaign's last record.
    pub idle_ns: u64,
}

/// One aggregator snapshot: per-campaign stats plus retry pressure.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSnapshot {
    /// Per-campaign rolling stats, run-id-sorted.
    pub campaigns: Vec<CampaignStats>,
    /// Cluster retries per second over the window.
    pub retry_per_s: f64,
    /// Retries currently inside the window.
    pub retries_window: usize,
}

/// A streaming aggregator over the telemetry record stream.
pub struct Aggregator {
    window_ns: u64,
    ttl_ns: u64,
    inner: Mutex<Inner>,
}

impl Aggregator {
    /// An aggregator with rolling windows of `window_ns` nanoseconds and
    /// the default campaign TTL.
    pub fn new(window_ns: u64) -> Self {
        Aggregator::with_ttl(window_ns, DEFAULT_CAMPAIGN_TTL_NS)
    }

    /// An aggregator with an explicit campaign time-to-live: campaigns
    /// idle longer than `ttl_ns` are evicted on the next observation
    /// (clock-based, so completed/abandoned campaigns cannot pin the map
    /// at [`MAX_CAMPAIGNS`] forever).
    pub fn with_ttl(window_ns: u64, ttl_ns: u64) -> Self {
        Aggregator {
            window_ns: window_ns.max(1),
            ttl_ns: ttl_ns.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Campaign windows evicted so far (count-cap plus TTL evictions).
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }

    /// Observe one record at the current monotonic time.
    pub fn observe(&self, name: &str, fields: &[(&str, Value<'_>)]) {
        self.observe_at(monotonic_ns(), name, fields);
    }

    /// Observe one record at an explicit time — the deterministic entry
    /// point tests drive with fabricated timestamps.
    pub fn observe_at(&self, now_ns: u64, name: &str, fields: &[(&str, Value<'_>)]) {
        self.evict_stale(now_ns);
        match name {
            "al.run_start" => {
                let Some(run) = field_u64(fields, "run") else {
                    return;
                };
                let strategy = field_str(fields, "strategy").unwrap_or("?").to_string();
                let mut inner = self.inner.lock();
                if inner.campaigns.len() >= MAX_CAMPAIGNS {
                    // Evict the longest-idle campaign to stay bounded.
                    if let Some(oldest) = inner
                        .campaigns
                        .iter()
                        .min_by_key(|(_, c)| c.last_ns)
                        .map(|(run, _)| *run)
                    {
                        inner.campaigns.remove(&oldest);
                        inner.evictions += 1;
                        crate::add(names::OBS_AGGREGATE_EVICTIONS, 1);
                    }
                }
                inner.campaigns.insert(
                    run,
                    Campaign {
                        strategy,
                        tier: "?".to_string(),
                        window: VecDeque::new(),
                        iters: 0,
                        degraded: 0,
                        last_ns: now_ns,
                    },
                );
            }
            names::AL_ITERATION => {
                let Some(run) = field_u64(fields, "run") else {
                    return;
                };
                let window_ns = self.window_ns;
                let mut inner = self.inner.lock();
                let Some(c) = inner.campaigns.get_mut(&run) else {
                    return;
                };
                c.iters += 1;
                c.last_ns = now_ns;
                if let Some(tier) = field_str(fields, "tier") {
                    c.tier = tier.to_string();
                }
                c.window.push_back(IterPoint {
                    t_ns: now_ns,
                    rmse: field_f64(fields, "rmse").unwrap_or(f64::NAN),
                    sigma: field_f64(fields, "sigma").unwrap_or(f64::NAN),
                    cache_warm: field_bool(fields, "cache_warm").unwrap_or(false),
                });
                while let Some(front) = c.window.front() {
                    if now_ns.saturating_sub(front.t_ns) > window_ns {
                        c.window.pop_front();
                    } else {
                        break;
                    }
                }
            }
            names::AL_DEGRADED_ITERATION => {
                let Some(run) = field_u64(fields, "run") else {
                    return;
                };
                let mut inner = self.inner.lock();
                if let Some(c) = inner.campaigns.get_mut(&run) {
                    c.degraded += 1;
                    c.last_ns = now_ns;
                }
            }
            names::CLUSTER_RETRY => {
                let window_ns = self.window_ns;
                let mut inner = self.inner.lock();
                inner.retries.push_back(now_ns);
                while let Some(&front) = inner.retries.front() {
                    if now_ns.saturating_sub(front) > window_ns {
                        inner.retries.pop_front();
                    } else {
                        break;
                    }
                }
            }
            _ => {}
        }
    }

    /// Drop campaigns whose last record is older than the TTL. Runs at
    /// the top of every observation, so the map self-cleans on a live
    /// stream without a background thread (and deterministically: the
    /// eviction point is a pure function of the observed timestamps).
    fn evict_stale(&self, now_ns: u64) {
        let mut inner = self.inner.lock();
        let ttl = self.ttl_ns;
        let before = inner.campaigns.len();
        inner
            .campaigns
            .retain(|_, c| now_ns.saturating_sub(c.last_ns) <= ttl);
        let evicted = (before - inner.campaigns.len()) as u64;
        if evicted > 0 {
            inner.evictions += evicted;
            crate::add(names::OBS_AGGREGATE_EVICTIONS, evicted);
        }
    }

    /// A snapshot at the current monotonic time.
    pub fn snapshot(&self) -> AggregateSnapshot {
        self.snapshot_at(monotonic_ns())
    }

    /// A snapshot at an explicit time (deterministic for tests).
    pub fn snapshot_at(&self, now_ns: u64) -> AggregateSnapshot {
        let inner = self.inner.lock();
        let campaigns = inner
            .campaigns
            .iter()
            .map(|(&run, c)| {
                let in_window: Vec<&IterPoint> = c
                    .window
                    .iter()
                    .filter(|p| now_ns.saturating_sub(p.t_ns) <= self.window_ns)
                    .collect();
                let (rate, rmse_trend, sigma_trend) = match (in_window.first(), in_window.last()) {
                    (Some(first), Some(last)) if in_window.len() >= 2 => {
                        let dt = last.t_ns.saturating_sub(first.t_ns);
                        let rate = if dt > 0 {
                            (in_window.len() - 1) as f64 * 1e9 / dt as f64
                        } else {
                            0.0
                        };
                        (rate, last.rmse - first.rmse, last.sigma - first.sigma)
                    }
                    _ => (0.0, 0.0, 0.0),
                };
                let warm = in_window.iter().filter(|p| p.cache_warm).count();
                CampaignStats {
                    run,
                    strategy: c.strategy.clone(),
                    tier: c.tier.clone(),
                    iters: c.iters,
                    degraded: c.degraded,
                    window_len: in_window.len(),
                    iter_rate_hz: rate,
                    rmse_last: in_window.last().map(|p| p.rmse).unwrap_or(f64::NAN),
                    rmse_trend,
                    sigma_last: in_window.last().map(|p| p.sigma).unwrap_or(f64::NAN),
                    sigma_trend,
                    cache_warm_pct: if in_window.is_empty() {
                        0.0
                    } else {
                        100.0 * warm as f64 / in_window.len() as f64
                    },
                    idle_ns: now_ns.saturating_sub(c.last_ns),
                }
            })
            .collect();
        let retries_window = inner
            .retries
            .iter()
            .filter(|&&t| now_ns.saturating_sub(t) <= self.window_ns)
            .count();
        AggregateSnapshot {
            campaigns,
            retry_per_s: retries_window as f64 * 1e9 / self.window_ns as f64,
            retries_window,
        }
    }

    /// Render the live table shown by `live_report`.
    pub fn render_table(&self) -> String {
        render_snapshot(&self.snapshot())
    }
}

/// Render a snapshot as the fixed-width live table.
pub fn render_snapshot(snap: &AggregateSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>4} {:<20} {:<8} {:>6} {:>5} {:>7} {:>10} {:>9} {:>10} {:>9} {:>6}\n",
        "run",
        "strategy",
        "tier",
        "iters",
        "degr",
        "it/s",
        "rmse",
        "drmse",
        "sigma",
        "dsigma",
        "warm%"
    ));
    for c in &snap.campaigns {
        out.push_str(&format!(
            "{:>4} {:<20} {:<8} {:>6} {:>5} {:>7.2} {:>10.4} {:>+9.4} {:>10.4} {:>+9.4} {:>5.0}%\n",
            c.run,
            c.strategy,
            c.tier,
            c.iters,
            c.degraded,
            c.iter_rate_hz,
            c.rmse_last,
            c.rmse_trend,
            c.sigma_last,
            c.sigma_trend,
            c.cache_warm_pct,
        ));
    }
    out.push_str(&format!(
        "retry pressure: {:.2}/s ({} in window)\n",
        snap.retry_per_s, snap.retries_window
    ));
    out
}

fn field_u64(fields: &[(&str, Value<'_>)], key: &str) -> Option<u64> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Value::U64(x) => Some(*x),
            Value::I64(x) => u64::try_from(*x).ok(),
            Value::F64(x) => Some(*x as u64),
            _ => None,
        })
}

fn field_f64(fields: &[(&str, Value<'_>)], key: &str) -> Option<f64> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Value::F64(x) => Some(*x),
            Value::U64(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            _ => None,
        })
}

fn field_str<'a>(fields: &'a [(&str, Value<'a>)], key: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Value::Str(s) => Some(*s),
            _ => None,
        })
}

fn field_bool(fields: &[(&str, Value<'_>)], key: &str) -> Option<bool> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Value::Bool(b) => Some(*b),
            _ => None,
        })
}

// ---- global installation (the record-path observer) ----

static AGGREGATOR: Mutex<Option<Arc<Aggregator>>> = Mutex::new(None);
static AGG_PRESENT: AtomicBool = AtomicBool::new(false);

/// Install a process-global aggregator observing every
/// [`crate::record`]; returns the handle for snapshots. Replaces any
/// previous aggregator.
pub fn install(window_ns: u64) -> Arc<Aggregator> {
    let agg = Arc::new(Aggregator::new(window_ns));
    *AGGREGATOR.lock() = Some(Arc::clone(&agg));
    AGG_PRESENT.store(true, Ordering::Relaxed);
    agg
}

/// Remove the global aggregator.
pub fn uninstall() {
    AGG_PRESENT.store(false, Ordering::Relaxed);
    AGGREGATOR.lock().take();
}

/// Is a global aggregator installed?
pub fn active() -> bool {
    AGG_PRESENT.load(Ordering::Relaxed)
}

/// Forward a record to the global aggregator, if one is installed.
/// Called from [`crate::record`]; costs one relaxed load when inactive.
#[inline]
pub(crate) fn observe_global(name: &str, fields: &[(&str, Value<'_>)]) {
    if !active() {
        return;
    }
    let agg = AGGREGATOR.lock().as_ref().map(Arc::clone);
    if let Some(agg) = agg {
        agg.observe(name, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    fn iteration(
        run: u64,
        iter: u64,
        rmse: f64,
        sigma: f64,
        warm: bool,
    ) -> Vec<(&'static str, Value<'static>)> {
        vec![
            ("run", Value::U64(run)),
            ("iter", Value::U64(iter)),
            ("tier", Value::Str("exact")),
            ("rmse", Value::F64(rmse)),
            ("sigma", Value::F64(sigma)),
            ("cache_warm", Value::Bool(warm)),
        ]
    }

    #[test]
    fn rolling_window_tracks_rate_and_trend() {
        let agg = Aggregator::new(10 * S);
        agg.observe_at(
            0,
            "al.run_start",
            &[
                ("run", Value::U64(1)),
                ("strategy", Value::Str("variance_reduction")),
            ],
        );
        for i in 0..5u64 {
            agg.observe_at(
                (i + 1) * S,
                names::AL_ITERATION,
                &iteration(1, i, 1.0 - 0.1 * i as f64, 0.5 - 0.05 * i as f64, i > 0),
            );
        }
        let snap = agg.snapshot_at(5 * S);
        assert_eq!(snap.campaigns.len(), 1);
        let c = &snap.campaigns[0];
        assert_eq!(c.run, 1);
        assert_eq!(c.strategy, "variance_reduction");
        assert_eq!(c.tier, "exact");
        assert_eq!(c.iters, 5);
        assert_eq!(c.window_len, 5);
        // 4 intervals over 4 seconds -> 1 it/s.
        assert!((c.iter_rate_hz - 1.0).abs() < 1e-9);
        assert!((c.rmse_last - 0.6).abs() < 1e-9);
        assert!(
            (c.rmse_trend - (0.6 - 1.0)).abs() < 1e-9,
            "rmse falling over window"
        );
        assert!((c.sigma_trend + 0.2).abs() < 1e-9);
        assert!((c.cache_warm_pct - 80.0).abs() < 1e-9);
    }

    #[test]
    fn old_points_age_out_of_the_window() {
        let agg = Aggregator::new(3 * S);
        agg.observe_at(
            0,
            "al.run_start",
            &[("run", Value::U64(2)), ("strategy", Value::Str("s"))],
        );
        agg.observe_at(S, names::AL_ITERATION, &iteration(2, 0, 1.0, 0.5, false));
        agg.observe_at(
            10 * S,
            names::AL_ITERATION,
            &iteration(2, 1, 0.9, 0.4, true),
        );
        let snap = agg.snapshot_at(10 * S);
        let c = &snap.campaigns[0];
        assert_eq!(c.iters, 2, "lifetime count keeps everything");
        assert_eq!(c.window_len, 1, "window holds only the fresh point");
        assert_eq!(c.iter_rate_hz, 0.0, "one point has no rate");
    }

    #[test]
    fn degraded_and_retry_pressure_accumulate() {
        let agg = Aggregator::new(10 * S);
        agg.observe_at(
            0,
            "al.run_start",
            &[("run", Value::U64(3)), ("strategy", Value::Str("s"))],
        );
        agg.observe_at(S, names::AL_DEGRADED_ITERATION, &[("run", Value::U64(3))]);
        for i in 0..5 {
            agg.observe_at(2 * S + i, names::CLUSTER_RETRY, &[]);
        }
        let snap = agg.snapshot_at(2 * S + 10);
        assert_eq!(snap.campaigns[0].degraded, 1);
        assert_eq!(snap.retries_window, 5);
        assert!((snap.retry_per_s - 0.5).abs() < 1e-9);
        // Retries age out too.
        let later = agg.snapshot_at(13 * S);
        assert_eq!(later.retries_window, 0);
    }

    #[test]
    fn unknown_records_and_runs_are_ignored() {
        let agg = Aggregator::new(S);
        agg.observe_at(0, "gp.tier.gate", &[("run", Value::U64(1))]);
        agg.observe_at(0, names::AL_ITERATION, &iteration(99, 0, 1.0, 1.0, false));
        assert!(agg.snapshot_at(0).campaigns.is_empty());
    }

    #[test]
    fn stale_campaigns_age_out_by_ttl() {
        let agg = Aggregator::with_ttl(S, 5 * S);
        for run in [1u64, 2] {
            agg.observe_at(
                run * S,
                "al.run_start",
                &[("run", Value::U64(run)), ("strategy", Value::Str("s"))],
            );
        }
        assert_eq!(agg.snapshot_at(2 * S).campaigns.len(), 2);
        assert_eq!(agg.evictions(), 0);
        // Run 1 last seen at 1 s: idle 6 s > TTL at t=7 s; run 2 (2 s)
        // is exactly at the TTL boundary and survives.
        agg.observe_at(7 * S, names::CLUSTER_RETRY, &[]);
        let snap = agg.snapshot_at(7 * S);
        assert_eq!(snap.campaigns.len(), 1);
        assert_eq!(snap.campaigns[0].run, 2);
        assert_eq!(agg.evictions(), 1);
        // Everything idles out eventually.
        agg.observe_at(60 * S, names::CLUSTER_RETRY, &[]);
        assert!(agg.snapshot_at(60 * S).campaigns.is_empty());
        assert_eq!(agg.evictions(), 2);
    }

    #[test]
    fn table_renders_every_campaign() {
        let agg = Aggregator::new(10 * S);
        for run in [1u64, 2] {
            agg.observe_at(
                0,
                "al.run_start",
                &[
                    ("run", Value::U64(run)),
                    ("strategy", Value::Str("cost_effective")),
                ],
            );
            agg.observe_at(S, names::AL_ITERATION, &iteration(run, 0, 0.8, 0.3, true));
        }
        let table = render_snapshot(&agg.snapshot_at(S));
        assert!(table.contains("cost_effective"));
        assert!(table.contains("retry pressure"));
        assert_eq!(
            table.lines().count(),
            4,
            "header + 2 campaigns + retry line"
        );
    }
}
