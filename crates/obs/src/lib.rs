#![warn(missing_docs)]
//! # alperf-obs
//!
//! Self-contained observability for the Active-Learning performance-analysis
//! workspace: hierarchical **spans**, **counters**, and mergeable
//! **log-linear histograms**, with two sinks — a schema-versioned JSONL
//! event stream and a Prometheus-style text snapshot.
//!
//! Design constraints, in order:
//!
//! 1. **Zero overhead when disabled.** Every instrumentation entry point
//!    ([`span`], [`inc`], [`add`], [`record`]) starts with one *relaxed*
//!    atomic load of a global flag and returns immediately when telemetry
//!    is off — no clock read, no thread-local access, no allocation. The
//!    instrumented hot paths (blocked Cholesky, LML gradients,
//!    `predict_batch`, restart dispatch) therefore cost nothing in the
//!    common case; `BENCH_obs_overhead.json` tracks the <2% budget.
//! 2. **Determinism.** Telemetry only *reads* clocks and *writes* sinks;
//!    it never feeds back into any numeric computation. Enabling it must
//!    not change a single bit of any model output (the AL determinism
//!    guard test in `alperf-al` proves this end to end). Histogram and
//!    counter state is kept in atomics so rayon workers record
//!    concurrently without perturbing the bit-identical serial reductions
//!    the gp/al layers rely on.
//! 3. **No external dependencies** beyond the vendored `parking_lot`
//!    stand-in; JSON is emitted and parsed by the tiny [`json`] module.
//!
//! Quick tour:
//!
//! ```
//! alperf_obs::set_enabled(true);
//! {
//!     let _guard = alperf_obs::span("demo.work");
//!     alperf_obs::inc("demo.items");
//! } // span duration recorded on drop
//! let stats = alperf_obs::histogram("demo.work").stats();
//! assert_eq!(stats.count, 1);
//! let text = alperf_obs::registry().prometheus_snapshot();
//! assert!(text.contains("alperf_demo_items_total"));
//! alperf_obs::set_enabled(false);
//! ```

pub mod aggregate;
pub mod alerts;
pub mod blackbox;
pub mod clock;
pub mod event;
pub mod http;
pub mod json;
pub mod labels;
pub mod metrics;
pub mod names;
pub mod profiler;
pub mod registry;
pub mod sink;
pub mod span;
pub mod tsdb;
pub mod watchdog;

pub use aggregate::{AggregateSnapshot, Aggregator, CampaignStats};
pub use alerts::{AlertState, Condition, Engine as AlertEngine, Rule as AlertRule};
pub use clock::{Clock, FakeClock, SystemClock};
pub use event::{Event, MetaEvent, RecordEvent, SampleEvent, SpanEvent};
pub use http::HttpServer;
pub use labels::{CounterVec, HistogramVec};
pub use metrics::{Counter, HistStats, Histogram};
pub use registry::Registry;
pub use sink::Value;
pub use span::{SpanCtx, SpanGuard};
pub use tsdb::{ScraperHandle, Tsdb, TsdbConfig};
pub use watchdog::{StallReport, Watchdog};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Global on/off switch. Off by default: a freshly started process pays
/// exactly one relaxed atomic load per instrumentation site.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is telemetry currently enabled?
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn telemetry on or off, globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The global metric registry (created on first use).
pub fn registry() -> &'static Registry {
    registry::global()
}

/// Get-or-create a counter in the global registry. This allocates a map
/// lookup; hot paths should prefer [`inc`]/[`add`], which bail out before
/// the lookup when telemetry is disabled.
pub fn counter(name: &str) -> Arc<Counter> {
    registry::global().counter(name)
}

/// Get-or-create a histogram in the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    registry::global().histogram(name)
}

/// Get-or-create a labeled counter family in the global registry. Call
/// once per campaign/phase, then cache the child handle from
/// [`CounterVec::with`] — the per-event cost is then one relaxed atomic,
/// same as an unlabeled counter.
pub fn counter_vec(name: &str, keys: &'static [&'static str]) -> Arc<CounterVec> {
    registry::global().counter_vec(name, keys)
}

/// Get-or-create a labeled histogram family in the global registry.
pub fn histogram_vec(name: &str, keys: &'static [&'static str]) -> Arc<HistogramVec> {
    registry::global().histogram_vec(name, keys)
}

/// Increment counter `name` by one — a no-op when telemetry is disabled.
#[inline]
pub fn inc(name: &str) {
    if enabled() {
        registry::global().counter(name).inc();
    }
}

/// Add `v` to counter `name` — a no-op when telemetry is disabled.
#[inline]
pub fn add(name: &str, v: u64) {
    if enabled() {
        registry::global().counter(name).add(v);
    }
}

/// Open a hierarchical span named `name`. The returned guard records the
/// span's wall-clock duration into the histogram of the same name (and the
/// JSONL sink, when installed) on drop. When telemetry is disabled this is
/// a single relaxed atomic load and an inert guard.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert(name);
    }
    SpanGuard::enter(name)
}

/// Open a span whose trace parent is `parent` (captured with
/// [`current_span`] before crossing a thread boundary) instead of this
/// thread's innermost open span. This is how fork-join call sites keep
/// their worker spans attached to the logical caller: parentage is
/// otherwise thread-local, so a span opened on a rayon worker would
/// become a root. Children opened *under* the returned guard on the same
/// thread still nest normally.
#[inline]
pub fn span_with_parent(name: &'static str, parent: Option<SpanCtx>) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert(name);
    }
    SpanGuard::enter_with_parent(name, parent)
}

/// The innermost open span on this thread — capture before dispatching
/// fork-join work and hand to [`span_with_parent`] on the workers.
/// `None` when no span is open (including whenever telemetry is off).
#[inline]
pub fn current_span() -> Option<SpanCtx> {
    span::current()
}

/// Emit a structured record event (one JSONL line) — a no-op when
/// telemetry is disabled or no sink is installed. `fields` appear under
/// the `"fields"` key of the emitted object. When a live aggregator is
/// installed ([`aggregate::install`]) the record is also streamed into
/// its rolling windows, and when the black-box flight recorder is armed
/// ([`blackbox::arm`]) the record is noted in this thread's ring.
#[inline]
pub fn record(name: &str, fields: &[(&str, Value<'_>)]) {
    if enabled() {
        sink::emit_record(name, fields);
        aggregate::observe_global(name, fields);
        if blackbox::armed() {
            blackbox::note_record(name);
        }
    }
}

/// Time `f` through an explicit [`Clock`], recording the duration into
/// histogram `name` (and the sink) when telemetry is enabled. Returns the
/// closure result and the measured duration in nanoseconds (0 when
/// disabled: the clock is not even read).
pub fn time_with<T>(clock: &dyn Clock, name: &str, f: impl FnOnce() -> T) -> (T, u64) {
    if !enabled() {
        return (f(), 0);
    }
    let start = clock.now_ns();
    let out = f();
    let dur = clock.now_ns().saturating_sub(start);
    registry::global().histogram(name).record(dur);
    sink::emit_span(name, span::next_span_id(), span::current(), start, dur);
    (out, dur)
}

/// Monotone sequence numbers for run-scoped telemetry (each AL run grabs
/// one so events from concurrent runs can be told apart in the trace).
static NEXT_RUN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh process-unique run id.
pub fn next_run_id() -> u64 {
    NEXT_RUN_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global enabled flag is process-wide; tests that toggle it
    // serialize on this lock so they can run under the default parallel
    // test harness.
    pub(crate) static TEST_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn disabled_sites_do_not_record() {
        let _l = TEST_LOCK.lock();
        set_enabled(false);
        inc("test.disabled.counter");
        add("test.disabled.counter", 10);
        {
            let _s = span("test.disabled.span");
        }
        assert_eq!(counter("test.disabled.counter").get(), 0);
        assert_eq!(histogram("test.disabled.span").stats().count, 0);
    }

    #[test]
    fn enabled_sites_record() {
        let _l = TEST_LOCK.lock();
        set_enabled(true);
        inc("test.enabled.counter");
        add("test.enabled.counter", 4);
        {
            let _s = span("test.enabled.span");
        }
        set_enabled(false);
        assert_eq!(counter("test.enabled.counter").get(), 5);
        assert_eq!(histogram("test.enabled.span").stats().count, 1);
    }

    #[test]
    fn time_with_fake_clock_is_exact() {
        let _l = TEST_LOCK.lock();
        set_enabled(true);
        let clock = FakeClock::with_step(7_000);
        let ((), dur) = time_with(&clock, "test.time_with", || {});
        set_enabled(false);
        assert_eq!(dur, 7_000);
        let stats = histogram("test.time_with").stats();
        assert_eq!(stats.min_ns, 7_000);
        assert_eq!(stats.max_ns, 7_000);
    }

    #[test]
    fn run_ids_are_unique() {
        let a = next_run_id();
        let b = next_run_id();
        assert_ne!(a, b);
    }
}
