//! Minimal JSON encode/parse helpers for the JSONL trace sink and its
//! validator. Supports objects, arrays, strings (with `\uXXXX` escapes),
//! finite numbers, booleans, and null — exactly what the trace schema
//! uses. No external dependencies.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; trace fields stay well inside
    /// the 2^53 exact-integer range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, key-sorted.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Escape `s` into a double-quoted JSON string, appended to `out`.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format a finite `f64` as JSON (non-finite values become `null`, which
/// JSON cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Parse one JSON document from `text`. Trailing whitespace is allowed;
/// trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_object() {
        let j = parse(r#"{"a": 1, "b": "x", "c": true, "d": null}"#).unwrap();
        assert_eq!(j.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(j.get("c"), Some(&Json::Bool(true)));
        assert_eq!(j.get("d"), Some(&Json::Null));
    }

    #[test]
    fn parses_nested_and_arrays() {
        let j = parse(r#"{"f": {"k": [1, 2.5, -3e2]}}"#).unwrap();
        let arr = match j.get("f").and_then(|f| f.get("k")) {
            Some(Json::Arr(a)) => a,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[2], Json::Num(-300.0));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "he said \"hi\"\n\tback\\slash \u{1} π";
        let mut enc = String::new();
        escape_into(&mut enc, nasty);
        let j = parse(&enc).unwrap();
        assert_eq!(j.as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1, 2] tail").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(2.5), "2.5");
    }
}
