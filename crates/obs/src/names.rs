//! Canonical event names shared across the workspace.
//!
//! Spans, counters, and records that more than one crate (or an external
//! consumer like `trace_report`/`chaos_replay`) must agree on are named
//! here once. Instrumentation call sites may still use ad-hoc literals for
//! purely local metrics; anything that appears in a trace contract belongs
//! in this module.

/// Span around one `executor::measure_all` batch.
pub const CLUSTER_MEASURE_BATCH: &str = "cluster.measure_batch";
/// Span + counter + record: one retry of a faulted job attempt.
pub const CLUSTER_RETRY: &str = "cluster.retry";
/// Span + counter + record: a job that exhausted its retry budget.
pub const CLUSTER_FAILED: &str = "cluster.failed";
/// Record carrying the full fault-plan parameters of a campaign, emitted
/// once per campaign so `chaos_replay` can reconstruct and re-execute it.
pub const CLUSTER_FAULT_PLAN: &str = "cluster.fault_plan";
/// Counter: power traces emptied by an injected IPMI dropout.
pub const CLUSTER_POWER_DROPOUT: &str = "cluster.power.dropout";
/// Counter: power traces truncated by an injected IPMI corruption.
pub const CLUSTER_POWER_CORRUPT: &str = "cluster.power.corrupt";
/// Per-iteration AL record (metrics payload; see `validate_trace`).
pub const AL_ITERATION: &str = "al.iteration";
/// Counter + record: an AL iteration whose selected experiment was lost
/// to a fault and re-selected from the surviving pool.
pub const AL_DEGRADED_ITERATION: &str = "al.degraded_iteration";
/// Counter: selections made by the pipelined runner from a stale model
/// (the previous batch's measurement still in flight).
pub const AL_PIPELINE_STALE_SELECTS: &str = "al.pipeline.stale_selects";
/// Counter: in-flight measurements reconciled into the training set (or
/// into the lost list) by the pipelined runner.
pub const AL_PIPELINE_RECONCILES: &str = "al.pipeline.reconciles";
/// Counter (ns): wall-clock overlap won per pipelined round — the smaller
/// of the measurement-side and the refit/select-side duration.
pub const AL_PIPELINE_OVERLAP_NS: &str = "al.pipeline.overlap_ns";
/// Counter + record: a speculated in-flight measurement lost to a fault;
/// its cost was charged and the already-made stale selection kept.
pub const AL_PIPELINE_LOST_SPECULATION: &str = "al.pipeline.lost_speculation";
/// Counter + record: a watchdog heartbeat key went stale (stalled
/// campaign/thread/span); the record carries `key`, `idle_ns`, `beats`.
pub const OBS_WATCHDOG_STALL: &str = "obs.watchdog.stall";
/// Counter: stack samples captured by the cooperative profiler.
pub const OBS_PROFILER_SAMPLES: &str = "obs.profiler.samples";
/// Labeled family (`campaign`, `strategy`): AL iterations per campaign.
pub const AL_CAMPAIGN_ITERATIONS: &str = "al.campaign.iterations";
/// Labeled family (`campaign`, `strategy`): degraded iterations per
/// campaign.
pub const AL_CAMPAIGN_DEGRADED: &str = "al.campaign.degraded";
/// Labeled family (`strategy`, `tier`): per-iteration fit time.
pub const AL_FIT_BY_TIER: &str = "al.fit.by_tier";
/// Labeled family (`fault_kind`): injected faults seen by the executor
/// (retried or terminal).
pub const CLUSTER_FAULTS_BY_KIND: &str = "cluster.faults.by_kind";
/// Labeled family (`tier`): surrogate fits per tier.
pub const GP_FITS_BY_TIER: &str = "gp.fits.by_tier";
/// Labeled family (`tier`): pool points predicted per tier.
pub const GP_PREDICT_POINTS_BY_TIER: &str = "gp.predict.points.by_tier";
/// Counter: registry scrapes performed by the tsdb scraper.
pub const OBS_TSDB_SCRAPES: &str = "obs.tsdb.scrapes";
/// Counter: ring-buffer points evicted by the tsdb to stay bounded.
pub const OBS_TSDB_POINTS_EVICTED: &str = "obs.tsdb.points_evicted";
/// Counter: series dropped because the tsdb hit its series cap (the
/// tsdb-side mirror of the labels `_overflow` accounting).
pub const OBS_TSDB_SERIES_OVERFLOW: &str = "obs.tsdb.series_overflow";
/// Record: one alert state transition (schema-versioned via its `asv`
/// field; see `alerts::ALERT_SCHEMA_VERSION`).
pub const OBS_ALERT: &str = "obs.alert";
/// Counter: alert state transitions emitted by the rules engine.
pub const OBS_ALERT_TRANSITIONS: &str = "obs.alerts.transitions";
/// Counter: campaign windows evicted from the live aggregator (count cap
/// or clock-based TTL).
pub const OBS_AGGREGATE_EVICTIONS: &str = "obs.aggregate.evictions";
/// Counter: black-box flight-recorder dumps written.
pub const OBS_BLACKBOX_DUMPS: &str = "obs.blackbox.dumps";
/// Record: a campaign grid started (name, config count, resume point,
/// worker width).
pub const GRID_RUN_START: &str = "grid.run_start";
/// Labeled family (`grid`, `strategy`): campaign summaries committed.
pub const GRID_CONFIGS_DONE: &str = "grid.configs.done";
/// Labeled family (`grid`, `strategy`): campaigns committed as error
/// records (surrogate fit failures).
pub const GRID_CONFIG_ERRORS: &str = "grid.configs.errors";
/// Labeled family (`grid`, `strategy`): campaigns with at least one
/// fault-degraded iteration.
pub const GRID_DEGRADED: &str = "grid.configs.degraded";

/// Label key: campaign / run id.
pub const LABEL_CAMPAIGN: &str = "campaign";
/// Label key: acquisition strategy name.
pub const LABEL_STRATEGY: &str = "strategy";
/// Label key: surrogate fit tier (`exact`, `sparse`, …).
pub const LABEL_TIER: &str = "tier";
/// Label key: injected fault kind.
pub const LABEL_FAULT_KIND: &str = "fault_kind";
/// Label key: campaign-grid name.
pub const LABEL_GRID: &str = "grid";
