//! Counters and log-linear histograms.
//!
//! Both are built purely from relaxed atomics, so any number of threads —
//! including rayon workers inside the parallel restart dispatch — can
//! record concurrently without locks, and the aggregate is independent of
//! interleaving (sums and bucket counts commute). Two histograms can also
//! be [merged](Histogram::merge), e.g. per-worker locals into a global.
//!
//! The histogram is HDR-style log-linear: each power of two is split into
//! [`SUB`] linear sub-buckets, giving a guaranteed relative bucket width of
//! `1/SUB` (~3%) across the full `u64` range with a fixed 1920-slot table.
//! Values below [`EXACT_LIMIT`] are stored exactly. `min`, `max`, `sum`,
//! and `count` are tracked exactly on the side, so extreme statistics
//! (the profiler's min-over-reps) are not bucketized.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.value.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Linear sub-buckets per power of two (relative width `1/SUB`).
pub const SUB: usize = 32;
const SUB_BITS: u32 = 5; // log2(SUB)
/// Values below this are bucketed exactly (one bucket per integer).
pub const EXACT_LIMIT: u64 = 2 * SUB as u64; // 64
/// Total bucket count: 64 exact + 32 per exponent 6..=63.
pub const BUCKETS: usize = EXACT_LIMIT as usize + (64 - (SUB_BITS as usize + 1)) * SUB;

/// Bucket index of `v` (total order, exact below [`EXACT_LIMIT`]).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < EXACT_LIMIT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    EXACT_LIMIT as usize + (msb - (SUB_BITS + 1)) as usize * SUB + sub
}

/// Inclusive `[lo, hi]` value range covered by bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < EXACT_LIMIT as usize {
        return (index as u64, index as u64);
    }
    let e = index - EXACT_LIMIT as usize;
    let msb = (SUB_BITS + 1) as usize + e / SUB;
    let sub = (e % SUB) as u64;
    let shift = msb as u32 - SUB_BITS;
    let lo = (SUB as u64 + sub) << shift;
    (lo, lo + (1u64 << shift) - 1)
}

/// Exact summary of a histogram's contents at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistStats {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min_ns: u64,
    /// Exact maximum (0 when empty).
    pub max_ns: u64,
    /// Median estimate (log-linear bucket resolution).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistStats {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Lock-free log-linear histogram over `u64` values (typically
/// nanoseconds).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    // Latest span exemplar: the id of the most recent span whose
    // duration landed in this histogram, plus that value. Two relaxed
    // stores — a torn pair under contention yields a *valid but mixed*
    // exemplar, which is acceptable for a debugging link.
    exemplar_span: AtomicU64,
    exemplar_value: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplar_span: AtomicU64::new(0),
            exemplar_value: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record one value and stamp it as the histogram's latest exemplar,
    /// keyed by the span id that produced it (span ids start at 1, so 0
    /// means "no exemplar"). The tsdb surfaces the exemplar on the
    /// histogram's series, linking metrics back into the trace.
    #[inline]
    pub fn record_with_exemplar(&self, v: u64, span_id: u64) {
        self.record(v);
        if span_id != 0 {
            self.exemplar_value.store(v, Ordering::Relaxed);
            self.exemplar_span.store(span_id, Ordering::Relaxed);
        }
    }

    /// The latest `(span_id, value)` exemplar, if any observation carried
    /// one.
    pub fn exemplar_pair(&self) -> Option<(u64, u64)> {
        let span = self.exemplar_span.load(Ordering::Relaxed);
        (span != 0).then(|| (span, self.exemplar_value.load(Ordering::Relaxed)))
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`. The estimate is
    /// the midpoint of the log-linear bucket holding the rank-`⌈qN⌉`
    /// value, clamped into the exact `[min, max]` envelope — it always
    /// lands in the same bucket as the true order statistic, i.e. within
    /// a relative error of `1/SUB`.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                let mid = lo + (hi - lo) / 2;
                let min = self.min.load(Ordering::Relaxed);
                let max = self.max.load(Ordering::Relaxed);
                return mid.clamp(min, max);
            }
        }
        // Racy concurrent record between count and bucket reads: fall back
        // to the exact max.
        self.max.load(Ordering::Relaxed)
    }

    /// Snapshot of count/sum/min/max and the p50/p90/p99 estimates.
    pub fn stats(&self) -> HistStats {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistStats::default();
        }
        HistStats {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min_ns: self.min.load(Ordering::Relaxed),
            max_ns: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }

    /// Fold another histogram's contents into this one. Bucket counts and
    /// the exact side statistics all commute, so merging per-worker locals
    /// in any order yields the same aggregate.
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = b.load(Ordering::Relaxed);
            if v != 0 {
                a.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Clear all recorded values.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.exemplar_span.store(0, Ordering::Relaxed);
        self.exemplar_value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        for e in 0..64u32 {
            for v in [
                1u64 << e,
                (1u64 << e) + ((1u64 << e) >> 3),
                (1u64 << e) + ((1u64 << e) - 1) / 2,
            ] {
                let i = bucket_index(v);
                assert!(i < BUCKETS, "v={v} i={i}");
                assert!(i >= prev, "v={v}: index went backwards");
                let (lo, hi) = bucket_bounds(i);
                assert!(lo <= v && v <= hi, "v={v} not in [{lo},{hi}]");
                prev = i;
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..EXACT_LIMIT {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v));
        }
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let h = Histogram::new();
        h.record(123_456);
        let s = h.stats();
        assert_eq!(s.count, 1);
        assert_eq!(s.min_ns, 123_456);
        assert_eq!(s.max_ns, 123_456);
        // min==max forces the clamp to the exact value.
        assert_eq!(s.p50, 123_456);
        assert_eq!(s.p99, 123_456);
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..1000u64 {
            let target = if v % 2 == 0 { &a } else { &b };
            target.record(v * v);
            all.record(v * v);
        }
        a.merge(&b);
        assert_eq!(a.stats(), all.stats());
    }

    #[test]
    fn reset_clears() {
        let h = Histogram::new();
        h.record(5);
        h.reset();
        assert_eq!(h.stats(), HistStats::default());
    }

    #[test]
    fn mean_is_exact() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.stats().mean(), 20.0);
    }
}
