//! The JSONL trace sink.
//!
//! One file per run, one JSON object per line. The first line is a meta
//! record carrying the schema version; every subsequent line is either a
//! `span` (name, thread, optional parent, start + duration in ns) or a
//! `record` (name, thread, free-form `fields` object). Lines are written
//! whole under one lock, so concurrent writers (rayon workers, the
//! crossbeam executor pool) interleave at line granularity only.
//!
//! Schema `alperf-obs-v1`, field reference:
//!
//! ```json
//! {"v":1,"t":"meta","schema":"alperf-obs-v1","unit":"ns"}
//! {"v":1,"t":"span","name":"gp.fit","tid":1,"parent":"al.iteration","start_ns":123,"dur_ns":456}
//! {"v":1,"t":"record","name":"al.iteration","tid":1,"fields":{"iter":0,"rmse":0.5}}
//! {"v":1,"t":"sample","sv":1,"tid":1,"t_ns":789,"stack":["al.iteration","gp.fit"]}
//! ```
//!
//! `sample` lines (added with the cooperative profiler) carry their own
//! `sv` schema version; readers that predate them reject the line, which
//! is the intended fail-loud behavior for mixed-version tooling.

use crate::json;
use crate::span::SpanCtx;
use parking_lot::Mutex;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Schema identifier written in the meta line of every trace file.
pub const SCHEMA: &str = "alperf-obs-v1";

/// A field value for [`crate::record`] events.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values serialize as `null`).
    F64(f64),
    /// String.
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

impl Value<'_> {
    fn write_into(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => out.push_str(&json::number(*v)),
            Value::Str(s) => json::escape_into(out, s),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

struct Sink {
    writer: Mutex<BufWriter<std::fs::File>>,
}

impl Drop for Sink {
    // Flush guarantee: a replaced sink (a second `install_jsonl`) flushes
    // its buffered tail when the last handle drops, so no trace lines are
    // lost across reinstalls. Process exit still requires [`flush`] /
    // [`uninstall`] (statics are not dropped), which `obs_finish` does.
    fn drop(&mut self) {
        let _ = self.writer.lock().flush();
    }
}

static SINK: Mutex<Option<Arc<Sink>>> = Mutex::new(None);
/// Fast "is a sink installed" check so emit paths skip the lock entirely
/// when tracing to a file is not configured.
static SINK_PRESENT: AtomicBool = AtomicBool::new(false);

fn current_sink() -> Option<Arc<Sink>> {
    if !SINK_PRESENT.load(Ordering::Relaxed) {
        return None;
    }
    SINK.lock().as_ref().map(Arc::clone)
}

/// Install a JSONL sink writing to `path` (truncating), and write the
/// schema meta line. Replaces any previously installed sink.
pub fn install_jsonl(path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let sink = Arc::new(Sink {
        writer: Mutex::new(BufWriter::new(file)),
    });
    {
        let mut w = sink.writer.lock();
        writeln!(
            w,
            "{{\"v\":1,\"t\":\"meta\",\"schema\":\"{SCHEMA}\",\"unit\":\"ns\"}}"
        )?;
    }
    *SINK.lock() = Some(sink);
    SINK_PRESENT.store(true, Ordering::Relaxed);
    Ok(())
}

/// Flush and remove the installed sink (if any).
pub fn uninstall() {
    SINK_PRESENT.store(false, Ordering::Relaxed);
    if let Some(sink) = SINK.lock().take() {
        let _ = sink.writer.lock().flush();
    }
}

/// Flush the installed sink without removing it.
pub fn flush() {
    if let Some(sink) = current_sink() {
        let _ = sink.writer.lock().flush();
    }
}

/// Is a JSONL sink currently installed?
pub fn active() -> bool {
    SINK_PRESENT.load(Ordering::Relaxed)
}

/// Small monotone per-thread id for disambiguating interleaved events.
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

fn write_line(line: &str) {
    if let Some(sink) = current_sink() {
        let mut w = sink.writer.lock();
        let _ = writeln!(w, "{line}");
    }
}

/// Emit a span line (called by the span guard on drop). No-op without a
/// sink. The line carries the span's process-unique `id` and, when a
/// parent is known, the parent's `parent` (name) + `pid` (id) — `pid` is
/// what trace readers link trees by; the name survives for readability
/// and for pre-id consumers.
pub fn emit_span(name: &str, id: u64, parent: Option<SpanCtx>, start_ns: u64, dur_ns: u64) {
    if !active() {
        return;
    }
    let line = crate::event::span_line(
        name,
        thread_id(),
        Some(id),
        parent.map(|c| c.name),
        parent.map(|c| c.id),
        start_ns,
        dur_ns,
    );
    write_line(&line);
}

/// Emit a profiler sample line for thread `tid` whose live span stack is
/// `stack` (root first). No-op without a sink. Called by the sampler
/// thread, never by instrumented code itself.
pub fn emit_sample<'a>(tid: u64, t_ns: u64, stack: impl Iterator<Item = &'a str>) {
    if !active() {
        return;
    }
    let line = crate::event::sample_line(tid, t_ns, stack);
    write_line(&line);
}

/// Emit a record line with free-form fields. No-op without a sink.
pub fn emit_record(name: &str, fields: &[(&str, Value<'_>)]) {
    if !active() {
        return;
    }
    let mut line = String::with_capacity(128);
    line.push_str("{\"v\":1,\"t\":\"record\",\"name\":");
    json::escape_into(&mut line, name);
    line.push_str(&format!(",\"tid\":{},\"fields\":{{", thread_id()));
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        json::escape_into(&mut line, key);
        line.push(':');
        value.write_into(&mut line);
    }
    line.push_str("}}");
    write_line(&line);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    // Sink installation is global; serialize with the crate-level tests
    // that flip global state.
    #[test]
    fn emitted_lines_parse_and_follow_schema() {
        let _l = crate::tests::TEST_LOCK.lock();
        let path =
            std::env::temp_dir().join(format!("alperf_obs_sink_{}.jsonl", std::process::id()));
        install_jsonl(&path).unwrap();
        emit_span(
            "unit.span",
            7,
            Some(SpanCtx {
                name: "unit.parent",
                id: 6,
            }),
            10,
            25,
        );
        emit_record(
            "unit.record",
            &[
                ("iter", Value::U64(3)),
                ("rmse", Value::F64(0.25)),
                ("kind", Value::Str("warm \"quoted\"")),
                ("ok", Value::Bool(true)),
                ("delta", Value::I64(-2)),
                ("bad", Value::F64(f64::NAN)),
            ],
        );
        uninstall();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let meta = json::parse(lines[0]).unwrap();
        assert_eq!(meta.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let span = json::parse(lines[1]).unwrap();
        assert_eq!(span.get("t").and_then(Json::as_str), Some("span"));
        assert_eq!(span.get("dur_ns").and_then(Json::as_f64), Some(25.0));
        assert_eq!(span.get("id").and_then(Json::as_f64), Some(7.0));
        assert_eq!(span.get("pid").and_then(Json::as_f64), Some(6.0));
        assert_eq!(
            span.get("parent").and_then(Json::as_str),
            Some("unit.parent")
        );
        let rec = json::parse(lines[2]).unwrap();
        let fields = rec.get("fields").unwrap();
        assert_eq!(fields.get("iter").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            fields.get("kind").and_then(Json::as_str),
            Some("warm \"quoted\"")
        );
        assert_eq!(fields.get("bad"), Some(&Json::Null));
    }

    #[test]
    fn no_sink_means_noop() {
        let _l = crate::tests::TEST_LOCK.lock();
        uninstall();
        assert!(!active());
        emit_span("unit.nosink", 1, None, 0, 0);
        emit_record("unit.nosink", &[]);
    }
}
