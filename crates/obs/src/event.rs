//! Typed `alperf-obs-v1` trace events: the public record-parsing API.
//!
//! The sink ([`crate::sink`]) *writes* trace lines and this module is the
//! one place that knows how to *read* them back — and, symmetrically, how
//! to render a typed event into the exact bytes the sink would have
//! written ([`SpanEvent::to_line`] / [`RecordEvent::to_line`] call the same
//! line writers as the live emit path, so writer→reader round-trips are
//! lossless by construction). Consumers that analyze traces (the
//! `alperf-trace` crate, the `validate_trace` CI gate) parse through
//! [`Event::parse`] instead of hand-rolling field extraction.

use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt;

/// One parsed line of an `alperf-obs-v1` trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The schema-declaring first line.
    Meta(MetaEvent),
    /// A closed span (emitted on guard drop, so children precede parents).
    Span(SpanEvent),
    /// A structured record with free-form fields.
    Record(RecordEvent),
    /// A profiler stack sample (one thread's live span stack at an
    /// instant, captured by the cooperative sampler).
    Sample(SampleEvent),
}

/// The meta line: schema identity and time unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaEvent {
    /// Schema identifier (see [`crate::sink::SCHEMA`]).
    pub schema: String,
    /// Time unit of all `*_ns` fields (always `"ns"` under v1).
    pub unit: String,
}

/// A span event: name, thread, identity/parentage, interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name.
    pub name: String,
    /// Per-process thread id of the emitting thread.
    pub tid: u64,
    /// Process-unique span id (absent in pre-id traces).
    pub id: Option<u64>,
    /// Parent span name, when one was open (or explicitly attached).
    pub parent: Option<String>,
    /// Parent span id — the unambiguous link; absent in pre-id traces.
    pub parent_id: Option<u64>,
    /// Start time, nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

impl SpanEvent {
    /// End time (`start_ns + dur_ns`, saturating).
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    /// Does this span's interval contain `other`'s (inclusive)?
    pub fn contains(&self, other: &SpanEvent) -> bool {
        self.start_ns <= other.start_ns && other.end_ns() <= self.end_ns()
    }

    /// Render the exact JSONL line the sink would emit for this event.
    pub fn to_line(&self) -> String {
        span_line(
            &self.name,
            self.tid,
            self.id,
            self.parent.as_deref(),
            self.parent_id,
            self.start_ns,
            self.dur_ns,
        )
    }
}

/// A record event: name, thread, and free-form fields.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordEvent {
    /// Record name (e.g. `al.iteration`).
    pub name: String,
    /// Per-process thread id of the emitting thread.
    pub tid: u64,
    /// The `fields` object, key-sorted.
    pub fields: BTreeMap<String, Json>,
}

impl RecordEvent {
    /// Numeric field accessor.
    pub fn f64(&self, key: &str) -> Option<f64> {
        self.fields.get(key).and_then(Json::as_f64)
    }

    /// String field accessor.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.fields.get(key).and_then(Json::as_str)
    }

    /// Render a JSONL line for this event (field order is the key-sorted
    /// map order, which the live emit path also produces for sorted input).
    pub fn to_line(&self) -> String {
        let mut line = String::with_capacity(128);
        line.push_str("{\"v\":1,\"t\":\"record\",\"name\":");
        json::escape_into(&mut line, &self.name);
        line.push_str(&format!(",\"tid\":{},\"fields\":{{", self.tid));
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            json::escape_into(&mut line, key);
            line.push(':');
            write_json(&mut line, value);
        }
        line.push_str("}}");
        line
    }
}

/// A profiler stack sample: the live span stack of one thread at one
/// instant, root-first. Sample records carry their own schema version
/// (`sv`, see [`SampleEvent::SCHEMA_VERSION`]) so the sample shape can
/// evolve without revving the whole trace schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleEvent {
    /// Per-process thread id of the *sampled* thread (not the sampler).
    pub tid: u64,
    /// Capture time, nanoseconds since the process epoch.
    pub t_ns: u64,
    /// Open span names, root first, leaf last (never empty: idle threads
    /// are not emitted).
    pub stack: Vec<String>,
}

impl SampleEvent {
    /// Version of the sample-record shape (the `sv` field).
    pub const SCHEMA_VERSION: u64 = 1;

    /// The folded-stack key for this sample: names joined with `;`.
    pub fn folded_key(&self) -> String {
        self.stack.join(";")
    }

    /// Render the exact JSONL line the sink would emit for this event.
    pub fn to_line(&self) -> String {
        sample_line(self.tid, self.t_ns, self.stack.iter().map(String::as_str))
    }
}

fn write_json(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => out.push_str(&json::number(*n)),
        Json::Str(s) => json::escape_into(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(out, item);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::escape_into(out, k);
                out.push(':');
                write_json(out, val);
            }
            out.push('}');
        }
    }
}

/// Build a span JSONL line. This is the single writer used by both the
/// live sink emit path and [`SpanEvent::to_line`]; keeping one writer is
/// what makes the reader round-trip byte-exact.
#[allow(clippy::too_many_arguments)] // flat mirror of the wire fields
pub(crate) fn span_line(
    name: &str,
    tid: u64,
    id: Option<u64>,
    parent: Option<&str>,
    parent_id: Option<u64>,
    start_ns: u64,
    dur_ns: u64,
) -> String {
    let mut line = String::with_capacity(112);
    line.push_str("{\"v\":1,\"t\":\"span\",\"name\":");
    json::escape_into(&mut line, name);
    line.push_str(&format!(",\"tid\":{tid}"));
    if let Some(id) = id {
        line.push_str(&format!(",\"id\":{id}"));
    }
    if let Some(p) = parent {
        line.push_str(",\"parent\":");
        json::escape_into(&mut line, p);
    }
    if let Some(pid) = parent_id {
        line.push_str(&format!(",\"pid\":{pid}"));
    }
    line.push_str(&format!(",\"start_ns\":{start_ns},\"dur_ns\":{dur_ns}}}"));
    line
}

/// Build a sample JSONL line — the single writer shared by the live
/// sampler emit path and [`SampleEvent::to_line`].
pub(crate) fn sample_line<'a>(tid: u64, t_ns: u64, stack: impl Iterator<Item = &'a str>) -> String {
    let mut line = String::with_capacity(96);
    line.push_str(&format!(
        "{{\"v\":1,\"t\":\"sample\",\"sv\":{},\"tid\":{tid},\"t_ns\":{t_ns},\"stack\":[",
        SampleEvent::SCHEMA_VERSION
    ));
    for (i, frame) in stack.enumerate() {
        if i > 0 {
            line.push(',');
        }
        json::escape_into(&mut line, frame);
    }
    line.push_str("]}");
    line
}

/// A line that failed to parse as a typed event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventError(pub String);

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for EventError {}

fn req_f64(obj: &Json, key: &str) -> Result<f64, EventError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| EventError(format!("missing/non-numeric \"{key}\"")))
}

fn req_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, EventError> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| EventError(format!("missing/non-string \"{key}\"")))
}

fn opt_u64(obj: &Json, key: &str) -> Option<u64> {
    obj.get(key).and_then(Json::as_f64).map(|v| v as u64)
}

impl Event {
    /// Parse one trace line into a typed event, checking required fields
    /// per event type (`v == 1`; spans: `name`/`tid`/`start_ns`/`dur_ns`;
    /// records: `name`/`tid` + a `fields` object; meta: `schema`).
    pub fn parse(line: &str) -> Result<Event, EventError> {
        let obj = json::parse(line).map_err(EventError)?;
        if obj.as_obj().is_none() {
            return Err(EventError("event is not a JSON object".into()));
        }
        if req_f64(&obj, "v")? != 1.0 {
            return Err(EventError("unsupported event version".into()));
        }
        match req_str(&obj, "t")? {
            "meta" => Ok(Event::Meta(MetaEvent {
                schema: req_str(&obj, "schema")?.to_string(),
                unit: obj
                    .get("unit")
                    .and_then(Json::as_str)
                    .unwrap_or("ns")
                    .to_string(),
            })),
            "span" => Ok(Event::Span(SpanEvent {
                name: req_str(&obj, "name")?.to_string(),
                tid: req_f64(&obj, "tid")? as u64,
                id: opt_u64(&obj, "id"),
                parent: obj.get("parent").and_then(Json::as_str).map(str::to_string),
                parent_id: opt_u64(&obj, "pid"),
                start_ns: req_f64(&obj, "start_ns")? as u64,
                dur_ns: req_f64(&obj, "dur_ns")? as u64,
            })),
            "record" => {
                let fields = obj
                    .get("fields")
                    .and_then(Json::as_obj)
                    .ok_or_else(|| EventError("record without \"fields\" object".into()))?
                    .clone();
                Ok(Event::Record(RecordEvent {
                    name: req_str(&obj, "name")?.to_string(),
                    tid: req_f64(&obj, "tid")? as u64,
                    fields,
                }))
            }
            "sample" => {
                let sv = req_f64(&obj, "sv")? as u64;
                if sv != SampleEvent::SCHEMA_VERSION {
                    return Err(EventError(format!("unsupported sample version {sv}")));
                }
                let stack = obj
                    .get("stack")
                    .and_then(|v| match v {
                        Json::Arr(items) => items
                            .iter()
                            .map(|f| f.as_str().map(str::to_string))
                            .collect::<Option<Vec<String>>>(),
                        _ => None,
                    })
                    .ok_or_else(|| EventError("sample without string \"stack\" array".into()))?;
                if stack.is_empty() {
                    return Err(EventError("sample with empty stack".into()));
                }
                Ok(Event::Sample(SampleEvent {
                    tid: req_f64(&obj, "tid")? as u64,
                    t_ns: req_f64(&obj, "t_ns")? as u64,
                    stack,
                }))
            }
            other => Err(EventError(format!("unknown event type {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_line_round_trips() {
        let ev = SpanEvent {
            name: "gp.fit.restart".into(),
            tid: 3,
            id: Some(41),
            parent: Some("gp.fit".into()),
            parent_id: Some(40),
            start_ns: 123,
            dur_ns: 456,
        };
        let line = ev.to_line();
        match Event::parse(&line).unwrap() {
            Event::Span(back) => assert_eq!(back, ev),
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn minimal_span_without_ids_round_trips() {
        let ev = SpanEvent {
            name: "x".into(),
            tid: 1,
            id: None,
            parent: None,
            parent_id: None,
            start_ns: 0,
            dur_ns: 0,
        };
        match Event::parse(&ev.to_line()).unwrap() {
            Event::Span(back) => assert_eq!(back, ev),
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn record_line_round_trips() {
        let mut fields = BTreeMap::new();
        fields.insert("iter".to_string(), Json::Num(3.0));
        fields.insert("kind".to_string(), Json::Str("warm \"q\"".into()));
        fields.insert("ok".to_string(), Json::Bool(true));
        let ev = RecordEvent {
            name: "al.iteration".into(),
            tid: 2,
            fields,
        };
        match Event::parse(&ev.to_line()).unwrap() {
            Event::Record(back) => assert_eq!(back, ev),
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn meta_parses() {
        let line = format!(
            "{{\"v\":1,\"t\":\"meta\",\"schema\":\"{}\",\"unit\":\"ns\"}}",
            crate::sink::SCHEMA
        );
        match Event::parse(&line).unwrap() {
            Event::Meta(m) => {
                assert_eq!(m.schema, crate::sink::SCHEMA);
                assert_eq!(m.unit, "ns");
            }
            other => panic!("expected meta, got {other:?}"),
        }
    }

    #[test]
    fn sample_line_round_trips() {
        let ev = SampleEvent {
            tid: 4,
            t_ns: 987,
            stack: vec![
                "al.iteration".into(),
                "gp.fit".into(),
                "gp.fit.restart".into(),
            ],
        };
        let line = ev.to_line();
        assert!(line.contains("\"t\":\"sample\""));
        assert!(line.contains("\"sv\":1"));
        match Event::parse(&line).unwrap() {
            Event::Sample(back) => {
                assert_eq!(back, ev);
                assert_eq!(back.folded_key(), "al.iteration;gp.fit;gp.fit.restart");
            }
            other => panic!("expected sample, got {other:?}"),
        }
    }

    #[test]
    fn bad_lines_are_rejected() {
        assert!(Event::parse("not json").is_err());
        assert!(Event::parse("{\"v\":2,\"t\":\"span\"}").is_err());
        assert!(Event::parse("{\"v\":1,\"t\":\"mystery\"}").is_err());
        assert!(Event::parse("{\"v\":1,\"t\":\"span\",\"name\":\"a\"}").is_err());
        assert!(Event::parse("{\"v\":1,\"t\":\"record\",\"name\":\"a\",\"tid\":1}").is_err());
        // Samples: wrong version, empty/missing stack.
        assert!(Event::parse(
            "{\"v\":1,\"t\":\"sample\",\"sv\":2,\"tid\":1,\"t_ns\":0,\"stack\":[\"a\"]}"
        )
        .is_err());
        assert!(Event::parse(
            "{\"v\":1,\"t\":\"sample\",\"sv\":1,\"tid\":1,\"t_ns\":0,\"stack\":[]}"
        )
        .is_err());
        assert!(Event::parse("{\"v\":1,\"t\":\"sample\",\"sv\":1,\"tid\":1,\"t_ns\":0}").is_err());
    }
}
