//! Labeled metric families: [`CounterVec`] and [`HistogramVec`].
//!
//! A *family* is one metric name plus a fixed, small set of label keys
//! (`campaign`, `strategy`, `tier`, `fault_kind`, …); each distinct label
//! *value* tuple gets its own child [`Counter`]/[`Histogram`]. The design
//! constraints mirror the rest of the crate:
//!
//! * **Lock-free on the hot path.** `with()` resolves a child once (read
//!   lock + map lookup) and hands back an `Arc` handle; call sites cache
//!   the handle for the duration of a campaign, so the per-event cost is
//!   the child's own relaxed atomic — identical to an unlabeled metric.
//! * **Hard cardinality cap.** A family never holds more than
//!   [`CounterVec::cap`] live series. Once the cap is reached, every new
//!   label tuple resolves to the family's dedicated *overflow* series
//!   (label values [`OVERFLOW_VALUE`]), so hostile or unbounded label
//!   values (tenant ids, error strings) cannot blow up memory — they can
//!   only make the overflow series large.
//! * **Deterministic serialization.** Children live in a `BTreeMap` keyed
//!   by the label-value tuple, so snapshots enumerate label sets in
//!   sorted order regardless of insertion order or thread interleaving.
//!
//! Label *keys* are `&'static str` (they are part of the schema); label
//! *values* are arbitrary strings and are escaped by the Prometheus
//! renderer ([`crate::registry::Registry::prometheus_snapshot`]).

use crate::metrics::{Counter, HistStats, Histogram};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Maximum number of label keys a family may declare.
pub const MAX_LABELS: usize = 4;

/// Default hard cap on live series per family (overflow series excluded).
pub const DEFAULT_MAX_SERIES: usize = 64;

/// Label value reported for the overflow series (and for events whose
/// label tuple had the wrong arity).
pub const OVERFLOW_VALUE: &str = "_overflow";

/// A family of [`Counter`]s keyed by a small label-value tuple.
pub struct CounterVec {
    name: String,
    keys: Vec<&'static str>,
    cap: usize,
    children: RwLock<BTreeMap<Vec<String>, Arc<Counter>>>,
    overflow: Arc<Counter>,
}

impl CounterVec {
    /// A new family named `name` over label keys `keys` with the
    /// [`DEFAULT_MAX_SERIES`] cardinality cap.
    pub fn new(name: &str, keys: &[&'static str]) -> Self {
        CounterVec::with_cap(name, keys, DEFAULT_MAX_SERIES)
    }

    /// A new family with an explicit cardinality cap (`cap >= 1`).
    ///
    /// # Panics
    /// Panics when more than [`MAX_LABELS`] keys are declared — label
    /// arity is part of the instrumentation schema, not runtime input.
    pub fn with_cap(name: &str, keys: &[&'static str], cap: usize) -> Self {
        assert!(
            keys.len() <= MAX_LABELS,
            "metric family {name:?}: at most {MAX_LABELS} label keys"
        );
        CounterVec {
            name: name.to_string(),
            keys: keys.to_vec(),
            cap: cap.max(1),
            children: RwLock::new(BTreeMap::new()),
            overflow: Arc::new(Counter::new()),
        }
    }

    /// Family name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared label keys, in declaration order.
    pub fn keys(&self) -> &[&'static str] {
        &self.keys
    }

    /// The cardinality cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The overflow child: every label tuple beyond the cap (or with the
    /// wrong arity) lands here.
    pub fn overflow(&self) -> Arc<Counter> {
        Arc::clone(&self.overflow)
    }

    /// Number of live (non-overflow) series.
    pub fn series_count(&self) -> usize {
        self.children.read().len()
    }

    /// Get-or-create the child for `values` (one value per declared key).
    /// Hot paths should call this once and cache the returned handle.
    /// A wrong-arity tuple or a tuple beyond the cardinality cap resolves
    /// to the overflow series instead of allocating.
    pub fn with(&self, values: &[&str]) -> Arc<Counter> {
        if values.len() != self.keys.len() {
            return Arc::clone(&self.overflow);
        }
        {
            let children = self.children.read();
            if let Some(c) = lookup(&children, values) {
                return Arc::clone(c);
            }
            if children.len() >= self.cap {
                return Arc::clone(&self.overflow);
            }
        }
        let mut children = self.children.write();
        // Re-check under the write lock: another thread may have filled
        // the cap (or created this tuple) between the two locks.
        if let Some(c) = lookup(&children, values) {
            return Arc::clone(c);
        }
        if children.len() >= self.cap {
            return Arc::clone(&self.overflow);
        }
        let key: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        Arc::clone(
            children
                .entry(key)
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// All series as `(label values, value)`, sorted by label values; the
    /// overflow series (values [`OVERFLOW_VALUE`]) is included when it
    /// ever received an event.
    pub fn snapshot(&self) -> Vec<(Vec<String>, u64)> {
        let mut out: Vec<(Vec<String>, u64)> = self
            .children
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        if self.overflow.get() > 0 {
            let key = vec![OVERFLOW_VALUE.to_string(); self.keys.len()];
            let at = out.partition_point(|(k, _)| *k < key);
            out.insert(at, (key, self.overflow.get()));
        }
        out
    }

    /// Zero every series (handles stay valid).
    pub fn reset(&self) {
        for c in self.children.read().values() {
            c.reset();
        }
        self.overflow.reset();
    }
}

/// A family of [`Histogram`]s keyed by a small label-value tuple. Same
/// caching, cap, and overflow semantics as [`CounterVec`].
pub struct HistogramVec {
    name: String,
    keys: Vec<&'static str>,
    cap: usize,
    children: RwLock<BTreeMap<Vec<String>, Arc<Histogram>>>,
    overflow: Arc<Histogram>,
}

impl HistogramVec {
    /// A new family with the [`DEFAULT_MAX_SERIES`] cap.
    pub fn new(name: &str, keys: &[&'static str]) -> Self {
        HistogramVec::with_cap(name, keys, DEFAULT_MAX_SERIES)
    }

    /// A new family with an explicit cardinality cap (`cap >= 1`).
    ///
    /// # Panics
    /// Panics when more than [`MAX_LABELS`] keys are declared.
    pub fn with_cap(name: &str, keys: &[&'static str], cap: usize) -> Self {
        assert!(
            keys.len() <= MAX_LABELS,
            "metric family {name:?}: at most {MAX_LABELS} label keys"
        );
        HistogramVec {
            name: name.to_string(),
            keys: keys.to_vec(),
            cap: cap.max(1),
            children: RwLock::new(BTreeMap::new()),
            overflow: Arc::new(Histogram::new()),
        }
    }

    /// Family name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared label keys, in declaration order.
    pub fn keys(&self) -> &[&'static str] {
        &self.keys
    }

    /// The cardinality cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The overflow child.
    pub fn overflow(&self) -> Arc<Histogram> {
        Arc::clone(&self.overflow)
    }

    /// Number of live (non-overflow) series.
    pub fn series_count(&self) -> usize {
        self.children.read().len()
    }

    /// Get-or-create the child for `values`; see [`CounterVec::with`].
    pub fn with(&self, values: &[&str]) -> Arc<Histogram> {
        if values.len() != self.keys.len() {
            return Arc::clone(&self.overflow);
        }
        {
            let children = self.children.read();
            if let Some(h) = lookup(&children, values) {
                return Arc::clone(h);
            }
            if children.len() >= self.cap {
                return Arc::clone(&self.overflow);
            }
        }
        let mut children = self.children.write();
        if let Some(h) = lookup(&children, values) {
            return Arc::clone(h);
        }
        if children.len() >= self.cap {
            return Arc::clone(&self.overflow);
        }
        let key: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        Arc::clone(
            children
                .entry(key)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// All series as `(label values, stats)`, sorted by label values,
    /// overflow included when non-empty.
    pub fn snapshot(&self) -> Vec<(Vec<String>, HistStats)> {
        let mut out: Vec<(Vec<String>, HistStats)> = self
            .children
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.stats()))
            .collect();
        if self.overflow.count() > 0 {
            let key = vec![OVERFLOW_VALUE.to_string(); self.keys.len()];
            let at = out.partition_point(|(k, _)| *k < key);
            out.insert(at, (key, self.overflow.stats()));
        }
        out
    }

    /// Clear every series (handles stay valid).
    pub fn reset(&self) {
        for h in self.children.read().values() {
            h.reset();
        }
        self.overflow.reset();
    }
}

/// Borrowed-key lookup in a `BTreeMap<Vec<String>, _>` without allocating
/// the owned tuple on the hit path.
fn lookup<'m, T>(map: &'m BTreeMap<Vec<String>, T>, values: &[&str]) -> Option<&'m T> {
    // BTreeMap cannot borrow `Vec<String>` as `[&str]`, so walk by range
    // equality instead: label tuples are tiny (<= MAX_LABELS), families
    // are small (<= cap), and this runs once per handle resolution — a
    // linear scan of a read-locked map is cheaper than the alloc.
    map.iter()
        .find(|(k, _)| {
            k.len() == values.len() && k.iter().map(String::as_str).eq(values.iter().copied())
        })
        .map(|(_, v)| v)
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double quote, and newline must be escaped inside the quoted
/// value; everything else passes through verbatim.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a `{k1="v1",k2="v2"}` label block (empty string for no labels),
/// with values escaped. `extra` appends one more pair (the summary
/// `quantile` label) after the family labels.
pub fn render_label_block(
    keys: &[&'static str],
    values: &[String],
    extra: Option<(&str, &str)>,
) -> String {
    let mut pairs: Vec<String> = keys
        .iter()
        .zip(values)
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_are_shared_per_label_set() {
        let v = CounterVec::new("test.family", &["campaign", "strategy"]);
        v.with(&["1", "vr"]).add(3);
        v.with(&["1", "vr"]).add(4);
        v.with(&["2", "vr"]).inc();
        assert_eq!(v.with(&["1", "vr"]).get(), 7);
        assert_eq!(v.with(&["2", "vr"]).get(), 1);
        assert_eq!(v.series_count(), 2);
    }

    #[test]
    fn cap_routes_new_series_to_overflow() {
        let v = CounterVec::with_cap("test.capped", &["k"], 2);
        v.with(&["a"]).inc();
        v.with(&["b"]).inc();
        // Third distinct tuple: overflow, not a new series.
        v.with(&["c"]).inc();
        v.with(&["d"]).add(2);
        assert_eq!(v.series_count(), 2);
        assert_eq!(v.overflow().get(), 3);
        // Existing tuples still resolve to their own series at the cap.
        v.with(&["a"]).inc();
        assert_eq!(v.with(&["a"]).get(), 2);
        let snap = v.snapshot();
        assert_eq!(snap.len(), 3);
        // "_overflow" sorts before the lowercase live series.
        assert_eq!(snap[0].0, vec![OVERFLOW_VALUE.to_string()]);
        assert_eq!(snap[0].1, 3);
    }

    #[test]
    fn wrong_arity_goes_to_overflow() {
        let v = CounterVec::new("test.arity", &["a", "b"]);
        v.with(&["only-one"]).inc();
        assert_eq!(v.series_count(), 0);
        assert_eq!(v.overflow().get(), 1);
    }

    #[test]
    fn snapshot_is_sorted_by_label_values() {
        let v = CounterVec::new("test.sorted", &["k"]);
        for name in ["zebra", "alpha", "mid"] {
            v.with(&[name]).inc();
        }
        let names: Vec<String> = v.snapshot().into_iter().map(|(k, _)| k.join(",")).collect();
        assert_eq!(names, vec!["alpha", "mid", "zebra"]);
    }

    #[test]
    fn histogram_vec_records_and_caps() {
        let v = HistogramVec::with_cap("test.hist", &["tier"], 1);
        v.with(&["exact"]).record(100);
        v.with(&["exact"]).record(200);
        v.with(&["sparse"]).record(999); // beyond cap -> overflow
        assert_eq!(v.with(&["exact"]).stats().count, 2);
        assert_eq!(v.overflow().stats().count, 1);
        let snap = v.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, vec![OVERFLOW_VALUE.to_string()]);
        assert_eq!(snap[1].1.sum, 300);
    }

    #[test]
    fn reset_keeps_series_alive() {
        let v = CounterVec::new("test.reset", &["k"]);
        let h = v.with(&["x"]);
        h.add(5);
        v.reset();
        assert_eq!(h.get(), 0);
        h.inc();
        assert_eq!(v.with(&["x"]).get(), 1);
    }

    #[test]
    fn label_values_escape_per_exposition_format() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("line\nbreak"), "line\\nbreak");
    }

    #[test]
    fn label_block_renders_escaped_pairs() {
        let block = render_label_block(
            &["campaign", "strategy"],
            &["7".to_string(), "v\"r\n".to_string()],
            None,
        );
        assert_eq!(block, "{campaign=\"7\",strategy=\"v\\\"r\\n\"}");
        let with_q =
            render_label_block(&["tier"], &["exact".to_string()], Some(("quantile", "0.5")));
        assert_eq!(with_q, "{tier=\"exact\",quantile=\"0.5\"}");
        assert_eq!(render_label_block(&[], &[], None), "");
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_label_keys_rejected() {
        let _ = CounterVec::new("test.wide", &["a", "b", "c", "d", "e"]);
    }
}
