//! Deterministic SLO/alerting rules engine over the [`crate::tsdb`].
//!
//! Rules come in four kinds — threshold, absence, rate-of-change, and
//! SLO burn-rate — and are evaluated against the time-series store on an
//! explicit timestamp ([`Engine::evaluate_at`]), normally the same one
//! the scraper loop just used. Evaluation is a pure function of
//! (tsdb contents, `now_ns`, prior engine state): no wall clock, no
//! randomness, no iteration-order dependence — replaying the same scrape
//! timeline under a [`crate::FakeClock`] yields the bit-identical
//! transition sequence (property-tested against a reference model in
//! `tests/proptest_tsdb.rs`).
//!
//! Each rule runs a pending → firing → resolved state machine with
//! hysteresis on both edges: the condition must hold for
//! [`Rule::for_ns`] before firing, and must stay clear for
//! [`Rule::resolve_after_ns`] before resolving. Every transition is
//! returned to the caller, kept in a bounded in-engine log, and emitted
//! into the alperf-obs-v1 trace as a schema-versioned
//! [`crate::names::OBS_ALERT`] record (`asv` field =
//! [`ALERT_SCHEMA_VERSION`]) carrying the rule's current value and — for
//! histogram-derived series — the span exemplar that links the alert
//! back into the trace/flamegraph pipeline.

use crate::names;
use crate::sink::Value;
use crate::tsdb::Tsdb;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Version of the `obs.alert` record payload (`asv` field).
pub const ALERT_SCHEMA_VERSION: u64 = 1;

/// Transitions retained in the engine's bounded log.
const MAX_TRANSITIONS: usize = 256;

/// Comparison operator for rule conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `value > bound`.
    Gt,
    /// `value >= bound`.
    Ge,
    /// `value < bound`.
    Lt,
    /// `value <= bound`.
    Le,
}

impl Cmp {
    fn eval(&self, value: f64, bound: f64) -> bool {
        match self {
            Cmp::Gt => value > bound,
            Cmp::Ge => value >= bound,
            Cmp::Lt => value < bound,
            Cmp::Le => value <= bound,
        }
    }

    /// Stable name for rendering.
    pub fn as_str(&self) -> &'static str {
        match self {
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
        }
    }
}

/// What a rule tests, evaluated over a trailing window ending at `now`.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Sum of the series' deltas over the window, compared to `value`.
    Threshold {
        /// Series name in the tsdb.
        series: String,
        /// Comparison.
        cmp: Cmp,
        /// Bound for the windowed delta sum.
        value: f64,
        /// Trailing window width.
        window_ns: u64,
    },
    /// No data point at all in the window — telemetry (or its producer)
    /// went dark. Never true before `now` reaches one full window, so a
    /// fresh engine does not fire on startup.
    Absence {
        /// Series name in the tsdb.
        series: String,
        /// Trailing window width.
        window_ns: u64,
    },
    /// Windowed delta sum converted to a per-second rate, compared to
    /// `per_sec`.
    RateOfChange {
        /// Series name in the tsdb.
        series: String,
        /// Comparison.
        cmp: Cmp,
        /// Bound, events per second.
        per_sec: f64,
        /// Trailing window width.
        window_ns: u64,
    },
    /// SLO burn rate: windowed `numerator` deltas over windowed
    /// `denominator` deltas (0 when the denominator saw no traffic),
    /// compared to `ratio`.
    BurnRate {
        /// Bad-event series (e.g. `al.degraded_iteration`).
        numerator: String,
        /// Traffic series (e.g. `al.iteration.count`).
        denominator: String,
        /// Comparison.
        cmp: Cmp,
        /// Bound for the bad/traffic ratio.
        ratio: f64,
        /// Trailing window width.
        window_ns: u64,
    },
}

impl Condition {
    /// The rule's primary series (exemplar + display).
    pub fn series(&self) -> &str {
        match self {
            Condition::Threshold { series, .. }
            | Condition::Absence { series, .. }
            | Condition::RateOfChange { series, .. } => series,
            Condition::BurnRate { numerator, .. } => numerator,
        }
    }

    /// Evaluate at `now_ns`, returning `(condition holds, observed
    /// value)`.
    fn eval(&self, tsdb: &Tsdb, now_ns: u64) -> (bool, f64) {
        match self {
            Condition::Threshold {
                series,
                cmp,
                value,
                window_ns,
            } => {
                let sum = tsdb
                    .window_sum(series, now_ns.saturating_sub(*window_ns), now_ns)
                    .unwrap_or(0) as f64;
                (cmp.eval(sum, *value), sum)
            }
            Condition::Absence { series, window_ns } => {
                if now_ns < *window_ns {
                    return (false, 0.0);
                }
                let fresh = tsdb.has_point_after(series, now_ns - *window_ns);
                (!fresh, if fresh { 1.0 } else { 0.0 })
            }
            Condition::RateOfChange {
                series,
                cmp,
                per_sec,
                window_ns,
            } => {
                let sum = tsdb
                    .window_sum(series, now_ns.saturating_sub(*window_ns), now_ns)
                    .unwrap_or(0) as f64;
                let rate = sum * 1e9 / (*window_ns).max(1) as f64;
                (cmp.eval(rate, *per_sec), rate)
            }
            Condition::BurnRate {
                numerator,
                denominator,
                cmp,
                ratio,
                window_ns,
            } => {
                let from = now_ns.saturating_sub(*window_ns);
                let num = tsdb.window_sum(numerator, from, now_ns).unwrap_or(0) as f64;
                let den = tsdb.window_sum(denominator, from, now_ns).unwrap_or(0) as f64;
                let r = if den > 0.0 { num / den } else { 0.0 };
                (cmp.eval(r, *ratio), r)
            }
        }
    }
}

/// One alerting rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name — the identity in transitions, `/alerts`, and traces.
    pub name: String,
    /// The tested condition.
    pub condition: Condition,
    /// Condition must hold this long before firing (0 = fire on first
    /// true evaluation).
    pub for_ns: u64,
    /// Condition must stay clear this long before resolving (0 = resolve
    /// on first false evaluation).
    pub resolve_after_ns: u64,
}

impl Rule {
    /// A rule with both hysteresis edges.
    pub fn new(
        name: impl Into<String>,
        condition: Condition,
        for_ns: u64,
        resolve_after_ns: u64,
    ) -> Self {
        Rule {
            name: name.into(),
            condition,
            for_ns,
            resolve_after_ns,
        }
    }
}

/// Rule states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition false (or never evaluated).
    Inactive,
    /// Condition true, waiting out `for_ns`.
    Pending,
    /// Alert active.
    Firing,
}

impl AlertState {
    /// Stable name for rendering.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }
}

/// One state transition. `to` is the *edge* label: a firing rule whose
/// condition cleared transitions with `to: "resolved"` (state returns to
/// [`AlertState::Inactive`]); a pending rule whose condition cleared
/// transitions with `to: "inactive"` (a cancelled pend, not a resolve).
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Rule name.
    pub rule: String,
    /// State left.
    pub from: &'static str,
    /// Edge label: `pending`, `firing`, `inactive`, or `resolved`.
    pub to: &'static str,
    /// Evaluation timestamp.
    pub t_ns: u64,
    /// Observed condition value at the transition.
    pub value: f64,
    /// Span exemplar of the rule's primary series, when one exists.
    pub exemplar_span: Option<u64>,
}

/// Live view of one rule for `/alerts`.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSnapshot {
    /// Rule name.
    pub rule: String,
    /// Current state.
    pub state: AlertState,
    /// When the current state was entered.
    pub since_ns: u64,
    /// Last observed condition value.
    pub value: f64,
}

struct RuleRt {
    state: AlertState,
    since_ns: u64,
    clear_since_ns: Option<u64>,
    last_value: f64,
}

struct EngineInner {
    states: Vec<RuleRt>,
    transitions: VecDeque<Transition>,
    evaluations: u64,
}

/// The rules engine. One instance holds a fixed rule set; state advances
/// only through [`Engine::evaluate_at`].
pub struct Engine {
    rules: Vec<Rule>,
    inner: Mutex<EngineInner>,
}

impl Engine {
    /// An engine over `rules`, all rules inactive.
    pub fn new(rules: Vec<Rule>) -> Self {
        let states = rules
            .iter()
            .map(|_| RuleRt {
                state: AlertState::Inactive,
                since_ns: 0,
                clear_since_ns: None,
                last_value: 0.0,
            })
            .collect();
        Engine {
            rules,
            inner: Mutex::new(EngineInner {
                states,
                transitions: VecDeque::new(),
                evaluations: 0,
            }),
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Evaluate every rule against `tsdb` at `now_ns`, advancing state
    /// machines and returning the transitions taken (rule order, which is
    /// fixed). Each transition is also appended to the bounded in-engine
    /// log and emitted as a schema-versioned `obs.alert` trace record.
    pub fn evaluate_at(&self, tsdb: &Tsdb, now_ns: u64) -> Vec<Transition> {
        let mut taken = Vec::new();
        {
            let mut inner = self.inner.lock();
            inner.evaluations += 1;
            for (rule, rt) in self.rules.iter().zip(inner.states.iter_mut()) {
                let (holds, value) = rule.condition.eval(tsdb, now_ns);
                rt.last_value = value;
                let edge: Option<(&'static str, &'static str, AlertState)> = match rt.state {
                    AlertState::Inactive if holds => {
                        if rule.for_ns == 0 {
                            Some(("inactive", "firing", AlertState::Firing))
                        } else {
                            Some(("inactive", "pending", AlertState::Pending))
                        }
                    }
                    AlertState::Pending if !holds => {
                        Some(("pending", "inactive", AlertState::Inactive))
                    }
                    AlertState::Pending if now_ns.saturating_sub(rt.since_ns) >= rule.for_ns => {
                        Some(("pending", "firing", AlertState::Firing))
                    }
                    AlertState::Firing if !holds => {
                        let clear_since = *rt.clear_since_ns.get_or_insert(now_ns);
                        if now_ns.saturating_sub(clear_since) >= rule.resolve_after_ns {
                            Some(("firing", "resolved", AlertState::Inactive))
                        } else {
                            None
                        }
                    }
                    AlertState::Firing => {
                        rt.clear_since_ns = None;
                        None
                    }
                    _ => None,
                };
                if let Some((from, to, next)) = edge {
                    rt.state = next;
                    rt.since_ns = now_ns;
                    rt.clear_since_ns = None;
                    taken.push(Transition {
                        rule: rule.name.clone(),
                        from,
                        to,
                        t_ns: now_ns,
                        value,
                        exemplar_span: tsdb.exemplar(rule.condition.series()).map(|e| e.span_id),
                    });
                }
            }
            for t in &taken {
                inner.transitions.push_back(t.clone());
                while inner.transitions.len() > MAX_TRANSITIONS {
                    inner.transitions.pop_front();
                }
            }
        }
        for t in &taken {
            emit_transition(t);
        }
        taken
    }

    /// Rules currently firing.
    pub fn firing_count(&self) -> usize {
        self.inner
            .lock()
            .states
            .iter()
            .filter(|s| s.state == AlertState::Firing)
            .count()
    }

    /// Per-rule live view, rule order.
    pub fn snapshot(&self) -> Vec<RuleSnapshot> {
        let inner = self.inner.lock();
        self.rules
            .iter()
            .zip(inner.states.iter())
            .map(|(r, rt)| RuleSnapshot {
                rule: r.name.clone(),
                state: rt.state,
                since_ns: rt.since_ns,
                value: rt.last_value,
            })
            .collect()
    }

    /// The bounded transition log, oldest first.
    pub fn transitions(&self) -> Vec<Transition> {
        self.inner.lock().transitions.iter().cloned().collect()
    }

    /// Evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.inner.lock().evaluations
    }

    /// Render the `/alerts` endpoint's JSON document.
    pub fn to_json(&self) -> String {
        let snap = self.snapshot();
        let transitions = self.transitions();
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"schema\":\"alperf-alerts-v1\",\"installed\":true,\"firing\":{},\"rules\":[",
            self.firing_count()
        ));
        for (i, r) in snap.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            crate::json::escape_into(&mut out, &r.rule);
            out.push_str(&format!(
                ",\"state\":\"{}\",\"since_ns\":{},\"value\":{}}}",
                r.state.as_str(),
                r.since_ns,
                crate::json::number(r.value)
            ));
        }
        out.push_str("],\"transitions\":[");
        for (i, t) in transitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            crate::json::escape_into(&mut out, &t.rule);
            out.push_str(&format!(
                ",\"from\":\"{}\",\"to\":\"{}\",\"t_ns\":{},\"value\":{}}}",
                t.from,
                t.to,
                t.t_ns,
                crate::json::number(t.value)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Emit one transition as a schema-versioned record into the
/// alperf-obs-v1 trace (plus the transition counter). No-op when
/// telemetry is disabled.
fn emit_transition(t: &Transition) {
    crate::inc(names::OBS_ALERT_TRANSITIONS);
    let mut fields: Vec<(&str, Value<'_>)> = vec![
        ("asv", Value::U64(ALERT_SCHEMA_VERSION)),
        ("rule", Value::Str(&t.rule)),
        ("from", Value::Str(t.from)),
        ("to", Value::Str(t.to)),
        ("t_ns", Value::U64(t.t_ns)),
        ("value", Value::F64(t.value)),
    ];
    if let Some(span) = t.exemplar_span {
        fields.push(("exemplar_span", Value::U64(span)));
    }
    crate::record(names::OBS_ALERT, &fields);
}

/// The stock fleet rule set: watchdog stalls, degraded-iteration SLO
/// burn, retry pressure, and scraper liveness.
pub fn default_rules() -> Vec<Rule> {
    const S: u64 = 1_000_000_000;
    vec![
        Rule::new(
            "watchdog_stall",
            Condition::Threshold {
                series: names::OBS_WATCHDOG_STALL.to_string(),
                cmp: Cmp::Ge,
                value: 1.0,
                window_ns: 10 * S,
            },
            0,
            0,
        ),
        Rule::new(
            "degraded_burn",
            Condition::BurnRate {
                numerator: names::AL_DEGRADED_ITERATION.to_string(),
                denominator: format!("{}.count", names::AL_ITERATION),
                cmp: Cmp::Gt,
                ratio: 0.5,
                window_ns: 10 * S,
            },
            S,
            5 * S,
        ),
        Rule::new(
            "retry_pressure",
            Condition::RateOfChange {
                series: names::CLUSTER_RETRY.to_string(),
                cmp: Cmp::Gt,
                per_sec: 25.0,
                window_ns: 5 * S,
            },
            S,
            5 * S,
        ),
        Rule::new(
            "scrape_liveness",
            Condition::Absence {
                series: names::OBS_TSDB_SCRAPES.to_string(),
                window_ns: 30 * S,
            },
            0,
            0,
        ),
    ]
}

// ---- global installation ----

static ENGINE: Mutex<Option<Arc<Engine>>> = Mutex::new(None);
static ENGINE_PRESENT: AtomicBool = AtomicBool::new(false);

/// Install a process-global engine (the one `/alerts` serves and the
/// scraper loop evaluates); returns the handle. Replaces any previous
/// engine.
pub fn install(rules: Vec<Rule>) -> Arc<Engine> {
    let engine = Arc::new(Engine::new(rules));
    *ENGINE.lock() = Some(Arc::clone(&engine));
    ENGINE_PRESENT.store(true, Ordering::Relaxed);
    engine
}

/// Remove the global engine.
pub fn uninstall() {
    ENGINE_PRESENT.store(false, Ordering::Relaxed);
    ENGINE.lock().take();
}

/// Is a global engine installed?
pub fn active() -> bool {
    ENGINE_PRESENT.load(Ordering::Relaxed)
}

/// The global engine, if installed.
pub fn global() -> Option<Arc<Engine>> {
    if !active() {
        return None;
    }
    ENGINE.lock().as_ref().map(Arc::clone)
}

/// Rules currently firing on the global engine (0 when none installed) —
/// what `/health` folds into liveness.
pub fn firing_count_global() -> usize {
    global().map(|e| e.firing_count()).unwrap_or(0)
}

/// Evaluate the global engine against `tsdb` at `now_ns`, if installed.
/// Called by the scraper loop after each scrape.
pub fn evaluate_global(tsdb: &Tsdb, now_ns: u64) {
    if let Some(engine) = global() {
        engine.evaluate_at(tsdb, now_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::tsdb::TsdbConfig;

    const S: u64 = 1_000_000_000;

    fn threshold_rule(for_ns: u64, resolve_after_ns: u64) -> Rule {
        Rule::new(
            "unit.thresh",
            Condition::Threshold {
                series: "unit.alerts.hits".to_string(),
                cmp: Cmp::Ge,
                value: 3.0,
                window_ns: 10 * S,
            },
            for_ns,
            resolve_after_ns,
        )
    }

    /// Scrape `reg` at `t` and evaluate, returning transitions.
    fn tick(tsdb: &Tsdb, eng: &Engine, reg: &Registry, t: u64) -> Vec<Transition> {
        tsdb.scrape_registry_at(reg, t);
        eng.evaluate_at(tsdb, t)
    }

    #[test]
    fn threshold_fires_and_resolves_through_pending() {
        let reg = Registry::new();
        let tsdb = Tsdb::new(TsdbConfig::default());
        let eng = Engine::new(vec![threshold_rule(2 * S, S)]);
        let c = reg.counter("unit.alerts.hits");
        assert!(tick(&tsdb, &eng, &reg, S).is_empty(), "no data, no alert");
        c.add(5);
        let t1 = tick(&tsdb, &eng, &reg, 2 * S);
        assert_eq!(t1.len(), 1);
        assert_eq!((t1[0].from, t1[0].to), ("inactive", "pending"));
        // Still inside for_ns.
        assert!(tick(&tsdb, &eng, &reg, 3 * S).is_empty());
        let t2 = tick(&tsdb, &eng, &reg, 4 * S);
        assert_eq!((t2[0].from, t2[0].to), ("pending", "firing"));
        assert_eq!(eng.firing_count(), 1);
        // Window slides past the spike at t=12s+: condition clears, but
        // resolve hysteresis holds for 1 s.
        assert!(tick(&tsdb, &eng, &reg, 13 * S).is_empty());
        let t3 = tick(&tsdb, &eng, &reg, 14 * S + 1);
        assert_eq!((t3[0].from, t3[0].to), ("firing", "resolved"));
        assert_eq!(eng.firing_count(), 0);
        assert_eq!(eng.transitions().len(), 3);
    }

    #[test]
    fn pending_cancels_when_condition_clears() {
        let reg = Registry::new();
        let tsdb = Tsdb::new(TsdbConfig::default());
        let eng = Engine::new(vec![Rule::new(
            "unit.cancel",
            Condition::Threshold {
                series: "unit.alerts.hits".to_string(),
                cmp: Cmp::Ge,
                value: 1.0,
                window_ns: 2 * S,
            },
            10 * S,
            0,
        )]);
        let c = reg.counter("unit.alerts.hits");
        c.inc();
        let t1 = tick(&tsdb, &eng, &reg, S);
        assert_eq!((t1[0].from, t1[0].to), ("inactive", "pending"));
        // Window slides past the single hit before for_ns elapses.
        let t2 = tick(&tsdb, &eng, &reg, 5 * S);
        assert_eq!((t2[0].from, t2[0].to), ("pending", "inactive"));
    }

    #[test]
    fn zero_for_ns_fires_immediately() {
        let reg = Registry::new();
        let tsdb = Tsdb::new(TsdbConfig::default());
        let eng = Engine::new(vec![threshold_rule(0, 0)]);
        reg.counter("unit.alerts.hits").add(10);
        let t = tick(&tsdb, &eng, &reg, S);
        assert_eq!((t[0].from, t[0].to), ("inactive", "firing"));
    }

    #[test]
    fn absence_waits_one_window_then_detects_darkness() {
        let reg = Registry::new();
        let tsdb = Tsdb::new(TsdbConfig::default());
        let eng = Engine::new(vec![Rule::new(
            "unit.absent",
            Condition::Absence {
                series: "unit.alerts.beat".to_string(),
                window_ns: 5 * S,
            },
            0,
            0,
        )]);
        let c = reg.counter("unit.alerts.beat");
        c.inc();
        assert!(tick(&tsdb, &eng, &reg, S).is_empty(), "startup grace");
        assert!(tick(&tsdb, &eng, &reg, 4 * S).is_empty());
        // Series last scraped at 4 s; evaluating without scraping at 10 s
        // sees no point in (5 s, 10 s].
        let t = eng.evaluate_at(&tsdb, 10 * S);
        assert_eq!((t[0].from, t[0].to), ("inactive", "firing"));
        // A fresh scrape recovers it.
        let t = tick(&tsdb, &eng, &reg, 11 * S);
        assert_eq!((t[0].from, t[0].to), ("firing", "resolved"));
    }

    #[test]
    fn burn_rate_ratio_and_rate_of_change() {
        let reg = Registry::new();
        let tsdb = Tsdb::new(TsdbConfig::default());
        let eng = Engine::new(vec![
            Rule::new(
                "unit.burn",
                Condition::BurnRate {
                    numerator: "unit.alerts.bad".to_string(),
                    denominator: "unit.alerts.all".to_string(),
                    cmp: Cmp::Gt,
                    ratio: 0.5,
                    window_ns: 10 * S,
                },
                0,
                0,
            ),
            Rule::new(
                "unit.rate",
                Condition::RateOfChange {
                    series: "unit.alerts.all".to_string(),
                    cmp: Cmp::Gt,
                    per_sec: 1.5,
                    window_ns: 2 * S,
                },
                0,
                0,
            ),
        ]);
        let bad = reg.counter("unit.alerts.bad");
        let all = reg.counter("unit.alerts.all");
        all.add(4);
        bad.add(1);
        let t = tick(&tsdb, &eng, &reg, S);
        // ratio 0.25 <= 0.5, rate 4/2s = 2.0 > 1.5.
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].rule, "unit.rate");
        bad.add(9);
        let t = tick(&tsdb, &eng, &reg, 2 * S);
        assert!(t.iter().any(|x| x.rule == "unit.burn" && x.to == "firing"));
    }

    #[test]
    fn transitions_carry_exemplars_from_histogram_series() {
        let reg = Registry::new();
        let tsdb = Tsdb::new(TsdbConfig::default());
        let eng = Engine::new(vec![Rule::new(
            "unit.ex",
            Condition::Threshold {
                series: "unit.alerts.span.count".to_string(),
                cmp: Cmp::Ge,
                value: 1.0,
                window_ns: 10 * S,
            },
            0,
            0,
        )]);
        reg.histogram("unit.alerts.span")
            .record_with_exemplar(1_234, 77);
        let t = tick(&tsdb, &eng, &reg, S);
        assert_eq!(t[0].exemplar_span, Some(77));
    }

    #[test]
    fn evaluation_is_replayable() {
        let run = || {
            let reg = Registry::new();
            let tsdb = Tsdb::new(TsdbConfig::default());
            let eng = Engine::new(default_rules());
            let c = reg.counter(names::OBS_WATCHDOG_STALL);
            let mut all = Vec::new();
            for k in 1..40u64 {
                if k == 7 || k == 8 {
                    c.inc();
                }
                all.extend(tick(&tsdb, &eng, &reg, k * S));
            }
            all
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same timeline must replay bit-identically");
        assert!(a
            .iter()
            .any(|t| t.rule == "watchdog_stall" && t.to == "firing"));
        assert!(a
            .iter()
            .any(|t| t.rule == "watchdog_stall" && t.to == "resolved"));
    }

    #[test]
    fn alerts_json_is_parseable() {
        let eng = Engine::new(default_rules());
        let j = crate::json::parse(&eng.to_json()).unwrap();
        assert_eq!(
            j.get("schema").and_then(crate::json::Json::as_str),
            Some("alperf-alerts-v1")
        );
        assert_eq!(
            j.get("firing").and_then(crate::json::Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn global_install_roundtrip() {
        let _l = crate::tests::TEST_LOCK.lock();
        assert!(!active());
        assert_eq!(firing_count_global(), 0);
        let e = install(default_rules());
        assert!(active());
        assert!(Arc::ptr_eq(&e, &global().unwrap()));
        uninstall();
        assert!(!active());
    }
}
