//! Embedded time-series store over the metric registry.
//!
//! The registry answers "what is the counter's value *now*"; this module
//! answers "what has it been doing". A scraper (background thread, or a
//! test driving [`Tsdb::scrape_registry_at`] with fabricated timestamps)
//! walks every registered counter, histogram, and labeled family, and
//! appends the **delta since the previous scrape** to a fixed-capacity
//! ring-buffered series per metric. Histograms contribute two series —
//! `<name>.count` and `<name>.sum` — so rates and means over time fall
//! out of plain counter arithmetic.
//!
//! Retention is log-structured: every series keeps a raw ring (one point
//! per scrape) plus 10 s and 60 s rollup rings. A rollup bucket
//! accumulates raw deltas and is flushed to its ring when a scrape
//! crosses the bucket boundary, so coarser tiers retain proportionally
//! longer history in the same bounded memory. All bounds are explicit
//! and accounted: evicted ring points count into
//! [`crate::names::OBS_TSDB_POINTS_EVICTED`], and series beyond the
//! [`TsdbConfig::max_series`] cap are dropped (never silently created)
//! and counted into [`crate::names::OBS_TSDB_SERIES_OVERFLOW`] — the
//! same philosophy as the labels cardinality cap.
//!
//! Determinism contract: a scrape is a pure function of (registry state,
//! `now_ns`, prior tsdb state). The store never feeds back into any
//! computation; under a [`crate::FakeClock`]-style fabricated timeline
//! the full contents — and everything the alert engine derives from them
//! — replay bit-identically.

use crate::clock::monotonic_ns;
use crate::labels::render_label_block;
use crate::names;
use crate::registry::Registry;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default scraper cadence.
pub const DEFAULT_SCRAPE_INTERVAL_MS: u64 = 250;
/// Default raw-ring capacity (points per series).
pub const DEFAULT_RAW_CAPACITY: usize = 512;
/// Default rollup-ring capacity (buckets per tier per series).
pub const DEFAULT_ROLLUP_CAPACITY: usize = 256;
/// Default series cap across the whole store.
pub const DEFAULT_MAX_SERIES: usize = 512;
/// Width of the first rollup tier.
pub const TIER_10S_NS: u64 = 10_000_000_000;
/// Width of the second rollup tier.
pub const TIER_60S_NS: u64 = 60_000_000_000;

/// Retention tiers, finest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// One point per scrape.
    Raw,
    /// 10-second rollup buckets.
    R10s,
    /// 60-second rollup buckets.
    R60s,
}

impl Tier {
    /// Stable name used by `/query` and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Tier::Raw => "raw",
            Tier::R10s => "10s",
            Tier::R60s => "60s",
        }
    }

    /// Parse a tier name (the inverse of [`Tier::as_str`]).
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "raw" => Some(Tier::Raw),
            "10s" => Some(Tier::R10s),
            "60s" => Some(Tier::R60s),
            _ => None,
        }
    }
}

/// One retained sample: the delta accumulated in this point's interval
/// plus the cumulative total at its end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Point {
    /// Sample time: the scrape instant (raw) or the bucket start
    /// (rollups).
    pub t_ns: u64,
    /// Value increase inside this point's interval.
    pub delta: u64,
    /// Cumulative value at the end of the interval.
    pub total: u64,
}

/// A span exemplar attached to a histogram-derived series: the id of the
/// most recent span whose duration was observed into the histogram, which
/// links a query/alert result back into the trace and flamegraph
/// pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Span id of the latest exemplar observation.
    pub span_id: u64,
    /// The observed value (nanoseconds for span histograms).
    pub value: u64,
}

/// Store geometry and bounds.
#[derive(Debug, Clone, Copy)]
pub struct TsdbConfig {
    /// Raw-ring points retained per series.
    pub raw_capacity: usize,
    /// Rollup-ring buckets retained per tier per series.
    pub rollup_capacity: usize,
    /// Maximum series tracked; further series are dropped and counted.
    pub max_series: usize,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        TsdbConfig {
            raw_capacity: DEFAULT_RAW_CAPACITY,
            rollup_capacity: DEFAULT_ROLLUP_CAPACITY,
            max_series: DEFAULT_MAX_SERIES,
        }
    }
}

/// An open (not yet flushed) rollup bucket.
struct OpenBucket {
    start_ns: u64,
    delta: u64,
    total: u64,
}

#[derive(Default)]
struct Series {
    raw: VecDeque<Point>,
    r10: VecDeque<Point>,
    r60: VecDeque<Point>,
    b10: Option<OpenBucket>,
    b60: Option<OpenBucket>,
    last_total: u64,
    exemplar: Option<Exemplar>,
}

#[derive(Default)]
struct Inner {
    series: BTreeMap<String, Series>,
    scrapes: u64,
    last_scrape_ns: u64,
    points_evicted: u64,
    series_overflow: u64,
}

/// Store-level accounting counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TsdbStats {
    /// Series currently tracked.
    pub series: usize,
    /// Scrapes performed.
    pub scrapes: u64,
    /// Time of the most recent scrape.
    pub last_scrape_ns: u64,
    /// Ring points evicted (all tiers).
    pub points_evicted: u64,
    /// Series dropped at the cap.
    pub series_overflow: u64,
}

/// One range-query answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The series name queried.
    pub name: String,
    /// Tier the points came from.
    pub tier: Tier,
    /// Points with `start_ns <= t_ns <= end_ns`, time-ordered.
    pub points: Vec<Point>,
    /// Latest span exemplar for histogram-derived series.
    pub exemplar: Option<Exemplar>,
}

impl QueryResult {
    /// Render as the `/query` endpoint's JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.points.len() * 48);
        out.push_str("{\"schema\":\"alperf-tsdb-query-v1\",\"name\":");
        crate::json::escape_into(&mut out, &self.name);
        out.push_str(&format!(",\"tier\":\"{}\"", self.tier.as_str()));
        if let Some(ex) = self.exemplar {
            out.push_str(&format!(
                ",\"exemplar\":{{\"span_id\":{},\"value\":{}}}",
                ex.span_id, ex.value
            ));
        }
        out.push_str(",\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"t_ns\":{},\"delta\":{},\"total\":{}}}",
                p.t_ns, p.delta, p.total
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The embedded time-series store. All methods take `&self`; state lives
/// behind one mutex (scrapes are rare — hundreds of ms apart — and
/// queries are human/CI-speed).
pub struct Tsdb {
    config: TsdbConfig,
    inner: Mutex<Inner>,
}

impl Default for Tsdb {
    fn default() -> Self {
        Tsdb::new(TsdbConfig::default())
    }
}

impl Tsdb {
    /// An empty store with the given bounds.
    pub fn new(config: TsdbConfig) -> Self {
        Tsdb {
            config: TsdbConfig {
                raw_capacity: config.raw_capacity.max(1),
                rollup_capacity: config.rollup_capacity.max(1),
                max_series: config.max_series.max(1),
            },
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> TsdbConfig {
        self.config
    }

    /// Scrape the global registry at the current monotonic time.
    pub fn scrape(&self) {
        self.scrape_registry_at(crate::registry::global(), monotonic_ns());
    }

    /// Scrape `registry` at an explicit time — the deterministic entry
    /// point tests drive with fabricated timestamps. Also bumps the
    /// tsdb's own accounting counters *in the scraped registry*, so the
    /// store's health is visible through the pipeline it feeds.
    pub fn scrape_registry_at(&self, registry: &Registry, now_ns: u64) {
        // Bump before snapshotting so the scrape counter's own series
        // includes this scrape.
        registry.counter(names::OBS_TSDB_SCRAPES).inc();
        let counters = registry.counters_snapshot();
        let histograms = registry.histogram_handles();
        let counter_vecs = registry.counter_vecs_snapshot();
        let histogram_vecs = registry.histogram_vecs_snapshot();

        let (evicted_before, overflow_before);
        {
            let mut inner = self.inner.lock();
            evicted_before = inner.points_evicted;
            overflow_before = inner.series_overflow;
            inner.scrapes += 1;
            inner.last_scrape_ns = now_ns;
            let cfg = self.config;
            for (name, value) in counters {
                observe(&mut inner, &cfg, now_ns, name, value, None);
            }
            for (name, h) in histograms {
                let stats = h.stats();
                let ex = h
                    .exemplar_pair()
                    .map(|(span_id, value)| Exemplar { span_id, value });
                observe(
                    &mut inner,
                    &cfg,
                    now_ns,
                    format!("{name}.count"),
                    stats.count,
                    ex,
                );
                observe(
                    &mut inner,
                    &cfg,
                    now_ns,
                    format!("{name}.sum"),
                    stats.sum,
                    ex,
                );
            }
            for fam in counter_vecs {
                for (values, value) in fam.snapshot() {
                    let lbl = render_label_block(fam.keys(), &values, None);
                    observe(
                        &mut inner,
                        &cfg,
                        now_ns,
                        format!("{}{lbl}", fam.name()),
                        value,
                        None,
                    );
                }
            }
            for fam in histogram_vecs {
                for (values, stats) in fam.snapshot() {
                    let lbl = render_label_block(fam.keys(), &values, None);
                    observe(
                        &mut inner,
                        &cfg,
                        now_ns,
                        format!("{}{lbl}.count", fam.name()),
                        stats.count,
                        None,
                    );
                    observe(
                        &mut inner,
                        &cfg,
                        now_ns,
                        format!("{}{lbl}.sum", fam.name()),
                        stats.sum,
                        None,
                    );
                }
            }
            let (e, o) = (
                inner.points_evicted - evicted_before,
                inner.series_overflow - overflow_before,
            );
            drop(inner);
            // Mirror this scrape's accounting deltas into the scraped
            // registry (they appear from the next scrape on).
            if e > 0 {
                registry.counter(names::OBS_TSDB_POINTS_EVICTED).add(e);
            }
            if o > 0 {
                registry.counter(names::OBS_TSDB_SERIES_OVERFLOW).add(o);
            }
        }
    }

    /// Store-level accounting.
    pub fn stats(&self) -> TsdbStats {
        let inner = self.inner.lock();
        TsdbStats {
            series: inner.series.len(),
            scrapes: inner.scrapes,
            last_scrape_ns: inner.last_scrape_ns,
            points_evicted: inner.points_evicted,
            series_overflow: inner.series_overflow,
        }
    }

    /// All tracked series names, sorted.
    pub fn series_names(&self) -> Vec<String> {
        self.inner.lock().series.keys().cloned().collect()
    }

    /// Range query: points of `name` with `start_ns <= t <= end_ns` from
    /// `tier`, or — when `tier` is `None` — from the finest tier whose
    /// retained history still reaches back to `start_ns` (falling back to
    /// the coarsest non-empty tier when none does). `None` when the
    /// series is unknown.
    pub fn query(
        &self,
        name: &str,
        start_ns: u64,
        end_ns: u64,
        tier: Option<Tier>,
    ) -> Option<QueryResult> {
        let inner = self.inner.lock();
        let s = inner.series.get(name)?;
        let pick = tier.unwrap_or_else(|| {
            let covers =
                |ring: &VecDeque<Point>| ring.front().map(|p| p.t_ns <= start_ns).unwrap_or(false);
            if covers(&s.raw) {
                Tier::Raw
            } else if covers(&s.r10) {
                Tier::R10s
            } else if !s.r60.is_empty() {
                // Covering r60 implies non-empty, so one test picks the
                // coarsest tier whether it covers the start or merely
                // retains the longest history.
                Tier::R60s
            } else if !s.r10.is_empty() {
                Tier::R10s
            } else {
                Tier::Raw
            }
        });
        let ring = match pick {
            Tier::Raw => &s.raw,
            Tier::R10s => &s.r10,
            Tier::R60s => &s.r60,
        };
        Some(QueryResult {
            name: name.to_string(),
            tier: pick,
            points: ring
                .iter()
                .filter(|p| p.t_ns >= start_ns && p.t_ns <= end_ns)
                .copied()
                .collect(),
            exemplar: s.exemplar,
        })
    }

    /// Sum of raw deltas in the half-open window `(from_ns, to_ns]` — the
    /// alert engine's workhorse. `None` when the series is unknown.
    pub fn window_sum(&self, name: &str, from_ns: u64, to_ns: u64) -> Option<u64> {
        let inner = self.inner.lock();
        let s = inner.series.get(name)?;
        Some(
            s.raw
                .iter()
                .filter(|p| p.t_ns > from_ns && p.t_ns <= to_ns)
                .map(|p| p.delta)
                .sum(),
        )
    }

    /// Does `name` have any raw point strictly newer than `after_ns`?
    /// (The absence-rule primitive.)
    pub fn has_point_after(&self, name: &str, after_ns: u64) -> bool {
        let inner = self.inner.lock();
        inner
            .series
            .get(name)
            .map(|s| s.raw.back().map(|p| p.t_ns > after_ns).unwrap_or(false))
            .unwrap_or(false)
    }

    /// The cumulative total at the latest scrape, if the series exists.
    pub fn last_total(&self, name: &str) -> Option<u64> {
        self.inner.lock().series.get(name).map(|s| s.last_total)
    }

    /// Latest span exemplar for `name` (histogram-derived series only).
    pub fn exemplar(&self, name: &str) -> Option<Exemplar> {
        self.inner.lock().series.get(name).and_then(|s| s.exemplar)
    }
}

/// Record one scraped cumulative `value` for `name` at `now_ns`.
fn observe(
    inner: &mut Inner,
    cfg: &TsdbConfig,
    now_ns: u64,
    name: String,
    value: u64,
    exemplar: Option<Exemplar>,
) {
    if !inner.series.contains_key(&name) {
        if inner.series.len() >= cfg.max_series {
            inner.series_overflow += 1;
            return;
        }
        inner.series.insert(name.clone(), Series::default());
    }
    let mut evicted = 0u64;
    let s = inner.series.get_mut(&name).expect("just ensured");
    // A counter reset (value went backwards) restarts the delta base.
    let delta = value.saturating_sub(s.last_total.min(value));
    s.last_total = value;
    if let Some(ex) = exemplar {
        s.exemplar = Some(ex);
    }
    push_ring(
        &mut s.raw,
        Point {
            t_ns: now_ns,
            delta,
            total: value,
        },
        cfg.raw_capacity,
        &mut evicted,
    );
    roll(
        &mut s.b10,
        &mut s.r10,
        TIER_10S_NS,
        now_ns,
        delta,
        value,
        cfg.rollup_capacity,
        &mut evicted,
    );
    roll(
        &mut s.b60,
        &mut s.r60,
        TIER_60S_NS,
        now_ns,
        delta,
        value,
        cfg.rollup_capacity,
        &mut evicted,
    );
    inner.points_evicted += evicted;
}

fn push_ring(ring: &mut VecDeque<Point>, p: Point, cap: usize, evicted: &mut u64) {
    ring.push_back(p);
    while ring.len() > cap {
        ring.pop_front();
        *evicted += 1;
    }
}

/// Accumulate a raw delta into the open bucket of one rollup tier,
/// flushing the bucket to its ring when the scrape crossed the boundary.
#[allow(clippy::too_many_arguments)]
fn roll(
    bucket: &mut Option<OpenBucket>,
    ring: &mut VecDeque<Point>,
    width_ns: u64,
    now_ns: u64,
    delta: u64,
    total: u64,
    cap: usize,
    evicted: &mut u64,
) {
    let start = now_ns / width_ns * width_ns;
    match bucket {
        Some(b) if start <= b.start_ns => {
            b.delta += delta;
            b.total = total;
        }
        Some(b) => {
            push_ring(
                ring,
                Point {
                    t_ns: b.start_ns,
                    delta: b.delta,
                    total: b.total,
                },
                cap,
                evicted,
            );
            *bucket = Some(OpenBucket {
                start_ns: start,
                delta,
                total,
            });
        }
        None => {
            *bucket = Some(OpenBucket {
                start_ns: start,
                delta,
                total,
            });
        }
    }
}

// ---- background scraper ----

/// A running background scraper. Dropping (or [`ScraperHandle::stop`])
/// stops and joins the thread.
pub struct ScraperHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ScraperHandle {
    /// Stop the scraper thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ScraperHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start a background thread scraping the global registry into `tsdb`
/// every `interval`, and — when an alert engine is installed
/// ([`crate::alerts::install`]) — evaluating it against the store on the
/// same timestamp, so one loop drives both retention and alerting.
pub fn start_scraper(tsdb: Arc<Tsdb>, interval: Duration) -> ScraperHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("alperf-tsdb-scraper".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                let now = monotonic_ns();
                tsdb.scrape_registry_at(crate::registry::global(), now);
                crate::alerts::evaluate_global(&tsdb, now);
                std::thread::sleep(interval);
            }
        })
        .expect("spawn tsdb scraper thread");
    ScraperHandle {
        stop,
        join: Some(join),
    }
}

// ---- global installation ----

static TSDB: Mutex<Option<Arc<Tsdb>>> = Mutex::new(None);
static TSDB_PRESENT: AtomicBool = AtomicBool::new(false);

/// Install a process-global store (the one `/query` serves and the alert
/// engine is evaluated against); returns the handle. Replaces any
/// previous store.
pub fn install(config: TsdbConfig) -> Arc<Tsdb> {
    let tsdb = Arc::new(Tsdb::new(config));
    *TSDB.lock() = Some(Arc::clone(&tsdb));
    TSDB_PRESENT.store(true, Ordering::Relaxed);
    tsdb
}

/// Remove the global store.
pub fn uninstall() {
    TSDB_PRESENT.store(false, Ordering::Relaxed);
    TSDB.lock().take();
}

/// Is a global store installed?
pub fn active() -> bool {
    TSDB_PRESENT.load(Ordering::Relaxed)
}

/// The global store, if installed.
pub fn global() -> Option<Arc<Tsdb>> {
    if !active() {
        return None;
    }
    TSDB.lock().as_ref().map(Arc::clone)
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    #[test]
    fn deltas_and_totals_conserve() {
        let r = Registry::new();
        let t = Tsdb::new(TsdbConfig::default());
        let c = r.counter("unit.tsdb.hits");
        c.add(3);
        t.scrape_registry_at(&r, S);
        c.add(4);
        t.scrape_registry_at(&r, 2 * S);
        t.scrape_registry_at(&r, 3 * S);
        let q = t
            .query("unit.tsdb.hits", 0, u64::MAX, Some(Tier::Raw))
            .unwrap();
        let deltas: Vec<u64> = q.points.iter().map(|p| p.delta).collect();
        assert_eq!(deltas, vec![3, 4, 0]);
        assert_eq!(t.last_total("unit.tsdb.hits"), Some(7));
        assert_eq!(t.window_sum("unit.tsdb.hits", S, 3 * S), Some(4));
    }

    #[test]
    fn histograms_contribute_count_and_sum_series() {
        let r = Registry::new();
        let t = Tsdb::new(TsdbConfig::default());
        let h = r.histogram("unit.tsdb.h");
        h.record(10);
        h.record(32);
        t.scrape_registry_at(&r, S);
        assert_eq!(t.last_total("unit.tsdb.h.count"), Some(2));
        assert_eq!(t.last_total("unit.tsdb.h.sum"), Some(42));
    }

    #[test]
    fn labeled_families_become_labeled_series() {
        let r = Registry::new();
        let t = Tsdb::new(TsdbConfig::default());
        r.counter_vec("unit.tsdb.fam", &["k"]).with(&["a"]).add(5);
        t.scrape_registry_at(&r, S);
        assert_eq!(t.last_total("unit.tsdb.fam{k=\"a\"}"), Some(5));
    }

    #[test]
    fn rollups_flush_on_boundary_and_accumulate() {
        let r = Registry::new();
        let t = Tsdb::new(TsdbConfig::default());
        let c = r.counter("unit.tsdb.roll");
        // 4 scrapes inside the first 10 s bucket, then one past it.
        for k in 0..4u64 {
            c.add(2);
            t.scrape_registry_at(&r, k * 2 * S);
        }
        c.add(1);
        t.scrape_registry_at(&r, 11 * S);
        let q = t
            .query("unit.tsdb.roll", 0, u64::MAX, Some(Tier::R10s))
            .unwrap();
        assert_eq!(q.points.len(), 1, "first bucket flushed");
        assert_eq!(
            q.points[0],
            Point {
                t_ns: 0,
                delta: 8,
                total: 8
            }
        );
        // 60 s bucket still open.
        assert!(t
            .query("unit.tsdb.roll", 0, u64::MAX, Some(Tier::R60s))
            .unwrap()
            .points
            .is_empty());
    }

    #[test]
    fn rings_evict_and_account() {
        let r = Registry::new();
        let t = Tsdb::new(TsdbConfig {
            raw_capacity: 4,
            rollup_capacity: 2,
            max_series: 8,
        });
        let c = r.counter("unit.tsdb.evict");
        for k in 0..10u64 {
            c.inc();
            t.scrape_registry_at(&r, k * S);
        }
        let q = t
            .query("unit.tsdb.evict", 0, u64::MAX, Some(Tier::Raw))
            .unwrap();
        assert_eq!(q.points.len(), 4, "raw ring bounded");
        assert_eq!(q.points.last().unwrap().total, 10);
        assert!(t.stats().points_evicted > 0);
        // Accounting mirrored into the scraped registry.
        assert!(r.counter(names::OBS_TSDB_POINTS_EVICTED).get() > 0);
    }

    #[test]
    fn series_cap_drops_and_counts_overflow() {
        let r = Registry::new();
        let t = Tsdb::new(TsdbConfig {
            raw_capacity: 8,
            rollup_capacity: 8,
            max_series: 3,
        });
        for i in 0..6 {
            r.counter(&format!("unit.tsdb.cap.{i}")).inc();
        }
        t.scrape_registry_at(&r, S);
        let stats = t.stats();
        assert_eq!(stats.series, 3);
        assert!(stats.series_overflow > 0);
        assert!(r.counter(names::OBS_TSDB_SERIES_OVERFLOW).get() > 0);
    }

    #[test]
    fn auto_tier_prefers_finest_that_covers() {
        let r = Registry::new();
        let t = Tsdb::new(TsdbConfig {
            raw_capacity: 2,
            rollup_capacity: 16,
            max_series: 64,
        });
        let c = r.counter("unit.tsdb.auto");
        for k in 0..8u64 {
            c.inc();
            t.scrape_registry_at(&r, k * 11 * S); // each scrape a new 10 s bucket
        }
        // Raw retains only the last 2 points; an old start must fall back
        // to the 10 s tier.
        let q = t.query("unit.tsdb.auto", 0, u64::MAX, None).unwrap();
        assert_eq!(q.tier, Tier::R10s);
        let recent = t
            .query("unit.tsdb.auto", 7 * 11 * S, u64::MAX, None)
            .unwrap();
        assert_eq!(recent.tier, Tier::Raw);
    }

    #[test]
    fn query_json_is_parseable() {
        let r = Registry::new();
        let t = Tsdb::new(TsdbConfig::default());
        r.counter("unit.tsdb.json").add(2);
        t.scrape_registry_at(&r, S);
        let q = t.query("unit.tsdb.json", 0, u64::MAX, None).unwrap();
        let j = crate::json::parse(&q.to_json()).unwrap();
        assert_eq!(
            j.get("schema").and_then(crate::json::Json::as_str),
            Some("alperf-tsdb-query-v1")
        );
        assert_eq!(
            j.get("points").and_then(|p| match p {
                crate::json::Json::Arr(a) => Some(a.len()),
                _ => None,
            }),
            Some(1)
        );
    }

    #[test]
    fn install_uninstall_roundtrip() {
        let _l = crate::tests::TEST_LOCK.lock();
        assert!(!active());
        let t = install(TsdbConfig::default());
        assert!(active());
        assert!(Arc::ptr_eq(&t, &global().unwrap()));
        uninstall();
        assert!(!active());
        assert!(global().is_none());
    }
}
