//! Heartbeat watchdog: flags stalled campaigns, threads, and spans.
//!
//! Progress-making code *beats* a named key ([`Watchdog::beat`]) — the AL
//! runner beats `campaign:<run_id>` once per iteration, the sampler loop
//! beats `thread:<tid>` whenever a thread's leaf span changes. A periodic
//! [`Watchdog::check`] (driven by the sampler thread, or directly by
//! tests and `live_report`) flags every watched key whose last beat is
//! older than the stall threshold: once per stall it bumps the
//! [`crate::names::OBS_WATCHDOG_STALL`] counter, emits a
//! `obs.watchdog.stall` record to the trace sink, and returns a
//! [`StallReport`]. A later beat un-flags the key (recovery), so a
//! re-stall reports again.
//!
//! Time comes from an injected [`Clock`], so the whole stall lifecycle —
//! beat, stall, flag-once, recover, re-stall — is testable to the
//! nanosecond with a [`crate::FakeClock`] and never sleeps in tests.

use crate::clock::{Clock, SystemClock};
use crate::sink::Value;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Default stall threshold for the global watchdog: 30 s without a beat.
pub const DEFAULT_STALL_NS: u64 = 30_000_000_000;

/// One flagged stall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// The watched key (`campaign:<run>`, `thread:<tid>`, …).
    pub key: String,
    /// Nanoseconds since the key's last beat.
    pub idle_ns: u64,
    /// Total beats the key received before stalling.
    pub beats: u64,
}

struct Entry {
    last_beat_ns: u64,
    beats: u64,
    flagged: bool,
}

/// A heartbeat watchdog over an injected clock.
pub struct Watchdog {
    clock: Arc<dyn Clock>,
    stall_after_ns: AtomicU64,
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Watchdog {
    /// A watchdog reading time from `clock`, flagging keys idle for more
    /// than `stall_after_ns`.
    pub fn new(clock: Arc<dyn Clock>, stall_after_ns: u64) -> Self {
        Watchdog {
            clock,
            stall_after_ns: AtomicU64::new(stall_after_ns.max(1)),
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// Change the stall threshold (takes effect at the next check).
    pub fn set_stall_after_ns(&self, ns: u64) {
        self.stall_after_ns.store(ns.max(1), Ordering::Relaxed);
    }

    /// The current stall threshold.
    pub fn stall_after_ns(&self) -> u64 {
        self.stall_after_ns.load(Ordering::Relaxed)
    }

    /// Record a heartbeat for `key`: the key is (still) making progress.
    /// Un-flags a previously stalled key, so recovery and re-stall both
    /// get reported.
    pub fn beat(&self, key: &str) {
        let now = self.clock.now_ns();
        let mut entries = self.entries.lock();
        match entries.get_mut(key) {
            Some(e) => {
                e.last_beat_ns = now;
                e.beats += 1;
                e.flagged = false;
            }
            None => {
                entries.insert(
                    key.to_string(),
                    Entry {
                        last_beat_ns: now,
                        beats: 1,
                        flagged: false,
                    },
                );
            }
        }
    }

    /// Stop watching `key` (clean completion is not a stall).
    pub fn clear(&self, key: &str) {
        self.entries.lock().remove(key);
    }

    /// Number of currently watched keys.
    pub fn watched(&self) -> usize {
        self.entries.lock().len()
    }

    /// Flag every key idle past the threshold. Each stall is reported
    /// exactly once until the key beats again: the counter/record
    /// emission happens here, and the reports are returned key-sorted.
    pub fn check(&self) -> Vec<StallReport> {
        let now = self.clock.now_ns();
        let stall_after = self.stall_after_ns();
        let mut reports = Vec::new();
        {
            let mut entries = self.entries.lock();
            for (key, e) in entries.iter_mut() {
                let idle = now.saturating_sub(e.last_beat_ns);
                if idle > stall_after && !e.flagged {
                    e.flagged = true;
                    reports.push(StallReport {
                        key: key.clone(),
                        idle_ns: idle,
                        beats: e.beats,
                    });
                }
            }
        }
        for r in &reports {
            crate::inc(crate::names::OBS_WATCHDOG_STALL);
            crate::record(
                crate::names::OBS_WATCHDOG_STALL,
                &[
                    ("key", Value::Str(&r.key)),
                    ("idle_ns", Value::U64(r.idle_ns)),
                    ("beats", Value::U64(r.beats)),
                ],
            );
        }
        reports
    }

    /// Currently-flagged keys, sorted (for status displays).
    pub fn flagged(&self) -> Vec<String> {
        self.entries
            .lock()
            .iter()
            .filter(|(_, e)| e.flagged)
            .map(|(k, _)| k.clone())
            .collect()
    }
}

/// The process-wide watchdog (system clock, [`DEFAULT_STALL_NS`]); the
/// sampler loop checks it, the AL runner beats it.
pub fn global() -> &'static Watchdog {
    static GLOBAL: OnceLock<Watchdog> = OnceLock::new();
    GLOBAL.get_or_init(|| Watchdog::new(Arc::new(SystemClock), DEFAULT_STALL_NS))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;

    fn fixture(stall_ns: u64) -> (Arc<FakeClock>, Watchdog) {
        let clock = Arc::new(FakeClock::new());
        let wd = Watchdog::new(Arc::clone(&clock) as Arc<dyn Clock>, stall_ns);
        (clock, wd)
    }

    #[test]
    fn stall_flags_once_and_recovers() {
        let (clock, wd) = fixture(1_000);
        wd.beat("campaign:1");
        clock.advance(999);
        assert!(wd.check().is_empty(), "inside threshold: no stall");
        clock.advance(2);
        let reports = wd.check();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].key, "campaign:1");
        assert_eq!(reports[0].idle_ns, 1_001);
        assert_eq!(reports[0].beats, 1);
        assert_eq!(wd.flagged(), vec!["campaign:1".to_string()]);
        // Flag-once: a second check does not re-report.
        assert!(wd.check().is_empty());
        // Recovery un-flags; a fresh stall reports again.
        wd.beat("campaign:1");
        assert!(wd.flagged().is_empty());
        clock.advance(5_000);
        assert_eq!(wd.check().len(), 1);
    }

    #[test]
    fn clear_stops_watching() {
        let (clock, wd) = fixture(100);
        wd.beat("campaign:7");
        wd.clear("campaign:7");
        clock.advance(1_000);
        assert!(wd.check().is_empty());
        assert_eq!(wd.watched(), 0);
    }

    #[test]
    fn independent_keys_stall_independently() {
        let (clock, wd) = fixture(1_000);
        wd.beat("a");
        clock.advance(600);
        wd.beat("b");
        clock.advance(600);
        // a idle 1200 (> 1000), b idle 600.
        let reports = wd.check();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].key, "a");
    }

    #[test]
    fn stall_emits_counter_when_enabled() {
        let _l = crate::tests::TEST_LOCK.lock();
        let (clock, wd) = fixture(10);
        let before = crate::counter(crate::names::OBS_WATCHDOG_STALL).get();
        crate::set_enabled(true);
        wd.beat("campaign:9");
        clock.advance(100);
        wd.check();
        crate::set_enabled(false);
        assert_eq!(
            crate::counter(crate::names::OBS_WATCHDOG_STALL).get(),
            before + 1
        );
    }
}
