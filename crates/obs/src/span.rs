//! Hierarchical spans with thread-local span stacks and process-unique ids.
//!
//! [`crate::span`] returns a guard; the time between construction and drop
//! is recorded into the histogram of the same name and, when a JSONL sink
//! is installed, emitted as a `span` event carrying the span's id and its
//! parent's name + id. When telemetry is disabled the guard is inert —
//! constructed without touching the clock, the thread-local stack, the id
//! counter, or the registry.
//!
//! Parentage is per-thread by default: a span opened inside a rayon worker
//! does not see the spawning thread's stack. Fork-join call sites that
//! want their worker spans attached to the logical caller capture
//! [`current`] *before* dispatch and open the worker span with
//! [`crate::span_with_parent`] — the explicit [`SpanCtx`] crosses the
//! thread boundary as plain `Copy` data, so the fast path still has no
//! cross-thread bookkeeping.

use crate::clock::monotonic_ns;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identity of an open span: its (static) name plus process-unique id.
/// `Copy`, and safe to send into worker closures for explicit parentage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    /// The span's name.
    pub name: &'static str,
    /// The span's process-unique id (also emitted in the trace line).
    pub id: u64,
}

thread_local! {
    static STACK: RefCell<Vec<SpanCtx>> = const { RefCell::new(Vec::new()) };
    // Span-name -> histogram handle, keyed by the &'static str's address
    // (span names are literals, so the address identifies the name). This
    // keeps the registry's RwLock + HashMap lookup out of every span drop;
    // handles stay valid across `Registry::reset`, which clears values in
    // place. Span-name cardinality is tiny (~a dozen), so a linear scan
    // beats hashing.
    static HIST_CACHE: RefCell<Vec<(usize, std::sync::Arc<crate::metrics::Histogram>)>> =
        const { RefCell::new(Vec::new()) };
}

/// Record `dur` into the histogram for span `name`, via the thread-local
/// handle cache (no Arc clone on the hit path). The span's id rides along
/// as the histogram's exemplar, linking the metric back into the trace.
fn record_span_duration(name: &'static str, dur: u64, span_id: u64) {
    HIST_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        let key = name.as_ptr() as usize;
        if let Some((_, h)) = cache.iter().find(|(k, _)| *k == key) {
            h.record_with_exemplar(dur, span_id);
            return;
        }
        let h = crate::registry::global().histogram(name);
        h.record_with_exemplar(dur, span_id);
        cache.push((key, h));
    })
}

/// Ids start at 1; 0 never appears in a trace.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// The innermost open span on this thread, if any.
pub fn current() -> Option<SpanCtx> {
    STACK.with(|s| s.borrow().last().copied())
}

/// The innermost open span's *name* on this thread, if any.
pub fn current_name() -> Option<&'static str> {
    current().map(|c| c.name)
}

/// How the span's trace parent is resolved at drop time.
enum Parent {
    /// Whatever span is below this one on the thread-local stack.
    Stack,
    /// An explicit parent captured on (possibly) another thread.
    Explicit(Option<SpanCtx>),
}

/// Guard for one span. Records on drop; inert when telemetry was disabled
/// at entry (a flip mid-span keeps the entry decision, preserving stack
/// balance).
#[must_use = "a span measures the time until the guard is dropped"]
pub struct SpanGuard {
    name: &'static str,
    id: u64,
    start_ns: u64,
    parent: Parent,
    active: bool,
    /// Did this guard push a frame onto the profiler mirror? Remembered
    /// per guard so arm/disarm mid-span keeps the mirror balanced: only
    /// the guard that pushed pops.
    mirrored: bool,
}

impl SpanGuard {
    /// A guard that does nothing on drop.
    #[inline]
    pub(crate) fn inert(name: &'static str) -> SpanGuard {
        SpanGuard {
            name,
            id: 0,
            start_ns: 0,
            parent: Parent::Stack,
            active: false,
            mirrored: false,
        }
    }

    /// Open a live span: push onto this thread's stack and stamp the
    /// start time.
    pub(crate) fn enter(name: &'static str) -> SpanGuard {
        SpanGuard::open(name, Parent::Stack)
    }

    /// Open a live span whose trace parent is the explicitly given span
    /// (captured via [`current`] before crossing a thread boundary)
    /// instead of this thread's stack.
    pub(crate) fn enter_with_parent(name: &'static str, parent: Option<SpanCtx>) -> SpanGuard {
        SpanGuard::open(name, Parent::Explicit(parent))
    }

    fn open(name: &'static str, parent: Parent) -> SpanGuard {
        let id = next_span_id();
        STACK.with(|s| s.borrow_mut().push(SpanCtx { name, id }));
        let mirrored = crate::profiler::armed();
        if mirrored {
            crate::profiler::mirror_push(name);
        }
        SpanGuard {
            name,
            id,
            start_ns: monotonic_ns(),
            parent,
            active: true,
            mirrored,
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The span's identity, usable as an explicit parent for spans opened
    /// on worker threads. `None` for an inert (telemetry-off) guard.
    pub fn ctx(&self) -> Option<SpanCtx> {
        self.active.then_some(SpanCtx {
            name: self.name,
            id: self.id,
        })
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        if self.mirrored {
            crate::profiler::mirror_pop();
        }
        let dur = monotonic_ns().saturating_sub(self.start_ns);
        let stack_parent = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            stack.pop();
            stack.last().copied()
        });
        let parent = match self.parent {
            Parent::Stack => stack_parent,
            Parent::Explicit(p) => p,
        };
        record_span_duration(self.name, dur, self.id);
        if crate::blackbox::armed() {
            crate::blackbox::note_span(
                self.name,
                self.id,
                parent.map(|c| c.id).unwrap_or(0),
                self.start_ns,
                dur,
            );
        }
        crate::sink::emit_span(self.name, self.id, parent, self.start_ns, dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_tracks_parentage() {
        let _l = crate::tests::TEST_LOCK.lock();
        crate::set_enabled(true);
        assert_eq!(current(), None);
        {
            let outer = crate::span("test.span.outer");
            let outer_ctx = outer.ctx().unwrap();
            assert_eq!(current(), Some(outer_ctx));
            {
                let _inner = crate::span("test.span.inner");
                assert_eq!(current_name(), Some("test.span.inner"));
                assert_ne!(current().unwrap().id, outer_ctx.id);
            }
            assert_eq!(current(), Some(outer_ctx));
        }
        assert_eq!(current(), None);
        crate::set_enabled(false);
        assert_eq!(crate::histogram("test.span.outer").stats().count, 1);
        assert_eq!(crate::histogram("test.span.inner").stats().count, 1);
    }

    #[test]
    fn span_ids_are_unique() {
        let _l = crate::tests::TEST_LOCK.lock();
        crate::set_enabled(true);
        let a = crate::span("test.span.id_a");
        let b = crate::span("test.span.id_b");
        let (ia, ib) = (a.ctx().unwrap().id, b.ctx().unwrap().id);
        drop(b);
        drop(a);
        crate::set_enabled(false);
        assert_ne!(ia, ib);
        assert!(ia > 0 && ib > 0);
    }

    #[test]
    fn inert_guard_touches_nothing() {
        let _l = crate::tests::TEST_LOCK.lock();
        crate::set_enabled(false);
        {
            let g = crate::span("test.span.inert");
            assert_eq!(g.name(), "test.span.inert");
            assert_eq!(g.ctx(), None);
            assert_eq!(current(), None);
        }
        assert_eq!(crate::histogram("test.span.inert").stats().count, 0);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let _l = crate::tests::TEST_LOCK.lock();
        crate::set_enabled(true);
        let outer = crate::span("test.span.xthread_parent");
        let parent = outer.ctx();
        let child_saw = std::thread::spawn(move || {
            let g = crate::span_with_parent("test.span.xthread_child", parent);
            // The worker's stack holds the child (so *its* children nest),
            // but the recorded parent is the explicit one.
            let on_stack = current() == g.ctx();
            drop(g);
            on_stack && current().is_none()
        })
        .join()
        .unwrap();
        drop(outer);
        crate::set_enabled(false);
        assert!(child_saw);
        assert_eq!(crate::histogram("test.span.xthread_child").stats().count, 1);
    }

    #[test]
    fn spans_balance_across_threads() {
        let _l = crate::tests::TEST_LOCK.lock();
        crate::set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        let _s = crate::span("test.span.threads");
                    }
                    current().is_none()
                })
            })
            .collect();
        let balanced = handles.into_iter().all(|h| h.join().unwrap());
        crate::set_enabled(false);
        assert!(balanced);
        assert!(crate::histogram("test.span.threads").stats().count >= 400);
    }
}
