//! Hierarchical spans with thread-local span stacks.
//!
//! [`crate::span`] returns a guard; the time between construction and drop
//! is recorded into the histogram of the same name and, when a JSONL sink
//! is installed, emitted as a `span` event whose `parent` is whatever span
//! was open on the same thread at entry. When telemetry is disabled the
//! guard is inert — constructed without touching the clock, the
//! thread-local stack, or the registry.
//!
//! Parentage is per-thread: a span opened inside a rayon worker does not
//! see the spawning thread's stack (it becomes a root span on the worker).
//! That is the honest answer for fork-join work and keeps the fast path
//! free of any cross-thread bookkeeping.

use crate::clock::monotonic_ns;
use std::cell::RefCell;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The innermost open span on this thread, if any.
pub fn current() -> Option<&'static str> {
    STACK.with(|s| s.borrow().last().copied())
}

/// Guard for one span. Records on drop; inert when telemetry was disabled
/// at entry (a flip mid-span keeps the entry decision, preserving stack
/// balance).
#[must_use = "a span measures the time until the guard is dropped"]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    active: bool,
}

impl SpanGuard {
    /// A guard that does nothing on drop.
    #[inline]
    pub(crate) fn inert(name: &'static str) -> SpanGuard {
        SpanGuard {
            name,
            start_ns: 0,
            active: false,
        }
    }

    /// Open a live span: push onto this thread's stack and stamp the
    /// start time.
    pub(crate) fn enter(name: &'static str) -> SpanGuard {
        STACK.with(|s| s.borrow_mut().push(name));
        SpanGuard {
            name,
            start_ns: monotonic_ns(),
            active: true,
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur = monotonic_ns().saturating_sub(self.start_ns);
        let parent = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            stack.pop();
            stack.last().copied()
        });
        crate::registry::global().histogram(self.name).record(dur);
        crate::sink::emit_span(self.name, parent, self.start_ns, dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_tracks_parentage() {
        let _l = crate::tests::TEST_LOCK.lock();
        crate::set_enabled(true);
        assert_eq!(current(), None);
        {
            let _outer = crate::span("test.span.outer");
            assert_eq!(current(), Some("test.span.outer"));
            {
                let _inner = crate::span("test.span.inner");
                assert_eq!(current(), Some("test.span.inner"));
            }
            assert_eq!(current(), Some("test.span.outer"));
        }
        assert_eq!(current(), None);
        crate::set_enabled(false);
        assert_eq!(crate::histogram("test.span.outer").stats().count, 1);
        assert_eq!(crate::histogram("test.span.inner").stats().count, 1);
    }

    #[test]
    fn inert_guard_touches_nothing() {
        let _l = crate::tests::TEST_LOCK.lock();
        crate::set_enabled(false);
        {
            let g = crate::span("test.span.inert");
            assert_eq!(g.name(), "test.span.inert");
            assert_eq!(current(), None);
        }
        assert_eq!(crate::histogram("test.span.inert").stats().count, 0);
    }

    #[test]
    fn spans_balance_across_threads() {
        let _l = crate::tests::TEST_LOCK.lock();
        crate::set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        let _s = crate::span("test.span.threads");
                    }
                    current().is_none()
                })
            })
            .collect();
        let balanced = handles.into_iter().all(|h| h.join().unwrap());
        crate::set_enabled(false);
        assert!(balanced);
        assert!(crate::histogram("test.span.threads").stats().count >= 400);
    }
}
