//! Per-setting aggregation of repeated measurements.
//!
//! The paper's datasets contain "up to 3 repeated experiments for every
//! combination of the controlled variables"; analysts routinely want the
//! per-setting mean, spread and count — both for Table-I-style noise
//! characterization (the Power dataset is "much" noisier) and to feed
//! aggregated responses into models that assume one observation per point.

use crate::dataset::{ColumnKind, DataSet, DataSetError};
use alperf_linalg::stats;

/// Aggregate of one response over one group of identical settings.
#[derive(Debug, Clone, PartialEq)]
pub struct SettingAggregate {
    /// Variable values identifying the setting (declaration order).
    pub setting: Vec<f64>,
    /// Number of repeated measurements.
    pub count: usize,
    /// Mean response.
    pub mean: f64,
    /// Sample standard deviation (0 for singleton groups).
    pub std: f64,
    /// Minimum observed response.
    pub min: f64,
    /// Maximum observed response.
    pub max: f64,
}

/// Aggregate `response` over groups of identical variable settings.
///
/// # Errors
/// Unknown response or variable columns.
pub fn aggregate_response(
    data: &DataSet,
    response: &str,
) -> Result<Vec<SettingAggregate>, DataSetError> {
    let vars = data.variable_names();
    let groups = data.group_by_settings(&vars)?;
    let col = data.response(response)?;
    Ok(groups
        .into_iter()
        .map(|(setting, rows)| {
            let vals: Vec<f64> = rows.iter().map(|&i| col[i]).collect();
            SettingAggregate {
                setting,
                count: vals.len(),
                mean: stats::mean(&vals),
                std: stats::std_dev(&vals),
                min: stats::min(&vals).expect("non-empty group"),
                max: stats::max(&vals).expect("non-empty group"),
            }
        })
        .collect())
}

/// Collapse repeated measurements into a new dataset with one row per
/// setting and the response replaced by its per-setting mean; an extra
/// response column `<response>_std` carries the spread and `<response>_n`
/// the repeat count.
///
/// # Errors
/// Unknown columns; assembly errors cannot occur for well-formed input.
pub fn collapse_repeats(data: &DataSet, response: &str) -> Result<DataSet, DataSetError> {
    let vars = data.variable_names();
    let groups = data.group_by_settings(&vars)?;
    let aggregates = aggregate_response(data, response)?;
    let mut out = DataSet::new();
    // Variable columns: first row of each group, preserving categoricals.
    for (j, name) in vars.iter().enumerate() {
        let var = data.variable(name)?;
        let col: Vec<f64> = groups.iter().map(|(setting, _)| setting[j]).collect();
        match &var.kind {
            ColumnKind::Numeric => out.add_numeric_variable(name, col)?,
            ColumnKind::Categorical { levels } => {
                let strs: Vec<&str> = col.iter().map(|&v| levels[v as usize].as_str()).collect();
                out.add_categorical_variable(name, &strs)?;
            }
        }
    }
    out.add_response(response, aggregates.iter().map(|a| a.mean).collect())?;
    out.add_response(
        &format!("{response}_std"),
        aggregates.iter().map(|a| a.std).collect(),
    )?;
    out.add_response(
        &format!("{response}_n"),
        aggregates.iter().map(|a| a.count as f64).collect(),
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_repeats() -> DataSet {
        let mut d = DataSet::new();
        d.add_categorical_variable("op", &["a", "a", "a", "b", "b"])
            .unwrap();
        d.add_numeric_variable("size", vec![10.0, 10.0, 20.0, 10.0, 10.0])
            .unwrap();
        d.add_response("rt", vec![1.0, 3.0, 5.0, 7.0, 9.0]).unwrap();
        d
    }

    #[test]
    fn aggregates_compute_group_statistics() {
        let aggs = aggregate_response(&with_repeats(), "rt").unwrap();
        // Groups: (a,10)x2, (a,20)x1, (b,10)x2.
        assert_eq!(aggs.len(), 3);
        let g = aggs.iter().find(|a| a.setting == vec![0.0, 10.0]).unwrap();
        assert_eq!(g.count, 2);
        assert_eq!(g.mean, 2.0);
        assert!((g.std - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!((g.min, g.max), (1.0, 3.0));
        let singleton = aggs.iter().find(|a| a.setting == vec![0.0, 20.0]).unwrap();
        assert_eq!(singleton.count, 1);
        assert_eq!(singleton.std, 0.0);
    }

    #[test]
    fn collapse_produces_one_row_per_setting() {
        let c = collapse_repeats(&with_repeats(), "rt").unwrap();
        assert_eq!(c.n_rows(), 3);
        assert_eq!(c.response_names(), vec!["rt", "rt_n", "rt_std"]);
        // Categorical levels survive.
        assert_eq!(c.level_index("op", "b").unwrap(), 1);
        let n = c.response("rt_n").unwrap();
        assert_eq!(n.iter().sum::<f64>(), 5.0);
    }

    #[test]
    fn collapse_is_idempotent_on_unique_settings() {
        let c1 = collapse_repeats(&with_repeats(), "rt").unwrap();
        let c2 = collapse_repeats(&c1, "rt").unwrap();
        assert_eq!(c2.n_rows(), c1.n_rows());
        assert_eq!(c2.response("rt").unwrap(), c1.response("rt").unwrap());
    }

    #[test]
    fn unknown_response_rejected() {
        assert!(aggregate_response(&with_repeats(), "nope").is_err());
        assert!(collapse_repeats(&with_repeats(), "nope").is_err());
    }
}
