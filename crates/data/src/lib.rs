#![warn(missing_docs)]
//! # alperf-data
//!
//! Dataset containers and tooling for the performance-analysis pipeline —
//! the layer the paper's prototype calls "a database with the collected
//! data" (Section V-A).
//!
//! * [`dataset::DataSet`]: design matrix of controlled variables (numeric or
//!   categorical) plus one or more response columns (Runtime, Energy, ...),
//!   with subsetting and fix-variable views used to carve out the paper's
//!   1-D and 2-D cross-sections.
//! * [`transform`]: log10 response/variable transforms (paper Fig. 2 works
//!   on log-transformed Runtime, Energy, and Global Problem Size).
//! * [`partition`]: the Initial/Active/Test random split (a single initial
//!   experiment; the rest split 8:2 Active:Test) driving each AL run.
//! * [`grid`]: full-factorial level grids for workload generation and for
//!   candidate pools.
//! * [`csvio`]: plain CSV persistence of datasets (the paper publishes its
//!   data as CSV).
//! * [`summary`]: Table I-style dataset summaries.
//! * [`generate`]: factorial dataset construction from a caller-supplied
//!   measurement oracle (the cluster simulator plugs in here).

pub mod aggregate;
pub mod csvio;
pub mod dataset;
pub mod generate;
pub mod grid;
pub mod partition;
pub mod summary;
pub mod transform;

pub use dataset::{ColumnKind, DataSet, DataSetError};
pub use partition::Partition;
