//! Initial / Active / Test random partitions.
//!
//! The paper's prototype "partitions [the dataset] into 3 sets: Initial (for
//! initial regression training), Active (for one-at-a-time experiment
//! selection with AL), and Test (for prediction quality analysis)", typically
//! with a *single* initial experiment and the remainder split roughly 8:2
//! between Active and Test (Section IV). Batch AL evaluation repeats the
//! whole process over many random partitions (Figs. 7–8), so partitions are
//! seeded and reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A disjoint split of row indices `0..n` into Initial, Active and Test sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Rows used to train the very first GPR (usually a single row).
    pub initial: Vec<usize>,
    /// Pool of candidate experiments for Active Learning.
    pub active: Vec<usize>,
    /// Held-out rows for RMSE evaluation (Eq. 2).
    pub test: Vec<usize>,
}

impl Partition {
    /// Random partition of `n` rows: `n_initial` seed rows, then the
    /// remainder split by `active_fraction` (paper: 0.8) between Active and
    /// Test. Deterministic in `seed`.
    ///
    /// # Panics
    /// Panics if `n_initial > n` or `active_fraction` is outside `[0, 1]`.
    pub fn random(n: usize, n_initial: usize, active_fraction: f64, seed: u64) -> Self {
        assert!(n_initial <= n, "n_initial={n_initial} exceeds n={n}");
        assert!(
            (0.0..=1.0).contains(&active_fraction),
            "active_fraction must be in [0,1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        let initial: Vec<usize> = idx[..n_initial].to_vec();
        let rest = &idx[n_initial..];
        let n_active = (rest.len() as f64 * active_fraction).round() as usize;
        Partition {
            initial,
            active: rest[..n_active].to_vec(),
            test: rest[n_active..].to_vec(),
        }
    }

    /// The paper's default: one initial experiment, 8:2 Active:Test.
    ///
    /// ```
    /// let p = alperf_data::Partition::paper_default(251, 0);
    /// assert_eq!(p.initial.len(), 1);
    /// assert_eq!(p.active.len(), 200);
    /// assert_eq!(p.test.len(), 50);
    /// assert!(p.is_valid_cover(251));
    /// ```
    pub fn paper_default(n: usize, seed: u64) -> Self {
        Partition::random(n, 1.min(n), 0.8, seed)
    }

    /// Total rows covered.
    pub fn len(&self) -> usize {
        self.initial.len() + self.active.len() + self.test.len()
    }

    /// True when all three sets are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Verify the partition is a disjoint, exhaustive cover of `0..n`.
    pub fn is_valid_cover(&self, n: usize) -> bool {
        if self.len() != n {
            return false;
        }
        let mut seen = vec![false; n];
        for &i in self
            .initial
            .iter()
            .chain(self.active.iter())
            .chain(self.test.iter())
        {
            if i >= n || seen[i] {
                return false;
            }
            seen[i] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_follow_fractions() {
        let p = Partition::random(101, 1, 0.8, 0);
        assert_eq!(p.initial.len(), 1);
        assert_eq!(p.active.len(), 80);
        assert_eq!(p.test.len(), 20);
        assert!(p.is_valid_cover(101));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Partition::random(50, 2, 0.7, 42);
        let b = Partition::random(50, 2, 0.7, 42);
        assert_eq!(a, b);
        let c = Partition::random(50, 2, 0.7, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_default_has_single_initial() {
        let p = Partition::paper_default(251, 7);
        assert_eq!(p.initial.len(), 1);
        assert!(p.is_valid_cover(251));
        // 250 remaining, 8:2 => 200 active, 50 test.
        assert_eq!(p.active.len(), 200);
        assert_eq!(p.test.len(), 50);
    }

    #[test]
    fn degenerate_sizes() {
        let p = Partition::random(1, 1, 0.8, 0);
        assert_eq!(p.initial, vec![0]);
        assert!(p.active.is_empty());
        assert!(p.test.is_empty());
        let e = Partition::random(0, 0, 0.5, 0);
        assert!(e.is_empty());
        assert!(e.is_valid_cover(0));
    }

    #[test]
    fn extreme_fractions() {
        let all_active = Partition::random(11, 1, 1.0, 3);
        assert_eq!(all_active.active.len(), 10);
        assert!(all_active.test.is_empty());
        let all_test = Partition::random(11, 1, 0.0, 3);
        assert!(all_test.active.is_empty());
        assert_eq!(all_test.test.len(), 10);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn initial_larger_than_n_panics() {
        Partition::random(3, 4, 0.5, 0);
    }

    #[test]
    fn cover_validation_catches_duplicates() {
        let p = Partition {
            initial: vec![0],
            active: vec![0],
            test: vec![1],
        };
        assert!(!p.is_valid_cover(3)); // wrong size
        let q = Partition {
            initial: vec![0],
            active: vec![0, 1],
            test: vec![],
        };
        assert!(!q.is_valid_cover(3)); // duplicate 0
    }
}
