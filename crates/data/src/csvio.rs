//! CSV persistence for datasets.
//!
//! The paper publishes its measurement database as CSV files; the
//! reproduction binaries write their generated datasets and figure series
//! the same way (under `target/repro/`). The format is deliberately plain:
//! a header row, comma separation, categorical levels written by name.
//! Level names must therefore not contain commas — enforced on write.

use crate::dataset::{ColumnKind, DataSet, DataSetError};
use std::io::{BufRead, Write};

/// Serialize a dataset to CSV text: variables first (declaration order),
/// then responses (alphabetical, as stored).
///
/// # Errors
/// `DataSetError::Invalid` if a categorical level contains a comma or
/// newline.
pub fn to_csv(data: &DataSet) -> Result<String, DataSetError> {
    let var_names = data.variable_names();
    let resp_names = data.response_names();
    let mut out = String::new();
    let header: Vec<&str> = var_names.iter().chain(resp_names.iter()).copied().collect();
    out.push_str(&header.join(","));
    out.push('\n');
    // Pre-borrow columns.
    let vars: Vec<_> = var_names
        .iter()
        .map(|n| data.variable(n).expect("name from dataset"))
        .collect();
    let resps: Vec<&[f64]> = resp_names
        .iter()
        .map(|n| data.response(n).expect("name from dataset"))
        .collect();
    for v in &vars {
        if let ColumnKind::Categorical { levels } = &v.kind {
            if let Some(bad) = levels.iter().find(|l| l.contains(',') || l.contains('\n')) {
                return Err(DataSetError::Invalid(format!(
                    "level {bad:?} of {} cannot be written to CSV",
                    v.name
                )));
            }
        }
    }
    for i in 0..data.n_rows() {
        let mut fields: Vec<String> = Vec::with_capacity(vars.len() + resps.len());
        for v in &vars {
            match &v.kind {
                ColumnKind::Numeric => fields.push(format_float(v.values[i])),
                ColumnKind::Categorical { levels } => {
                    fields.push(levels[v.values[i] as usize].clone())
                }
            }
        }
        for r in &resps {
            fields.push(format_float(r[i]));
        }
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    Ok(out)
}

/// Format a float compactly but round-trip exactly.
fn format_float(v: f64) -> String {
    // Ryu-style shortest representation is what `{}` gives for f64 in Rust.
    format!("{v}")
}

/// Parse a dataset from CSV text. `response_names` identifies which header
/// columns are responses; every other column becomes a variable. Columns
/// whose values all parse as `f64` become numeric; anything else becomes
/// categorical.
pub fn from_csv(text: &str, response_names: &[&str]) -> Result<DataSet, DataSetError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| DataSetError::Invalid("empty CSV".into()))?;
    let names: Vec<&str> = header.split(',').collect();
    let mut columns: Vec<Vec<String>> = vec![Vec::new(); names.len()];
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != names.len() {
            return Err(DataSetError::Invalid(format!(
                "line {} has {} fields, header has {}",
                lineno + 2,
                fields.len(),
                names.len()
            )));
        }
        for (col, f) in columns.iter_mut().zip(&fields) {
            col.push(f.to_string());
        }
    }
    let mut data = DataSet::new();
    for (name, col) in names.iter().zip(&columns) {
        let parsed: Option<Vec<f64>> = col.iter().map(|s| s.parse::<f64>().ok()).collect();
        if response_names.contains(name) {
            let vals = parsed.ok_or_else(|| {
                DataSetError::Invalid(format!("response column {name} is not numeric"))
            })?;
            data.add_response(name, vals)?;
        } else {
            match parsed {
                Some(vals) => data.add_numeric_variable(name, vals)?,
                None => {
                    let strs: Vec<&str> = col.iter().map(|s| s.as_str()).collect();
                    data.add_categorical_variable(name, &strs)?;
                }
            }
        }
    }
    Ok(data)
}

/// Write a dataset to a file.
pub fn write_file(data: &DataSet, path: &std::path::Path) -> std::io::Result<()> {
    let csv = to_csv(data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(csv.as_bytes())
}

/// Read a dataset from a file.
pub fn read_file(path: &std::path::Path, response_names: &[&str]) -> std::io::Result<DataSet> {
    let f = std::fs::File::open(path)?;
    let mut text = String::new();
    for line in std::io::BufReader::new(f).lines() {
        text.push_str(&line?);
        text.push('\n');
    }
    from_csv(&text, response_names)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataSet {
        let mut d = DataSet::new();
        d.add_categorical_variable("op", &["p1", "p2", "p1"])
            .unwrap();
        d.add_numeric_variable("size", vec![1e3, 1e6, 1e9]).unwrap();
        d.add_response("runtime", vec![0.005, 1.25, 458.436])
            .unwrap();
        d
    }

    #[test]
    fn csv_round_trip() {
        let d = sample();
        let csv = to_csv(&d).unwrap();
        let back = from_csv(&csv, &["runtime"]).unwrap();
        assert_eq!(back.n_rows(), 3);
        assert_eq!(back.variable_names(), vec!["op", "size"]);
        assert_eq!(
            back.response("runtime").unwrap(),
            d.response("runtime").unwrap()
        );
        assert_eq!(
            back.variable("op").unwrap().values,
            d.variable("op").unwrap().values
        );
        assert_eq!(
            back.variable("size").unwrap().values,
            d.variable("size").unwrap().values
        );
    }

    #[test]
    fn header_layout() {
        let csv = to_csv(&sample()).unwrap();
        let first = csv.lines().next().unwrap();
        assert_eq!(first, "op,size,runtime");
    }

    #[test]
    fn exact_float_round_trip() {
        let mut d = DataSet::new();
        d.add_numeric_variable("x", vec![std::f64::consts::PI, 1e-300, -0.0])
            .unwrap();
        d.add_response("y", vec![1.0 / 3.0, f64::MAX, 5e-324])
            .unwrap();
        let back = from_csv(&to_csv(&d).unwrap(), &["y"]).unwrap();
        for (a, b) in d
            .response("y")
            .unwrap()
            .iter()
            .zip(back.response("y").unwrap())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bad_level_rejected_on_write() {
        let mut d = DataSet::new();
        d.add_categorical_variable("op", &["a,b"]).unwrap();
        d.add_response("y", vec![1.0]).unwrap();
        assert!(to_csv(&d).is_err());
    }

    #[test]
    fn ragged_csv_rejected() {
        let r = from_csv("a,b\n1,2\n3\n", &["b"]);
        assert!(r.is_err());
    }

    #[test]
    fn empty_csv_rejected() {
        assert!(from_csv("", &[]).is_err());
    }

    #[test]
    fn non_numeric_response_rejected() {
        assert!(from_csv("a,y\nfoo,bar\n", &["y"]).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let d = from_csv("x,y\n1,2\n\n3,4\n", &["y"]).unwrap();
        assert_eq!(d.n_rows(), 2);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("alperf_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        write_file(&sample(), &path).unwrap();
        let back = read_file(&path, &["runtime"]).unwrap();
        assert_eq!(back.n_rows(), 3);
        std::fs::remove_file(&path).ok();
    }
}
