//! Table I-style dataset summaries.
//!
//! The paper's Table I reports, per dataset: job count, response list with
//! observed ranges, and each controlled variable with its levels or range.
//! [`summarize`] computes the same facts; the `repro_table1` binary formats
//! them as the table.

use crate::dataset::{ColumnKind, DataSet};
use alperf_linalg::stats;

/// Summary of one column (variable or response).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Column name.
    pub name: String,
    /// Observed minimum (numeric columns).
    pub min: f64,
    /// Observed maximum.
    pub max: f64,
    /// Mean value.
    pub mean: f64,
    /// Number of distinct values (levels for categoricals).
    pub n_distinct: usize,
    /// Level names for categorical variables.
    pub levels: Option<Vec<String>>,
}

/// Whole-dataset summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSetSummary {
    /// Number of jobs (rows).
    pub n_jobs: usize,
    /// Per-variable summaries, in declaration order.
    pub variables: Vec<ColumnSummary>,
    /// Per-response summaries.
    pub responses: Vec<ColumnSummary>,
    /// Maximum number of repeated measurements over identical settings.
    pub max_repeats: usize,
}

fn summarize_column(name: &str, values: &[f64], levels: Option<Vec<String>>) -> ColumnSummary {
    let mut distinct = values.to_vec();
    distinct.sort_by(|a, b| a.partial_cmp(b).unwrap());
    distinct.dedup();
    ColumnSummary {
        name: name.to_string(),
        min: stats::min(values).unwrap_or(f64::NAN),
        max: stats::max(values).unwrap_or(f64::NAN),
        mean: stats::mean(values),
        n_distinct: distinct.len(),
        levels,
    }
}

/// Compute the Table I facts for a dataset.
pub fn summarize(data: &DataSet) -> DataSetSummary {
    let variables = data
        .variable_names()
        .iter()
        .map(|n| {
            let v = data.variable(n).expect("name from dataset");
            let levels = match &v.kind {
                ColumnKind::Categorical { levels } => Some(levels.clone()),
                ColumnKind::Numeric => None,
            };
            summarize_column(n, &v.values, levels)
        })
        .collect();
    let responses = data
        .response_names()
        .iter()
        .map(|n| summarize_column(n, data.response(n).expect("name from dataset"), None))
        .collect();
    let var_names = data.variable_names();
    let max_repeats = data
        .group_by_settings(&var_names)
        .map(|groups| groups.iter().map(|(_, rows)| rows.len()).max().unwrap_or(0))
        .unwrap_or(0);
    DataSetSummary {
        n_jobs: data.n_rows(),
        variables,
        responses,
        max_repeats,
    }
}

impl std::fmt::Display for DataSetSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "# Jobs: {}", self.n_jobs)?;
        writeln!(f, "Max repeats per setting: {}", self.max_repeats)?;
        for r in &self.responses {
            writeln!(f, "Response {}: {:.4e} - {:.4e}", r.name, r.min, r.max)?;
        }
        for v in &self.variables {
            match &v.levels {
                Some(levels) => writeln!(f, "Variable {}: {}", v.name, levels.join(","))?,
                None => writeln!(
                    f,
                    "Variable {}: {:.4e} - {:.4e} ({} levels)",
                    v.name, v.min, v.max, v.n_distinct
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataSet {
        let mut d = DataSet::new();
        d.add_categorical_variable("op", &["p1", "p2", "p1", "p1"])
            .unwrap();
        d.add_numeric_variable("size", vec![10.0, 10.0, 20.0, 10.0])
            .unwrap();
        d.add_response("runtime", vec![1.0, 4.0, 2.0, 1.1]).unwrap();
        d
    }

    #[test]
    fn counts_and_ranges() {
        let s = summarize(&sample());
        assert_eq!(s.n_jobs, 4);
        assert_eq!(s.responses[0].min, 1.0);
        assert_eq!(s.responses[0].max, 4.0);
        assert_eq!(s.variables[1].n_distinct, 2);
    }

    #[test]
    fn categorical_levels_reported() {
        let s = summarize(&sample());
        assert_eq!(
            s.variables[0].levels.as_ref().unwrap(),
            &vec!["p1".to_string(), "p2".to_string()]
        );
        assert!(s.variables[1].levels.is_none());
    }

    #[test]
    fn repeats_detected() {
        // Rows 0 and 3 share (p1, 10).
        let s = summarize(&sample());
        assert_eq!(s.max_repeats, 2);
    }

    #[test]
    fn display_formats() {
        let text = format!("{}", summarize(&sample()));
        assert!(text.contains("# Jobs: 4"));
        assert!(text.contains("runtime"));
        assert!(text.contains("p1,p2"));
    }

    #[test]
    fn empty_dataset_summary() {
        let s = summarize(&DataSet::new());
        assert_eq!(s.n_jobs, 0);
        assert!(s.variables.is_empty());
        assert_eq!(s.max_repeats, 0);
    }
}
