//! Factorial dataset construction from a measurement oracle.
//!
//! This is the bridge between the dataset layer and whatever actually
//! produces measurements — the cluster simulator in this workspace, real
//! SLURM jobs in the paper. The builder enumerates a full-factorial grid,
//! asks the oracle for each (cell, repeat) measurement, and assembles a
//! [`DataSet`]. The oracle may return `None` to *drop* a job — exactly how
//! the paper's Power dataset lost jobs whose IPMI power traces had too many
//! gaps (Section V-A).

use crate::dataset::{DataSet, DataSetError};
use crate::grid::{Factor, Grid};
use std::collections::BTreeMap;

/// Levels of one experiment factor.
#[derive(Debug, Clone, PartialEq)]
pub enum Levels {
    /// Numeric levels used verbatim.
    Numeric(Vec<f64>),
    /// Categorical levels; the oracle sees the level *index* as `f64`.
    Categorical(Vec<String>),
}

/// One factor of the experiment design.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorSpec {
    /// Factor name.
    pub name: String,
    /// Its levels.
    pub levels: Levels,
}

impl FactorSpec {
    /// Numeric factor.
    pub fn numeric(name: &str, levels: Vec<f64>) -> Self {
        FactorSpec {
            name: name.to_string(),
            levels: Levels::Numeric(levels),
        }
    }

    /// Categorical factor.
    pub fn categorical(name: &str, levels: &[&str]) -> Self {
        FactorSpec {
            name: name.to_string(),
            levels: Levels::Categorical(levels.iter().map(|s| s.to_string()).collect()),
        }
    }

    fn numeric_levels(&self) -> Vec<f64> {
        match &self.levels {
            Levels::Numeric(v) => v.clone(),
            Levels::Categorical(v) => (0..v.len()).map(|i| i as f64).collect(),
        }
    }
}

/// Build a dataset by running `oracle(point, repeat)` for every cell of the
/// full-factorial design over `factors`, `repeats` times each.
///
/// The oracle returns the response map for one job, or `None` to drop that
/// job (lost measurement). Response names must be consistent across jobs.
///
/// # Errors
/// Propagates dataset-assembly errors (inconsistent response names).
pub fn factorial_dataset(
    factors: &[FactorSpec],
    repeats: usize,
    mut oracle: impl FnMut(&[f64], usize) -> Option<BTreeMap<String, f64>>,
) -> Result<DataSet, DataSetError> {
    let grid = Grid::new(
        factors
            .iter()
            .map(|f| Factor::new(&f.name, f.numeric_levels()))
            .collect(),
    );
    // Collect rows first; we need the response names before constructing
    // columns.
    let mut rows: Vec<(Vec<f64>, BTreeMap<String, f64>)> = Vec::new();
    for point in grid.iter() {
        for rep in 0..repeats.max(1) {
            if let Some(resp) = oracle(&point, rep) {
                rows.push((point.clone(), resp));
            }
        }
    }
    let mut data = DataSet::new();
    if rows.is_empty() {
        return Ok(data);
    }
    let resp_names: Vec<String> = rows[0].1.keys().cloned().collect();
    for (point, resp) in &rows {
        if resp.len() != resp_names.len() || !resp_names.iter().all(|n| resp.contains_key(n)) {
            return Err(DataSetError::Invalid(format!(
                "inconsistent response names at point {point:?}"
            )));
        }
    }
    // Variable columns.
    for (j, f) in factors.iter().enumerate() {
        let col: Vec<f64> = rows.iter().map(|(p, _)| p[j]).collect();
        match &f.levels {
            Levels::Numeric(_) => data.add_numeric_variable(&f.name, col)?,
            Levels::Categorical(levels) => {
                let strs: Vec<&str> = col.iter().map(|&v| levels[v as usize].as_str()).collect();
                data.add_categorical_variable(&f.name, &strs)?;
            }
        }
    }
    for name in &resp_names {
        let col: Vec<f64> = rows.iter().map(|(_, r)| r[name]).collect();
        data.add_response(name, col)?;
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(rt: f64) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        m.insert("runtime".to_string(), rt);
        m
    }

    #[test]
    fn builds_full_factorial_with_repeats() {
        let factors = vec![
            FactorSpec::categorical("op", &["p1", "p2"]),
            FactorSpec::numeric("size", vec![10.0, 100.0]),
        ];
        let d = factorial_dataset(&factors, 3, |p, rep| {
            Some(resp(p[1] * (1.0 + p[0]) + rep as f64 * 0.01))
        })
        .unwrap();
        assert_eq!(d.n_rows(), 2 * 2 * 3);
        assert_eq!(d.variable_names(), vec!["op", "size"]);
        // Categorical column decoded by name.
        assert_eq!(d.level_index("op", "p2").unwrap(), 1);
        // Repeats recorded as separate rows with same settings.
        let groups = d.group_by_settings(&["op", "size"]).unwrap();
        assert_eq!(groups.len(), 4);
        assert!(groups.iter().all(|(_, rows)| rows.len() == 3));
    }

    #[test]
    fn dropped_jobs_are_skipped() {
        let factors = vec![FactorSpec::numeric("x", vec![1.0, 2.0, 3.0])];
        let d = factorial_dataset(&factors, 2, |p, _| {
            if p[0] == 2.0 {
                None // lost measurement
            } else {
                Some(resp(p[0]))
            }
        })
        .unwrap();
        assert_eq!(d.n_rows(), 4);
        assert!(d.variable("x").unwrap().values.iter().all(|&v| v != 2.0));
    }

    #[test]
    fn all_dropped_yields_empty() {
        let factors = vec![FactorSpec::numeric("x", vec![1.0])];
        let d = factorial_dataset(&factors, 1, |_, _| None).unwrap();
        assert_eq!(d.n_rows(), 0);
    }

    #[test]
    fn inconsistent_responses_rejected() {
        let factors = vec![FactorSpec::numeric("x", vec![1.0, 2.0])];
        let r = factorial_dataset(&factors, 1, |p, _| {
            let mut m = BTreeMap::new();
            if p[0] == 1.0 {
                m.insert("runtime".into(), 1.0);
            } else {
                m.insert("energy".into(), 1.0);
            }
            Some(m)
        });
        assert!(r.is_err());
    }

    #[test]
    fn oracle_sees_level_indices_for_categoricals() {
        let factors = vec![FactorSpec::categorical("op", &["a", "b", "c"])];
        let mut seen = Vec::new();
        let _ = factorial_dataset(&factors, 1, |p, _| {
            seen.push(p[0]);
            Some(resp(1.0))
        })
        .unwrap();
        assert_eq!(seen, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn zero_repeats_treated_as_one() {
        let factors = vec![FactorSpec::numeric("x", vec![1.0])];
        let d = factorial_dataset(&factors, 0, |_, _| Some(resp(1.0))).unwrap();
        assert_eq!(d.n_rows(), 1);
    }
}
