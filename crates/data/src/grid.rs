//! Factor grids: named factors with discrete levels and their full-factorial
//! cartesian product.
//!
//! Two consumers: workload generation (submit one job per grid cell, per
//! repeat) and AL candidate pools (the paper treats the Active set as a
//! finite pool of factor combinations). The classic designs of Jain's
//! textbook — `2^k` full factorial and fractional subsets — are expressible
//! as grids, which is how the static-baseline comparison in `alperf-al` is
//! built.

/// A named factor with its levels.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    /// Factor name (e.g. `NP`, `CPU Frequency`).
    pub name: String,
    /// Levels, in presentation order.
    pub levels: Vec<f64>,
}

impl Factor {
    /// New factor; panics on empty levels.
    pub fn new(name: &str, levels: Vec<f64>) -> Self {
        assert!(!levels.is_empty(), "factor {name} needs at least one level");
        Factor {
            name: name.to_string(),
            levels,
        }
    }

    /// A two-level factor from its extremes — the building block of `2^k`
    /// factorial designs.
    pub fn two_level(name: &str, lo: f64, hi: f64) -> Self {
        Factor::new(name, vec![lo, hi])
    }
}

/// A full-factorial grid over several factors.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Factors, slowest-varying first.
    pub factors: Vec<Factor>,
}

impl Grid {
    /// New grid from factors.
    pub fn new(factors: Vec<Factor>) -> Self {
        Grid { factors }
    }

    /// Number of cells (product of level counts).
    pub fn n_cells(&self) -> usize {
        self.factors.iter().map(|f| f.levels.len()).product()
    }

    /// Factor names in order.
    pub fn names(&self) -> Vec<&str> {
        self.factors.iter().map(|f| f.name.as_str()).collect()
    }

    /// The `i`-th cell as a point (values in factor order). The first factor
    /// varies slowest (row-major enumeration).
    ///
    /// # Panics
    /// Panics if `i >= n_cells()`.
    pub fn cell(&self, i: usize) -> Vec<f64> {
        assert!(i < self.n_cells(), "cell index out of range");
        let mut rem = i;
        let mut point = vec![0.0; self.factors.len()];
        for (j, f) in self.factors.iter().enumerate().rev() {
            let n = f.levels.len();
            point[j] = f.levels[rem % n];
            rem /= n;
        }
        point
    }

    /// Iterate over all cells.
    pub fn iter(&self) -> impl Iterator<Item = Vec<f64>> + '_ {
        (0..self.n_cells()).map(move |i| self.cell(i))
    }

    /// All cells collected into a vector of points.
    pub fn points(&self) -> Vec<Vec<f64>> {
        self.iter().collect()
    }

    /// A `2^(k-p)` style fractional subset: every `stride`-th cell. A crude
    /// but classic way to cut the experiment count; the static-design
    /// baseline uses it.
    pub fn fractional(&self, stride: usize) -> Vec<Vec<f64>> {
        assert!(stride > 0, "stride must be positive");
        (0..self.n_cells())
            .step_by(stride)
            .map(|i| self.cell(i))
            .collect()
    }
}

/// Latin-hypercube-style sample of `n` cells from a grid: each factor's
/// levels are cycled through a shuffled order so the sample covers every
/// level of every factor as evenly as possible. Deterministic in `seed`.
pub fn latin_hypercube(grid: &Grid, n: usize, seed: u64) -> Vec<Vec<f64>> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(grid.factors.len());
    for f in &grid.factors {
        // Repeat the levels enough times to cover n, then shuffle.
        let reps = n.div_ceil(f.levels.len());
        let mut col: Vec<f64> = f
            .levels
            .iter()
            .cycle()
            .take(reps * f.levels.len())
            .copied()
            .collect();
        col.shuffle(&mut rng);
        col.truncate(n);
        columns.push(col);
    }
    (0..n)
        .map(|i| columns.iter().map(|c| c[i]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2x3() -> Grid {
        Grid::new(vec![
            Factor::new("a", vec![1.0, 2.0]),
            Factor::new("b", vec![10.0, 20.0, 30.0]),
        ])
    }

    #[test]
    fn cell_count_and_names() {
        let g = grid2x3();
        assert_eq!(g.n_cells(), 6);
        assert_eq!(g.names(), vec!["a", "b"]);
    }

    #[test]
    fn enumeration_is_row_major() {
        let g = grid2x3();
        let pts = g.points();
        assert_eq!(pts[0], vec![1.0, 10.0]);
        assert_eq!(pts[1], vec![1.0, 20.0]);
        assert_eq!(pts[2], vec![1.0, 30.0]);
        assert_eq!(pts[3], vec![2.0, 10.0]);
        assert_eq!(pts[5], vec![2.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cell_out_of_range_panics() {
        grid2x3().cell(6);
    }

    #[test]
    fn two_level_factorial() {
        let g = Grid::new(vec![
            Factor::two_level("x", 0.0, 1.0),
            Factor::two_level("y", 0.0, 1.0),
            Factor::two_level("z", 0.0, 1.0),
        ]);
        assert_eq!(g.n_cells(), 8); // 2^3
        let pts = g.points();
        assert_eq!(pts.len(), 8);
        // All combinations are distinct.
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_ne!(pts[i], pts[j]);
            }
        }
    }

    #[test]
    fn fractional_design_subsamples() {
        let g = grid2x3();
        let half = g.fractional(2);
        assert_eq!(half.len(), 3);
        assert_eq!(half[0], vec![1.0, 10.0]);
        assert_eq!(half[1], vec![1.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_factor_panics() {
        Factor::new("bad", vec![]);
    }

    #[test]
    fn latin_hypercube_covers_levels_evenly() {
        let g = grid2x3();
        let n = 6;
        let pts = latin_hypercube(&g, n, 0);
        assert_eq!(pts.len(), n);
        // Factor "a" has 2 levels: each should appear n/2 = 3 times.
        let a_ones = pts.iter().filter(|p| p[0] == 1.0).count();
        assert_eq!(a_ones, 3);
        // Factor "b" has 3 levels: each appears twice.
        for lvl in [10.0, 20.0, 30.0] {
            assert_eq!(pts.iter().filter(|p| p[1] == lvl).count(), 2);
        }
    }

    #[test]
    fn latin_hypercube_deterministic() {
        let g = grid2x3();
        assert_eq!(latin_hypercube(&g, 5, 9), latin_hypercube(&g, 5, 9));
        assert_ne!(latin_hypercube(&g, 6, 1), latin_hypercube(&g, 6, 2));
    }
}
