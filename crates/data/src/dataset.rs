//! The central dataset container.
//!
//! A [`DataSet`] mirrors the paper's data model: each row is one job
//! (experiment), columns are either *controlled variables* (Operator,
//! Global Problem Size, NP, CPU Frequency) or *responses* (Runtime, Energy).
//! Controlled variables may be numeric or categorical; categoricals store
//! their levels once and encode values as level indices, because the GPR
//! layer consumes a purely numeric design matrix.
//!
//! Repeated measurements — several rows with identical variable settings
//! and different response values — are first-class: the paper's AL
//! formulation explicitly requires datasets "with multiple y values for the
//! same x" (Section III).

use alperf_linalg::matrix::Matrix;
use std::collections::BTreeMap;
use std::fmt;

/// Kind of a controlled-variable column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnKind {
    /// Plain numeric variable.
    Numeric,
    /// Categorical variable; values are indices into `levels`.
    Categorical {
        /// Ordered level names (e.g. `poisson1`, `poisson2`, `poisson2affine`).
        levels: Vec<String>,
    },
}

/// Errors from dataset construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum DataSetError {
    /// Column lengths disagree.
    LengthMismatch(String),
    /// Referenced a column that does not exist.
    UnknownColumn(String),
    /// Categorical value outside the declared levels.
    BadLevel(String),
    /// Structural problem (duplicate name, empty dataset where rows needed…).
    Invalid(String),
}

impl fmt::Display for DataSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataSetError::LengthMismatch(s) => write!(f, "length mismatch: {s}"),
            DataSetError::UnknownColumn(s) => write!(f, "unknown column: {s}"),
            DataSetError::BadLevel(s) => write!(f, "bad categorical level: {s}"),
            DataSetError::Invalid(s) => write!(f, "invalid dataset: {s}"),
        }
    }
}

impl std::error::Error for DataSetError {}

/// One group of rows sharing identical variable settings:
/// `(setting values, row indices)`.
pub type SettingGroup = (Vec<f64>, Vec<usize>);

/// A controlled-variable column.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    /// Column name.
    pub name: String,
    /// Numeric or categorical.
    pub kind: ColumnKind,
    /// Values, one per row. For categoricals these are level indices
    /// stored as `f64` (always exact for the small level counts used here).
    pub values: Vec<f64>,
}

/// Tabular dataset: controlled variables + response columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataSet {
    variables: Vec<Variable>,
    responses: BTreeMap<String, Vec<f64>>,
    nrows: usize,
}

impl DataSet {
    /// Empty dataset (no columns, no rows).
    pub fn new() -> Self {
        DataSet::default()
    }

    /// Add a numeric controlled variable.
    ///
    /// # Errors
    /// Length mismatch against existing columns, or duplicate name.
    pub fn add_numeric_variable(
        &mut self,
        name: &str,
        values: Vec<f64>,
    ) -> Result<(), DataSetError> {
        self.check_new_column(name, values.len())?;
        self.nrows = values.len();
        self.variables.push(Variable {
            name: name.to_string(),
            kind: ColumnKind::Numeric,
            values,
        });
        Ok(())
    }

    /// Add a categorical controlled variable from string values; levels are
    /// collected in order of first appearance.
    pub fn add_categorical_variable(
        &mut self,
        name: &str,
        values: &[&str],
    ) -> Result<(), DataSetError> {
        self.check_new_column(name, values.len())?;
        let mut levels: Vec<String> = Vec::new();
        let mut encoded = Vec::with_capacity(values.len());
        for v in values {
            let idx = match levels.iter().position(|l| l == v) {
                Some(i) => i,
                None => {
                    levels.push(v.to_string());
                    levels.len() - 1
                }
            };
            encoded.push(idx as f64);
        }
        self.nrows = values.len();
        self.variables.push(Variable {
            name: name.to_string(),
            kind: ColumnKind::Categorical { levels },
            values: encoded,
        });
        Ok(())
    }

    /// Add a response column (Runtime, Energy, ...).
    pub fn add_response(&mut self, name: &str, values: Vec<f64>) -> Result<(), DataSetError> {
        self.check_new_column(name, values.len())?;
        self.nrows = values.len();
        self.responses.insert(name.to_string(), values);
        Ok(())
    }

    fn check_new_column(&self, name: &str, len: usize) -> Result<(), DataSetError> {
        if self.variables.iter().any(|v| v.name == name) || self.responses.contains_key(name) {
            return Err(DataSetError::Invalid(format!("duplicate column {name}")));
        }
        if (self.nrows != 0 || !self.is_column_free()) && len != self.nrows {
            return Err(DataSetError::LengthMismatch(format!(
                "column {name} has {len} rows, dataset has {}",
                self.nrows
            )));
        }
        Ok(())
    }

    fn is_column_free(&self) -> bool {
        self.variables.is_empty() && self.responses.is_empty()
    }

    /// Number of rows (jobs).
    pub fn n_rows(&self) -> usize {
        self.nrows
    }

    /// Number of controlled variables.
    pub fn n_variables(&self) -> usize {
        self.variables.len()
    }

    /// Names of the controlled variables, in order.
    pub fn variable_names(&self) -> Vec<&str> {
        self.variables.iter().map(|v| v.name.as_str()).collect()
    }

    /// Names of the responses, in order.
    pub fn response_names(&self) -> Vec<&str> {
        self.responses.keys().map(|k| k.as_str()).collect()
    }

    /// Borrow one controlled variable by name.
    pub fn variable(&self, name: &str) -> Result<&Variable, DataSetError> {
        self.variables
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| DataSetError::UnknownColumn(name.to_string()))
    }

    /// Borrow one response column by name.
    pub fn response(&self, name: &str) -> Result<&[f64], DataSetError> {
        self.responses
            .get(name)
            .map(|v| v.as_slice())
            .ok_or_else(|| DataSetError::UnknownColumn(name.to_string()))
    }

    /// Sorted unique values of a variable.
    pub fn unique_values(&self, name: &str) -> Result<Vec<f64>, DataSetError> {
        let var = self.variable(name)?;
        let mut vals = var.values.clone();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        Ok(vals)
    }

    /// Index of a categorical level by name.
    pub fn level_index(&self, var: &str, level: &str) -> Result<usize, DataSetError> {
        match &self.variable(var)?.kind {
            ColumnKind::Categorical { levels } => levels
                .iter()
                .position(|l| l == level)
                .ok_or_else(|| DataSetError::BadLevel(format!("{var}={level}"))),
            ColumnKind::Numeric => Err(DataSetError::Invalid(format!("{var} is numeric"))),
        }
    }

    /// Select a subset of rows into a new dataset (indices may repeat).
    pub fn select_rows(&self, idx: &[usize]) -> DataSet {
        let variables = self
            .variables
            .iter()
            .map(|v| Variable {
                name: v.name.clone(),
                kind: v.kind.clone(),
                values: idx.iter().map(|&i| v.values[i]).collect(),
            })
            .collect();
        let responses = self
            .responses
            .iter()
            .map(|(k, col)| (k.clone(), idx.iter().map(|&i| col[i]).collect()))
            .collect();
        DataSet {
            variables,
            responses,
            nrows: idx.len(),
        }
    }

    /// Keep only rows where `var == value` (within `1e-9` tolerance for
    /// numerics), and *drop* that variable from the result — the paper's
    /// "fix the Operator, vary Problem Size" style of cross-section.
    pub fn fix_variable(&self, name: &str, value: f64) -> Result<DataSet, DataSetError> {
        let var = self.variable(name)?;
        let idx: Vec<usize> = var
            .values
            .iter()
            .enumerate()
            .filter(|(_, &v)| (v - value).abs() < 1e-9)
            .map(|(i, _)| i)
            .collect();
        let mut sub = self.select_rows(&idx);
        sub.variables.retain(|v| v.name != name);
        Ok(sub)
    }

    /// Fix a categorical variable by level name.
    pub fn fix_level(&self, name: &str, level: &str) -> Result<DataSet, DataSetError> {
        let idx = self.level_index(name, level)?;
        self.fix_variable(name, idx as f64)
    }

    /// Build the numeric design matrix from the named variables (rows =
    /// jobs, columns = the given variables in order). This is the `X` the
    /// GPR layer consumes (paper's "design matrix", Section III).
    pub fn design_matrix(&self, vars: &[&str]) -> Result<Matrix, DataSetError> {
        let cols: Vec<&Variable> = vars
            .iter()
            .map(|n| self.variable(n))
            .collect::<Result<_, _>>()?;
        let mut m = Matrix::zeros(self.nrows, cols.len());
        for (j, c) in cols.iter().enumerate() {
            for i in 0..self.nrows {
                m[(i, j)] = c.values[i];
            }
        }
        Ok(m)
    }

    /// One row of the design matrix (values of `vars` at row `i`).
    pub fn point(&self, vars: &[&str], i: usize) -> Result<Vec<f64>, DataSetError> {
        vars.iter()
            .map(|n| self.variable(n).map(|v| v.values[i]))
            .collect()
    }

    /// Group rows by identical variable settings; returns
    /// `(setting, row indices)` pairs. Used to find repeated measurements.
    pub fn group_by_settings(&self, vars: &[&str]) -> Result<Vec<SettingGroup>, DataSetError> {
        let mut groups: Vec<(Vec<f64>, Vec<usize>)> = Vec::new();
        for i in 0..self.nrows {
            let key = self.point(vars, i)?;
            match groups
                .iter_mut()
                .find(|(k, _)| k.iter().zip(&key).all(|(a, b)| (a - b).abs() < 1e-9))
            {
                Some((_, rows)) => rows.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        Ok(groups)
    }

    /// Apply a function to a response column in place (e.g. log transform).
    pub fn map_response(&mut self, name: &str, f: impl Fn(f64) -> f64) -> Result<(), DataSetError> {
        let col = self
            .responses
            .get_mut(name)
            .ok_or_else(|| DataSetError::UnknownColumn(name.to_string()))?;
        for v in col.iter_mut() {
            *v = f(*v);
        }
        Ok(())
    }

    /// Apply a function to a variable column in place.
    pub fn map_variable(&mut self, name: &str, f: impl Fn(f64) -> f64) -> Result<(), DataSetError> {
        let var = self
            .variables
            .iter_mut()
            .find(|v| v.name == name)
            .ok_or_else(|| DataSetError::UnknownColumn(name.to_string()))?;
        if !matches!(var.kind, ColumnKind::Numeric) {
            return Err(DataSetError::Invalid(format!(
                "cannot map categorical variable {name}"
            )));
        }
        for v in var.values.iter_mut() {
            *v = f(*v);
        }
        Ok(())
    }

    /// Append one row: variable values in declaration order plus responses
    /// by name. Missing responses are an error (keep the table rectangular).
    pub fn push_row(
        &mut self,
        var_values: &[f64],
        response_values: &BTreeMap<String, f64>,
    ) -> Result<(), DataSetError> {
        if var_values.len() != self.variables.len() {
            return Err(DataSetError::LengthMismatch(format!(
                "row has {} variables, dataset has {}",
                var_values.len(),
                self.variables.len()
            )));
        }
        for key in self.responses.keys() {
            if !response_values.contains_key(key) {
                return Err(DataSetError::Invalid(format!("missing response {key}")));
            }
        }
        for (var, &v) in self.variables.iter_mut().zip(var_values) {
            if let ColumnKind::Categorical { levels } = &var.kind {
                if v < 0.0 || v as usize >= levels.len() || v.fract() != 0.0 {
                    return Err(DataSetError::BadLevel(format!("{}={v}", var.name)));
                }
            }
            var.values.push(v);
        }
        for (key, col) in self.responses.iter_mut() {
            col.push(response_values[key]);
        }
        self.nrows += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataSet {
        let mut d = DataSet::new();
        d.add_categorical_variable("op", &["p1", "p1", "p2", "p2", "p1"])
            .unwrap();
        d.add_numeric_variable("size", vec![10.0, 20.0, 10.0, 20.0, 10.0])
            .unwrap();
        d.add_response("runtime", vec![1.0, 2.0, 3.0, 4.0, 1.5])
            .unwrap();
        d
    }

    #[test]
    fn construction_and_shapes() {
        let d = sample();
        assert_eq!(d.n_rows(), 5);
        assert_eq!(d.n_variables(), 2);
        assert_eq!(d.variable_names(), vec!["op", "size"]);
        assert_eq!(d.response_names(), vec!["runtime"]);
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut d = sample();
        assert!(matches!(
            d.add_numeric_variable("size", vec![0.0; 5]),
            Err(DataSetError::Invalid(_))
        ));
        assert!(d.add_response("runtime", vec![0.0; 5]).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut d = sample();
        assert!(matches!(
            d.add_numeric_variable("np", vec![1.0, 2.0]),
            Err(DataSetError::LengthMismatch(_))
        ));
    }

    #[test]
    fn categorical_encoding() {
        let d = sample();
        let op = d.variable("op").unwrap();
        assert_eq!(op.values, vec![0.0, 0.0, 1.0, 1.0, 0.0]);
        assert_eq!(d.level_index("op", "p2").unwrap(), 1);
        assert!(d.level_index("op", "nope").is_err());
        assert!(d.level_index("size", "p1").is_err());
    }

    #[test]
    fn unique_values_sorted() {
        let d = sample();
        assert_eq!(d.unique_values("size").unwrap(), vec![10.0, 20.0]);
    }

    #[test]
    fn unknown_column_errors() {
        let d = sample();
        assert!(d.variable("nope").is_err());
        assert!(d.response("nope").is_err());
        assert!(d.unique_values("nope").is_err());
    }

    #[test]
    fn select_rows_and_repeats() {
        let d = sample();
        let s = d.select_rows(&[4, 4, 0]);
        assert_eq!(s.n_rows(), 3);
        assert_eq!(s.response("runtime").unwrap(), &[1.5, 1.5, 1.0]);
    }

    #[test]
    fn fix_level_drops_column_and_filters() {
        let d = sample();
        let p1 = d.fix_level("op", "p1").unwrap();
        assert_eq!(p1.n_rows(), 3);
        assert_eq!(p1.n_variables(), 1);
        assert_eq!(p1.variable_names(), vec!["size"]);
        assert_eq!(p1.response("runtime").unwrap(), &[1.0, 2.0, 1.5]);
    }

    #[test]
    fn fix_numeric_variable() {
        let d = sample();
        let small = d.fix_variable("size", 10.0).unwrap();
        assert_eq!(small.n_rows(), 3);
        assert_eq!(small.response("runtime").unwrap(), &[1.0, 3.0, 1.5]);
    }

    #[test]
    fn design_matrix_layout() {
        let d = sample();
        let m = d.design_matrix(&["size", "op"]).unwrap();
        assert_eq!(m.nrows(), 5);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.row(2), &[10.0, 1.0]);
        assert!(d.design_matrix(&["nope"]).is_err());
    }

    #[test]
    fn point_extraction() {
        let d = sample();
        assert_eq!(d.point(&["op", "size"], 3).unwrap(), vec![1.0, 20.0]);
    }

    #[test]
    fn group_by_settings_finds_repeats() {
        let d = sample();
        let groups = d.group_by_settings(&["op", "size"]).unwrap();
        // (p1,10) x2 [rows 0, 4], (p1,20), (p2,10), (p2,20).
        assert_eq!(groups.len(), 4);
        let g = groups.iter().find(|(k, _)| k == &vec![0.0, 10.0]).unwrap();
        assert_eq!(g.1, vec![0, 4]);
    }

    #[test]
    fn map_response_transforms_in_place() {
        let mut d = sample();
        d.map_response("runtime", |v| v * 10.0).unwrap();
        assert_eq!(d.response("runtime").unwrap()[0], 10.0);
        assert!(d.map_response("nope", |v| v).is_err());
    }

    #[test]
    fn map_variable_rejects_categorical() {
        let mut d = sample();
        assert!(d.map_variable("size", |v| v.log10()).is_ok());
        assert!(d.map_variable("op", |v| v + 1.0).is_err());
    }

    #[test]
    fn push_row_appends() {
        let mut d = sample();
        let mut resp = BTreeMap::new();
        resp.insert("runtime".to_string(), 9.0);
        d.push_row(&[1.0, 30.0], &resp).unwrap();
        assert_eq!(d.n_rows(), 6);
        assert_eq!(d.response("runtime").unwrap()[5], 9.0);
        // Bad level index rejected.
        assert!(d.push_row(&[7.0, 30.0], &resp).is_err());
        // Missing response rejected.
        assert!(d.push_row(&[0.0, 30.0], &BTreeMap::new()).is_err());
        // Wrong arity rejected.
        assert!(d.push_row(&[0.0], &resp).is_err());
    }

    #[test]
    fn empty_dataset_is_sane() {
        let d = DataSet::new();
        assert_eq!(d.n_rows(), 0);
        assert_eq!(d.n_variables(), 0);
        assert!(d.response_names().is_empty());
    }
}
