//! Log transforms for responses and variables.
//!
//! The paper's evaluation (Section V-A, Fig. 2) works "with log-transformed
//! Runtime, Energy, and Global Problem Size": runtimes span five orders of
//! magnitude, and in log–log space runtime grows linearly in problem size —
//! exactly the smooth structure a squared-exponential GP models well. The
//! Cost-Efficiency acquisition (Eq. 14) also exploits the log scale: the
//! predicted *log* cost enters the criterion additively.

use crate::dataset::{DataSet, DataSetError};

/// A reversible scalar transform applied to a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transform {
    /// Identity (no change).
    Identity,
    /// Base-10 logarithm; requires strictly positive inputs.
    Log10,
}

impl Transform {
    /// Apply the transform to one value.
    pub fn apply(&self, v: f64) -> f64 {
        match self {
            Transform::Identity => v,
            Transform::Log10 => v.log10(),
        }
    }

    /// Invert the transform.
    pub fn invert(&self, v: f64) -> f64 {
        match self {
            Transform::Identity => v,
            Transform::Log10 => 10f64.powf(v),
        }
    }

    /// Whether `v` is a legal input (log requires positivity).
    pub fn accepts(&self, v: f64) -> bool {
        match self {
            Transform::Identity => v.is_finite(),
            Transform::Log10 => v.is_finite() && v > 0.0,
        }
    }
}

/// Apply `Log10` to a response column in place, validating positivity first.
///
/// # Errors
/// `DataSetError::Invalid` if any value is non-positive (log undefined).
pub fn log_response(data: &mut DataSet, name: &str) -> Result<(), DataSetError> {
    let col = data.response(name)?;
    if let Some(bad) = col.iter().find(|v| !Transform::Log10.accepts(**v)) {
        return Err(DataSetError::Invalid(format!(
            "response {name} contains non-positive value {bad}; cannot log-transform"
        )));
    }
    data.map_response(name, |v| v.log10())
}

/// Apply `Log10` to a numeric variable column in place.
pub fn log_variable(data: &mut DataSet, name: &str) -> Result<(), DataSetError> {
    let col = data.variable(name)?.values.clone();
    if let Some(bad) = col.iter().find(|v| !Transform::Log10.accepts(**v)) {
        return Err(DataSetError::Invalid(format!(
            "variable {name} contains non-positive value {bad}; cannot log-transform"
        )));
    }
    data.map_variable(name, |v| v.log10())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_round_trip() {
        for t in [Transform::Identity, Transform::Log10] {
            for v in [0.001, 1.0, 458.436, 1.1e9] {
                let back = t.invert(t.apply(v));
                assert!((back - v).abs() / v < 1e-12, "{t:?} at {v}");
            }
        }
    }

    #[test]
    fn log_rejects_nonpositive() {
        assert!(!Transform::Log10.accepts(0.0));
        assert!(!Transform::Log10.accepts(-1.0));
        assert!(!Transform::Log10.accepts(f64::NAN));
        assert!(Transform::Log10.accepts(1e-300));
    }

    fn tiny() -> DataSet {
        let mut d = DataSet::new();
        d.add_numeric_variable("size", vec![10.0, 100.0, 1000.0])
            .unwrap();
        d.add_response("runtime", vec![1.0, 10.0, 100.0]).unwrap();
        d
    }

    #[test]
    fn log_response_in_place() {
        let mut d = tiny();
        log_response(&mut d, "runtime").unwrap();
        let r = d.response("runtime").unwrap();
        assert!((r[0] - 0.0).abs() < 1e-12);
        assert!((r[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn log_variable_in_place() {
        let mut d = tiny();
        log_variable(&mut d, "size").unwrap();
        let v = &d.variable("size").unwrap().values;
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn log_of_nonpositive_column_fails_without_mutation() {
        let mut d = DataSet::new();
        d.add_numeric_variable("x", vec![1.0]).unwrap();
        d.add_response("y", vec![-5.0]).unwrap();
        assert!(log_response(&mut d, "y").is_err());
        // Unchanged on failure.
        assert_eq!(d.response("y").unwrap(), &[-5.0]);
    }

    #[test]
    fn unknown_columns_error() {
        let mut d = tiny();
        assert!(log_response(&mut d, "nope").is_err());
        assert!(log_variable(&mut d, "nope").is_err());
    }
}
