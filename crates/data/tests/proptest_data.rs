//! Property-based tests for the dataset layer: partitions, transforms,
//! CSV round-trips, and grid enumeration invariants.

use alperf_data::csvio;
use alperf_data::dataset::DataSet;
use alperf_data::grid::{latin_hypercube, Factor, Grid};
use alperf_data::partition::Partition;
use alperf_data::transform::Transform;
use proptest::prelude::*;

proptest! {
    /// Partitions are always disjoint, exhaustive covers with the requested
    /// seed-set size and (rounded) active fraction.
    #[test]
    fn partitions_are_valid_covers(
        n in 1usize..400,
        frac in 0.0..1.0f64,
        seed in 0u64..1000,
    ) {
        let n_initial = 1.min(n);
        let p = Partition::random(n, n_initial, frac, seed);
        prop_assert!(p.is_valid_cover(n));
        prop_assert_eq!(p.initial.len(), n_initial);
        let rest = n - n_initial;
        let expect_active = (rest as f64 * frac).round() as usize;
        prop_assert_eq!(p.active.len(), expect_active);
    }

    /// Identical seeds give identical partitions; different seeds almost
    /// always differ (check they at least cover the same set).
    #[test]
    fn partitions_deterministic(n in 10usize..200, seed in 0u64..500) {
        let a = Partition::random(n, 1, 0.8, seed);
        let b = Partition::random(n, 1, 0.8, seed);
        prop_assert_eq!(a, b);
    }

    /// Log transform round-trips within floating-point tolerance on
    /// positive values spanning many magnitudes.
    #[test]
    fn log_transform_round_trip(exp in -300.0..300.0f64) {
        let v = 10f64.powf(exp / 2.0);
        let t = Transform::Log10;
        prop_assume!(t.accepts(v));
        let back = t.invert(t.apply(v));
        prop_assert!((back - v).abs() <= 1e-10 * v.abs());
    }

    /// CSV round-trip preserves every bit of numeric data.
    #[test]
    fn csv_round_trip_exact(
        xs in prop::collection::vec(-1e12..1e12f64, 1..30),
        ys in prop::collection::vec(1e-12..1e12f64, 1..30),
    ) {
        let n = xs.len().min(ys.len());
        let mut d = DataSet::new();
        d.add_numeric_variable("x", xs[..n].to_vec()).unwrap();
        d.add_response("y", ys[..n].to_vec()).unwrap();
        let text = csvio::to_csv(&d).unwrap();
        let back = csvio::from_csv(&text, &["y"]).unwrap();
        prop_assert_eq!(back.n_rows(), n);
        for i in 0..n {
            prop_assert_eq!(back.variable("x").unwrap().values[i].to_bits(), xs[i].to_bits());
            prop_assert_eq!(back.response("y").unwrap()[i].to_bits(), ys[i].to_bits());
        }
    }

    /// Grid enumeration visits exactly the cartesian product: right count,
    /// all distinct, every value a declared level.
    #[test]
    fn grid_enumeration_is_cartesian(
        l1 in prop::collection::vec(-10.0..10.0f64, 1..5),
        l2 in prop::collection::vec(-10.0..10.0f64, 1..5),
    ) {
        let mut u1 = l1.clone();
        u1.sort_by(|a, b| a.partial_cmp(b).unwrap());
        u1.dedup();
        let mut u2 = l2.clone();
        u2.sort_by(|a, b| a.partial_cmp(b).unwrap());
        u2.dedup();
        let g = Grid::new(vec![Factor::new("a", u1.clone()), Factor::new("b", u2.clone())]);
        let pts = g.points();
        prop_assert_eq!(pts.len(), u1.len() * u2.len());
        for p in &pts {
            prop_assert!(u1.contains(&p[0]));
            prop_assert!(u2.contains(&p[1]));
        }
        // All distinct.
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                prop_assert_ne!(&pts[i], &pts[j]);
            }
        }
    }

    /// Latin hypercube sampling covers each factor's levels within one of
    /// the perfectly balanced count.
    #[test]
    fn latin_hypercube_is_balanced(n_mult in 1usize..5, seed in 0u64..100) {
        let levels = vec![1.0, 2.0, 3.0, 4.0];
        let g = Grid::new(vec![
            Factor::new("a", levels.clone()),
            Factor::new("b", vec![0.0, 1.0]),
        ]);
        let n = n_mult * 4;
        let pts = latin_hypercube(&g, n, seed);
        prop_assert_eq!(pts.len(), n);
        for lvl in &levels {
            let count = pts.iter().filter(|p| p[0] == *lvl).count();
            prop_assert_eq!(count, n / 4, "level {} of factor a", lvl);
        }
    }

    /// select_rows + fix_variable compose: fixing then counting equals
    /// counting matching rows directly.
    #[test]
    fn fix_variable_counts_match(vals in prop::collection::vec(0..4i32, 1..60)) {
        let col: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
        let mut d = DataSet::new();
        d.add_numeric_variable("v", col.clone()).unwrap();
        d.add_response("y", vec![1.0; col.len()]).unwrap();
        for target in 0..4 {
            let fixed = d.fix_variable("v", target as f64).unwrap();
            let direct = col.iter().filter(|&&v| v == target as f64).count();
            prop_assert_eq!(fixed.n_rows(), direct);
            // The fixed variable is dropped.
            prop_assert_eq!(fixed.n_variables(), 0);
        }
    }
}
