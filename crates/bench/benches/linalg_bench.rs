//! Criterion benches for the dense linear-algebra substrate: the Cholesky
//! factorization that dominates every GPR fit, triangular solves, and the
//! serial-vs-parallel matrix product crossover that justifies the
//! `PAR_THRESHOLD` constant in `alperf-linalg`.

use alperf_linalg::{cholesky::Cholesky, matrix::Matrix, vector};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn spd(n: usize) -> Matrix {
    // Kernel-matrix-like SPD: exp(-|i-j|^2 / s) + ridge.
    let s = (n as f64 / 4.0).powi(2);
    let mut m = Matrix::from_fn(n, n, |i, j| {
        let d = i as f64 - j as f64;
        (-d * d / s).exp()
    });
    m.add_diagonal(1e-2);
    m
}

fn bench_cholesky(c: &mut Criterion) {
    let mut g = c.benchmark_group("cholesky");
    g.sample_size(20);
    for n in [32usize, 64, 128, 256] {
        let a = spd(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| Cholesky::decompose(black_box(a)).expect("SPD"))
        });
    }
    g.finish();
}

fn bench_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("cholesky_solve");
    g.sample_size(30);
    for n in [64usize, 256] {
        let a = spd(n);
        let chol = Cholesky::decompose(&a).expect("SPD");
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &chol, |b, chol| {
            b.iter(|| chol.solve(black_box(&rhs)).expect("solve"))
        });
    }
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    g.sample_size(15);
    for n in [48usize, 96, 192] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 3 + j) % 17) as f64 * 0.1);
        let b2 = Matrix::from_fn(n, n, |i, j| ((i + 5 * j) % 13) as f64 * 0.1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| a.matmul(black_box(&b2)).expect("dims"))
        });
    }
    g.finish();
}

fn bench_dot(c: &mut Criterion) {
    let x: Vec<f64> = (0..4096).map(|i| (i as f64).sin()).collect();
    let y: Vec<f64> = (0..4096).map(|i| (i as f64).cos()).collect();
    c.bench_function("dot_4096", |b| {
        b.iter(|| vector::dot(black_box(&x), black_box(&y)))
    });
}

criterion_group!(
    benches,
    bench_cholesky,
    bench_solve,
    bench_matmul,
    bench_dot
);
criterion_main!(benches);
