//! Criterion benches for the observability layer itself: the cost of one
//! disabled instrumentation site (the relaxed-atomic fast path every hot
//! loop now pays), one enabled span (clock reads + histogram record), and
//! the end-to-end fit/predict overhead with telemetry off vs. on. The
//! <2% regression budget is enforced by `src/bin/obs_overhead.rs`; these
//! benches are the microscope.

use alperf_gp::kernel::SquaredExponential;
use alperf_gp::model::Gpr;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::{fit_gpr, GprConfig};
use alperf_linalg::matrix::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn training_data(n: usize) -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(n, 2, |i, j| {
        if j == 0 {
            3.0 + 6.0 * (i as f64 / n as f64)
        } else {
            1.2 + 1.2 * ((i * 7 % n) as f64 / n as f64)
        }
    });
    let y: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.1).sin() + i as f64 * 0.01)
        .collect();
    (x, y)
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_primitives");
    g.sample_size(10);
    alperf_obs::set_enabled(false);
    g.bench_function("span_disabled", |b| {
        b.iter(|| {
            let _s = alperf_obs::span(black_box("bench.noop"));
        })
    });
    g.bench_function("counter_disabled", |b| {
        b.iter(|| alperf_obs::inc(black_box("bench.noop")))
    });
    alperf_obs::set_enabled(true);
    g.bench_function("span_enabled", |b| {
        b.iter(|| {
            let _s = alperf_obs::span(black_box("bench.noop"));
        })
    });
    let counter = alperf_obs::counter("bench.noop");
    g.bench_function("counter_enabled_cached_handle", |b| {
        b.iter(|| counter.inc())
    });
    let hist = alperf_obs::histogram("bench.noop_ns");
    g.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(977);
            hist.record(black_box(v % 1_000_000))
        })
    });
    alperf_obs::set_enabled(false);
    g.finish();
}

fn bench_fit_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_fit_overhead");
    g.sample_size(10);
    let (x, y) = training_data(200);
    let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::recommended())
        .with_restarts(2);
    for (label, on) in [("disabled", false), ("enabled", true)] {
        alperf_obs::set_enabled(on);
        g.bench_function(BenchmarkId::new("fit_n200", label), |b| {
            b.iter(|| fit_gpr(black_box(&x), black_box(&y), &cfg).expect("fit"))
        });
    }
    alperf_obs::set_enabled(false);
    g.finish();
}

fn bench_predict_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_predict_overhead");
    g.sample_size(10);
    let (x, y) = training_data(200);
    let gpr = Gpr::fit(
        x,
        &y,
        Box::new(SquaredExponential::new(1.0, 1.0)),
        0.1,
        true,
    )
    .expect("fit");
    let pool = Matrix::from_fn(1024, 2, |i, j| {
        if j == 0 {
            3.0 + 6.0 * ((i * 13 % 1024) as f64 / 1024.0)
        } else {
            1.2 + 1.2 * ((i * 29 % 1024) as f64 / 1024.0)
        }
    });
    for (label, on) in [("disabled", false), ("enabled", true)] {
        alperf_obs::set_enabled(on);
        g.bench_function(BenchmarkId::new("predict_pool1024", label), |b| {
            b.iter(|| gpr.predict_batch(black_box(&pool)).expect("predict"))
        });
    }
    alperf_obs::set_enabled(false);
    g.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_fit_overhead,
    bench_predict_overhead
);
criterion_main!(benches);
