//! Criterion benches for the HPGMG-FE stand-in: full FMG solves across
//! refinements, operators, and thread counts, plus the component kernels
//! (smoother sweep, residual, restriction). These are the measurements the
//! performance model in `alperf_hpgmg::model` abstracts — comparing the
//! two grounds the model's per-operator cost ratios.

use alperf_hpgmg::cycle::Hierarchy;
use alperf_hpgmg::grid3::Grid3;
use alperf_hpgmg::operator::{self, OperatorKind};
use alperf_hpgmg::smoother;
use alperf_hpgmg::solver::FmgSolver;
use alperf_hpgmg::transfer;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fmg_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fmg_solve");
    g.sample_size(10);
    for n in [16usize, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let solver = FmgSolver::new(OperatorKind::Poisson1, n);
            b.iter(|| black_box(solver.run()))
        });
    }
    g.finish();
}

fn bench_operators(c: &mut Criterion) {
    let mut g = c.benchmark_group("fmg_by_operator");
    g.sample_size(10);
    for kind in OperatorKind::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                let solver = FmgSolver::new(kind, 16);
                b.iter(|| black_box(solver.run()))
            },
        );
    }
    g.finish();
}

fn bench_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("fmg_threads");
    g.sample_size(10);
    for t in [1usize, 2] {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            let solver = FmgSolver {
                threads: t,
                ..FmgSolver::new(OperatorKind::Poisson1, 32)
            };
            b.iter(|| black_box(solver.run()))
        });
    }
    g.finish();
}

fn bench_components(c: &mut Criterion) {
    let n = 32;
    let mut u = Grid3::zeros(n);
    u.fill_interior(|x, y, z| (x * 5.0).sin() + y - z * z);
    let mut f = Grid3::zeros(n);
    f.fill_interior(|_, _, _| 1.0);
    let mut scratch = Grid3::zeros(n);
    c.bench_function("residual_32", |b| {
        b.iter(|| operator::residual(OperatorKind::Poisson2, &u, &f, black_box(&mut scratch)))
    });
    c.bench_function("gauss_seidel_rb_32", |b| {
        b.iter(|| smoother::gauss_seidel_rb(OperatorKind::Poisson1, &mut u, &f, &mut scratch))
    });
    let mut coarse = Grid3::zeros(n / 2);
    c.bench_function("restrict_32_to_16", |b| {
        b.iter(|| transfer::restrict(&u, black_box(&mut coarse)))
    });
    let mut h = Hierarchy::new(OperatorKind::Poisson1, n);
    h.rhs_mut().fill_interior(|x, y, z| x * y * z);
    c.bench_function("vcycle_32", |b| b.iter(|| h.vcycle()));
}

fn bench_fmg_vs_cg(c: &mut Criterion) {
    // The contrast that motivates multigrid (and HPGMG): FMG solves in
    // O(N) work while Jacobi-PCG pays kappa ~ h^{-2} iterations.
    let mut g = c.benchmark_group("fmg_vs_cg_n32");
    g.sample_size(10);
    let n = 32;
    let rhs = |n: usize| {
        let mut f = Grid3::zeros(n);
        f.fill_interior(|x, y, z| x * (1.0 - x) * (y + 0.3) * (1.2 - z));
        f
    };
    g.bench_function("fmg", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(OperatorKind::Poisson1, n);
            *h.rhs_mut() = rhs(n);
            let r0 = h.residual_norm();
            h.fmg(1);
            while h.residual_norm() > 1e-8 * r0 {
                h.vcycle();
            }
            black_box(h.residual_norm())
        })
    });
    g.bench_function("jacobi_pcg", |b| {
        b.iter(|| {
            let mut u = Grid3::zeros(n);
            black_box(alperf_hpgmg::krylov::pcg(
                OperatorKind::Poisson1,
                &mut u,
                &rhs(n),
                1e-8,
                10_000,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fmg_scaling,
    bench_operators,
    bench_threads,
    bench_components,
    bench_fmg_vs_cg
);
criterion_main!(benches);
