//! Criterion benches for the GPR engine: covariance assembly, one LML
//! evaluation (the unit of hyperparameter search), the full LML gradient,
//! posterior prediction, and an end-to-end optimized fit — the costs that
//! determine how fast an AL iteration can run (the paper defers this
//! "analysis of computational requirements" to future work; here it is).

use alperf_gp::kernel::SquaredExponential;
use alperf_gp::lml;
use alperf_gp::model::Gpr;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::{fit_gpr, GprConfig};
use alperf_linalg::matrix::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn training_data(n: usize) -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(n, 2, |i, j| {
        if j == 0 {
            3.0 + 6.0 * (i as f64 / n as f64)
        } else {
            1.2 + 1.2 * ((i * 7 % n) as f64 / n as f64)
        }
    });
    let y: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.1).sin() + i as f64 * 0.01)
        .collect();
    (x, y)
}

fn bench_covariance(c: &mut Criterion) {
    let mut g = c.benchmark_group("covariance_assembly");
    g.sample_size(20);
    let kernel = SquaredExponential::new(1.0, 1.0);
    for n in [64usize, 128, 256] {
        let (x, _) = training_data(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| lml::assemble_covariance(black_box(&kernel), black_box(x)))
        });
    }
    g.finish();
}

fn bench_lml(c: &mut Criterion) {
    let mut g = c.benchmark_group("lml_value");
    g.sample_size(20);
    let kernel = SquaredExponential::new(1.0, 1.0);
    for n in [64usize, 128, 256] {
        let (x, y) = training_data(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| lml::lml_value(black_box(&kernel), 0.1, x, black_box(&y)).expect("lml"))
        });
    }
    g.finish();
}

fn bench_lml_grad(c: &mut Criterion) {
    let mut g = c.benchmark_group("lml_gradient");
    g.sample_size(15);
    let kernel = SquaredExponential::new(1.0, 1.0);
    for n in [64usize, 128, 256] {
        let (x, y) = training_data(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| {
                lml::lml_and_grad(black_box(&kernel), 0.1, x, black_box(&y), true).expect("grad")
            })
        });
    }
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let mut g = c.benchmark_group("predict_one");
    g.sample_size(50);
    for n in [64usize, 256] {
        let (x, y) = training_data(n);
        let gpr = Gpr::fit(
            x,
            &y,
            Box::new(SquaredExponential::new(1.0, 1.0)),
            0.1,
            true,
        )
        .expect("fit");
        g.bench_with_input(BenchmarkId::from_parameter(n), &gpr, |b, gpr| {
            b.iter(|| gpr.predict_one(black_box(&[5.0, 1.8])).expect("predict"))
        });
    }
    g.finish();
}

fn pool_points(m: usize) -> Matrix {
    // Pool candidates over the same box as `training_data`, deterministic.
    Matrix::from_fn(m, 2, |i, j| {
        if j == 0 {
            3.0 + 6.0 * ((i * 13 % m) as f64 / m as f64)
        } else {
            1.2 + 1.2 * ((i * 29 % m) as f64 / m as f64)
        }
    })
}

fn bench_predict_pool(c: &mut Criterion) {
    // The tentpole measurement: scoring a whole candidate pool through one
    // blocked multi-RHS batch vs. the per-point loop the AL iteration used
    // to run. `BENCH_gpr_predict.json` is generated from these lines.
    let mut g = c.benchmark_group("predict_pool");
    g.sample_size(10);
    for n in [50usize, 200] {
        let (x, y) = training_data(n);
        let gpr = Gpr::fit(
            x,
            &y,
            Box::new(SquaredExponential::new(1.0, 1.0)),
            0.1,
            true,
        )
        .expect("fit");
        for m in [64usize, 256, 1024] {
            let pool = pool_points(m);
            g.bench_with_input(
                BenchmarkId::new(format!("batch/train{n}"), format!("pool{m}")),
                &pool,
                |b, pool| b.iter(|| gpr.predict_batch(black_box(pool)).expect("predict")),
            );
            g.bench_with_input(
                BenchmarkId::new(format!("loop/train{n}"), format!("pool{m}")),
                &pool,
                |b, pool| {
                    b.iter(|| {
                        (0..pool.nrows())
                            .map(|i| gpr.predict_one(black_box(pool.row(i))).expect("predict"))
                            .collect::<Vec<_>>()
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_fit_optimized(c: &mut Criterion) {
    let mut g = c.benchmark_group("fit_gpr_optimized");
    g.sample_size(10);
    // 160 exercises the blocked (n >= 128) Cholesky path inside the fit.
    for n in [32usize, 96, 160] {
        let (x, y) = training_data(n);
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
            .with_noise_floor(NoiseFloor::recommended())
            .with_restarts(2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| fit_gpr(black_box(x), black_box(&y), &cfg).expect("fit"))
        });
    }
    // Restart-dispatch overhead check: serial vs rayon at a fixed size
    // (identical results; on multicore hardware the parallel path wins).
    for (label, parallel) in [("serial", false), ("parallel", true)] {
        let (x, y) = training_data(64);
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
            .with_noise_floor(NoiseFloor::recommended())
            .with_restarts(4)
            .with_parallel(parallel);
        g.bench_function(BenchmarkId::new("restarts4_n64", label), |b| {
            b.iter(|| fit_gpr(black_box(&x), black_box(&y), &cfg).expect("fit"))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_covariance,
    bench_lml,
    bench_lml_grad,
    bench_predict,
    bench_predict_pool,
    bench_fit_optimized
);
criterion_main!(benches);
