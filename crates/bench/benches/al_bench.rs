//! Criterion benches for the Active-Learning layer: the per-iteration cost
//! of pool scoring + selection for each strategy (the quantity that decides
//! whether online AL keeps up with experiment turnaround), and a complete
//! short AL run.

use alperf_al::runner::{run_al, AlConfig};
use alperf_al::strategy::{
    CostEfficiency, RandomSampling, SelectionContext, Strategy, VarianceReduction,
};
use alperf_data::partition::Partition;
use alperf_gp::kernel::SquaredExponential;
use alperf_gp::model::{Gpr, Prediction};
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::GprConfig;
use alperf_gp::surrogate::Surrogate;
use alperf_linalg::matrix::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn problem(n: usize) -> (Matrix, Vec<f64>, Vec<f64>) {
    let x = Matrix::from_fn(n, 1, |i, _| i as f64 * 10.0 / n as f64);
    let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).sin()).collect();
    let cost: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.1).collect();
    (x, y, cost)
}

fn bench_pool_scoring(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool_prediction");
    g.sample_size(30);
    for pool in [100usize, 400] {
        let (x, y, _) = problem(pool + 20);
        let train: Vec<usize> = (0..20).collect();
        let gpr = Gpr::fit(
            x.select_rows(&train),
            &y[..20],
            Box::new(SquaredExponential::unit()),
            0.1,
            true,
        )
        .expect("fit");
        let pool_rows: Vec<usize> = (20..20 + pool).collect();
        g.bench_with_input(BenchmarkId::from_parameter(pool), &gpr, |b, gpr| {
            b.iter(|| {
                pool_rows
                    .iter()
                    .map(|&i| gpr.predict_one(x.row(i)).expect("predict"))
                    .collect::<Vec<_>>()
            })
        });
    }
    g.finish();
}

fn bench_selection(c: &mut Criterion) {
    let (x, y, _) = problem(220);
    let train: Vec<usize> = (0..20).collect();
    let gpr = Surrogate::Exact(
        Gpr::fit(
            x.select_rows(&train),
            &y[..20],
            Box::new(SquaredExponential::unit()),
            0.1,
            true,
        )
        .expect("fit"),
    );
    let pool: Vec<usize> = (20..220).collect();
    let preds: Vec<Prediction> = pool
        .iter()
        .map(|&i| gpr.predict_one(x.row(i)).expect("predict"))
        .collect();
    let mut g = c.benchmark_group("acquisition_argmax");
    for (name, mut strat) in [
        (
            "variance_reduction",
            Box::new(VarianceReduction) as Box<dyn Strategy>,
        ),
        ("cost_efficiency", Box::new(CostEfficiency)),
        ("random", Box::new(RandomSampling)),
    ] {
        g.bench_function(name, |b| {
            let ctx = SelectionContext {
                model: &gpr,
                x_all: &x,
                y_all: &y,
                train: &train,
                pool: &pool,
                predictions: &preds,
            };
            let mut rng = StdRng::seed_from_u64(0);
            b.iter(|| strat.select(black_box(&ctx), &mut rng))
        });
    }
    g.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("al_run_10_iters");
    g.sample_size(10);
    let (x, y, cost) = problem(80);
    let part = Partition::paper_default(80, 1);
    g.bench_function("variance_reduction", |b| {
        b.iter(|| {
            let gpr = GprConfig::new(Box::new(SquaredExponential::unit()))
                .with_noise_floor(NoiseFloor::recommended())
                .with_restarts(2);
            let cfg = AlConfig {
                max_iters: 10,
                ..AlConfig::new(gpr)
            };
            run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).expect("run")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pool_scoring, bench_selection, bench_full_run);
criterion_main!(benches);
