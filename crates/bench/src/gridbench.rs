//! Campaign-grid throughput benchmark: the same deterministic grid at
//! 1/2/8 workers, plus the summary-stream overhead (streaming vs
//! buffered commits).
//!
//! Shared by the `grid_runner --bench` path and the `bench_gate --suite
//! grid` CI gate, which must measure exactly what the checked-in
//! `BENCH_grid.json` baseline recorded. Metric families:
//!
//! * `configs_per_s_t{1,2,8}` — whole-grid throughput at each worker
//!   width (`floor` gates: a collapse below the recorded throughput
//!   fails on the recording machine);
//! * `grid_ratio_t{2,8}` — multi-worker over single-worker wall time
//!   (`budget` gates guarded by `min_cpus`: vacuous on machines too
//!   small to run the workers in parallel, enforced where real);
//! * `stream_overhead_pct` — per-record streaming commits (write +
//!   flush per line) over one buffered end-of-run write, percent
//!   (`budget` gate on any machine: the pipelined summary stream must
//!   stay nearly free).
//!
//! Widths are applied with [`alperf_linalg::threads::with_threads`]
//! around the executor, which sizes its worker pool from the ambient
//! width — the same mechanism the determinism tests sweep, so the gate
//! times exactly the code path whose byte-stability they prove.

use alperf_grid::exec::{run_grid, CommitMode, ExecConfig};
use alperf_grid::spec::{GridSpec, KernelKind, StrategyKind};
use alperf_linalg::threads::with_threads;
use std::path::PathBuf;
use std::time::Instant;

/// Worker widths the throughput family is measured at.
pub const WIDTHS: [usize; 3] = [1, 2, 8];

/// Metric names for the throughput family, index-aligned with [`WIDTHS`].
pub const CONFIGS_PER_S_NAMES: [&str; 3] =
    ["configs_per_s_t1", "configs_per_s_t2", "configs_per_s_t8"];

/// Budget for `grid_ratio_t2` (2-worker / 1-worker grid wall time):
/// campaigns are embarrassingly parallel, so two real cores must beat
/// 1.25x. Gated only on machines with >= 2 CPUs.
pub const GRID_RATIO_T2_BUDGET: f64 = 0.8;
/// Minimum CPU count for the 2-worker speedup gate to be meaningful.
pub const GRID_RATIO_T2_MIN_CPUS: u64 = 2;
/// Budget for `grid_ratio_t8` (8-worker / 1-worker grid wall time).
pub const GRID_RATIO_T8_BUDGET: f64 = 0.4;
/// Minimum CPU count for the 8-worker speedup gate to be meaningful.
pub const GRID_RATIO_T8_MIN_CPUS: u64 = 8;
/// Budget for `stream_overhead_pct`: per-record flushes may cost at most
/// this much over a single buffered write of the whole summary file.
pub const STREAM_OVERHEAD_BUDGET_PCT: f64 = 10.0;

/// The benchmark grid: every strategy, two kernels, two noise levels,
/// serial and batched selection, a 20% fault rate — the shape real
/// studies sweep, sized for gate runtime.
pub fn bench_spec(quick: bool) -> GridSpec {
    GridSpec {
        name: if quick { "bench_quick" } else { "bench" }.into(),
        base_seed: 29,
        rows: if quick { 12 } else { 16 },
        iters: if quick { 3 } else { 4 },
        strategies: vec![
            StrategyKind::VarianceReduction,
            StrategyKind::CostEfficiency,
            StrategyKind::Random,
        ],
        kernels: vec![KernelKind::Se, KernelKind::Matern52],
        noises: vec![0.1, 0.4],
        batches: vec![1, 2],
        fault_rates: vec![0.2],
        seeds: if quick { vec![0] } else { (0..2).collect() },
        ..GridSpec::default()
    }
}

/// One full grid-throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct GridBenchResult {
    /// Quick (CI smoke) sizes were used.
    pub quick: bool,
    /// Configs in the benchmark grid.
    pub n_configs: usize,
    /// Streaming-mode grid wall time at each width in [`WIDTHS`], s.
    pub grid_s: [f64; 3],
    /// Single-worker buffered-mode wall time, s (the stream-overhead
    /// reference).
    pub buffered_s: f64,
}

impl GridBenchResult {
    /// Grid throughput at `WIDTHS[i]`, configs per second.
    pub fn configs_per_s(&self, i: usize) -> f64 {
        self.n_configs as f64 / self.grid_s[i]
    }

    /// 2-worker over 1-worker wall time (lower is better).
    pub fn grid_ratio_t2(&self) -> f64 {
        self.grid_s[1] / self.grid_s[0]
    }

    /// 8-worker over 1-worker wall time (lower is better).
    pub fn grid_ratio_t8(&self) -> f64 {
        self.grid_s[2] / self.grid_s[0]
    }

    /// Streaming-commit cost over buffered, percent (may be negative in
    /// the noise; the budget gate only caps the upside).
    pub fn stream_overhead_pct(&self) -> f64 {
        (self.grid_s[0] - self.buffered_s) / self.buffered_s * 100.0
    }

    /// The metrics the `bench_gate` baseline gates on, by stable name.
    pub fn metrics(&self) -> Vec<(&'static str, f64)> {
        let mut out = Vec::with_capacity(6);
        for (i, name) in CONFIGS_PER_S_NAMES.iter().enumerate() {
            out.push((*name, self.configs_per_s(i)));
        }
        out.push(("grid_ratio_t2", self.grid_ratio_t2()));
        out.push(("grid_ratio_t8", self.grid_ratio_t8()));
        out.push(("stream_overhead_pct", self.stream_overhead_pct()));
        out
    }
}

fn bench_out(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("alperf-grid-bench");
    std::fs::create_dir_all(&dir).expect("create grid bench dir");
    dir.join(name)
}

/// Run the full grid-throughput measurement. Every run executes the
/// identical grid (same bytes out — the determinism contract), so wall
/// times are comparable across widths and modes. Each configuration is
/// timed best-of-`reps`: the stream-overhead metric is a *difference*
/// of two short runs, where single-shot scheduler noise would dwarf the
/// per-line flush cost being measured.
pub fn measure(quick: bool) -> GridBenchResult {
    let spec = bench_spec(quick);
    let reps = if quick { 2 } else { 3 };
    let best_s = |f: &dyn Fn()| {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best.max(1e-9)
    };
    let mut grid_s = [0.0; 3];
    for (i, &w) in WIDTHS.iter().enumerate() {
        let out = bench_out(&format!("grid_t{w}.jsonl"));
        grid_s[i] = best_s(&|| {
            with_threads(w, || run_grid(&spec, &out, &ExecConfig::default()))
                .expect("bench grid must run");
        });
    }
    let n_configs = spec.expand().expect("bench spec must expand").len();
    let out = bench_out("grid_buffered.jsonl");
    let exec = ExecConfig {
        mode: CommitMode::Buffered,
        ..ExecConfig::default()
    };
    let buffered_s = best_s(&|| {
        with_threads(1, || run_grid(&spec, &out, &exec)).expect("bench grid must run");
    });

    GridBenchResult {
        quick,
        n_configs,
        grid_s,
        buffered_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_are_aligned_and_unique() {
        let r = GridBenchResult {
            quick: true,
            n_configs: 48,
            grid_s: [4.0, 2.0, 1.0],
            buffered_s: 3.9,
        };
        let metrics = r.metrics();
        assert_eq!(metrics.len(), 6);
        let names: std::collections::BTreeSet<_> = metrics.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 6, "duplicate metric name");
        assert!((r.configs_per_s(0) - 12.0).abs() < 1e-12);
        assert!((r.grid_ratio_t2() - 0.5).abs() < 1e-12);
        assert!((r.grid_ratio_t8() - 0.25).abs() < 1e-12);
        assert!(r.stream_overhead_pct() > 0.0);
        for (i, name) in CONFIGS_PER_S_NAMES.iter().enumerate() {
            assert!(name.ends_with(&format!("_t{}", WIDTHS[i])));
        }
    }

    #[test]
    fn bench_specs_expand_to_the_documented_sizes() {
        assert_eq!(bench_spec(true).expand().unwrap().len(), 24);
        assert_eq!(bench_spec(false).expand().unwrap().len(), 48);
    }
}
