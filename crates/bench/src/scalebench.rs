//! Thread-scaling benchmark: the same three hot paths at 1/2/4/8 rayon
//! workers, plus a pipelined-vs-serial AL campaign comparison.
//!
//! Shared by the `scaling_report` binary and the `bench_gate --suite
//! scale` CI gate, which must measure exactly what the checked-in
//! `BENCH_scaling.json` baseline recorded. Three measurement families:
//!
//! * `fit_ms_t{1,2,4,8}` — a multi-restart GPR hyperparameter fit
//!   (restart ascents parallelize, `GprConfig::parallel`);
//! * `predict_pool_ms_t{1,2,4,8}` — batched posterior prediction over a
//!   large candidate pool (covariance assembly and matmul tiles
//!   parallelize in `alperf-linalg`);
//! * `campaign_ms_t{1,2,4,8}` — an end-to-end AL campaign
//!   (fit + predict + acquisition scoring per iteration).
//!
//! Pool widths are applied with [`alperf_linalg::threads::with_threads`],
//! so an in-process sweep never rebuilds global state. On a machine with
//! fewer hardware threads than a requested width the extra workers just
//! time-share — absolute times stay honest, speedup ratios go to ~1, and
//! the ratio gates self-skip via their `min_cpus` (see `gate::Metric`).
//!
//! The pipeline comparison runs the same campaign twice at 2 workers
//! against a [`LatencyOracle`] (a real per-measurement sleep):
//! `PipelineConfig::Off` pays `select + measure` per iteration,
//! `PipelineConfig::Speculative` overlaps the next selection with the
//! in-flight measurement and pays `max(select, measure)`. Sleeping burns
//! no CPU, so this win survives even a single-core machine.

use crate::overhead::{best_ms, pool_points, training_data};
use alperf_al::oracle::LatencyOracle;
use alperf_al::runner::{run_al_with_oracle, AlConfig, PipelineConfig};
use alperf_al::strategy::VarianceReduction;
use alperf_al::DatasetOracle;
use alperf_data::partition::Partition;
use alperf_gp::kernel::SquaredExponential;
use alperf_gp::model::Gpr;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::{fit_gpr, GprConfig};
use alperf_linalg::matrix::Matrix;
use alperf_linalg::threads::with_threads;
use std::hint::black_box;
use std::time::Duration;

/// Pool widths every family is measured at.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Metric names for the fit family, index-aligned with [`THREADS`].
pub const FIT_NAMES: [&str; 4] = ["fit_ms_t1", "fit_ms_t2", "fit_ms_t4", "fit_ms_t8"];
/// Metric names for the pool-prediction family.
pub const PREDICT_POOL_NAMES: [&str; 4] = [
    "predict_pool_ms_t1",
    "predict_pool_ms_t2",
    "predict_pool_ms_t4",
    "predict_pool_ms_t8",
];
/// Metric names for the end-to-end campaign family.
pub const CAMPAIGN_NAMES: [&str; 4] = [
    "campaign_ms_t1",
    "campaign_ms_t2",
    "campaign_ms_t4",
    "campaign_ms_t8",
];

/// Budget for `predict_pool_ratio_t4` (4-thread / 1-thread pool
/// prediction time): below 1/1.5 means the ISSUE's ">= 1.5x at 4
/// threads" held. Gated only on machines with >= 4 CPUs.
pub const PREDICT_POOL_RATIO_T4_BUDGET: f64 = 1.0 / 1.5;
/// Minimum CPU count for the 4-thread speedup gate to be meaningful.
pub const PREDICT_POOL_RATIO_T4_MIN_CPUS: u64 = 4;
/// Budget for `pipeline_ratio_t2` (speculative / serial campaign wall
/// time under measurement latency): the pipelined runner must win
/// clearly, not marginally. Enforced everywhere — the overlap comes from
/// sleeping measurements, which single-core machines overlap fine.
pub const PIPELINE_RATIO_T2_BUDGET: f64 = 0.9;

/// One full thread-scaling measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleResult {
    /// Quick (CI smoke) sizes were used.
    pub quick: bool,
    /// GPR training-set size (fit + campaign families).
    pub n: usize,
    /// Candidate-pool size (predict family).
    pub m: usize,
    /// Optimizer restarts in the fit family.
    pub restarts: usize,
    /// Fit wall time at each width in [`THREADS`], ms (min over reps).
    pub fit_ms: [f64; 4],
    /// Pool-prediction wall time at each width, ms.
    pub predict_pool_ms: [f64; 4],
    /// End-to-end campaign wall time at each width, ms.
    pub campaign_ms: [f64; 4],
    /// Serial-pipeline campaign wall time under measurement latency, ms.
    pub pipeline_serial_ms: f64,
    /// Speculative-pipeline campaign wall time, same setup, ms.
    pub pipeline_spec_ms: f64,
}

impl ScaleResult {
    /// 4-thread over 1-thread pool-prediction time (lower is better;
    /// `< 1/1.5` = the acceptance speedup).
    pub fn predict_pool_ratio_t4(&self) -> f64 {
        self.predict_pool_ms[2] / self.predict_pool_ms[0]
    }

    /// Speculative over serial campaign wall time at 2 workers under
    /// measurement latency (lower is better).
    pub fn pipeline_ratio_t2(&self) -> f64 {
        self.pipeline_spec_ms / self.pipeline_serial_ms
    }

    /// The metrics the `bench_gate` baseline gates on, by stable name.
    /// `*_ms_t<w>` are absolute per-width times (relative gates);
    /// `*_ratio_*` are hardware-normalized speedups (budget gates).
    pub fn metrics(&self) -> Vec<(&'static str, f64)> {
        let mut out = Vec::with_capacity(14);
        out.extend(FIT_NAMES.iter().copied().zip(self.fit_ms));
        out.extend(PREDICT_POOL_NAMES.iter().copied().zip(self.predict_pool_ms));
        out.extend(CAMPAIGN_NAMES.iter().copied().zip(self.campaign_ms));
        out.push(("predict_pool_ratio_t4", self.predict_pool_ratio_t4()));
        out.push(("pipeline_ratio_t2", self.pipeline_ratio_t2()));
        out
    }
}

/// Benchmark sizes: `(n, m, restarts, reps, al_iters)` for quick/full.
pub fn sizes(quick: bool) -> (usize, usize, usize, usize, usize) {
    if quick {
        (48, 2048, 8, 3, 10)
    } else {
        (160, 8192, 8, 5, 24)
    }
}

/// Deterministic synthetic AL problem over `n` rows (1-D smooth response
/// with mild noise-free wiggle; unit costs).
fn al_problem(n: usize) -> (Matrix, Vec<f64>, Vec<f64>, Partition) {
    let xs: Vec<f64> = (0..n).map(|i| i as f64 * 8.0 / n as f64).collect();
    let y: Vec<f64> = xs.iter().map(|v| v.sin() * 2.0 + 0.05 * v).collect();
    let cost = vec![1.0; n];
    let part = Partition::random(n, 2, 0.8, 5);
    (Matrix::from_vec(n, 1, xs).unwrap(), y, cost, part)
}

fn campaign_config(restart_seed: u64, al_iters: usize, pipeline: PipelineConfig) -> AlConfig {
    let gpr = GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::Fixed(0.05))
        .with_restarts(2)
        .with_seed(restart_seed);
    AlConfig {
        max_iters: al_iters,
        seed: 3,
        pipeline,
        ..AlConfig::new(gpr)
    }
}

/// Run the full thread-scaling measurement. Telemetry stays untouched
/// (these paths are timed with instrumentation in whatever state the
/// caller left it; the gate runs with it disabled).
pub fn measure(quick: bool) -> ScaleResult {
    let (n, m, restarts, reps, al_iters) = sizes(quick);
    let (x, y) = training_data(n);
    let pool = pool_points(m);
    let fit_cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::recommended())
        .with_restarts(restarts)
        .with_seed(17);
    let gpr = Gpr::fit(
        x.clone(),
        &y,
        Box::new(SquaredExponential::new(1.0, 1.0)),
        0.1,
        true,
    )
    .unwrap();
    let (ax, ay, acost, apart) = al_problem(n.max(60));

    let mut fit_ms = [0.0; 4];
    let mut predict_pool_ms = [0.0; 4];
    let mut campaign_ms = [0.0; 4];
    for (i, &t) in THREADS.iter().enumerate() {
        with_threads(t, || {
            fit_ms[i] = best_ms(reps, || {
                black_box(fit_gpr(&x, &y, &fit_cfg).unwrap());
            });
            predict_pool_ms[i] = best_ms(reps * 4, || {
                black_box(gpr.predict_batch(&pool).unwrap());
            });
            campaign_ms[i] = best_ms(reps.div_ceil(2), || {
                let cfg = campaign_config(7, al_iters, PipelineConfig::Off);
                black_box(
                    run_al_with_oracle(
                        &ax,
                        &ay,
                        &acost,
                        &apart,
                        &mut VarianceReduction,
                        &DatasetOracle,
                        &cfg,
                    )
                    .unwrap(),
                );
            });
        });
    }

    // Pipelined vs serial under measurement latency, 2 workers: one for
    // the in-flight measurement (asleep), one for the refit/select side.
    // The overlap win peaks when the measurement takes about as long as
    // one refit+select round (serial pays `s + l`, pipelined `max(s, l)`),
    // so derive the latency from the campaign just measured instead of
    // hard-coding a value that dwarfs — or is dwarfed by — the select
    // side on unknown hardware. The 2 ms floor keeps OS sleep granularity
    // out of the signal; the 40 ms ceiling bounds gate runtime.
    let per_iter_ms = campaign_ms[1] / al_iters as f64;
    let latency = Duration::from_secs_f64(per_iter_ms.clamp(2.0, 40.0) / 1e3);
    let oracle = LatencyOracle::new(DatasetOracle, latency);
    let (mut pipeline_serial_ms, mut pipeline_spec_ms) = (f64::INFINITY, f64::INFINITY);
    with_threads(2, || {
        for pipeline in [PipelineConfig::Off, PipelineConfig::Speculative] {
            let ms = best_ms(2, || {
                let cfg = campaign_config(7, al_iters, pipeline);
                black_box(
                    run_al_with_oracle(
                        &ax,
                        &ay,
                        &acost,
                        &apart,
                        &mut VarianceReduction,
                        &oracle,
                        &cfg,
                    )
                    .unwrap(),
                );
            });
            match pipeline {
                PipelineConfig::Off => pipeline_serial_ms = ms,
                PipelineConfig::Speculative => pipeline_spec_ms = ms,
            }
        }
    });

    ScaleResult {
        quick,
        n,
        m,
        restarts,
        fit_ms,
        predict_pool_ms,
        campaign_ms,
        pipeline_serial_ms,
        pipeline_spec_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_are_aligned_and_unique() {
        let r = ScaleResult {
            quick: true,
            n: 8,
            m: 8,
            restarts: 1,
            fit_ms: [1.0, 2.0, 3.0, 4.0],
            predict_pool_ms: [10.0, 6.0, 5.0, 5.0],
            campaign_ms: [20.0, 12.0, 9.0, 9.0],
            pipeline_serial_ms: 100.0,
            pipeline_spec_ms: 70.0,
        };
        let metrics = r.metrics();
        assert_eq!(metrics.len(), 14);
        let names: std::collections::BTreeSet<_> = metrics.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 14, "duplicate metric name");
        assert!((r.predict_pool_ratio_t4() - 0.5).abs() < 1e-12);
        assert!((r.pipeline_ratio_t2() - 0.7).abs() < 1e-12);
        for (i, name) in FIT_NAMES.iter().enumerate() {
            assert!(name.ends_with(&format!("_t{}", THREADS[i])));
        }
    }

    #[test]
    fn al_problem_is_a_valid_cover() {
        let (x, y, cost, part) = al_problem(60);
        assert_eq!(x.nrows(), 60);
        assert_eq!(y.len(), 60);
        assert_eq!(cost.len(), 60);
        assert!(part.is_valid_cover(60));
    }
}
