#![warn(missing_docs)]
//! Shared plumbing for the reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index). They print their series to stdout and
//! write CSV files under `target/repro/` so results can be plotted or
//! diffed. The full simulated measurement campaign is generated once and
//! cached on disk — all figures must come from the *same* dataset, exactly
//! as in the paper.

pub mod fitbench;
pub mod gate;
pub mod gridbench;
pub mod overhead;
pub mod plot;
pub mod scalebench;

use alperf_cluster::campaign::{Campaign, CampaignOutput};
use alperf_data::csvio;
use alperf_data::dataset::DataSet;
use std::path::PathBuf;

/// Directory for reproduction outputs (`target/repro`).
pub fn repro_dir() -> PathBuf {
    let dir = PathBuf::from("target/repro");
    std::fs::create_dir_all(&dir).expect("create target/repro");
    dir
}

/// The two campaign datasets, loaded from cache or generated.
pub struct Datasets {
    /// Performance dataset (~3.3k jobs; response Runtime).
    pub performance: DataSet,
    /// Power dataset (~0.4k jobs; responses Runtime, Energy).
    pub power: DataSet,
}

/// Load the campaign datasets, generating and caching them on first use.
pub fn load_datasets() -> Datasets {
    let dir = repro_dir().join("datasets");
    std::fs::create_dir_all(&dir).expect("create dataset cache dir");
    let perf_path = dir.join("performance.csv");
    let power_path = dir.join("power.csv");
    if perf_path.exists() && power_path.exists() {
        let performance = csvio::read_file(&perf_path, &["Runtime", "Memory"])
            .expect("read cached performance dataset");
        let power = csvio::read_file(&power_path, &["Runtime", "Energy"])
            .expect("read cached power dataset");
        return Datasets { performance, power };
    }
    eprintln!("(generating measurement campaign — cached for later binaries)");
    let CampaignOutput {
        performance, power, ..
    } = Campaign::default().run().expect("campaign");
    csvio::write_file(&performance, &perf_path).expect("cache performance dataset");
    csvio::write_file(&power, &power_path).expect("cache power dataset");
    Datasets { performance, power }
}

/// Write a simple CSV of named columns to `target/repro/<name>.csv`.
///
/// # Panics
/// Panics if columns have unequal lengths or the file cannot be written.
pub fn write_series(name: &str, columns: &[(&str, &[f64])]) {
    let n = columns.first().map(|(_, c)| c.len()).unwrap_or(0);
    assert!(
        columns.iter().all(|(_, c)| c.len() == n),
        "write_series: ragged columns"
    );
    let mut out = String::new();
    out.push_str(
        &columns
            .iter()
            .map(|(h, _)| h.to_string())
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for i in 0..n {
        out.push_str(
            &columns
                .iter()
                .map(|(_, c)| format!("{}", c[i]))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    let path = repro_dir().join(format!("{name}.csv"));
    std::fs::write(&path, out).expect("write series CSV");
    println!("[wrote {}]", path.display());
}

/// Pretty-print a header for a reproduction section.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Background telemetry services started by [`obs_from_env`], shut down
/// by [`obs_finish`]. Process-wide because the env-driven telemetry
/// switch is process-wide.
static OBS_SERVICES: std::sync::Mutex<(
    Option<alperf_obs::profiler::SamplerHandle>,
    Option<alperf_obs::HttpServer>,
    Option<alperf_obs::ScraperHandle>,
)> = std::sync::Mutex::new((None, None, None));

/// Enable telemetry from the environment, if requested.
///
/// * `ALPERF_OBS_TRACE=<path>` — install a JSONL trace sink at `<path>`
///   and switch instrumentation on.
/// * `ALPERF_OBS_SNAPSHOT=<path>` — write a Prometheus-style metrics
///   snapshot to `<path>` at [`obs_finish`]; also switches
///   instrumentation on.
/// * `ALPERF_OBS_SAMPLE_HZ=<hz>` — start the cooperative stack-sampling
///   profiler at `<hz>`; samples land in the trace sink when one is
///   installed. Also switches instrumentation on.
/// * `ALPERF_OBS_HTTP=<addr>|1` — serve `/metrics` and `/health` over
///   HTTP (`1` binds an ephemeral localhost port). Also switches
///   instrumentation on.
/// * `ALPERF_OBS_SCRAPE_MS=<ms>` — install the embedded time-series
///   store and scrape every registered metric into it at `<ms>`
///   intervals (serves `/query` when the HTTP endpoint is up). Also
///   switches instrumentation on.
/// * `ALPERF_OBS_ALERTS=1` — install the default alerting rules engine;
///   the scraper evaluates it after every scrape, so this implies a
///   scraper (default interval when `ALPERF_OBS_SCRAPE_MS` is unset).
/// * `ALPERF_OBS_BLACKBOX=<path>` — arm the black-box flight recorder
///   and dump its rings to `<path>` on panic, executor fault, or exit.
///   Also switches instrumentation on.
///
/// Returns `true` when telemetry was enabled. Call [`obs_finish`] before
/// exiting so the sampler and scraper stop, the trace is flushed, the
/// snapshot and black-box dump are written, and the HTTP server shuts
/// down.
pub fn obs_from_env() -> bool {
    let env_path = |key: &str| std::env::var(key).ok().filter(|p| !p.is_empty());
    let trace = env_path("ALPERF_OBS_TRACE");
    let snapshot = env_path("ALPERF_OBS_SNAPSHOT");
    let sample_hz = env_path("ALPERF_OBS_SAMPLE_HZ");
    let http = env_path(alperf_obs::http::ENV_HTTP).filter(|v| v != "0");
    let scrape_ms = env_path("ALPERF_OBS_SCRAPE_MS");
    let alerts = env_path("ALPERF_OBS_ALERTS").filter(|v| v != "0");
    let blackbox = env_path("ALPERF_OBS_BLACKBOX");
    if trace.is_none()
        && snapshot.is_none()
        && sample_hz.is_none()
        && http.is_none()
        && scrape_ms.is_none()
        && alerts.is_none()
        && blackbox.is_none()
    {
        return false;
    }
    if let Some(path) = trace {
        let p = std::path::Path::new(&path);
        if let Some(dir) = p.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create trace directory");
        }
        alperf_obs::sink::install_jsonl(p).expect("install JSONL trace sink");
        eprintln!("(telemetry: JSONL trace -> {path})");
    }
    alperf_obs::set_enabled(true);
    let mut services = OBS_SERVICES.lock().unwrap();
    if let Some(hz) = sample_hz {
        let hz: f64 = hz
            .parse()
            .unwrap_or_else(|_| panic!("ALPERF_OBS_SAMPLE_HZ={hz:?} is not a number"));
        services.0 = Some(alperf_obs::profiler::start(hz));
        eprintln!("(telemetry: stack sampler at {hz} Hz)");
    }
    if let Some(result) = alperf_obs::http::serve_from_env() {
        let server = result.expect("bind telemetry HTTP endpoint");
        eprintln!("(telemetry: /metrics at http://{})", server.local_addr());
        services.1 = Some(server);
    }
    if alerts.is_some() {
        alperf_obs::alerts::install(alperf_obs::alerts::default_rules());
        eprintln!("(telemetry: alerting rules engine armed)");
    }
    if scrape_ms.is_some() || alerts.is_some() {
        let ms: u64 = scrape_ms.map_or(alperf_obs::tsdb::DEFAULT_SCRAPE_INTERVAL_MS, |ms| {
            ms.parse()
                .unwrap_or_else(|_| panic!("ALPERF_OBS_SCRAPE_MS={ms:?} is not an integer"))
        });
        let tsdb = alperf_obs::tsdb::install(alperf_obs::TsdbConfig::default());
        services.2 = Some(alperf_obs::tsdb::start_scraper(
            tsdb,
            std::time::Duration::from_millis(ms.max(1)),
        ));
        eprintln!("(telemetry: tsdb scraper every {ms} ms)");
    }
    if let Some(path) = blackbox {
        alperf_obs::blackbox::arm(alperf_obs::blackbox::DEFAULT_CAPACITY);
        alperf_obs::blackbox::set_dump_path(Some(std::path::PathBuf::from(&path)));
        alperf_obs::blackbox::install_panic_hook();
        eprintln!("(telemetry: black-box recorder armed -> {path})");
    }
    true
}

/// Address of the `/metrics` HTTP server started by [`obs_from_env`], if
/// one is running (lets a binary self-probe its own endpoint).
pub fn obs_http_addr() -> Option<std::net::SocketAddr> {
    OBS_SERVICES
        .lock()
        .unwrap()
        .1
        .as_ref()
        .map(|s| s.local_addr())
}

/// Configure the global rayon pool from `ALPERF_NUM_THREADS`, once per
/// process (the thread-pool sibling of [`obs_from_env`] — call it at the
/// top of every binary's `main`). Returns the configured width (`0` =
/// all cores) and its source label (`"env"` / `"default"`) for banners
/// and bench-gate machine metadata.
pub fn threads_from_env() -> (usize, &'static str) {
    let (n, source) = alperf_linalg::threads::configure_from_env();
    (n, source.label())
}

/// Flush the telemetry trace and write the Prometheus snapshot, if
/// `ALPERF_OBS_SNAPSHOT` names a path. Stops the stack sampler, the
/// tsdb scraper, and the `/metrics` server when [`obs_from_env`]
/// started them, and writes the final black-box dump when the recorder
/// is armed with a dump path. No-op when telemetry is off.
pub fn obs_finish() {
    if !alperf_obs::enabled() {
        return;
    }
    {
        // Stop the scraper and sampler before flushing so their last
        // samples land in the trace; the HTTP server goes last so
        // /metrics stays live until the final snapshot is on disk.
        let mut services = OBS_SERVICES.lock().unwrap();
        if let Some(scraper) = services.2.take() {
            scraper.stop();
        }
        if let Some(sampler) = services.0.take() {
            sampler.stop();
        }
        services.1.take(); // drop shuts the server down
    }
    if let Some(path) = alperf_obs::blackbox::dump_on_fault("exit") {
        eprintln!("(telemetry: black-box dump -> {})", path.display());
    }
    alperf_obs::sink::flush();
    if let Ok(path) = std::env::var("ALPERF_OBS_SNAPSHOT") {
        if !path.is_empty() {
            std::fs::write(&path, alperf_obs::registry().prometheus_snapshot())
                .expect("write metrics snapshot");
            eprintln!("(telemetry: metrics snapshot -> {path})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_series_roundtrip() {
        write_series("_test_series", &[("a", &[1.0, 2.0]), ("b", &[3.0, 4.0])]);
        let text = std::fs::read_to_string(repro_dir().join("_test_series.csv")).unwrap();
        assert_eq!(text, "a,b\n1,3\n2,4\n");
        std::fs::remove_file(repro_dir().join("_test_series.csv")).ok();
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_series_rejected() {
        write_series("_bad", &[("a", &[1.0]), ("b", &[1.0, 2.0])]);
    }
}
