//! Minimal ASCII chart rendering for the reproduction binaries.
//!
//! The paper's figures are scatter/line plots; the repro binaries write the
//! exact series to CSV for real plotting, but an in-terminal sketch makes
//! `cargo run --bin repro_*` self-contained — the shape (collapsing AMSD,
//! crossing tradeoff curves, star patterns) is visible without leaving the
//! shell.

/// Render one or more `(label, xs, ys)` series as an ASCII line/scatter
/// chart of the given size. Series are drawn with distinct glyphs
/// (`*`, `o`, `+`, `x`, ...); later series overwrite earlier ones where
/// they collide. NaN/infinite points are skipped.
pub fn ascii_chart(series: &[(&str, &[f64], &[f64])], width: usize, height: usize) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let width = width.max(16);
    let height = height.max(6);
    // Data bounds over finite points.
    let mut x_lo = f64::INFINITY;
    let mut x_hi = f64::NEG_INFINITY;
    let mut y_lo = f64::INFINITY;
    let mut y_hi = f64::NEG_INFINITY;
    for (_, xs, ys) in series {
        for (x, y) in xs.iter().zip(*ys) {
            if x.is_finite() && y.is_finite() {
                x_lo = x_lo.min(*x);
                x_hi = x_hi.max(*x);
                y_lo = y_lo.min(*y);
                y_hi = y_hi.max(*y);
            }
        }
    }
    if !x_lo.is_finite() || !y_lo.is_finite() {
        return String::from("(no finite data)\n");
    }
    if x_hi == x_lo {
        x_hi = x_lo + 1.0;
    }
    if y_hi == y_lo {
        y_hi = y_lo + 1.0;
    }
    let mut canvas = vec![vec![' '; width]; height];
    for (si, (_, xs, ys)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (x, y) in xs.iter().zip(*ys) {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let cx = ((x - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
            canvas[height - 1 - cy][cx] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{y_hi:>11.3e} +{}\n", "-".repeat(width)));
    for row in &canvas {
        out.push_str("            |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{y_lo:>11.3e} +{}\n", "-".repeat(width)));
    out.push_str(&format!(
        "             {:<.3e}{:>pad$.3e}\n",
        x_lo,
        x_hi,
        pad = width.saturating_sub(9)
    ));
    for (si, (label, _, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} {label}\n", GLYPHS[si % GLYPHS.len()]));
    }
    out
}

/// Log10-transform a series for plotting (non-positive values become NaN
/// and are skipped by the renderer).
pub fn log10_series(v: &[f64]) -> Vec<f64> {
    v.iter()
        .map(|&x| if x > 0.0 { x.log10() } else { f64::NAN })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_simple_line() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let chart = ascii_chart(&[("quadratic", &xs, &ys)], 40, 10);
        assert!(chart.contains('*'));
        assert!(chart.contains("quadratic"));
        // Corners populated: the max should appear on the top row.
        let top_row = chart.lines().nth(1).expect("canvas row");
        assert!(top_row.contains('*'));
    }

    #[test]
    fn two_series_get_distinct_glyphs() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let up = xs.clone();
        let down: Vec<f64> = xs.iter().map(|x| 9.0 - x).collect();
        let chart = ascii_chart(&[("up", &xs, &up), ("down", &xs, &down)], 30, 8);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
    }

    #[test]
    fn nan_points_skipped() {
        let xs = vec![0.0, 1.0, 2.0];
        let ys = vec![1.0, f64::NAN, 3.0];
        let chart = ascii_chart(&[("s", &xs, &ys)], 20, 6);
        assert!(chart.matches('*').count() >= 2);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert!(ascii_chart(&[], 20, 6).contains("no finite data"));
        let xs = vec![5.0];
        let ys = vec![5.0];
        let chart = ascii_chart(&[("pt", &xs, &ys)], 20, 6);
        assert!(chart.contains('*'));
        let nan = vec![f64::NAN];
        assert!(ascii_chart(&[("n", &nan, &nan)], 20, 6).contains("no finite data"));
    }

    #[test]
    fn log10_series_handles_nonpositive() {
        let v = log10_series(&[100.0, 0.0, -5.0, 10.0]);
        assert_eq!(v[0], 2.0);
        assert!(v[1].is_nan());
        assert!(v[2].is_nan());
        assert_eq!(v[3], 1.0);
    }
}
