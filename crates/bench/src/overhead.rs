//! Shared telemetry-overhead measurement, used by both the
//! `obs_overhead` report binary and the `bench_gate` CI gate (which must
//! measure *exactly* the same thing the checked-in baseline recorded).
//!
//! Measures the instrumented fit and batched-predict paths with telemetry
//! disabled and enabled, plus the per-site disabled primitive cost.
//! Timings use `std::time::Instant` directly — the one place that cannot
//! route through the layer it is measuring. Absolute times are minima
//! over interleaved rounds; overhead percentages are medians of per-round
//! on/off ratios — the statistics that survive a noisy, time-shared VM.

use alperf_gp::kernel::SquaredExponential;
use alperf_gp::model::Gpr;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::{fit_gpr, GprConfig};
use alperf_linalg::matrix::Matrix;
use std::hint::black_box;
use std::time::Instant;

/// The telemetry overhead budget, percent of hot-path runtime.
pub const BUDGET_PCT: f64 = 2.0;

/// Minimum-over-repeats wall time of `f`, in milliseconds.
pub fn best_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Deterministic synthetic training set (2-D inputs, smooth response).
pub fn training_data(n: usize) -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(n, 2, |i, j| {
        if j == 0 {
            3.0 + 6.0 * (i as f64 / n as f64)
        } else {
            1.2 + 1.2 * ((i * 7 % n) as f64 / n as f64)
        }
    });
    let y: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.1).sin() + i as f64 * 0.01)
        .collect();
    (x, y)
}

/// Deterministic synthetic candidate pool.
pub fn pool_points(m: usize) -> Matrix {
    Matrix::from_fn(m, 2, |i, j| {
        if j == 0 {
            3.0 + 6.0 * ((i * 13 % m) as f64 / m as f64)
        } else {
            1.2 + 1.2 * ((i * 29 % m) as f64 / m as f64)
        }
    })
}

/// Cost of one disabled instrumentation site, in nanoseconds.
pub fn disabled_site_ns() -> f64 {
    alperf_obs::set_enabled(false);
    let iters = 20_000_000u64;
    let t = Instant::now();
    for _ in 0..iters {
        let _s = alperf_obs::span(black_box("overhead.noop"));
    }
    t.elapsed().as_secs_f64() * 1e9 / iters as f64
}

/// Cost of one labeled-counter increment through a *cached* child handle,
/// in nanoseconds — the per-event price of the `counter_vec(..).with(..)`
/// pattern the runner uses (resolve once per campaign, then one relaxed
/// atomic per event).
pub fn labeled_site_ns() -> f64 {
    let child = alperf_obs::counter_vec("overhead.labeled", &["campaign"]).with(&["bench"]);
    let iters = 20_000_000u64;
    let t = Instant::now();
    for _ in 0..iters {
        black_box(&child).inc();
    }
    t.elapsed().as_secs_f64() * 1e9 / iters as f64
}

/// Cost of one labeled-family child *lookup* (`with()` on an existing
/// series: read lock + map probe), in nanoseconds. This is the price paid
/// by rare-event sites (fault counters) that skip handle caching.
pub fn labeled_lookup_ns() -> f64 {
    let family = alperf_obs::counter_vec("overhead.labeled", &["campaign"]);
    family.with(&["bench"]); // pre-create so rounds measure the hit path
    let iters = 2_000_000u64;
    let t = Instant::now();
    for _ in 0..iters {
        black_box(family.with(black_box(&["bench"])));
    }
    t.elapsed().as_secs_f64() * 1e9 / iters as f64
}

/// Median of a sample (empty -> NaN).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = s.len() / 2;
    if s.len() % 2 == 1 {
        s[mid]
    } else {
        (s[mid - 1] + s[mid]) / 2.0
    }
}

/// One full overhead measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadResult {
    /// Quick (CI smoke) sizes were used.
    pub quick: bool,
    /// Training-set size.
    pub n: usize,
    /// Candidate-pool size.
    pub m: usize,
    /// Optimizer restarts.
    pub restarts: usize,
    /// Fit wall time, telemetry disabled (min over rounds), ms.
    pub fit_off_ms: f64,
    /// Fit wall time, telemetry enabled, ms.
    pub fit_on_ms: f64,
    /// Fit wall time, telemetry enabled *and* the stack sampler running
    /// at its default rate, ms.
    pub fit_sampler_ms: f64,
    /// Fit wall time, telemetry enabled *and* the tsdb scraper thread
    /// sampling every registered metric on a fast interval, ms.
    pub fit_scrape_ms: f64,
    /// Batched-predict wall time, telemetry disabled, ms.
    pub predict_off_ms: f64,
    /// Batched-predict wall time, telemetry enabled, ms.
    pub predict_on_ms: f64,
    /// Per-site disabled cost, ns.
    pub site_ns: f64,
    /// Per-event cost of a cached labeled-counter handle, ns.
    pub labeled_site_ns: f64,
    /// Per-call cost of a labeled-family child lookup, ns.
    pub labeled_lookup_ns: f64,
    /// Per-round enabled-vs-disabled fit ratios, percent.
    pub fit_pcts: Vec<f64>,
    /// Per-round enabled-vs-disabled predict ratios, percent.
    pub predict_pcts: Vec<f64>,
    /// Per-round sampler-vs-enabled fit ratios, percent.
    pub sampler_pcts: Vec<f64>,
    /// Per-round scraper-vs-enabled fit ratios, percent.
    pub scrape_pcts: Vec<f64>,
}

impl OverheadResult {
    /// Fit overhead, enabled vs disabled, percent — the *median* of the
    /// per-round ratios. Each round's on/off pair runs back to back in
    /// the same noise epoch, and the median discards rounds a CPU-steal
    /// spike landed in, so this is far more stable on a time-shared VM
    /// than a ratio of overall minima.
    pub fn fit_pct(&self) -> f64 {
        median(&self.fit_pcts)
    }

    /// Predict overhead, enabled vs disabled, percent (median of rounds).
    pub fn predict_pct(&self) -> f64 {
        median(&self.predict_pcts)
    }

    /// Sampler overhead on the fit path — running the stack sampler at
    /// its default rate vs telemetry merely enabled, percent (median of
    /// rounds).
    pub fn sampler_pct(&self) -> f64 {
        median(&self.sampler_pcts)
    }

    /// Scraper overhead on the fit path — running the tsdb scraper on a
    /// fast interval vs telemetry merely enabled, percent (median of
    /// rounds).
    pub fn scrape_pct(&self) -> f64 {
        median(&self.scrape_pcts)
    }

    /// All overheads inside [`BUDGET_PCT`]?
    pub fn within_budget(&self) -> bool {
        self.fit_pct() < BUDGET_PCT
            && self.predict_pct() < BUDGET_PCT
            && self.sampler_pct() < BUDGET_PCT
            && self.scrape_pct() < BUDGET_PCT
    }

    /// The metrics the `bench_gate` baseline gates on, by stable name.
    /// `*_ms`/`*_ns` are absolute hot-path times (relative gates);
    /// `*_overhead_pct` are budget gates.
    pub fn metrics(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("fit_ms", self.fit_off_ms),
            ("predict_ms", self.predict_off_ms),
            ("site_ns", self.site_ns),
            ("labeled_site_ns", self.labeled_site_ns),
            ("labeled_lookup_ns", self.labeled_lookup_ns),
            ("fit_overhead_pct", self.fit_pct()),
            ("predict_overhead_pct", self.predict_pct()),
            ("sampler_overhead_pct", self.sampler_pct()),
            ("scrape_overhead_pct", self.scrape_pct()),
        ]
    }
}

/// Benchmark sizes: `(n, m, restarts, reps)` for quick/full mode.
pub fn sizes(quick: bool) -> (usize, usize, usize, usize) {
    if quick {
        // Quick fits are ~30 ms, so extra rounds are cheap — and the
        // median overhead ratio needs them to stay stable in CI.
        (48, 128, 2, 7)
    } else {
        (200, 1024, 5, 5)
    }
}

/// Run the full measurement. Leaves telemetry disabled on return.
pub fn measure(quick: bool) -> OverheadResult {
    let (n, m, restarts, reps) = sizes(quick);
    let (x, y) = training_data(n);
    let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::recommended())
        .with_restarts(restarts)
        .with_seed(17);
    let gpr = Gpr::fit(
        x.clone(),
        &y,
        Box::new(SquaredExponential::new(1.0, 1.0)),
        0.1,
        true,
    )
    .unwrap();
    let pool = pool_points(m);

    // Interleave disabled/enabled rounds so both sides sample the same
    // machine epochs — a sequential off-block then on-block lets clock
    // drift or a background phase masquerade as telemetry overhead. Each
    // round also yields an on/off ratio; the overhead estimate is the
    // *median* ratio, so a round hit by a CPU-steal spike is discarded.
    let (mut fit_off_ms, mut fit_on_ms, mut fit_sampler_ms, mut fit_scrape_ms) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut fit_pcts = Vec::with_capacity(reps);
    let mut sampler_pcts = Vec::with_capacity(reps);
    let mut scrape_pcts = Vec::with_capacity(reps);
    // Quick fits are ~30 ms — short enough that a single scheduler blip
    // swings one arm by a few percent — so each arm takes the min of
    // several fits per round. Full-mode fits run seconds; one is enough.
    let arm_reps = if quick { 3 } else { 1 };
    for _ in 0..reps {
        alperf_obs::set_enabled(false);
        let off = best_ms(arm_reps, || {
            black_box(fit_gpr(&x, &y, &cfg).unwrap());
        });
        alperf_obs::set_enabled(true);
        let on = best_ms(arm_reps, || {
            black_box(fit_gpr(&x, &y, &cfg).unwrap());
        });
        // Third arm of the same round: telemetry on *plus* the stack
        // sampler, so the sampler ratio shares the round's noise epoch
        // with its enabled-only denominator.
        let sampler = alperf_obs::profiler::start(alperf_obs::profiler::DEFAULT_HZ);
        let on_sampled = best_ms(arm_reps, || {
            black_box(fit_gpr(&x, &y, &cfg).unwrap());
        });
        sampler.stop();
        // Fourth arm: telemetry on *plus* the tsdb scraper thread on a
        // fast interval, so the price of retaining every metric in the
        // embedded store is measured against the same enabled baseline.
        let tsdb = alperf_obs::tsdb::install(alperf_obs::TsdbConfig::default());
        let scraper = alperf_obs::tsdb::start_scraper(tsdb, std::time::Duration::from_millis(10));
        let on_scraped = best_ms(arm_reps, || {
            black_box(fit_gpr(&x, &y, &cfg).unwrap());
        });
        scraper.stop();
        alperf_obs::tsdb::uninstall();
        fit_off_ms = fit_off_ms.min(off);
        fit_on_ms = fit_on_ms.min(on);
        fit_sampler_ms = fit_sampler_ms.min(on_sampled);
        fit_scrape_ms = fit_scrape_ms.min(on_scraped);
        fit_pcts.push((on - off) / off * 100.0);
        sampler_pcts.push((on_sampled - on) / on * 100.0);
        scrape_pcts.push((on_scraped - on) / on * 100.0);
    }
    alperf_obs::profiler::reset_folded();
    // The predict path is short (single-digit ms): many more rounds are
    // affordable and needed to pin its minimum on a noisy VM.
    let (mut predict_off_ms, mut predict_on_ms) = (f64::INFINITY, f64::INFINITY);
    let mut predict_pcts = Vec::with_capacity(reps * 20);
    for _ in 0..reps * 20 {
        alperf_obs::set_enabled(false);
        let off = best_ms(1, || {
            black_box(gpr.predict_batch(&pool).unwrap());
        });
        alperf_obs::set_enabled(true);
        let on = best_ms(1, || {
            black_box(gpr.predict_batch(&pool).unwrap());
        });
        predict_off_ms = predict_off_ms.min(off);
        predict_on_ms = predict_on_ms.min(on);
        predict_pcts.push((on - off) / off * 100.0);
    }
    alperf_obs::set_enabled(false);
    let site_ns = disabled_site_ns();
    let labeled_site_ns = labeled_site_ns();
    let labeled_lookup_ns = labeled_lookup_ns();

    OverheadResult {
        quick,
        n,
        m,
        restarts,
        fit_off_ms,
        fit_on_ms,
        fit_sampler_ms,
        fit_scrape_ms,
        predict_off_ms,
        predict_on_ms,
        site_ns,
        labeled_site_ns,
        labeled_lookup_ns,
        fit_pcts,
        predict_pcts,
        sampler_pcts,
        scrape_pcts,
    }
}
