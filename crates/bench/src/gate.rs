//! Perf-regression gate: compare freshly measured hot-path numbers
//! against a checked-in `alperf-bench-gate-v1` baseline.
//!
//! Three gate kinds:
//!
//! * `"relative"` — an absolute time (ms/ns). Fails when the current
//!   value exceeds `baseline * (1 + tolerance)`. Absolute times are only
//!   comparable on the machine that recorded them, so these gates are
//!   *skipped* (never failed) when the CPU count or quick/full mode of
//!   the current run differs from the baseline's — that is what keeps
//!   the gate runnable on arbitrary CI hardware.
//! * `"floor"` — a throughput (bigger is better, e.g. configs/s). The
//!   mirror of `"relative"`: fails when the current value drops below
//!   `baseline * (1 - tolerance)`, and skips on incomparable hardware
//!   under the same rules.
//! * `"budget"` — a ratio with a hard ceiling (telemetry overhead
//!   percent). Fails when the current value reaches the recorded budget,
//!   on any machine; tolerance does not apply.
//!
//! A baseline whose relative values are *lower* than the code can
//! actually deliver (an inflated performance claim) therefore fails the
//! build on the recording machine — the acceptance property of the gate.

use alperf_obs::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier of gate baseline files.
pub const GATE_SCHEMA: &str = "alperf-bench-gate-v1";

/// Machine metadata recorded with a baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    /// Hardware thread count of the recording machine.
    pub cpus: u64,
    /// Short commit hash the baseline was recorded at ("unknown" when
    /// not in a git checkout).
    pub commit: String,
    /// Rayon worker-pool width the recording run used (`None` in
    /// baselines recorded before thread-scaling landed — treated as
    /// "unconstrained", i.e. always comparable).
    pub threads: Option<u64>,
    /// How the pool width was chosen: `"env"` (`ALPERF_NUM_THREADS`) or
    /// `"default"` (hardware parallelism). Informational only.
    pub pool: Option<String>,
}

/// Gate kind for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// Absolute time; tolerance applies; machine-mismatch skips.
    Relative,
    /// Throughput floor (bigger is better); tolerance applies downward;
    /// machine-mismatch skips.
    Floor,
    /// Hard ceiling; always enforced.
    Budget,
}

/// One gated metric in a baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metric {
    /// How the metric gates.
    pub kind: GateKind,
    /// Recorded baseline value (relative) or ceiling (budget).
    pub value: f64,
    /// Per-metric relative tolerance override, percent. Short
    /// measurements (single-digit ms, pure-CPU ns loops) swing far more
    /// than long ones under CPU steal, so the recorder can grant them a
    /// wider allowance than the CLI default without loosening the gate on
    /// the stable hot paths. `None` = use the `--tolerance` default.
    pub tol_pct: Option<f64>,
    /// Minimum hardware thread count the gate is meaningful on. A
    /// speedup-ratio gate (e.g. "4 threads must beat 1 thread by 1.5x")
    /// is vacuous on a single-core CI box, so it *skips* — never fails —
    /// when the current machine has fewer CPUs than this. `None` = gate
    /// on any machine.
    pub min_cpus: Option<u64>,
}

/// A parsed baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Which benchmark the baseline belongs to.
    pub bench: String,
    /// Recording machine metadata.
    pub machine: Machine,
    /// Recorded with `--quick` sizes?
    pub quick: bool,
    /// Gated metrics by stable name.
    pub metrics: BTreeMap<String, Metric>,
}

/// Parse an `alperf-bench-gate-v1` baseline document.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let doc = json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("baseline missing \"schema\"")?;
    if schema != GATE_SCHEMA {
        return Err(format!(
            "unknown baseline schema {schema:?} (expected {GATE_SCHEMA:?})"
        ));
    }
    let bench = doc
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("baseline missing \"bench\"")?
        .to_string();
    let machine = doc.get("machine").ok_or("baseline missing \"machine\"")?;
    let machine = Machine {
        cpus: machine
            .get("cpus")
            .and_then(Json::as_f64)
            .ok_or("baseline missing machine.cpus")? as u64,
        commit: machine
            .get("commit")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        threads: machine
            .get("threads")
            .and_then(Json::as_f64)
            .map(|t| t as u64),
        pool: machine
            .get("pool")
            .and_then(Json::as_str)
            .map(str::to_string),
    };
    let quick = matches!(doc.get("quick"), Some(Json::Bool(true)));
    let metrics_obj = doc
        .get("metrics")
        .and_then(Json::as_obj)
        .ok_or("baseline missing \"metrics\" object")?;
    let mut metrics = BTreeMap::new();
    for (name, m) in metrics_obj {
        let kind = match m.get("kind").and_then(Json::as_str) {
            Some("relative") => GateKind::Relative,
            Some("floor") => GateKind::Floor,
            Some("budget") => GateKind::Budget,
            other => return Err(format!("metric {name:?}: bad gate kind {other:?}")),
        };
        let value = m
            .get("value")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("metric {name:?}: missing numeric \"value\""))?;
        let tol_pct = m.get("tol_pct").and_then(Json::as_f64);
        let min_cpus = m.get("min_cpus").and_then(Json::as_f64).map(|c| c as u64);
        metrics.insert(
            name.clone(),
            Metric {
                kind,
                value,
                tol_pct,
                min_cpus,
            },
        );
    }
    if metrics.is_empty() {
        return Err("baseline gates no metrics".into());
    }
    Ok(Baseline {
        bench,
        machine,
        quick,
        metrics,
    })
}

/// Serialize a baseline document (the `--update-baseline` writer).
pub fn render_baseline(
    bench: &str,
    date: &str,
    machine: &Machine,
    quick: bool,
    metrics: &[(&str, Metric)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{GATE_SCHEMA}\",");
    let _ = writeln!(out, "  \"bench\": \"{bench}\",");
    let _ = writeln!(out, "  \"date\": \"{date}\",");
    let mut machine_extra = String::new();
    if let Some(t) = machine.threads {
        let _ = write!(machine_extra, ", \"threads\": {t}");
    }
    if let Some(pool) = &machine.pool {
        let _ = write!(machine_extra, ", \"pool\": \"{pool}\"");
    }
    let _ = writeln!(
        out,
        "  \"machine\": {{ \"cpus\": {}, \"commit\": \"{}\"{machine_extra} }},",
        machine.cpus, machine.commit
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"metrics\": {{");
    for (i, (name, m)) in metrics.iter().enumerate() {
        let kind = match m.kind {
            GateKind::Relative => "relative",
            GateKind::Floor => "floor",
            GateKind::Budget => "budget",
        };
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        let mut extra = m
            .tol_pct
            .map(|p| format!(", \"tol_pct\": {p:.1}"))
            .unwrap_or_default();
        if let Some(c) = m.min_cpus {
            let _ = write!(extra, ", \"min_cpus\": {c}");
        }
        let _ = writeln!(
            out,
            "    \"{name}\": {{ \"kind\": \"{kind}\", \"value\": {:.3}{extra} }}{comma}",
            m.value
        );
    }
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// Outcome of one gate check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    /// Within bounds.
    Pass,
    /// Regression (or missing current value).
    Fail,
    /// Relative gate on incomparable hardware/mode — not evaluated.
    Skipped,
}

/// One evaluated gate.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Metric name.
    pub name: String,
    /// Gate kind.
    pub kind: GateKind,
    /// Baseline value/ceiling.
    pub baseline: f64,
    /// Currently measured value (NaN when missing).
    pub current: f64,
    /// Verdict.
    pub status: GateStatus,
    /// Human-readable explanation.
    pub detail: String,
}

/// Evaluate every baseline metric against `current` measurements.
/// `tolerance` is the relative-gate headroom (0.15 = +15%); `cpus`,
/// `threads`, and `quick` describe the *current* run for the
/// comparability check. A baseline recorded with an explicit pool width
/// (`machine.threads`) is only time-comparable to a run at the same
/// width; pre-threading baselines (no `threads` field) compare as before.
pub fn evaluate(
    baseline: &Baseline,
    current: &BTreeMap<String, f64>,
    tolerance: f64,
    cpus: u64,
    threads: u64,
    quick: bool,
) -> Vec<GateOutcome> {
    let comparable = cpus == baseline.machine.cpus
        && quick == baseline.quick
        && baseline.machine.threads.is_none_or(|t| t == threads);
    let mut outcomes = Vec::with_capacity(baseline.metrics.len());
    for (name, metric) in &baseline.metrics {
        let Some(&cur) = current.get(name) else {
            outcomes.push(GateOutcome {
                name: name.clone(),
                kind: metric.kind,
                baseline: metric.value,
                current: f64::NAN,
                status: GateStatus::Fail,
                detail: "metric not measured by the current run".into(),
            });
            continue;
        };
        let under_min_cpus = metric.min_cpus.is_some_and(|mc| cpus < mc);
        let (status, detail) = match metric.kind {
            _ if under_min_cpus => (
                GateStatus::Skipped,
                format!(
                    "needs >= {} cpus (machine has {cpus}); speedup gate vacuous here",
                    metric.min_cpus.unwrap_or(0)
                ),
            ),
            GateKind::Relative | GateKind::Floor if !comparable => (
                GateStatus::Skipped,
                format!(
                    "machine-bound gate skipped: baseline from cpus={} quick={}, \
                     current cpus={cpus} quick={quick}",
                    baseline.machine.cpus, baseline.quick
                ),
            ),
            GateKind::Relative => {
                let tol = metric.tol_pct.map(|p| p / 100.0).unwrap_or(tolerance);
                let limit = metric.value * (1.0 + tol);
                if cur <= limit {
                    (
                        GateStatus::Pass,
                        format!(
                            "{cur:.3} <= {limit:.3} (baseline {:.3} +{:.0}%)",
                            metric.value,
                            tol * 100.0
                        ),
                    )
                } else {
                    (
                        GateStatus::Fail,
                        format!(
                            "{cur:.3} exceeds {limit:.3} (baseline {:.3} +{:.0}% tolerance)",
                            metric.value,
                            tol * 100.0
                        ),
                    )
                }
            }
            GateKind::Floor => {
                let tol = metric.tol_pct.map(|p| p / 100.0).unwrap_or(tolerance);
                let limit = metric.value * (1.0 - tol);
                if cur >= limit {
                    (
                        GateStatus::Pass,
                        format!(
                            "{cur:.3} >= {limit:.3} (baseline {:.3} -{:.0}%)",
                            metric.value,
                            tol * 100.0
                        ),
                    )
                } else {
                    (
                        GateStatus::Fail,
                        format!(
                            "{cur:.3} below floor {limit:.3} (baseline {:.3} -{:.0}% tolerance)",
                            metric.value,
                            tol * 100.0
                        ),
                    )
                }
            }
            GateKind::Budget => {
                if cur < metric.value {
                    (
                        GateStatus::Pass,
                        format!("{cur:.3} < budget {:.3}", metric.value),
                    )
                } else {
                    (
                        GateStatus::Fail,
                        format!("{cur:.3} reaches budget {:.3}", metric.value),
                    )
                }
            }
        };
        outcomes.push(GateOutcome {
            name: name.clone(),
            kind: metric.kind,
            baseline: metric.value,
            current: cur,
            status,
            detail,
        });
    }
    outcomes
}

/// Did any gate fail?
pub fn any_failed(outcomes: &[GateOutcome]) -> bool {
    outcomes.iter().any(|o| o.status == GateStatus::Fail)
}

/// Human-readable gate report.
pub fn render_table(outcomes: &[GateOutcome]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>12} {:>12}  verdict",
        "metric", "kind", "baseline", "current"
    );
    for o in outcomes {
        let kind = match o.kind {
            GateKind::Relative => "relative",
            GateKind::Floor => "floor",
            GateKind::Budget => "budget",
        };
        let status = match o.status {
            GateStatus::Pass => "PASS",
            GateStatus::Fail => "FAIL",
            GateStatus::Skipped => "skip",
        };
        let cur = if o.current.is_nan() {
            "-".to_string()
        } else {
            format!("{:.3}", o.current)
        };
        let _ = writeln!(
            out,
            "{:<22} {:>10} {:>12.3} {:>12}  {status}: {}",
            o.name, kind, o.baseline, cur, o.detail
        );
    }
    out
}

/// Machine-readable gate report.
pub fn render_json(outcomes: &[GateOutcome], tolerance: f64) -> String {
    let mut out = format!(
        "{{\"schema\":\"alperf-bench-gate-report-v1\",\"tolerance\":{},\"failed\":{},\"gates\":[",
        json::number(tolerance),
        any_failed(outcomes)
    );
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut name = String::new();
        json::escape_into(&mut name, &o.name);
        let status = match o.status {
            GateStatus::Pass => "pass",
            GateStatus::Fail => "fail",
            GateStatus::Skipped => "skipped",
        };
        let cur = if o.current.is_finite() {
            json::number(o.current)
        } else {
            "null".into()
        };
        let _ = write!(
            out,
            "{{\"name\":{name},\"baseline\":{},\"current\":{cur},\"status\":\"{status}\"}}",
            json::number(o.baseline)
        );
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_text(fit_ms: f64) -> String {
        format!(
            r#"{{
  "schema": "alperf-bench-gate-v1",
  "bench": "obs_overhead",
  "date": "2026-08-05",
  "machine": {{ "cpus": 1, "commit": "abc1234" }},
  "quick": false,
  "metrics": {{
    "fit_ms": {{ "kind": "relative", "value": {fit_ms} }},
    "fit_overhead_pct": {{ "kind": "budget", "value": 2.0 }}
  }}
}}"#
        )
    }

    fn current(fit_ms: f64, pct: f64) -> BTreeMap<String, f64> {
        BTreeMap::from([
            ("fit_ms".to_string(), fit_ms),
            ("fit_overhead_pct".to_string(), pct),
        ])
    }

    #[test]
    fn honest_baseline_passes() {
        let b = parse_baseline(&baseline_text(3500.0)).unwrap();
        assert_eq!(b.machine.cpus, 1);
        assert_eq!(b.machine.commit, "abc1234");
        let out = evaluate(&b, &current(3600.0, 0.5), 0.15, 1, 1, false);
        assert!(!any_failed(&out), "{}", render_table(&out));
    }

    #[test]
    fn deflated_baseline_fails_relative_gate() {
        // A baseline claiming the fit runs in 1000 ms when it actually
        // takes 3600 ms — the inflated performance claim the gate exists
        // to catch.
        let b = parse_baseline(&baseline_text(1000.0)).unwrap();
        let out = evaluate(&b, &current(3600.0, 0.5), 0.15, 1, 1, false);
        assert!(any_failed(&out));
        let fit = out.iter().find(|o| o.name == "fit_ms").unwrap();
        assert_eq!(fit.status, GateStatus::Fail);
    }

    #[test]
    fn budget_gate_enforced_on_any_machine() {
        let b = parse_baseline(&baseline_text(1000.0)).unwrap();
        // Different cpu count: relative gate skipped, budget still fails.
        let out = evaluate(&b, &current(3600.0, 5.0), 0.15, 8, 8, false);
        let fit = out.iter().find(|o| o.name == "fit_ms").unwrap();
        assert_eq!(fit.status, GateStatus::Skipped);
        let pct = out.iter().find(|o| o.name == "fit_overhead_pct").unwrap();
        assert_eq!(pct.status, GateStatus::Fail);
        assert!(any_failed(&out));
    }

    #[test]
    fn quick_mode_mismatch_skips_relative_gates() {
        let b = parse_baseline(&baseline_text(3500.0)).unwrap();
        let out = evaluate(&b, &current(50.0, 0.5), 0.15, 1, 1, true);
        let fit = out.iter().find(|o| o.name == "fit_ms").unwrap();
        assert_eq!(fit.status, GateStatus::Skipped);
        assert!(!any_failed(&out));
    }

    #[test]
    fn missing_metric_fails() {
        let b = parse_baseline(&baseline_text(3500.0)).unwrap();
        let out = evaluate(&b, &BTreeMap::new(), 0.15, 1, 1, false);
        assert!(any_failed(&out));
        assert!(out.iter().all(|o| o.status == GateStatus::Fail));
    }

    #[test]
    fn baseline_round_trips_through_renderer() {
        let machine = Machine {
            cpus: 4,
            commit: "deadbee".into(),
            threads: Some(4),
            pool: Some("env".into()),
        };
        let metrics = [
            (
                "fit_ms",
                Metric {
                    kind: GateKind::Relative,
                    value: 123.456,
                    tol_pct: None,
                    min_cpus: None,
                },
            ),
            (
                "predict_ms",
                Metric {
                    kind: GateKind::Relative,
                    value: 3.25,
                    tol_pct: Some(50.0),
                    min_cpus: None,
                },
            ),
            (
                "fit_overhead_pct",
                Metric {
                    kind: GateKind::Budget,
                    value: 2.0,
                    tol_pct: None,
                    min_cpus: None,
                },
            ),
            (
                "predict_pool_ratio_t4",
                Metric {
                    kind: GateKind::Budget,
                    value: 0.667,
                    tol_pct: None,
                    min_cpus: Some(4),
                },
            ),
        ];
        let text = render_baseline("obs_overhead", "2026-08-05", &machine, true, &metrics);
        let back = parse_baseline(&text).unwrap();
        assert_eq!(back.bench, "obs_overhead");
        assert_eq!(back.machine, machine);
        assert!(back.quick);
        assert_eq!(back.metrics.len(), 4);
        assert!((back.metrics["fit_ms"].value - 123.456).abs() < 1e-9);
        assert_eq!(back.metrics["fit_ms"].tol_pct, None);
        assert_eq!(back.metrics["fit_ms"].min_cpus, None);
        assert_eq!(back.metrics["predict_ms"].tol_pct, Some(50.0));
        assert_eq!(back.metrics["fit_overhead_pct"].kind, GateKind::Budget);
        assert_eq!(back.metrics["predict_pool_ratio_t4"].min_cpus, Some(4));
    }

    #[test]
    fn pre_threading_baseline_still_parses_and_compares() {
        // A baseline recorded before the threads/pool/min_cpus fields
        // existed must parse (fields default to None) and stay
        // comparable at any current pool width.
        let b = parse_baseline(&baseline_text(3500.0)).unwrap();
        assert_eq!(b.machine.threads, None);
        assert_eq!(b.machine.pool, None);
        let out = evaluate(&b, &current(3600.0, 0.5), 0.15, 1, 7, false);
        let fit = out.iter().find(|o| o.name == "fit_ms").unwrap();
        assert_eq!(fit.status, GateStatus::Pass, "{}", fit.detail);
    }

    #[test]
    fn thread_width_mismatch_skips_relative_gates() {
        let text = r#"{
  "schema": "alperf-bench-gate-v1",
  "bench": "thread_scaling",
  "machine": { "cpus": 1, "commit": "abc1234", "threads": 4, "pool": "env" },
  "quick": false,
  "metrics": {
    "fit_ms_t4": { "kind": "relative", "value": 100.0 }
  }
}"#;
        let b = parse_baseline(text).unwrap();
        assert_eq!(b.machine.threads, Some(4));
        assert_eq!(b.machine.pool.as_deref(), Some("env"));
        let cur = BTreeMap::from([("fit_ms_t4".to_string(), 500.0)]);
        // Same cpus/quick but a different pool width: skipped, not failed.
        let out = evaluate(&b, &cur, 0.15, 1, 2, false);
        assert_eq!(out[0].status, GateStatus::Skipped);
        // Matching width: the regression fails.
        let out = evaluate(&b, &cur, 0.15, 1, 4, false);
        assert_eq!(out[0].status, GateStatus::Fail);
    }

    #[test]
    fn min_cpus_skips_speedup_gates_on_small_machines() {
        let text = r#"{
  "schema": "alperf-bench-gate-v1",
  "bench": "thread_scaling",
  "machine": { "cpus": 8, "commit": "abc1234", "threads": 8 },
  "quick": false,
  "metrics": {
    "predict_pool_ratio_t4": { "kind": "budget", "value": 0.667, "min_cpus": 4 }
  }
}"#;
        let b = parse_baseline(text).unwrap();
        // Ratio ~1.0 (no speedup) on a 1-cpu box: skipped, not failed.
        let cur = BTreeMap::from([("predict_pool_ratio_t4".to_string(), 1.02)]);
        let out = evaluate(&b, &cur, 0.15, 1, 1, false);
        assert_eq!(out[0].status, GateStatus::Skipped, "{}", out[0].detail);
        assert!(!any_failed(&out));
        // On >= 4 cpus the budget is enforced: 1.02 >= 0.667 fails...
        let out = evaluate(&b, &cur, 0.15, 4, 4, false);
        assert_eq!(out[0].status, GateStatus::Fail);
        // ...and a real 1.5x speedup passes.
        let good = BTreeMap::from([("predict_pool_ratio_t4".to_string(), 0.55)]);
        let out = evaluate(&b, &good, 0.15, 4, 4, false);
        assert_eq!(out[0].status, GateStatus::Pass, "{}", out[0].detail);
    }

    #[test]
    fn per_metric_tolerance_overrides_default() {
        let text = r#"{
  "schema": "alperf-bench-gate-v1",
  "bench": "obs_overhead",
  "machine": { "cpus": 1, "commit": "abc1234" },
  "quick": false,
  "metrics": {
    "predict_ms": { "kind": "relative", "value": 3.0, "tol_pct": 50.0 }
  }
}"#;
        let b = parse_baseline(text).unwrap();
        let cur = BTreeMap::from([("predict_ms".to_string(), 4.2)]);
        // 4.2 is 40% over 3.0: fails the 15% CLI default, passes the
        // metric's own 50% allowance.
        let out = evaluate(&b, &cur, 0.15, 1, 1, false);
        assert_eq!(out[0].status, GateStatus::Pass, "{}", out[0].detail);
        let cur_bad = BTreeMap::from([("predict_ms".to_string(), 4.6)]);
        let out = evaluate(&b, &cur_bad, 0.15, 1, 1, false);
        assert_eq!(out[0].status, GateStatus::Fail);
    }

    #[test]
    fn floor_gate_fails_on_throughput_loss_and_skips_cross_machine() {
        let text = r#"{
  "schema": "alperf-bench-gate-v1",
  "bench": "campaign_grid",
  "machine": { "cpus": 1, "commit": "abc1234", "threads": 1 },
  "quick": false,
  "metrics": {
    "configs_per_s_t1": { "kind": "floor", "value": 100.0, "tol_pct": 50.0 }
  }
}"#;
        let b = parse_baseline(text).unwrap();
        assert_eq!(b.metrics["configs_per_s_t1"].kind, GateKind::Floor);
        // Healthy throughput (or better) passes.
        let cur = BTreeMap::from([("configs_per_s_t1".to_string(), 90.0)]);
        let out = evaluate(&b, &cur, 0.15, 1, 1, false);
        assert_eq!(out[0].status, GateStatus::Pass, "{}", out[0].detail);
        // A collapse below baseline*(1-tol) fails.
        let cur = BTreeMap::from([("configs_per_s_t1".to_string(), 40.0)]);
        let out = evaluate(&b, &cur, 0.15, 1, 1, false);
        assert_eq!(out[0].status, GateStatus::Fail, "{}", out[0].detail);
        // Different machine: throughput is not comparable — skipped.
        let out = evaluate(&b, &cur, 0.15, 8, 8, false);
        assert_eq!(out[0].status, GateStatus::Skipped, "{}", out[0].detail);
        // Round-trips through the renderer.
        let machine = b.machine.clone();
        let rendered = render_baseline(
            "campaign_grid",
            "2026-08-08",
            &machine,
            false,
            &[("configs_per_s_t1", b.metrics["configs_per_s_t1"])],
        );
        assert_eq!(parse_baseline(&rendered).unwrap().metrics, b.metrics);
    }

    #[test]
    fn bad_schema_and_kinds_rejected() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"schema\":\"v0\"}").is_err());
        let bad_kind = baseline_text(1.0).replace("relative", "sideways");
        assert!(parse_baseline(&bad_kind).is_err());
    }
}
