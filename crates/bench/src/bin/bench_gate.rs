//! CI perf-regression gate over the benchmarked hot paths.
//!
//! Usage:
//!   bench_gate [--suite obs|fit|scale|grid] [--baseline <path>] [--tolerance <pct>] [--quick] [--json]
//!   bench_gate --update-baseline [--suite obs|fit|scale|grid] [--baseline <path>] [--quick]
//!
//! Four suites share the `alperf-bench-gate-v1` baseline format:
//!
//! * `obs` (default) re-measures the instrumented GPR fit and
//!   batched-predict paths (the same measurement `obs_overhead` reports,
//!   via `alperf_bench::overhead`) against `BENCH_obs_overhead.json`;
//! * `fit` re-measures the approximate-GPR tier (end-to-end low-rank fits
//!   at n=2000/5000 plus the exact-vs-sparse agreement RMSEs, via
//!   `alperf_bench::fitbench`) against `BENCH_gpr_fit_gate.json`;
//! * `scale` re-measures fit / pool-prediction / end-to-end campaign
//!   times at 1/2/4/8 rayon workers plus the pipelined-vs-serial
//!   campaign ratio (via `alperf_bench::scalebench`) against
//!   `BENCH_scaling.json`. Speedup-ratio gates carry a `min_cpus` and
//!   self-skip on machines too small to demonstrate the speedup;
//! * `grid` re-measures campaign-grid throughput at 1/2/8 workers plus
//!   the summary-stream overhead (via `alperf_bench::gridbench`) against
//!   `BENCH_grid.json`. Throughput gates are `floor` kind (a collapse
//!   below the recorded configs/s fails on the recording machine);
//!   width-speedup ratios carry `min_cpus` like the scale suite.
//!
//! Gate semantics:
//!
//! * absolute hot-path times gate *relatively* — more than `--tolerance`
//!   (default 15%) over the baseline fails the build, but only on
//!   comparable hardware (same CPU count) and mode (quick/full), so the
//!   gate stays portable to arbitrary CI machines;
//! * hard-budget metrics gate on any machine: telemetry overhead
//!   percentages against their recorded budget, the approximate n=5000
//!   fit time against the checked-in exact n=400/5-restart time (the
//!   O(n³) ceiling it must beat), and the agreement RMSEs against the
//!   tier-selection gate tolerance.
//!
//! `--update-baseline` rewrites the baseline from a fresh measurement,
//! recording machine metadata (CPU count, short git commit) and the
//! current date so future runs know what they are comparing against.
//!
//! Exit codes: 0 all gates pass; 1 any gate fails; 2 usage/baseline error.

use alperf_bench::fitbench::{self, EXACT_N400_R5_MS, GATE_RMSE_BUDGET};
use alperf_bench::gate::{
    any_failed, evaluate, parse_baseline, render_baseline, render_json, render_table, GateKind,
    GateStatus, Machine, Metric,
};
use alperf_bench::gridbench::{
    self, GRID_RATIO_T2_BUDGET, GRID_RATIO_T2_MIN_CPUS, GRID_RATIO_T8_BUDGET,
    GRID_RATIO_T8_MIN_CPUS, STREAM_OVERHEAD_BUDGET_PCT,
};
use alperf_bench::overhead::{self, BUDGET_PCT};
use alperf_bench::scalebench::{
    self, PIPELINE_RATIO_T2_BUDGET, PREDICT_POOL_RATIO_T4_BUDGET, PREDICT_POOL_RATIO_T4_MIN_CPUS,
};
use std::collections::BTreeMap;
use std::process::ExitCode;

const DEFAULT_OBS_BASELINE: &str = "BENCH_obs_overhead.json";
const DEFAULT_FIT_BASELINE: &str = "BENCH_gpr_fit_gate.json";
const DEFAULT_SCALE_BASELINE: &str = "BENCH_scaling.json";
const DEFAULT_GRID_BASELINE: &str = "BENCH_grid.json";
const DEFAULT_TOLERANCE: f64 = 0.15;

#[derive(Clone, Copy, PartialEq)]
enum Suite {
    Obs,
    Fit,
    Scale,
    Grid,
}

impl Suite {
    fn bench_name(self) -> &'static str {
        match self {
            Suite::Obs => "obs_overhead",
            Suite::Fit => "gpr_fit_approx",
            Suite::Scale => "thread_scaling",
            Suite::Grid => "campaign_grid",
        }
    }

    fn default_baseline(self) -> &'static str {
        match self {
            Suite::Obs => DEFAULT_OBS_BASELINE,
            Suite::Fit => DEFAULT_FIT_BASELINE,
            Suite::Scale => DEFAULT_SCALE_BASELINE,
            Suite::Grid => DEFAULT_GRID_BASELINE,
        }
    }

    fn measure(self, quick: bool) -> Vec<(&'static str, f64)> {
        match self {
            Suite::Obs => overhead::measure(quick).metrics(),
            Suite::Fit => fitbench::measure(quick).metrics(),
            Suite::Scale => scalebench::measure(quick).metrics(),
            Suite::Grid => gridbench::measure(quick).metrics(),
        }
    }

    /// Map a fresh measurement to baseline gate entries.
    fn baseline_metric(self, name: &'static str, value: f64) -> Metric {
        match self {
            Suite::Obs if name.ends_with("_overhead_pct") => Metric {
                // Overhead percentages gate against the hard budget, not
                // against whatever (possibly negative) value was measured.
                kind: GateKind::Budget,
                value: BUDGET_PCT,
                tol_pct: None,
                min_cpus: None,
            },
            Suite::Obs => {
                // Short measurements (batched predict, the per-site ns
                // loops) swing 30-40% run to run under CPU steal on shared
                // VMs; grant them a recorded 50% allowance so only the
                // long, stable fit path gates at the strict CLI tolerance.
                let tol_pct = matches!(
                    name,
                    "predict_ms" | "site_ns" | "labeled_site_ns" | "labeled_lookup_ns"
                )
                .then_some(50.0);
                Metric {
                    kind: GateKind::Relative,
                    value,
                    tol_pct,
                    min_cpus: None,
                }
            }
            Suite::Fit if name.starts_with("gate_rmse_") => Metric {
                // Agreement with the exact posterior is hardware-free:
                // enforce the tier-selection gate tolerance everywhere.
                kind: GateKind::Budget,
                value: GATE_RMSE_BUDGET,
                tol_pct: None,
                min_cpus: None,
            },
            Suite::Fit if name == "approx_fit_n5000_ms" => Metric {
                // The point of the approximate tier: an n=5000 low-rank
                // fit must beat the checked-in exact n=400/5-restart time
                // on any machine.
                kind: GateKind::Budget,
                value: EXACT_N400_R5_MS,
                tol_pct: None,
                min_cpus: None,
            },
            Suite::Fit => Metric {
                // Sub-second fit timings swing heavily under CPU steal on
                // shared CI VMs; a recorded 50% allowance keeps the
                // relative gate meaningful without being flaky.
                kind: GateKind::Relative,
                value,
                tol_pct: Some(50.0),
                min_cpus: None,
            },
            Suite::Scale if name == "predict_pool_ratio_t4" => Metric {
                // The acceptance speedup: 4 workers must predict the pool
                // >= 1.5x faster than 1 — but only on hardware that can
                // actually run 4 workers at once.
                kind: GateKind::Budget,
                value: PREDICT_POOL_RATIO_T4_BUDGET,
                tol_pct: None,
                min_cpus: Some(PREDICT_POOL_RATIO_T4_MIN_CPUS),
            },
            Suite::Scale if name == "pipeline_ratio_t2" => Metric {
                // Speculative pipelining must beat the serial loop under
                // measurement latency on any machine — the overlapped
                // "measurement" sleeps, so even one core wins.
                kind: GateKind::Budget,
                value: PIPELINE_RATIO_T2_BUDGET,
                tol_pct: None,
                min_cpus: None,
            },
            Suite::Scale => Metric {
                // Per-width absolute times are cross-checked only on the
                // recording machine at the same pool width; they swing
                // under CPU steal like every sub-second timing here.
                kind: GateKind::Relative,
                value,
                tol_pct: Some(50.0),
                min_cpus: None,
            },
            Suite::Grid if name == "grid_ratio_t2" => Metric {
                // Campaigns are embarrassingly parallel: 2 workers on 2
                // real cores must cut grid wall time by >= 1.25x.
                kind: GateKind::Budget,
                value: GRID_RATIO_T2_BUDGET,
                tol_pct: None,
                min_cpus: Some(GRID_RATIO_T2_MIN_CPUS),
            },
            Suite::Grid if name == "grid_ratio_t8" => Metric {
                kind: GateKind::Budget,
                value: GRID_RATIO_T8_BUDGET,
                tol_pct: None,
                min_cpus: Some(GRID_RATIO_T8_MIN_CPUS),
            },
            Suite::Grid if name == "stream_overhead_pct" => Metric {
                // Per-record flushes vs one buffered write: the summary
                // stream must stay nearly free, on any machine.
                kind: GateKind::Budget,
                value: STREAM_OVERHEAD_BUDGET_PCT,
                tol_pct: None,
                min_cpus: None,
            },
            Suite::Grid => Metric {
                // Whole-grid throughput floors: multi-second aggregates
                // over dozens of campaigns, but still CPU-steal exposed —
                // gate a collapse, not a wobble.
                kind: GateKind::Floor,
                value,
                tol_pct: Some(50.0),
                min_cpus: None,
            },
        }
    }
}

fn cpu_count() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

fn short_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn today() -> String {
    // Days since the Unix epoch -> civil date (Howard Hinnant's algorithm);
    // enough calendar for a baseline stamp without a date dependency.
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = secs as i64 / 86_400 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_gate [--suite obs|fit|scale|grid] [--baseline <path>] [--tolerance <pct>] [--quick] [--json]\n\
         \x20      bench_gate --update-baseline [--suite obs|fit|scale|grid] [--baseline <path>] [--quick]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let (_, pool_source) = alperf_bench::threads_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut suite = Suite::Obs;
    let mut baseline_path: Option<String> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut quick = false;
    let mut as_json = false;
    let mut update = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--suite" => match it.next().map(String::as_str) {
                Some("obs") => suite = Suite::Obs,
                Some("fit") => suite = Suite::Fit,
                Some("scale") => suite = Suite::Scale,
                Some("grid") => suite = Suite::Grid,
                _ => return usage(),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(p.clone()),
                None => return usage(),
            },
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => tolerance = pct / 100.0,
                _ => return usage(),
            },
            "--quick" => quick = true,
            "--json" => as_json = true,
            "--update-baseline" => update = true,
            _ => return usage(),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| suite.default_baseline().to_string());

    if update {
        let machine = Machine {
            cpus: cpu_count(),
            commit: short_commit(),
            threads: Some(alperf_linalg::threads::current() as u64),
            pool: Some(pool_source.to_string()),
        };
        let metrics: Vec<(&str, Metric)> = suite
            .measure(quick)
            .into_iter()
            .map(|(name, value)| (name, suite.baseline_metric(name, value)))
            .collect();
        let text = render_baseline(suite.bench_name(), &today(), &machine, quick, &metrics);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("bench_gate: cannot write {baseline_path}: {e}");
            return ExitCode::from(2);
        }
        print!("{text}");
        eprintln!("[wrote {baseline_path}]");
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_gate: {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!("bench_gate: cannot read {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let current: BTreeMap<String, f64> = suite
        .measure(quick)
        .into_iter()
        .map(|(name, value)| (name.to_string(), value))
        .collect();
    let threads = alperf_linalg::threads::current() as u64;
    let outcomes = evaluate(&baseline, &current, tolerance, cpu_count(), threads, quick);

    if as_json {
        print!("{}", render_json(&outcomes, tolerance));
    } else {
        let recorded_pool = match (baseline.machine.threads, &baseline.machine.pool) {
            (Some(t), Some(p)) => format!(", threads={t} ({p})"),
            (Some(t), None) => format!(", threads={t}"),
            _ => String::new(),
        };
        println!(
            "gate: {} vs {baseline_path} (recorded at {} on {} cpus{recorded_pool}, quick={})",
            baseline.bench, baseline.machine.commit, baseline.machine.cpus, baseline.quick
        );
        print!("{}", render_table(&outcomes));
        let skipped = outcomes
            .iter()
            .filter(|o| o.status == GateStatus::Skipped)
            .count();
        if skipped > 0 {
            println!(
                "({skipped} absolute-time gate(s) skipped on incomparable hardware/mode; \
                 refresh with: bench_gate --update-baseline)"
            );
        }
    }
    if any_failed(&outcomes) {
        eprintln!("bench_gate: FAIL — hot-path regression against {baseline_path}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
