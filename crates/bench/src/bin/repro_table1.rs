//! Reproduction of **Table I** — "The Parameters of the Analyzed Datasets".
//!
//! Generates (or loads) the simulated campaign and prints the same rows the
//! paper reports: job counts, responses with their observed ranges, and the
//! controlled variables with their levels.

use alperf_bench::{banner, load_datasets};
use alperf_data::summary::summarize;

fn main() {
    let data = load_datasets();
    banner("Table I: The Parameters of the Analyzed Datasets");

    let perf = summarize(&data.performance);
    let power = summarize(&data.power);

    println!(
        "{:<28} {:<28} {:<28}",
        "", "Dataset: Performance", "Dataset: Power"
    );
    println!("{:<28} {:<28} {:<28}", "# Jobs", perf.n_jobs, power.n_jobs);
    let range = |s: &alperf_data::summary::DataSetSummary, name: &str| -> String {
        s.responses
            .iter()
            .find(|r| r.name == name)
            .map(|r| format!("{:.3} - {:.3}", r.min, r.max))
            .unwrap_or_else(|| "-".into())
    };
    println!(
        "{:<28} {:<28} {:<28}",
        "Responses", "Runtime (S)", "Runtime (S), Energy (J)"
    );
    println!(
        "{:<28} {:<28} {:<28}",
        "Runtime, S",
        range(&perf, "Runtime"),
        range(&power, "Runtime")
    );
    let energy = power
        .responses
        .iter()
        .find(|r| r.name == "Energy")
        .map(|r| format!("{:.3e} - {:.3e}", r.min, r.max))
        .unwrap_or_else(|| "-".into());
    println!("{:<28} {:<28} {:<28}", "Energy, J", "-", energy);
    let memory = perf
        .responses
        .iter()
        .find(|r| r.name == "Memory")
        .map(|r| format!("{:.3e} - {:.3e}", r.min, r.max))
        .unwrap_or_else(|| "-".into());
    println!(
        "{:<28} {:<28} {:<28}",
        "Memory/node, B (extension)", memory, "-"
    );
    println!();
    for v in &perf.variables {
        match &v.levels {
            Some(levels) => println!("Variable {}: {}", v.name, levels.join(",")),
            None => println!(
                "Variable {}: {:.3e} - {:.3e} ({} levels)",
                v.name, v.min, v.max, v.n_distinct
            ),
        }
    }
    println!(
        "Max repeats per setting: {} (paper: up to 3)",
        perf.max_repeats
    );

    banner("paper reference values");
    println!("# Jobs:            3246 (Performance), 640 (Power)");
    println!("Runtime, S:        0.005 - 458.436");
    println!("Energy, J:         6.4e3 - 1.1e5");
    println!("Operator:          poisson1,poisson2,poisson2affine");
    println!("Global Prob. Size: 1.7e3 - 1.1e9");
    println!("NP:                1,2,4,8,16,24,32,48,64,96,128");
    println!("CPU Freq (GHz):    1.2,1.5,1.8,2.1,2.4");
}
