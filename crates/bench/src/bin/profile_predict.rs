//! Stage-by-stage profiler for the batched prediction path — a thin
//! consumer of `alperf-obs` span aggregates: every stage runs under a span
//! and the report is read back from the global registry (exact minima, plus
//! bucketized p50/p99), alongside the library's own `gp.predict_batch`
//! span.

use alperf_gp::kernel::Kernel;
use alperf_gp::kernel::SquaredExponential;
use alperf_gp::model::Gpr;
use alperf_linalg::matrix::Matrix;
use alperf_linalg::triangular::{solve_lower_matrix, solve_lower_rhs_rows};
use std::hint::black_box;

/// Run `f` `reps` times, each under a fresh `name` span.
fn timed<F: FnMut()>(name: &'static str, reps: usize, mut f: F) {
    for _ in 0..reps {
        let _s = alperf_obs::span(name);
        f();
    }
}

fn main() {
    alperf_bench::threads_from_env();
    alperf_obs::set_enabled(true);
    let n = 200usize;
    let m = 1024usize;
    let x = Matrix::from_fn(n, 2, |i, j| {
        if j == 0 {
            3.0 + 6.0 * (i as f64 / n as f64)
        } else {
            1.2 + 1.2 * ((i * 7 % n) as f64 / n as f64)
        }
    });
    let y: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.1).sin() + i as f64 * 0.01)
        .collect();
    let gpr = Gpr::fit(
        x.clone(),
        &y,
        Box::new(SquaredExponential::new(1.0, 1.0)),
        0.1,
        true,
    )
    .unwrap();
    let pool = Matrix::from_fn(m, 2, |i, j| {
        if j == 0 {
            3.0 + 6.0 * ((i * 13 % m) as f64 / m as f64)
        } else {
            1.2 + 1.2 * ((i * 29 % m) as f64 / m as f64)
        }
    });

    let kern = SquaredExponential::new(1.0, 1.0);
    let kxt = kern.cross_matrix(&pool, &x);
    let b = kxt.transpose();
    let l = Matrix::from_fn(n, n, |i, j| {
        if j <= i {
            1.0 + (i + j) as f64 * 0.001
        } else {
            0.0
        }
    });
    let alpha = vec![0.01; n];

    alperf_obs::registry().reset();
    timed("profile.cross_k", 20, || {
        black_box(kern.cross_matrix(&pool, &x));
    });
    timed("profile.transpose", 20, || {
        black_box(kxt.transpose());
    });
    timed("profile.solve_matrix", 20, || {
        black_box(solve_lower_matrix(&l, &b).unwrap());
    });
    timed("profile.solve_rhs_rows", 20, || {
        black_box(solve_lower_rhs_rows(&l, &kxt).unwrap());
    });
    timed("profile.matvec", 20, || {
        black_box(kxt.matvec(&alpha).unwrap());
    });
    timed("profile.row_sq_norms", 20, || {
        black_box(kxt.row_sq_norms());
    });
    timed("profile.cross_plus_solve", 20, || {
        let k = kern.cross_matrix(&pool, &x);
        black_box(solve_lower_rhs_rows(&l, &k).unwrap());
    });
    timed("profile.batch_with_cross", 20, || {
        black_box(gpr.predict_batch_with_cross(&pool, &kxt).unwrap());
    });
    timed("profile.batch", 20, || {
        black_box(gpr.predict_batch(&pool).unwrap());
    });
    timed("profile.loop_predict_one", 5, || {
        for i in 0..m {
            black_box(gpr.predict_one(pool.row(i)).unwrap());
        }
    });

    println!("== span aggregates (train n={n}, pool m={m}; ms; min is exact) ==");
    print!("{}", alperf_obs::registry().summary_table());
}
