use alperf_gp::kernel::Kernel;
use alperf_gp::kernel::SquaredExponential;
use alperf_gp::model::Gpr;
use alperf_linalg::matrix::Matrix;
use alperf_linalg::triangular::{solve_lower_matrix, solve_lower_rhs_rows};
use std::hint::black_box;
use std::time::Instant;

fn best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let n = 200usize;
    let m = 1024usize;
    let x = Matrix::from_fn(n, 2, |i, j| {
        if j == 0 {
            3.0 + 6.0 * (i as f64 / n as f64)
        } else {
            1.2 + 1.2 * ((i * 7 % n) as f64 / n as f64)
        }
    });
    let y: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.1).sin() + i as f64 * 0.01)
        .collect();
    let gpr = Gpr::fit(
        x.clone(),
        &y,
        Box::new(SquaredExponential::new(1.0, 1.0)),
        0.1,
        true,
    )
    .unwrap();
    let pool = Matrix::from_fn(m, 2, |i, j| {
        if j == 0 {
            3.0 + 6.0 * ((i * 13 % m) as f64 / m as f64)
        } else {
            1.2 + 1.2 * ((i * 29 % m) as f64 / m as f64)
        }
    });

    let kern = SquaredExponential::new(1.0, 1.0);
    let kxt = kern.cross_matrix(&pool, &x);
    let b = kxt.transpose();
    let l = Matrix::from_fn(n, n, |i, j| {
        if j <= i {
            1.0 + (i + j) as f64 * 0.001
        } else {
            0.0
        }
    });
    let alpha = vec![0.01; n];

    println!(
        "crossK   : {:8.3} ms",
        best(20, || {
            black_box(kern.cross_matrix(&pool, &x));
        })
    );
    println!(
        "transp   : {:8.3} ms",
        best(20, || {
            black_box(kxt.transpose());
        })
    );
    println!(
        "solveM   : {:8.3} ms",
        best(20, || {
            black_box(solve_lower_matrix(&l, &b).unwrap());
        })
    );
    println!(
        "solveRows: {:8.3} ms",
        best(20, || {
            black_box(solve_lower_rhs_rows(&l, &kxt).unwrap());
        })
    );
    println!(
        "matvec   : {:8.3} ms",
        best(20, || {
            black_box(kxt.matvec(&alpha).unwrap());
        })
    );
    println!(
        "rownorms : {:8.3} ms",
        best(20, || {
            black_box(kxt.row_sq_norms());
        })
    );
    println!(
        "cross+slv: {:8.3} ms",
        best(20, || {
            let k = kern.cross_matrix(&pool, &x);
            black_box(solve_lower_rhs_rows(&l, &k).unwrap());
        })
    );
    println!(
        "batchcr  : {:8.3} ms",
        best(20, || {
            black_box(gpr.predict_batch_with_cross(&pool, &kxt).unwrap());
        })
    );
    println!(
        "batch    : {:8.3} ms",
        best(20, || {
            black_box(gpr.predict_batch(&pool).unwrap());
        })
    );
    println!(
        "loop     : {:8.3} ms",
        best(5, || {
            for i in 0..m {
                black_box(gpr.predict_one(pool.row(i)).unwrap());
            }
        })
    );
}
