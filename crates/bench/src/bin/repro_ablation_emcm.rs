//! Ablation **X2** — EMCM vs the paper's GPR-variance approach
//! (paper §III's critique, made quantitative).
//!
//! The paper argues EMCM (Eq. 1) is ill-suited to noisy performance data
//! because (a) its K bootstrap learners give "a Monte Carlo estimate of
//! variance, which is especially noisy when the training set is small" and
//! (b) once selected, a point never returns to the pool, so noisy settings
//! cannot be re-measured. This binary runs EMCM, Variance Reduction, and
//! Random selection from a *single-measurement seed* and compares
//! selection stability and RMSE trajectories.

use alperf_al::emcm::Emcm;
use alperf_al::metrics::paper_metrics;
use alperf_al::runner::{run_al, AlConfig, AlRun};
use alperf_al::strategy::{RandomSampling, Strategy, VarianceReduction};
use alperf_bench::{banner, load_datasets, write_series};
use alperf_core::analysis::paper_kernel_bounds;
use alperf_data::partition::Partition;
use alperf_gp::kernel::{ArdSquaredExponential, SquaredExponential};
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::GprConfig;
use alperf_linalg::matrix::Matrix;
use rayon::prelude::*;

const REPETITIONS: usize = 8;
const ITERS: usize = 40;

fn problem() -> (Matrix, Vec<f64>, Vec<f64>) {
    let data = load_datasets();
    let sub = data
        .performance
        .fix_level("Operator", "poisson1")
        .expect("operator")
        .fix_variable("NP", 32.0)
        .expect("NP");
    let sizes = &sub.variable("Global Problem Size").expect("size").values;
    let freqs = &sub.variable("CPU Frequency").expect("freq").values;
    let y: Vec<f64> = sub
        .response("Runtime")
        .expect("runtime")
        .iter()
        .map(|v| v.log10())
        .collect();
    let n = sub.n_rows();
    let mut flat = Vec::with_capacity(2 * n);
    for i in 0..n {
        flat.push(sizes[i].log10());
        flat.push(freqs[i]);
    }
    (
        Matrix::from_vec(n, 2, flat).expect("matrix"),
        y,
        vec![1.0; n],
    )
}

fn batch(
    x: &Matrix,
    y: &[f64],
    cost: &[f64],
    make: impl Fn() -> Box<dyn Strategy> + Sync,
) -> Vec<AlRun> {
    (0..REPETITIONS)
        .into_par_iter()
        .map(|rep| {
            let gpr = GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
                .with_noise_floor(NoiseFloor::recommended())
                .with_kernel_bounds(paper_kernel_bounds(2))
                .with_restarts(2)
                .with_standardize(false)
                .with_seed(400 + rep as u64);
            let cfg = AlConfig {
                max_iters: ITERS,
                seed: rep as u64,
                ..AlConfig::new(gpr)
            };
            // Single initial experiment — the regime where the paper says
            // "EMCM is unlikely to perform well".
            let part = Partition::paper_default(x.nrows(), 4000 + rep as u64);
            let mut strategy = make();
            run_al(x, y, cost, &part, strategy.as_mut(), &cfg).expect("AL run")
        })
        .collect()
}

fn main() {
    let (x, y, cost) = problem();
    banner(&format!(
        "X2: EMCM vs GPR-variance AL — {REPETITIONS} repetitions x {ITERS} iterations, 1-point seed"
    ));

    let emcm_runs = batch(&x, &y, &cost, || {
        Box::new(Emcm::new(4, Box::new(SquaredExponential::unit()), 0.1))
    });
    let vr_runs = batch(&x, &y, &cost, || Box::new(VarianceReduction));
    let rnd_runs = batch(&x, &y, &cost, || Box::new(RandomSampling));

    let report = |name: &str, runs: &[AlRun]| -> Vec<f64> {
        let (_, _, rmse) = paper_metrics(runs);
        println!(
            "{name:<20} RMSE@5 {:>7.3}  RMSE@15 {:>7.3}  RMSE@{} {:>7.3}",
            rmse.mean[5.min(rmse.len() - 1)],
            rmse.mean[15.min(rmse.len() - 1)],
            rmse.len() - 1,
            rmse.mean.last().expect("non-empty"),
        );
        rmse.mean
    };
    let e = report("EMCM (K=4)", &emcm_runs);
    let v = report("Variance Reduction", &vr_runs);
    let r = report("Random", &rnd_runs);
    let iters: Vec<f64> = (0..e.len().min(v.len()).min(r.len()))
        .map(|i| i as f64)
        .collect();
    let k = iters.len();
    write_series(
        "ablation_emcm_rmse",
        &[
            ("iter", &iters),
            ("emcm", &e[..k]),
            ("variance_reduction", &v[..k]),
            ("random", &r[..k]),
        ],
    );

    // Selection instability: run EMCM's *first* selection for the same
    // partition with different Monte Carlo seeds and count distinct picks
    // (the paper's "especially noisy when the training set is small").
    banner("EMCM first-selection instability (same data, different MC seeds)");
    // A 3-point seed: enough for bootstrap resamples to differ (a 1-point
    // bootstrap is degenerate), still firmly in the small-sample regime.
    let part = Partition::random(x.nrows(), 3, 0.8, 4000);
    let firsts: std::collections::BTreeSet<usize> = (0..10)
        .filter_map(|mc| {
            let gpr = GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
                .with_noise_floor(NoiseFloor::recommended())
                .with_kernel_bounds(paper_kernel_bounds(2))
                .with_restarts(2)
                .with_standardize(false)
                .with_seed(7);
            let cfg = AlConfig {
                max_iters: 1,
                seed: mc, // different Monte Carlo randomness only
                ..AlConfig::new(gpr)
            };
            let mut emcm = Emcm::new(4, Box::new(SquaredExponential::unit()), 0.1);
            run_al(&x, &y, &cost, &part, &mut emcm, &cfg)
                .ok()
                .and_then(|run| run.history.first().map(|h| h.chosen_row))
        })
        .collect();
    println!(
        "distinct first selections over 10 MC seeds: {}",
        firsts.len()
    );
    // Variance Reduction is deterministic given the data:
    let vr_firsts: std::collections::BTreeSet<usize> = (0..10)
        .filter_map(|mc| {
            let gpr = GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
                .with_noise_floor(NoiseFloor::recommended())
                .with_kernel_bounds(paper_kernel_bounds(2))
                .with_restarts(2)
                .with_standardize(false)
                .with_seed(7);
            let cfg = AlConfig {
                max_iters: 1,
                seed: mc,
                ..AlConfig::new(gpr)
            };
            run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg)
                .ok()
                .and_then(|run| run.history.first().map(|h| h.chosen_row))
        })
        .collect();
    println!(
        "distinct first selections for Variance Reduction: {}",
        vr_firsts.len()
    );
    println!("\n(paper: EMCM's K weak learners are 'a Monte Carlo estimate of variance ... especially noisy when the training set is small'; GPR-variance selection has no such Monte Carlo noise)");
}
