//! Reproduction of **Fig. 1** (raw 3-D subsets) and **Fig. 2** (the same
//! subsets with log-transformed responses).
//!
//! The paper fixes Operator = poisson1, selects several NP levels, and
//! scatter-plots (Global Problem Size, CPU Frequency) against Runtime
//! (Performance dataset) and Energy (Power dataset). This binary emits the
//! same point sets — raw and log-transformed — as CSV series and prints
//! summary checks of the two observations the figures support:
//!
//! 1. the Power dataset is visibly noisier than the Performance dataset;
//! 2. after the log transform, Runtime grows *linearly* along log problem
//!    size (Fig. 2a), which is what makes GPR modeling effective.

use alperf_bench::{banner, load_datasets, write_series};
use alperf_data::dataset::DataSet;
use alperf_linalg::stats;

const NP_SHOWN: [f64; 3] = [1.0, 8.0, 64.0];

fn emit_subset(data: &DataSet, response: &str, tag: &str) {
    let mut sizes = Vec::new();
    let mut freqs = Vec::new();
    let mut nps = Vec::new();
    let mut resp = Vec::new();
    let mut log_sizes = Vec::new();
    let mut log_resp = Vec::new();
    for &np in &NP_SHOWN {
        let sub = data
            .fix_level("Operator", "poisson1")
            .expect("operator column")
            .fix_variable("NP", np)
            .expect("NP column");
        let size = &sub.variable("Global Problem Size").expect("size").values;
        let freq = &sub.variable("CPU Frequency").expect("freq").values;
        let r = sub.response(response).expect("response");
        for i in 0..sub.n_rows() {
            sizes.push(size[i]);
            freqs.push(freq[i]);
            nps.push(np);
            resp.push(r[i]);
            log_sizes.push(size[i].log10());
            log_resp.push(r[i].log10());
        }
    }
    write_series(
        &format!("fig1_{tag}"),
        &[
            ("np", &nps),
            ("size", &sizes),
            ("freq", &freqs),
            (response, &resp),
        ],
    );
    write_series(
        &format!("fig2_{tag}"),
        &[
            ("np", &nps),
            ("log10_size", &log_sizes),
            ("freq", &freqs),
            (&format!("log10_{response}"), &log_resp),
        ],
    );
    println!("{tag}: {} points over NP in {:?}", sizes.len(), NP_SHOWN);
}

/// Mean per-setting relative spread of a response (repeat noise).
fn repeat_noise(data: &DataSet, response: &str) -> f64 {
    let vars = ["Operator", "Global Problem Size", "NP", "CPU Frequency"];
    let groups = data.group_by_settings(&vars).expect("grouping");
    let col = data.response(response).expect("response");
    let spreads: Vec<f64> = groups
        .iter()
        .filter(|(_, rows)| rows.len() >= 2)
        .map(|(_, rows)| {
            let vals: Vec<f64> = rows.iter().map(|&i| col[i]).collect();
            stats::std_dev(&vals) / stats::mean(&vals).abs().max(1e-300)
        })
        .collect();
    stats::mean(&spreads)
}

/// Slope of log10(runtime) vs log10(size) at fixed NP and frequency.
fn loglog_slope(data: &DataSet) -> f64 {
    let sub = data
        .fix_level("Operator", "poisson1")
        .expect("operator")
        .fix_variable("NP", 1.0)
        .expect("NP")
        .fix_variable("CPU Frequency", 2.4)
        .expect("freq");
    let size = &sub.variable("Global Problem Size").expect("size").values;
    let rt = sub.response("Runtime").expect("runtime");
    // Least-squares slope on the upper decades where overhead is negligible.
    let pts: Vec<(f64, f64)> = size
        .iter()
        .zip(rt)
        .filter(|(s, _)| **s > 1e6)
        .map(|(s, r)| (s.log10(), r.log10()))
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

fn main() {
    let data = load_datasets();
    banner("Fig. 1 / Fig. 2: dataset subsets (poisson1; NP in {1, 8, 64})");
    emit_subset(&data.performance, "Runtime", "performance_runtime");
    emit_subset(&data.power, "Energy", "power_energy");

    banner("Observation 1: Power dataset is much noisier (Fig. 1)");
    let perf_noise = repeat_noise(&data.performance, "Runtime");
    let power_noise = repeat_noise(&data.power, "Energy");
    println!("mean per-setting relative spread, Runtime (Performance): {perf_noise:.4}");
    println!("mean per-setting relative spread, Energy   (Power):      {power_noise:.4}");
    println!(
        "ratio: {:.1}x  (paper: 'the variance in the Power dataset is much higher')",
        power_noise / perf_noise
    );

    banner("Observation 2: linear growth in log-log space (Fig. 2a)");
    let slope = loglog_slope(&data.performance);
    println!("log10(Runtime) vs log10(Size) slope at NP=1, f=2.4: {slope:.3}");
    println!("(paper: 'the plot confirms the linear growth of Runtime along the problem size dimension'; FMG is O(N), slope ~ 1)");
}
