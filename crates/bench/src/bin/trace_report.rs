//! Analyze an `alperf-obs-v1` trace: self-time profile, flamegraph
//! export, critical-path extraction, and cross-run diffing.
//!
//! Usage:
//!   trace_report <trace.jsonl>                     # self-time table
//!   trace_report --json <trace.jsonl>              # table as JSON
//!   trace_report --folded <trace.jsonl>            # folded stacks (stdout)
//!   trace_report --folded-samples <trace.jsonl>    # folded profiler samples
//!   trace_report --critical-path <name> <trace.jsonl>
//!   trace_report --diff <a.jsonl> <b.jsonl> [--json] [--threshold <pct>] [--seed <n>]
//!   trace_report --postmortem <blackbox.jsonl> [--window-s <s>]
//!
//! Folded output feeds any flamegraph renderer:
//!   trace_report --folded trace.jsonl > trace.folded
//!   inferno-flamegraph < trace.folded > flame.svg   # or flamegraph.pl / speedscope
//!
//! `--folded` weights frames by span *self time*; `--folded-samples`
//! weights by profiler *sample count* (wall-clock incidence, including
//! blocked time), so the two flamegraphs are directly comparable.
//!
//! `--postmortem` reads an `alperf-blackbox-v1` flight-recorder dump
//! (written on panic, executor fault, or exit when the recorder is
//! armed) and reconstructs the final seconds: the span tree that was in
//! flight, record traffic, and the alerts firing at dump time.
//!
//! Exit codes: 0 ok; 1 malformed trace, broken span tree, or (--diff)
//! significant regressions found; 2 usage; 3 unreadable input; 4 empty
//! trace; 5 unknown schema.

use alperf_obs::json;
use alperf_trace::{
    aggregate, child_coverage, critical_path, diff_traces, folded_stacks, read_path,
    render_diff_json, render_diff_table, sampled_stacks, significant_regressions, DiffConfig,
    SpanForest, Trace,
};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace_report [--json] <trace.jsonl>\n\
         \x20      trace_report --folded <trace.jsonl>\n\
         \x20      trace_report --folded-samples <trace.jsonl>\n\
         \x20      trace_report --critical-path <name> <trace.jsonl>\n\
         \x20      trace_report --diff <a.jsonl> <b.jsonl> [--json] [--threshold <pct>] [--seed <n>]\n\
         \x20      trace_report --postmortem <blackbox.jsonl> [--window-s <s>]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Trace, ExitCode> {
    read_path(Path::new(path)).map_err(|e| {
        eprintln!("trace_report: {path}: {e}");
        ExitCode::from(e.exit_code())
    })
}

fn forest_of(trace: &Trace, path: &str) -> Result<SpanForest, ExitCode> {
    SpanForest::build(&trace.spans).map_err(|e| {
        eprintln!("trace_report: {path}: {e}");
        ExitCode::FAILURE
    })
}

fn report_table(trace: &Trace, forest: &SpanForest, as_json: bool) {
    let stats = aggregate(forest);
    if as_json {
        let mut out = String::from("{\"schema\":\"alperf-trace-report-v1\",\"spans\":[");
        for (i, s) in stats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut name = String::new();
            json::escape_into(&mut name, &s.name);
            out.push_str(&format!(
                "{{\"name\":{name},\"count\":{},\"total_ns\":{},\"self_ns\":{},\
                 \"min_ns\":{},\"max_ns\":{}}}",
                s.count, s.total_ns, s.self_ns, s.min_ns, s.max_ns
            ));
        }
        out.push(']');
        if let Some(cov) = child_coverage(forest, "al.iteration") {
            out.push_str(&format!(
                ",\"al_iteration\":{{\"count\":{},\"total_ns\":{},\"children_ns\":{},\
                 \"child_coverage_pct\":{}}}",
                cov.count,
                cov.total_ns,
                cov.children_ns,
                json::number(cov.pct())
            ));
        }
        out.push('}');
        println!("{out}");
        return;
    }
    println!(
        "{:<28} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "span", "count", "total_ms", "self_ms", "min_ms", "max_ms"
    );
    for s in &stats {
        println!(
            "{:<28} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            s.name,
            s.count,
            s.total_ns as f64 / 1e6,
            s.self_ns as f64 / 1e6,
            s.min_ns as f64 / 1e6,
            s.max_ns as f64 / 1e6
        );
    }
    println!(
        "\n{} spans in {} trees, {} records, {} profiler samples",
        forest.len(),
        forest.roots.len(),
        trace.records.len(),
        trace.samples.len()
    );
    if let Some(cov) = child_coverage(forest, "al.iteration") {
        println!(
            "al.iteration: {} iterations, {:.3} ms total, children cover {:.2}% \
             (fit/predict/select decomposition)",
            cov.count,
            cov.total_ns as f64 / 1e6,
            cov.pct()
        );
    }
}

fn run_diff(args: &[String]) -> ExitCode {
    let mut cfg = DiffConfig::default();
    let mut as_json = false;
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => as_json = true,
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) => cfg.threshold = pct / 100.0,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(seed) => cfg.seed = seed,
                None => return usage(),
            },
            _ if a.starts_with("--") => return usage(),
            _ => paths.push(a),
        }
    }
    let [pa, pb] = paths.as_slice() else {
        return usage();
    };
    let (a, b) = match (load(pa), load(pb)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(c), _) | (_, Err(c)) => return c,
    };
    let diffs = diff_traces(&a, &b, &cfg);
    if as_json {
        print!("{}", render_diff_json(&diffs, &cfg));
    } else {
        print!("{}", render_diff_table(&diffs));
    }
    let regressions = significant_regressions(&diffs);
    if regressions > 0 {
        eprintln!(
            "trace_report: {regressions} significant regression(s) at the \
             {:.1}% threshold",
            cfg.threshold * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--diff") => run_diff(&args[1..]),
        Some("--postmortem") => {
            let (path, window_s) = match args[1..] {
                [ref path] => (path, 10.0),
                [ref path, ref flag, ref s] if flag == "--window-s" => match s.parse::<f64>() {
                    Ok(v) if v > 0.0 => (path, v),
                    _ => return usage(),
                },
                _ => return usage(),
            };
            match alperf_trace::read_dump(Path::new(path)) {
                Ok(pm) => {
                    print!("{}", pm.render((window_s * 1e9) as u64));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("trace_report: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("--folded") => {
            let [_, path] = args.as_slice() else {
                return usage();
            };
            let trace = match load(path) {
                Ok(t) => t,
                Err(c) => return c,
            };
            let forest = match forest_of(&trace, path) {
                Ok(f) => f,
                Err(c) => return c,
            };
            print!("{}", folded_stacks(&forest));
            ExitCode::SUCCESS
        }
        Some("--folded-samples") => {
            let [_, path] = args.as_slice() else {
                return usage();
            };
            let trace = match load(path) {
                Ok(t) => t,
                Err(c) => return c,
            };
            if trace.samples.is_empty() {
                eprintln!(
                    "trace_report: {path} has no profiler samples \
                     (run with ALPERF_OBS_SAMPLE_HZ or the live_report sampler)"
                );
                return ExitCode::FAILURE;
            }
            print!("{}", sampled_stacks(&trace.samples));
            ExitCode::SUCCESS
        }
        Some("--critical-path") => {
            let [_, name, path] = args.as_slice() else {
                return usage();
            };
            let trace = match load(path) {
                Ok(t) => t,
                Err(c) => return c,
            };
            let forest = match forest_of(&trace, path) {
                Ok(f) => f,
                Err(c) => return c,
            };
            match critical_path(&forest, name) {
                Some(cp) => {
                    print!("{}", cp.render());
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("trace_report: no span named {name:?} in {path}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(_) => {
            let (as_json, path) = match args.as_slice() {
                [path] if !path.starts_with("--") => (false, path),
                [flag, path] if flag == "--json" => (true, path),
                _ => return usage(),
            };
            let trace = match load(path) {
                Ok(t) => t,
                Err(c) => return c,
            };
            let forest = match forest_of(&trace, path) {
                Ok(f) => f,
                Err(c) => return c,
            };
            report_table(&trace, &forest, as_json);
            ExitCode::SUCCESS
        }
        None => usage(),
    }
}
