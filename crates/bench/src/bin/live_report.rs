//! Live fleet telemetry smoke/demo: runs short AL campaigns with the
//! streaming aggregator and the cooperative stack sampler switched on,
//! prints the aggregator's rolling per-campaign table while the fleet is
//! running, and — when the `/metrics` endpoint is up — self-probes it
//! with the std TCP client and validates the Prometheus exposition.
//!
//! Usage:
//!   live_report [--quick]
//!
//! Environment (see `alperf_bench::obs_from_env`):
//! * `ALPERF_OBS_TRACE=<path>` — also write the JSONL trace (profiler
//!   samples included; `validate_trace` checks them);
//! * `ALPERF_OBS_SAMPLE_HZ=<hz>` — sampler rate (default here: the
//!   profiler's default rate — live_report always samples);
//! * `ALPERF_OBS_HTTP=<addr>|1` — serve `/metrics` + `/health`; the run
//!   fetches both while campaigns are live and fails on bad output.
//!
//! Exit codes: 0 ok; 1 a self-probe or exposition validation failed.

use alperf_al::runner::{run_al, AlConfig, PipelineConfig};
use alperf_al::strategy::VarianceReduction;
use alperf_bench::banner;
use alperf_data::partition::Partition;
use alperf_gp::kernel::SquaredExponential;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::GprConfig;
use alperf_linalg::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Synthetic 1-D problem: noisy sine with quadratic measurement cost.
fn dataset(n: usize, seed: u64) -> (Matrix, Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<f64> = (0..n).map(|i| i as f64 * 8.0 / n as f64).collect();
    let y: Vec<f64> = xs
        .iter()
        .map(|v| v.sin() * 2.0 + rng.gen_range(-0.15..0.15))
        .collect();
    let cost: Vec<f64> = xs.iter().map(|v| 1.0 + v * v).collect();
    (Matrix::from_vec(n, 1, xs).unwrap(), y, cost)
}

fn run_campaign(seed: u64, iters: usize, pipelined: bool) {
    let (x, y, cost) = dataset(60, seed);
    let part = Partition::random(60, 2, 0.8, seed);
    let gpr = GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::Fixed(0.05))
        .with_restarts(2)
        .with_seed(seed);
    let cfg = AlConfig {
        max_iters: iters,
        seed,
        pipeline: if pipelined {
            PipelineConfig::Speculative
        } else {
            PipelineConfig::Off
        },
        ..AlConfig::new(gpr)
    };
    run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).expect("AL campaign");
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("live_report: FAIL — {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    alperf_bench::threads_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 10 } else { 30 };

    // Env may install the trace sink / sampler / endpoint; the aggregator
    // and (failing an env-chosen rate) the sampler are always on here —
    // live telemetry is the whole point of this binary.
    alperf_bench::obs_from_env();
    alperf_obs::set_enabled(true);
    let aggregator = alperf_obs::aggregate::install(alperf_obs::aggregate::DEFAULT_WINDOW_NS);
    let own_sampler = (std::env::var("ALPERF_OBS_SAMPLE_HZ").map_or(true, |v| v.is_empty()))
        .then(|| alperf_obs::profiler::start(alperf_obs::profiler::DEFAULT_HZ));

    banner(&format!(
        "live fleet: 3 campaigns x {iters} iterations (sampler on{})",
        alperf_bench::obs_http_addr()
            .map(|a| format!(", /metrics at http://{a}"))
            .unwrap_or_default()
    ));

    // The fleet: three campaigns on their own threads (two serial, one
    // speculative-pipelined) so the aggregator has concurrent streams.
    let done = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = [(11u64, false), (23, false), (37, true)]
        .into_iter()
        .map(|(seed, pipelined)| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                run_campaign(seed, iters, pipelined);
                done.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();

    // Poll the live aggregator while the fleet runs; keep the last table
    // so a fast fleet still prints one.
    let mut probed = Ok(());
    let mut probed_live = false;
    let mut table = String::new();
    while done.load(Ordering::Relaxed) < workers.len() {
        std::thread::sleep(Duration::from_millis(150));
        table = aggregator.render_table();
        if !probed_live {
            if let Some(addr) = alperf_bench::obs_http_addr() {
                probed = probe_endpoint(addr);
                probed_live = true;
            }
        }
    }
    for w in workers {
        w.join().expect("campaign thread");
    }
    banner("aggregator snapshot (last live poll)");
    print!("{table}");
    banner("aggregator snapshot (final)");
    print!("{}", aggregator.render_table());

    // Probe after the fleet too (and at all, if the fleet outran the
    // first poll): the endpoint must stay consistent once idle.
    if let Some(addr) = alperf_bench::obs_http_addr() {
        if probed.is_ok() {
            probed = probe_endpoint(addr);
        }
        match &probed {
            Ok(()) => println!("\n/metrics + /health probes: ok (http://{addr})"),
            Err(e) => return fail(e),
        }
    } else {
        println!("\n(no ALPERF_OBS_HTTP: endpoint probe skipped)");
    }

    let sampled = alperf_obs::profiler::samples_folded();
    println!("profiler: {sampled} stack samples collected");
    if let Some(sampler) = own_sampler {
        sampler.stop();
    }
    alperf_obs::aggregate::uninstall();
    alperf_bench::obs_finish();
    if sampled == 0 {
        return fail("sampler collected no stacks from a multi-campaign fleet");
    }
    ExitCode::SUCCESS
}

/// Fetch `/metrics` and `/health` over a real TCP connection and validate
/// the exposition body line by line.
fn probe_endpoint(addr: std::net::SocketAddr) -> Result<(), String> {
    let (status, body) =
        alperf_obs::http::fetch(addr, "/metrics").map_err(|e| format!("/metrics fetch: {e}"))?;
    if status != 200 {
        return Err(format!("/metrics returned {status}"));
    }
    let series = alperf_obs::registry::validate_exposition(&body)
        .map_err(|e| format!("/metrics exposition invalid: {e}"))?;
    if series == 0 {
        return Err("/metrics exposition has no series".into());
    }
    let (status, body) =
        alperf_obs::http::fetch(addr, "/health").map_err(|e| format!("/health fetch: {e}"))?;
    if status != 200 || !body.starts_with("ok") {
        return Err(format!("/health returned {status}: {body:?}"));
    }
    Ok(())
}
