//! Live fleet telemetry smoke/demo: runs short AL campaigns with the
//! full retentive-observability stack armed — streaming aggregator,
//! cooperative stack sampler, embedded tsdb scraper, alerting rules
//! engine, and black-box flight recorder — injects a chaos stall into a
//! watchdog mid-flight, and requires the `chaos_stall` alert to *fire
//! and resolve* before exiting. When the `/metrics` endpoint is up it
//! self-probes `/metrics`, `/health`, `/query`, and `/alerts` with the
//! std TCP client and validates the responses.
//!
//! Usage:
//!   live_report [--quick] [--failure-rate <f>]
//!
//! `--failure-rate <f>` adds a fourth campaign driven by the seeded
//! fault oracle at rate `f`, so degraded-iteration telemetry flows
//! through the tsdb and burn-rate rule while the stall demo runs.
//!
//! Environment (see `alperf_bench::obs_from_env`):
//! * `ALPERF_OBS_TRACE=<path>` — also write the JSONL trace (profiler
//!   samples and alert transition records included; `validate_trace`
//!   checks them);
//! * `ALPERF_OBS_SAMPLE_HZ=<hz>` — sampler rate (default here: the
//!   profiler's default rate — live_report always samples);
//! * `ALPERF_OBS_HTTP=<addr>|1` — serve the endpoints; the run fetches
//!   them while campaigns are live and fails on bad output;
//! * `ALPERF_OBS_BLACKBOX=<path>` — black-box dump destination
//!   (default here: `target/repro/blackbox.jsonl` — live_report always
//!   arms the recorder and dumps at exit).
//!
//! Exit codes: 0 ok; 1 a self-probe failed, the chaos alert did not
//! fire+resolve, or the black-box dump came out empty.

use alperf_al::oracle::SeededFaultOracle;
use alperf_al::runner::{run_al, run_al_with_oracle, AlConfig, PipelineConfig};
use alperf_al::strategy::VarianceReduction;
use alperf_bench::banner;
use alperf_data::partition::Partition;
use alperf_gp::kernel::SquaredExponential;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::GprConfig;
use alperf_linalg::matrix::Matrix;
use alperf_obs::alerts::{Cmp, Condition, Rule};
use alperf_obs::watchdog::Watchdog;
use alperf_obs::SystemClock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Synthetic 1-D problem: noisy sine with quadratic measurement cost.
fn dataset(n: usize, seed: u64) -> (Matrix, Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<f64> = (0..n).map(|i| i as f64 * 8.0 / n as f64).collect();
    let y: Vec<f64> = xs
        .iter()
        .map(|v| v.sin() * 2.0 + rng.gen_range(-0.15..0.15))
        .collect();
    let cost: Vec<f64> = xs.iter().map(|v| 1.0 + v * v).collect();
    (Matrix::from_vec(n, 1, xs).unwrap(), y, cost)
}

fn run_campaign(seed: u64, iters: usize, pipelined: bool, failure_rate: f64) {
    let (x, y, cost) = dataset(60, seed);
    let part = Partition::random(60, 2, 0.8, seed);
    let gpr = GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::Fixed(0.05))
        .with_restarts(2)
        .with_seed(seed);
    let cfg = AlConfig {
        max_iters: iters,
        seed,
        pipeline: if pipelined {
            PipelineConfig::Speculative
        } else {
            PipelineConfig::Off
        },
        ..AlConfig::new(gpr)
    };
    if failure_rate > 0.0 {
        let oracle = SeededFaultOracle::new(seed, failure_rate);
        run_al_with_oracle(&x, &y, &cost, &part, &mut VarianceReduction, &oracle, &cfg)
            .expect("chaos AL campaign");
    } else {
        run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).expect("AL campaign");
    }
}

/// Demo rules with windows short enough that a CI-speed run sees the
/// full inactive → firing → resolved arc. `chaos_stall` is the asserted
/// one: the injected watchdog stall bumps `obs.watchdog.stall` exactly
/// once, the 2 s threshold window then slides past it, so the rule
/// fires on the next scrape and resolves ~2 s later with no further
/// choreography.
fn demo_rules() -> Vec<Rule> {
    vec![
        Rule::new(
            "chaos_stall",
            Condition::Threshold {
                series: alperf_obs::names::OBS_WATCHDOG_STALL.into(),
                cmp: Cmp::Ge,
                value: 1.0,
                window_ns: 2_000_000_000,
            },
            0,
            0,
        ),
        Rule::new(
            "degraded_burn",
            Condition::BurnRate {
                numerator: alperf_obs::names::AL_DEGRADED_ITERATION.into(),
                denominator: format!("{}.count", alperf_obs::names::AL_ITERATION),
                cmp: Cmp::Gt,
                ratio: 0.05,
                window_ns: 5_000_000_000,
            },
            0,
            2_000_000_000,
        ),
    ]
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("live_report: FAIL — {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    alperf_bench::threads_from_env();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let failure_rate: f64 = args
        .iter()
        .position(|a| a == "--failure-rate")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--failure-rate takes a number"))
        .unwrap_or(0.0);
    let iters = if quick { 10 } else { 30 };

    // Env may install the trace sink / sampler / endpoint / scraper; the
    // aggregator, the alert engine, the black-box recorder, and (failing
    // env-chosen configs) the sampler and tsdb scraper are always on
    // here — live retentive telemetry is the whole point of this binary.
    alperf_bench::obs_from_env();
    alperf_obs::set_enabled(true);
    let aggregator = alperf_obs::aggregate::install(alperf_obs::aggregate::DEFAULT_WINDOW_NS);
    let own_sampler = (std::env::var("ALPERF_OBS_SAMPLE_HZ").map_or(true, |v| v.is_empty()))
        .then(|| alperf_obs::profiler::start(alperf_obs::profiler::DEFAULT_HZ));
    let own_scraper = (!alperf_obs::tsdb::active()).then(|| {
        let tsdb = alperf_obs::tsdb::install(alperf_obs::TsdbConfig::default());
        alperf_obs::tsdb::start_scraper(tsdb, Duration::from_millis(50))
    });
    let engine = alperf_obs::alerts::install(demo_rules());
    alperf_obs::blackbox::arm(alperf_obs::blackbox::DEFAULT_CAPACITY);
    if alperf_obs::blackbox::dump_path().is_none() {
        alperf_obs::blackbox::set_dump_path(Some(alperf_bench::repro_dir().join("blackbox.jsonl")));
    }
    alperf_obs::blackbox::install_panic_hook();

    // The chaos stall: a local watchdog (NOT the process-global one, so
    // /health stays truthful about real keys) beaten exactly once. Its
    // `check()` in the poll loop flags the silence ~300 ms in and bumps
    // the global `obs.watchdog.stall` counter, which the scraper ingests
    // and the `chaos_stall` rule fires on.
    let chaos_wd = Watchdog::new(Arc::new(SystemClock), 300_000_000);
    chaos_wd.beat("campaign:chaos-stall");

    let campaigns = if failure_rate > 0.0 { 4 } else { 3 };
    banner(&format!(
        "live fleet: {campaigns} campaigns x {iters} iterations (sampler+scraper+alerts+blackbox on{})",
        alperf_bench::obs_http_addr()
            .map(|a| format!(", /metrics at http://{a}"))
            .unwrap_or_default()
    ));

    // The fleet: campaigns on their own threads (two serial, one
    // speculative-pipelined, optionally one fault-injected) so the
    // aggregator and tsdb have concurrent streams.
    let done = Arc::new(AtomicUsize::new(0));
    let mut plan = vec![(11u64, false, 0.0), (23, false, 0.0), (37, true, 0.0)];
    if failure_rate > 0.0 {
        plan.push((53, false, failure_rate));
    }
    let workers: Vec<_> = plan
        .into_iter()
        .map(|(seed, pipelined, rate)| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                run_campaign(seed, iters, pipelined, rate);
                done.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();

    // Poll the live aggregator while the fleet runs (and keep polling
    // after it finishes until the chaos alert completes its arc); keep
    // the last in-flight table so a fast fleet still prints one.
    let mut probed = Ok(());
    let mut probed_live = false;
    let mut table = String::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    let (mut fired, mut resolved) = (false, false);
    loop {
        let fleet_running = done.load(Ordering::Relaxed) < workers.len();
        if (!fleet_running && fired && resolved) || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(150));
        chaos_wd.check();
        if fleet_running {
            table = aggregator.render_table();
        }
        for t in engine.transitions() {
            if t.rule == "chaos_stall" {
                fired |= t.to == "firing";
                resolved |= t.to == "resolved";
            }
        }
        if !probed_live && fleet_running {
            if let Some(addr) = alperf_bench::obs_http_addr() {
                probed = probe_endpoint(addr);
                probed_live = true;
            }
        }
    }
    for w in workers {
        w.join().expect("campaign thread");
    }
    banner("aggregator snapshot (last live poll)");
    print!("{table}");
    banner("aggregator snapshot (final)");
    print!("{}", aggregator.render_table());

    banner("alert transitions");
    for t in engine.transitions() {
        println!(
            "  {:<14} {:>9} -> {:<9} value {:.3}",
            t.rule, t.from, t.to, t.value
        );
    }
    let stats = alperf_obs::tsdb::global()
        .map(|t| t.stats())
        .expect("tsdb installed");
    println!(
        "tsdb: {} series, {} scrapes, {} points evicted",
        stats.series, stats.scrapes, stats.points_evicted
    );

    // Probe after the fleet too (and at all, if the fleet outran the
    // first poll): the endpoint must stay consistent once idle.
    if let Some(addr) = alperf_bench::obs_http_addr() {
        if probed.is_ok() {
            probed = probe_endpoint(addr);
        }
        match &probed {
            Ok(()) => {
                println!("\n/metrics + /health + /query + /alerts probes: ok (http://{addr})")
            }
            Err(e) => return fail(e),
        }
    } else {
        println!("\n(no ALPERF_OBS_HTTP: endpoint probe skipped)");
    }

    let sampled = alperf_obs::profiler::samples_folded();
    println!("profiler: {sampled} stack samples collected");

    // The black-box dump: write it explicitly (the postmortem pipeline
    // consumes it) and require it to carry events.
    let dump = alperf_obs::blackbox::dump_on_fault("live_report.exit");
    if let Some(sampler) = own_sampler {
        sampler.stop();
    }
    if let Some(scraper) = own_scraper {
        scraper.stop();
    }
    alperf_obs::aggregate::uninstall();
    alperf_bench::obs_finish();
    if sampled == 0 {
        return fail("sampler collected no stacks from a multi-campaign fleet");
    }
    if !(fired && resolved) {
        return fail(&format!(
            "chaos_stall alert did not complete its arc (fired {fired}, resolved {resolved})"
        ));
    }
    match &dump {
        Some(path) => {
            let events = std::fs::read_to_string(path)
                .map(|s| s.lines().filter(|l| l.contains("\"t\":\"bb\"")).count())
                .unwrap_or(0);
            println!("blackbox: dumped {events} events -> {}", path.display());
            if events == 0 {
                return fail("black-box dump has no events after a full fleet run");
            }
        }
        None => return fail("black-box dump was not written"),
    }
    ExitCode::SUCCESS
}

/// Fetch the four endpoints over a real TCP connection and validate the
/// bodies line by line.
fn probe_endpoint(addr: std::net::SocketAddr) -> Result<(), String> {
    let (status, body) =
        alperf_obs::http::fetch(addr, "/metrics").map_err(|e| format!("/metrics fetch: {e}"))?;
    if status != 200 {
        return Err(format!("/metrics returned {status}"));
    }
    let series = alperf_obs::registry::validate_exposition(&body)
        .map_err(|e| format!("/metrics exposition invalid: {e}"))?;
    if series == 0 {
        return Err("/metrics exposition has no series".into());
    }
    let (status, body) =
        alperf_obs::http::fetch(addr, "/health").map_err(|e| format!("/health fetch: {e}"))?;
    if status != 200 || !body.starts_with("ok") {
        return Err(format!("/health returned {status}: {body:?}"));
    }
    if !body.contains("alerts_firing ") {
        return Err(format!("/health body lacks alerts_firing: {body:?}"));
    }
    let (status, body) =
        alperf_obs::http::fetch(addr, "/query").map_err(|e| format!("/query fetch: {e}"))?;
    if status != 200 || !body.contains("alperf-tsdb-series-v1") {
        return Err(format!("/query returned {status}: {body:?}"));
    }
    let (status, body) =
        alperf_obs::http::fetch(addr, "/alerts").map_err(|e| format!("/alerts fetch: {e}"))?;
    if status != 200 || !body.contains("alperf-alerts-v1") {
        return Err(format!("/alerts returned {status}: {body:?}"));
    }
    Ok(())
}
