//! Telemetry overhead budget check — prints an overhead report and
//! asserts the <2% budget.
//!
//! Usage:
//!   obs_overhead           # full sizes (n=200 fit, 1024-candidate pool)
//!   obs_overhead --quick   # tiny sizes (CI smoke run)
//!
//! The measurement itself lives in `alperf_bench::overhead` and is shared
//! with the `bench_gate` binary, which gates these numbers against the
//! checked-in `BENCH_obs_overhead.json` baseline (and refreshes it via
//! `--update-baseline`).

use alperf_bench::overhead::{self, BUDGET_PCT};

fn main() {
    alperf_bench::threads_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let r = overhead::measure(quick);
    let (fit_pct, predict_pct, sampler_pct, scrape_pct) = (
        r.fit_pct(),
        r.predict_pct(),
        r.sampler_pct(),
        r.scrape_pct(),
    );
    let within = r.within_budget();

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"budget_pct\": {BUDGET_PCT},\n  \
         \"quick\": {quick},\n  \
         \"fit\": {{ \"n\": {}, \"restarts\": {}, \"disabled_ms\": {:.3}, \
         \"enabled_ms\": {:.3}, \"overhead_pct\": {fit_pct:.3}, \
         \"sampled_ms\": {:.3}, \"sampler_overhead_pct\": {sampler_pct:.3}, \
         \"scraped_ms\": {:.3}, \"scrape_overhead_pct\": {scrape_pct:.3} }},\n  \
         \"predict\": {{ \"train_n\": {}, \"pool_m\": {}, \"disabled_ms\": {:.3}, \
         \"enabled_ms\": {:.3}, \"overhead_pct\": {predict_pct:.3} }},\n  \
         \"disabled_site_ns\": {:.3},\n  \"labeled_site_ns\": {:.3},\n  \
         \"labeled_lookup_ns\": {:.3},\n  \"within_budget\": {within}\n}}\n",
        r.n,
        r.restarts,
        r.fit_off_ms,
        r.fit_on_ms,
        r.fit_sampler_ms,
        r.fit_scrape_ms,
        r.n,
        r.m,
        r.predict_off_ms,
        r.predict_on_ms,
        r.site_ns,
        r.labeled_site_ns,
        r.labeled_lookup_ns
    );
    print!("{json}");
    assert!(
        within,
        "telemetry overhead exceeds the {BUDGET_PCT}% budget: fit {fit_pct:.2}%, \
         predict {predict_pct:.2}%, sampler {sampler_pct:.2}%, scraper {scrape_pct:.2}%"
    );
}
