//! Telemetry overhead budget check — writes `BENCH_obs_overhead.json`.
//!
//! Usage:
//!   obs_overhead           # full sizes (n=200 fit, 1024-candidate pool)
//!   obs_overhead --quick   # tiny sizes (CI smoke run)
//!
//! Measures the instrumented fit and batched-predict paths with telemetry
//! disabled and enabled, plus the per-site primitive costs. The contract is
//! a <2% regression budget: with telemetry *disabled* each instrumentation
//! site costs one relaxed atomic load, so even the enabled-vs-disabled
//! delta (a strict upper bound on the disabled-vs-uninstrumented delta,
//! since disabling removes the clock reads and histogram updates that
//! dominate it) must stay under budget. Timings use `std::time::Instant`
//! directly — the one place that cannot route through the layer it is
//! measuring — and min-over-reps, the right statistic on a noisy VM.

use alperf_gp::kernel::SquaredExponential;
use alperf_gp::model::Gpr;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::{fit_gpr, GprConfig};
use alperf_linalg::matrix::Matrix;
use std::hint::black_box;
use std::time::Instant;

const BUDGET_PCT: f64 = 2.0;

fn best_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn training_data(n: usize) -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(n, 2, |i, j| {
        if j == 0 {
            3.0 + 6.0 * (i as f64 / n as f64)
        } else {
            1.2 + 1.2 * ((i * 7 % n) as f64 / n as f64)
        }
    });
    let y: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.1).sin() + i as f64 * 0.01)
        .collect();
    (x, y)
}

fn pool_points(m: usize) -> Matrix {
    Matrix::from_fn(m, 2, |i, j| {
        if j == 0 {
            3.0 + 6.0 * ((i * 13 % m) as f64 / m as f64)
        } else {
            1.2 + 1.2 * ((i * 29 % m) as f64 / m as f64)
        }
    })
}

/// Cost of one disabled instrumentation site, in nanoseconds.
fn disabled_site_ns() -> f64 {
    alperf_obs::set_enabled(false);
    let iters = 20_000_000u64;
    let t = Instant::now();
    for _ in 0..iters {
        let _s = alperf_obs::span(black_box("overhead.noop"));
    }
    t.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn overhead_pct(disabled_ms: f64, enabled_ms: f64) -> f64 {
    (enabled_ms - disabled_ms) / disabled_ms * 100.0
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, m, restarts, reps) = if quick {
        (48usize, 128usize, 2usize, 3usize)
    } else {
        (200, 1024, 5, 5)
    };

    let (x, y) = training_data(n);
    let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::recommended())
        .with_restarts(restarts)
        .with_seed(17);
    let gpr = Gpr::fit(
        x.clone(),
        &y,
        Box::new(SquaredExponential::new(1.0, 1.0)),
        0.1,
        true,
    )
    .unwrap();
    let pool = pool_points(m);

    alperf_obs::set_enabled(false);
    let fit_off = best_ms(reps, || {
        black_box(fit_gpr(&x, &y, &cfg).unwrap());
    });
    let predict_off = best_ms(reps * 4, || {
        black_box(gpr.predict_batch(&pool).unwrap());
    });
    alperf_obs::set_enabled(true);
    let fit_on = best_ms(reps, || {
        black_box(fit_gpr(&x, &y, &cfg).unwrap());
    });
    let predict_on = best_ms(reps * 4, || {
        black_box(gpr.predict_batch(&pool).unwrap());
    });
    alperf_obs::set_enabled(false);
    let site_ns = disabled_site_ns();

    let fit_pct = overhead_pct(fit_off, fit_on);
    let predict_pct = overhead_pct(predict_off, predict_on);
    let within = fit_pct < BUDGET_PCT && predict_pct < BUDGET_PCT;

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"budget_pct\": {BUDGET_PCT},\n  \
         \"quick\": {quick},\n  \
         \"fit\": {{ \"n\": {n}, \"restarts\": {restarts}, \"disabled_ms\": {fit_off:.3}, \
         \"enabled_ms\": {fit_on:.3}, \"overhead_pct\": {fit_pct:.3} }},\n  \
         \"predict\": {{ \"train_n\": {n}, \"pool_m\": {m}, \"disabled_ms\": {predict_off:.3}, \
         \"enabled_ms\": {predict_on:.3}, \"overhead_pct\": {predict_pct:.3} }},\n  \
         \"disabled_site_ns\": {site_ns:.3},\n  \"within_budget\": {within}\n}}\n"
    );
    print!("{json}");
    if !quick {
        std::fs::write("BENCH_obs_overhead.json", &json).expect("write BENCH_obs_overhead.json");
        eprintln!("[wrote BENCH_obs_overhead.json]");
    }
    assert!(
        within,
        "telemetry overhead exceeds the {BUDGET_PCT}% budget: fit {fit_pct:.2}%, \
         predict {predict_pct:.2}%"
    );
}
