//! Ablation **X3** — greedy batch selection with fantasy variance updates
//! (paper §VI future work: "some experiments could reasonably be run in
//! parallel which ... may indicate a less greedy selection strategy").
//!
//! Compares, at equal experiment counts, three ways of choosing q = 4
//! experiments per round on the focus slice:
//!
//! * **sequential** — the paper's one-at-a-time Variance Reduction
//!   (the quality ceiling: full feedback after every experiment);
//! * **batch-fantasy** — pick 4 via greedy fantasy-variance updates, then
//!   run all 4 in parallel (one scheduling round);
//! * **batch-naive** — pick the top-4 by current variance (no fantasy
//!   updates), the strawman that clusters its picks.

use alperf_al::batch::select_batch;
use alperf_al::runner::test_rmse;
use alperf_bench::{banner, load_datasets, write_series};
use alperf_core::analysis::paper_kernel_bounds;
use alperf_data::partition::Partition;
use alperf_gp::kernel::ArdSquaredExponential;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::{fit_gpr, fit_surrogate, GprConfig};
use alperf_linalg::matrix::Matrix;

const ROUNDS: usize = 8;
const Q: usize = 4;
const REPS: usize = 6;

fn problem() -> (Matrix, Vec<f64>) {
    let data = load_datasets();
    let sub = data
        .performance
        .fix_level("Operator", "poisson1")
        .expect("operator")
        .fix_variable("NP", 32.0)
        .expect("NP");
    let sizes = &sub.variable("Global Problem Size").expect("size").values;
    let freqs = &sub.variable("CPU Frequency").expect("freq").values;
    let y: Vec<f64> = sub
        .response("Runtime")
        .expect("runtime")
        .iter()
        .map(|v| v.log10())
        .collect();
    let n = sub.n_rows();
    let mut flat = Vec::with_capacity(2 * n);
    for i in 0..n {
        flat.push(sizes[i].log10());
        flat.push(freqs[i]);
    }
    (Matrix::from_vec(n, 2, flat).expect("matrix"), y)
}

fn gpr_cfg(seed: u64) -> GprConfig {
    GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
        .with_noise_floor(NoiseFloor::recommended())
        .with_kernel_bounds(paper_kernel_bounds(2))
        .with_restarts(2)
        .with_standardize(false)
        .with_seed(seed)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Sequential,
    BatchFantasy,
    BatchNaive,
}

/// Run `ROUNDS` rounds of `Q` experiments; returns RMSE after each round.
fn run(mode: Mode, x: &Matrix, y: &[f64], part: &Partition, seed: u64) -> Vec<f64> {
    let mut train = part.initial.clone();
    let mut pool = part.active.clone();
    let mut rmses = Vec::new();
    for round in 0..ROUNDS {
        let xs = x.select_rows(&train);
        let ys: Vec<f64> = train.iter().map(|&i| y[i]).collect();
        let (model, _) = fit_surrogate(&xs, &ys, &gpr_cfg(seed + round as u64)).expect("fit");
        let picks: Vec<usize> = match mode {
            Mode::BatchFantasy => select_batch(&model, x, &train, &ys, &pool, Q).expect("batch"),
            Mode::BatchNaive => {
                let mut scored: Vec<(usize, f64)> = pool
                    .iter()
                    .enumerate()
                    .map(|(pos, &row)| {
                        (pos, model.predict_one(x.row(row)).expect("prediction").std)
                    })
                    .collect();
                scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
                scored.iter().take(Q).map(|&(pos, _)| pos).collect()
            }
            Mode::Sequential => {
                // One at a time with refits inside the round — the
                // full-feedback ceiling at equal experiment count.
                let mut inner_train = train.clone();
                let mut inner_pool = pool.clone();
                let mut chosen_rows = Vec::new();
                for k in 0..Q.min(inner_pool.len()) {
                    let xs = x.select_rows(&inner_train);
                    let ys: Vec<f64> = inner_train.iter().map(|&i| y[i]).collect();
                    let (m, _) =
                        fit_gpr(&xs, &ys, &gpr_cfg(seed + round as u64 + k as u64)).expect("fit");
                    let (pos, _) = inner_pool
                        .iter()
                        .enumerate()
                        .map(|(pos, &row)| {
                            (pos, m.predict_one(x.row(row)).expect("prediction").std)
                        })
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                        .expect("non-empty pool");
                    let row = inner_pool.swap_remove(pos);
                    chosen_rows.push(row);
                    inner_train.push(row);
                }
                // Map back to positions in the outer pool.
                chosen_rows
                    .iter()
                    .map(|row| pool.iter().position(|r| r == row).expect("row in pool"))
                    .collect()
            }
        };
        // "Run" the q experiments (descending positions keeps indices valid).
        let mut positions = picks;
        positions.sort_unstable_by(|a, b| b.cmp(a));
        for pos in positions {
            let row = pool.swap_remove(pos);
            train.push(row);
        }
        // Evaluate after the round.
        let xs = x.select_rows(&train);
        let ys: Vec<f64> = train.iter().map(|&i| y[i]).collect();
        let (m, _) = fit_surrogate(&xs, &ys, &gpr_cfg(seed + 991)).expect("fit");
        rmses.push(test_rmse(&m, x, y, &part.test));
    }
    rmses
}

fn main() {
    let (x, y) = problem();
    banner(&format!(
        "X3: batch AL — {ROUNDS} rounds x q={Q}, averaged over {REPS} partitions"
    ));
    let mut avg = [vec![0.0; ROUNDS], vec![0.0; ROUNDS], vec![0.0; ROUNDS]];
    for rep in 0..REPS {
        let part = Partition::paper_default(x.nrows(), 5000 + rep as u64);
        for (mi, mode) in [Mode::Sequential, Mode::BatchFantasy, Mode::BatchNaive]
            .into_iter()
            .enumerate()
        {
            let rmse = run(mode, &x, &y, &part, rep as u64 * 37);
            for (a, r) in avg[mi].iter_mut().zip(&rmse) {
                *a += r / REPS as f64;
            }
        }
    }
    println!("\nexperiments  sequential  batch-fantasy  batch-naive");
    let counts: Vec<f64> = (0..ROUNDS).map(|r| ((r + 1) * Q) as f64 + 1.0).collect();
    for r in 0..ROUNDS {
        println!(
            "{:>11} {:>11.4} {:>14.4} {:>12.4}",
            counts[r], avg[0][r], avg[1][r], avg[2][r]
        );
    }
    write_series(
        "ablation_batch_rmse",
        &[
            ("experiments", &counts),
            ("sequential", &avg[0]),
            ("batch_fantasy", &avg[1]),
            ("batch_naive", &avg[2]),
        ],
    );
    let last = ROUNDS - 1;
    println!(
        "\nfinal RMSE: sequential {:.4} <= batch-fantasy {:.4} <= batch-naive {:.4} (expected ordering)",
        avg[0][last], avg[1][last], avg[2][last]
    );
    println!("(fantasy updates recover most of the sequential quality while allowing q-way parallel scheduling — the paper's §VI direction)");
}
