//! Reproduction of **Fig. 4** and **Fig. 5(b)** — log-marginal-likelihood
//! landscapes.
//!
//! * Fig. 4: LML as a function of (length scale `l`, noise `sigma_n`) for
//!   the data-rich 1-D cross-section of Fig. 3(a). The paper: the landscape
//!   "is a straightforward optimization problem with a unique global
//!   optimum" — peaked, findable by gradient ascent from a single start.
//! * Fig. 5(b): the same landscape for the 4-point 2-D dataset of
//!   Fig. 5(a) — "significantly more shallow".
//!
//! Peakedness is quantified as the LML drop from the grid maximum to the
//! grid's 90th-percentile value; the shallow landscape has a much smaller
//! drop over the same hyperparameter box.

use alperf_bench::{banner, load_datasets, write_series};
use alperf_gp::kernel::SquaredExponential;
use alperf_gp::lml::lml_value;
use alperf_linalg::matrix::Matrix;
use alperf_linalg::stats::Standardizer;
use alperf_linalg::vector::logspace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Evaluate the LML over an (l, sigma_n) grid at fixed amplitude 1 on
/// standardized responses, exactly what scikit-learn's default kernel does.
fn lml_grid(x: &Matrix, y: &[f64], tag: &str) -> (f64, f64) {
    let std = Standardizer::fit(y);
    let ys = std.apply_vec(y);
    let ls = logspace(0.05, 20.0, 40);
    let sns = logspace(1e-3, 3.0, 40);
    let mut col_l = Vec::new();
    let mut col_sn = Vec::new();
    let mut col_lml = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for &l in &ls {
        for &sn in &sns {
            let k = SquaredExponential::new(l, 1.0);
            let v = lml_value(&k, sn, x, &ys).unwrap_or(f64::NEG_INFINITY);
            if v.is_finite() {
                col_l.push(l);
                col_sn.push(sn);
                col_lml.push(v);
                best = best.max(v);
            }
        }
    }
    write_series(
        tag,
        &[("l", &col_l), ("sigma_n", &col_sn), ("lml", &col_lml)],
    );
    // Peakedness: drop from max to the 90th percentile of the landscape.
    let mut sorted = col_lml.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p90 = sorted[(sorted.len() as f64 * 0.9) as usize];
    (best, best - p90)
}

fn main() {
    let data = load_datasets();
    banner("Fig. 4: LML contour for the data-rich 1-D cross-section");
    let sub = data
        .performance
        .fix_level("Operator", "poisson1")
        .expect("operator")
        .fix_variable("NP", 32.0)
        .expect("NP")
        .fix_variable("CPU Frequency", 2.4)
        .expect("freq");
    let x1: Vec<f64> = sub
        .variable("Global Problem Size")
        .expect("size")
        .values
        .iter()
        .map(|v| v.log10())
        .collect();
    let y1: Vec<f64> = sub
        .response("Runtime")
        .expect("runtime")
        .iter()
        .map(|v| v.log10())
        .collect();
    let xm1 = Matrix::from_vec(x1.len(), 1, x1).expect("matrix");
    let (best_rich, drop_rich) = lml_grid(&xm1, &y1, "fig4_lml_rich");
    println!(
        "n = {} points: max LML = {best_rich:.2}, peak-to-p90 drop = {drop_rich:.2}",
        y1.len()
    );

    banner("Fig. 5(b): LML contour for the 4-point 2-D dataset");
    let sub2 = data
        .performance
        .fix_level("Operator", "poisson1")
        .expect("operator")
        .fix_variable("NP", 32.0)
        .expect("NP");
    let sizes = &sub2.variable("Global Problem Size").expect("size").values;
    let freqs = &sub2.variable("CPU Frequency").expect("freq").values;
    let rts = sub2.response("Runtime").expect("runtime");
    let mut rng = StdRng::seed_from_u64(55);
    let mut idx: Vec<usize> = (0..sub2.n_rows()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(4);
    let mut flat = Vec::new();
    let mut y2 = Vec::new();
    for &i in &idx {
        flat.push(sizes[i].log10());
        flat.push(freqs[i]);
        y2.push(rts[i].log10());
    }
    let xm2 = Matrix::from_vec(4, 2, flat).expect("matrix");
    let (best_small, drop_small) = lml_grid(&xm2, &y2, "fig5b_lml_shallow");
    println!("n = 4 points: max LML = {best_small:.2}, peak-to-p90 drop = {drop_small:.2}");

    banner("comparison");
    println!(
        "peak-to-p90 drop: rich {drop_rich:.2} vs small {drop_small:.2} ({:.0}x shallower)",
        drop_rich / drop_small.max(1e-12)
    );
    println!("(paper: 'LML becomes more peaked with the growth of the dataset size'; the small-data landscape is 'significantly more shallow' yet its peak still yields a usable GPR)");
    assert!(
        drop_rich > drop_small,
        "expected the data-rich landscape to be more peaked"
    );
}
