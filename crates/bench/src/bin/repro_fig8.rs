//! Reproduction of **Fig. 8** — "Comparing AL strategies: Variance
//! Reduction and Cost Efficiency" — and the paper's headline numbers.
//!
//! 50 random partitions of the (poisson1, NP = 32) Performance subset per
//! strategy, run to pool exhaustion; cost unit = runtime x cores
//! (Section V-B4). Outputs:
//!
//! * Fig. 8(a): averaged RMSE and AMSD vs iteration for both strategies
//!   (Cost Efficiency converges more slowly per *iteration*);
//! * Fig. 8(b): averaged cumulative cost vs iteration, and the cost–error
//!   tradeoff curves with the crossover cost C;
//! * the headline: relative error reduction after C — the paper reports a
//!   maximum of 38%, and 25/21/16/13% at 2C/3C/5C/10C.

use alperf_al::metrics::paper_metrics;
use alperf_al::runner::{run_al, AlConfig, AlRun};
use alperf_al::strategy::{CostEfficiency, Strategy, VarianceReduction};
use alperf_al::tradeoff;
use alperf_bench::{banner, load_datasets, write_series};
use alperf_core::analysis::paper_kernel_bounds;
use alperf_data::partition::Partition;
use alperf_gp::kernel::ArdSquaredExponential;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::GprConfig;
use alperf_linalg::matrix::Matrix;
use rayon::prelude::*;

/// Partitions per strategy: the paper uses 50; override with
/// `ALPERF_PARTITIONS` for quicker runs.
fn partitions() -> usize {
    std::env::var("ALPERF_PARTITIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}

fn problem() -> (Matrix, Vec<f64>, Vec<f64>) {
    let data = load_datasets();
    let sub = data
        .performance
        .fix_level("Operator", "poisson1")
        .expect("operator")
        .fix_variable("NP", 32.0)
        .expect("NP");
    let sizes = &sub.variable("Global Problem Size").expect("size").values;
    let freqs = &sub.variable("CPU Frequency").expect("freq").values;
    let runtime = sub.response("Runtime").expect("runtime");
    let y: Vec<f64> = runtime.iter().map(|v| v.log10()).collect();
    // The paper's cost unit: compute seconds x cores (NP = 32 here).
    let cost: Vec<f64> = runtime.iter().map(|r| r * 32.0).collect();
    let n = sub.n_rows();
    let mut flat = Vec::with_capacity(2 * n);
    for i in 0..n {
        flat.push(sizes[i].log10());
        flat.push(freqs[i]);
    }
    (Matrix::from_vec(n, 2, flat).expect("matrix"), y, cost)
}

fn batch(
    x: &Matrix,
    y: &[f64],
    cost: &[f64],
    make: impl Fn() -> Box<dyn Strategy> + Sync,
) -> Vec<AlRun> {
    (0..partitions())
        .into_par_iter()
        .map(|rep| {
            let gpr = GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
                .with_noise_floor(NoiseFloor::recommended())
                .with_restarts(2)
                .with_kernel_bounds(paper_kernel_bounds(2))
                .with_standardize(false)
                .with_seed(200 + rep as u64);
            let cfg = AlConfig {
                max_iters: usize::MAX, // run to pool exhaustion, like the paper
                // Hyperparameters are re-optimized every 4th iteration once
                // the training set is large (the model is re-conditioned on
                // new data every iteration regardless).
                refit_every: 4,
                seed: rep as u64,
                ..AlConfig::new(gpr)
            };
            let part = Partition::paper_default(x.nrows(), 2000 + rep as u64);
            let mut strategy = make();
            run_al(x, y, cost, &part, strategy.as_mut(), &cfg).expect("AL run")
        })
        .collect()
}

fn main() {
    let (x, y, cost) = problem();
    banner(&format!(
        "Fig. 8: {} partitions per strategy on {} jobs (pool exhaustion)",
        partitions(),
        x.nrows()
    ));

    println!("running Variance Reduction ...");
    let vr = batch(&x, &y, &cost, || Box::new(VarianceReduction));
    println!("running Cost Efficiency ...");
    let ce = batch(&x, &y, &cost, || Box::new(CostEfficiency));

    // Fig. 8(a): error and uncertainty reduction per iteration.
    let (_, vr_amsd, vr_rmse) = paper_metrics(&vr);
    let (_, ce_amsd, ce_rmse) = paper_metrics(&ce);
    let iters: Vec<f64> = (0..vr_rmse.len().min(ce_rmse.len()))
        .map(|i| i as f64)
        .collect();
    let k = iters.len();
    write_series(
        "fig8a_error_uncertainty",
        &[
            ("iter", &iters),
            ("rmse_var_red", &vr_rmse.mean[..k]),
            ("rmse_cost_eff", &ce_rmse.mean[..k]),
            ("amsd_var_red", &vr_amsd.mean[..k]),
            ("amsd_cost_eff", &ce_amsd.mean[..k]),
        ],
    );
    // Per-iteration convergence claim: CE converges more slowly.
    let at = |env: &alperf_al::metrics::Envelope, i: usize| env.mean[i.min(env.len() - 1)];
    println!(
        "\nRMSE at iteration 20: VR {:.3} vs CE {:.3} (paper: CE 'does not converge as quickly')",
        at(&vr_rmse, 20),
        at(&ce_rmse, 20)
    );

    // Fig. 8(b): cumulative cost growth + tradeoff curves.
    let cost_env_vr = alperf_al::metrics::envelope(&vr, |r| r.cumulative_cost);
    let cost_env_ce = alperf_al::metrics::envelope(&ce, |r| r.cumulative_cost);
    write_series(
        "fig8b_cumulative_cost",
        &[
            ("iter", &iters),
            ("cost_var_red", &cost_env_vr.mean[..k]),
            ("cost_cost_eff", &cost_env_ce.mean[..k]),
        ],
    );
    println!(
        "cumulative cost at iteration 20: VR {:.0} vs CE {:.0} core-s",
        at(&cost_env_vr, 20),
        at(&cost_env_ce, 20)
    );

    let cmp = tradeoff::compare(&vr, &ce, 60);
    write_series(
        "fig8b_tradeoff",
        &[
            ("cost", &cmp.cost),
            ("rmse_var_red", &cmp.baseline),
            ("rmse_cost_eff", &cmp.contender),
        ],
    );

    banner("headline numbers (paper Section V-B4)");
    match cmp.crossover {
        Some(c) => {
            println!("crossover cost C = {c:.0} core-seconds (paper: C = 1626)");
            println!(
                "max relative error reduction after C: {:.0}% (paper: up to 38%)",
                100.0 * cmp.max_relative_reduction
            );
            println!("reductions at cost multiples (paper: 25/21/16/13% at 2/3/5/10C):");
            for (mult, red) in cmp.reduction_table() {
                match red {
                    Some(r) => println!("  at {mult:>2}C: {:>5.1}%", 100.0 * r),
                    None => println!("  at {mult:>2}C: (undefined)"),
                }
            }
        }
        None => println!("no stable crossover found — inspect fig8b_tradeoff.csv"),
    }
    println!(
        "\nfinal RMSE with all experiments: VR {:.4}, CE {:.4} (curves meet at the maximum cost)",
        vr_rmse.mean.last().expect("non-empty"),
        ce_rmse.mean.last().expect("non-empty")
    );

    // In-terminal sketch of the cost-error tradeoff (both axes log10) —
    // the paper's Fig. 8(b).
    let lc = alperf_bench::plot::log10_series(&cmp.cost);
    let lb = alperf_bench::plot::log10_series(&cmp.baseline);
    let lk = alperf_bench::plot::log10_series(&cmp.contender);
    println!("\nlog10(RMSE) vs log10(cumulative cost):");
    print!(
        "{}",
        alperf_bench::plot::ascii_chart(
            &[
                ("Variance Reduction", &lc, &lb),
                ("Cost Efficiency", &lc, &lk),
            ],
            64,
            16,
        )
    );
}
