//! Ablation **X1** — noise-floor policies (paper §V-B4, future work).
//!
//! The paper fixes overfitting with a static floor `sigma_n >= 1e-1` but
//! suggests "a more general solution should involve a limit that
//! dynamically adjusts. For instance, we expect that the restriction
//! `sigma_n >= 1/sqrt(N)` ... is a viable choice." This ablation runs four
//! policies over the same partitions and compares early-collapse behaviour
//! and final accuracy; it also scores each floor's fitted models by LOO-CV
//! pseudo-likelihood (R&W §5.4.2) — the alternative model-selection method
//! the paper defers to future work.

use alperf_al::metrics::paper_metrics;
use alperf_al::runner::{run_al, AlConfig, AlRun};
use alperf_al::strategy::VarianceReduction;
use alperf_bench::{banner, load_datasets, write_series};
use alperf_core::analysis::paper_kernel_bounds;
use alperf_data::partition::Partition;
use alperf_gp::kernel::{ArdSquaredExponential, Kernel};
use alperf_gp::loocv::loo_cv;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::GprConfig;
use alperf_linalg::matrix::Matrix;
use rayon::prelude::*;

const REPETITIONS: usize = 8;
const ITERS: usize = 50;

fn problem() -> (Matrix, Vec<f64>, Vec<f64>) {
    let data = load_datasets();
    let sub = data
        .performance
        .fix_level("Operator", "poisson1")
        .expect("operator")
        .fix_variable("NP", 32.0)
        .expect("NP");
    let sizes = &sub.variable("Global Problem Size").expect("size").values;
    let freqs = &sub.variable("CPU Frequency").expect("freq").values;
    let y: Vec<f64> = sub
        .response("Runtime")
        .expect("runtime")
        .iter()
        .map(|v| v.log10())
        .collect();
    let n = sub.n_rows();
    let mut flat = Vec::with_capacity(2 * n);
    for i in 0..n {
        flat.push(sizes[i].log10());
        flat.push(freqs[i]);
    }
    (
        Matrix::from_vec(n, 2, flat).expect("matrix"),
        y,
        vec![1.0; n],
    )
}

fn batch(x: &Matrix, y: &[f64], cost: &[f64], floor: NoiseFloor) -> Vec<AlRun> {
    (0..REPETITIONS)
        .into_par_iter()
        .map(|rep| {
            let gpr = GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
                .with_noise_floor(floor)
                .with_kernel_bounds(paper_kernel_bounds(2))
                .with_restarts(2)
                .with_standardize(false)
                .with_seed(300 + rep as u64);
            let cfg = AlConfig {
                max_iters: ITERS,
                seed: rep as u64,
                ..AlConfig::new(gpr)
            };
            let part = Partition::paper_default(x.nrows(), 3000 + rep as u64);
            run_al(x, y, cost, &part, &mut VarianceReduction, &cfg).expect("AL run")
        })
        .collect()
}

fn main() {
    let (x, y, cost) = problem();
    banner(&format!(
        "X1: noise-floor ablation — {REPETITIONS} repetitions x {ITERS} iterations"
    ));

    let policies: [(&str, NoiseFloor); 4] = [
        ("loose_1e-8", NoiseFloor::loose()),
        ("fixed_1e-1", NoiseFloor::recommended()),
        ("dyn_1/sqrtN", NoiseFloor::DynamicInvSqrtN),
        ("dyn_0.5/sqrtN", NoiseFloor::ScaledInvSqrtN(0.5)),
    ];

    println!(
        "{:<15} {:>14} {:>12} {:>12} {:>12}",
        "policy", "min early AMSD", "final AMSD", "final RMSE", "LOO-LPL"
    );
    let mut names: Vec<&str> = Vec::new();
    let mut final_rmses = Vec::new();
    for (name, floor) in policies {
        let runs = batch(&x, &y, &cost, floor);
        let (_, amsd, rmse) = paper_metrics(&runs);
        let early = amsd.lo[..6.min(amsd.len())]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let final_amsd = *amsd.mean.last().expect("non-empty");
        let final_rmse = *rmse.mean.last().expect("non-empty");
        // LOO-CV pseudo-likelihood of the final model of the first run,
        // refit at the run's last hyperparameters.
        let run0 = &runs[0];
        let train = &run0.final_train;
        let xs = x.select_rows(train);
        let ys: Vec<f64> = train.iter().map(|&i| y[i]).collect();
        let mut kernel = ArdSquaredExponential::unit(2);
        // Recover hyperparameters from the recorded noise + a fresh fit.
        let last = run0.history.last().expect("non-empty");
        let _ = &mut kernel; // kernel params refit below via LML for simplicity
        let gpr = GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
            .with_noise_floor(floor)
            .with_kernel_bounds(paper_kernel_bounds(2))
            .with_restarts(2)
            .with_standardize(false);
        let (model, out) = alperf_gp::optimize::fit_gpr(&xs, &ys, &gpr).expect("refit");
        let mut k2 = ArdSquaredExponential::unit(2);
        k2.set_params(&out.theta[..3]);
        let lpl = loo_cv(&k2, model.noise_std(), &xs, &ys)
            .map(|l| l.log_pseudo_likelihood)
            .unwrap_or(f64::NAN);
        println!(
            "{:<15} {:>14.3e} {:>12.4} {:>12.4} {:>12.1}",
            name, early, final_amsd, final_rmse, lpl
        );
        let _ = last;
        names.push(name);
        final_rmses.push(final_rmse);
    }
    write_series("ablation_noise_final_rmse", &[("final_rmse", &final_rmses)]);
    println!("\npolicies (row order): {names:?}");
    println!("\nreading: the loose floor shows the early AMSD collapse; the fixed 1e-1 floor and the dynamic 1/sqrt(N) floors avoid it, with the dynamic floors relaxing as evidence accumulates (the paper's proposed future-work behaviour).");
}
