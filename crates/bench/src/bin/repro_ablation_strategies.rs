//! Ablation **X5** — the full strategy zoo on equal footing.
//!
//! Runs every implemented acquisition strategy — the paper's two, the EMCM
//! baseline it critiques, the advanced extensions (ALC, Thompson), random
//! sampling, and the classical *static* designs of Jain's textbook
//! (Section II-B: "fixed experiment designs ... do not change as
//! measurements become available") — on the same partitions of the focus
//! slice, and reports test RMSE at a common experiment budget.

use alperf_al::advanced::{IntegratedVarianceReduction, ThompsonSampling};
use alperf_al::baselines::{evaluate_static, StaticDesign};
use alperf_al::emcm::Emcm;
use alperf_al::runner::{run_al, AlConfig};
use alperf_al::strategy::{CostEfficiency, RandomSampling, Strategy, VarianceReduction};
use alperf_bench::{banner, load_datasets, write_series};
use alperf_core::analysis::paper_kernel_bounds;
use alperf_data::partition::Partition;
use alperf_gp::kernel::{ArdSquaredExponential, SquaredExponential};
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::GprConfig;
use alperf_linalg::matrix::Matrix;

const REPETITIONS: usize = 5;
const BUDGET: usize = 30; // experiments per run

fn problem() -> (Matrix, Vec<f64>, Vec<f64>) {
    let data = load_datasets();
    let sub = data
        .performance
        .fix_level("Operator", "poisson1")
        .expect("operator")
        .fix_variable("NP", 32.0)
        .expect("NP");
    let sizes = &sub.variable("Global Problem Size").expect("size").values;
    let freqs = &sub.variable("CPU Frequency").expect("freq").values;
    let y: Vec<f64> = sub
        .response("Runtime")
        .expect("runtime")
        .iter()
        .map(|v| v.log10())
        .collect();
    let n = sub.n_rows();
    let mut flat = Vec::with_capacity(2 * n);
    for i in 0..n {
        flat.push(sizes[i].log10());
        flat.push(freqs[i]);
    }
    (
        Matrix::from_vec(n, 2, flat).expect("matrix"),
        y,
        vec![1.0; n],
    )
}

fn gpr(seed: u64) -> GprConfig {
    GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
        .with_noise_floor(NoiseFloor::recommended())
        .with_kernel_bounds(paper_kernel_bounds(2))
        .with_restarts(2)
        .with_standardize(false)
        .with_seed(seed)
}

fn main() {
    let (x, y, cost) = problem();
    banner(&format!(
        "X5: strategy comparison at a budget of {BUDGET} experiments ({REPETITIONS} partitions)"
    ));

    type Maker = Box<dyn Fn() -> Box<dyn Strategy>>;
    let adaptive: Vec<(&str, Maker)> = vec![
        (
            "variance_reduction",
            Box::new(|| Box::new(VarianceReduction)),
        ),
        ("cost_efficiency", Box::new(|| Box::new(CostEfficiency))),
        (
            "alc_integrated",
            Box::new(|| Box::new(IntegratedVarianceReduction)),
        ),
        (
            "thompson",
            Box::new(|| Box::new(ThompsonSampling::default())),
        ),
        (
            "emcm",
            Box::new(|| Box::new(Emcm::new(4, Box::new(SquaredExponential::unit()), 0.1))),
        ),
        ("random", Box::new(|| Box::new(RandomSampling))),
    ];

    let mut names: Vec<String> = Vec::new();
    let mut rmses: Vec<f64> = Vec::new();
    for (name, make) in &adaptive {
        let mut total = 0.0;
        for rep in 0..REPETITIONS {
            let part = Partition::paper_default(x.nrows(), 7000 + rep as u64);
            let cfg = AlConfig {
                max_iters: BUDGET,
                seed: rep as u64,
                ..AlConfig::new(gpr(700 + rep as u64))
            };
            let mut s = make();
            let run = run_al(&x, &y, &cost, &part, s.as_mut(), &cfg).expect("AL run");
            total += run.history.last().expect("non-empty").rmse;
        }
        let mean = total / REPETITIONS as f64;
        println!("{name:<22} mean test RMSE: {mean:.4}");
        names.push(name.to_string());
        rmses.push(mean);
    }

    // Static designs at the same budget (pool + test from the same splits).
    for design in [
        StaticDesign::Random,
        StaticDesign::Stratified,
        StaticDesign::Corners,
    ] {
        let mut total = 0.0;
        for rep in 0..REPETITIONS {
            let part = Partition::paper_default(x.nrows(), 7000 + rep as u64);
            let res = evaluate_static(
                design,
                &x,
                &y,
                &cost,
                &part.active,
                &part.test,
                BUDGET + 1, // adaptive runs see initial + BUDGET points
                &gpr(800 + rep as u64),
                rep as u64,
            )
            .expect("static design");
            total += res.rmse;
        }
        let mean = total / REPETITIONS as f64;
        let name = format!("static_{design:?}").to_lowercase();
        println!("{name:<22} mean test RMSE: {mean:.4}");
        names.push(name);
        rmses.push(mean);
    }

    let name_refs: Vec<f64> = (0..rmses.len()).map(|i| i as f64).collect();
    write_series(
        "ablation_strategies",
        &[("strategy_index", &name_refs), ("mean_rmse", &rmses)],
    );
    println!("\nstrategy order: {names:?}");
    println!("\nreading: coverage-oriented adaptive strategies (VR, ALC, EMCM) and well-chosen static designs are all competitive at this generous budget on a smooth 2-D slice — the paper's case for adaptivity lives elsewhere: tiny budgets (X2: EMCM/random are 2-4x worse than VR in the first iterations), unknown noise structure, and the *cost* dimension (Fig. 8), none of which a fixed design can react to. Cost Efficiency ranks poorly here by construction (equal per-experiment cost removes its advantage); Thompson optimizes for extremes, not coverage.");
}
