//! Ablation **X4** — how aggressive should cost-awareness be?
//!
//! The paper's Cost Efficiency criterion (Eq. 14) subtracts the *full*
//! predicted log-cost from the predictive SD. The generalized criterion
//! `sigma - lambda * mu` interpolates between pure Variance Reduction
//! (`lambda = 0`) and Cost Efficiency (`lambda = 1`) and extrapolates past
//! it (`lambda = 2`). Sweeping lambda quantifies the design choice: is the
//! paper's lambda = 1 near the sweet spot of the cost–error tradeoff?

use alperf_al::runner::{run_al, AlConfig, AlRun};
use alperf_al::strategy::CostWeighted;
use alperf_bench::{banner, load_datasets, write_series};
use alperf_core::analysis::paper_kernel_bounds;
use alperf_data::partition::Partition;
use alperf_gp::kernel::ArdSquaredExponential;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::GprConfig;
use alperf_linalg::matrix::Matrix;
use rayon::prelude::*;

const REPETITIONS: usize = 6;
const LAMBDAS: [f64; 5] = [0.0, 0.25, 0.5, 1.0, 2.0];

fn problem() -> (Matrix, Vec<f64>, Vec<f64>) {
    let data = load_datasets();
    let sub = data
        .performance
        .fix_level("Operator", "poisson1")
        .expect("operator")
        .fix_variable("NP", 32.0)
        .expect("NP");
    let sizes = &sub.variable("Global Problem Size").expect("size").values;
    let freqs = &sub.variable("CPU Frequency").expect("freq").values;
    let runtime = sub.response("Runtime").expect("runtime");
    let y: Vec<f64> = runtime.iter().map(|v| v.log10()).collect();
    let cost: Vec<f64> = runtime.iter().map(|r| r * 32.0).collect();
    let n = sub.n_rows();
    let mut flat = Vec::with_capacity(2 * n);
    for i in 0..n {
        flat.push(sizes[i].log10());
        flat.push(freqs[i]);
    }
    (Matrix::from_vec(n, 2, flat).expect("matrix"), y, cost)
}

fn batch(x: &Matrix, y: &[f64], cost: &[f64], lambda: f64) -> Vec<AlRun> {
    (0..REPETITIONS)
        .into_par_iter()
        .map(|rep| {
            let gpr = GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
                .with_noise_floor(NoiseFloor::recommended())
                .with_kernel_bounds(paper_kernel_bounds(2))
                .with_restarts(2)
                .with_standardize(false)
                .with_seed(600 + rep as u64);
            let cfg = AlConfig {
                max_iters: 80,
                refit_every: 4,
                seed: rep as u64,
                ..AlConfig::new(gpr)
            };
            let part = Partition::paper_default(x.nrows(), 6000 + rep as u64);
            run_al(x, y, cost, &part, &mut CostWeighted { lambda }, &cfg).expect("AL run")
        })
        .collect()
}

fn main() {
    let (x, y, cost) = problem();
    banner(&format!(
        "X4: cost-awareness sweep (sigma - lambda*mu), {REPETITIONS} reps x 80 iters"
    ));
    println!(
        "{:<8} {:>12} {:>14} {:>18}",
        "lambda", "final RMSE", "total cost", "RMSE at cost<=500"
    );
    let mut lam_col = Vec::new();
    let mut rmse_col = Vec::new();
    let mut cost_col = Vec::new();
    let mut budget_col = Vec::new();
    for &lambda in &LAMBDAS {
        let runs = batch(&x, &y, &cost, lambda);
        let final_rmse: f64 = runs
            .iter()
            .map(|r| r.history.last().expect("non-empty").rmse)
            .sum::<f64>()
            / runs.len() as f64;
        let total_cost: f64 = runs
            .iter()
            .map(|r| r.history.last().expect("non-empty").cumulative_cost)
            .sum::<f64>()
            / runs.len() as f64;
        // RMSE once a fixed budget (500 core-s) is exhausted.
        let at_budget: f64 = runs
            .iter()
            .map(|r| {
                r.history
                    .iter()
                    .take_while(|rec| rec.cumulative_cost <= 500.0)
                    .last()
                    .map(|rec| rec.rmse)
                    .unwrap_or(f64::NAN)
            })
            .filter(|v| v.is_finite())
            .sum::<f64>()
            / runs.len() as f64;
        println!("{lambda:<8} {final_rmse:>12.4} {total_cost:>14.0} {at_budget:>18.4}");
        lam_col.push(lambda);
        rmse_col.push(final_rmse);
        cost_col.push(total_cost);
        budget_col.push(at_budget);
    }
    write_series(
        "ablation_lambda",
        &[
            ("lambda", &lam_col),
            ("final_rmse", &rmse_col),
            ("total_cost", &cost_col),
            ("rmse_at_budget_500", &budget_col),
        ],
    );
    println!("\nreading: lambda=0 spends an order of magnitude more for its accuracy; any cost-awareness slashes total cost, and under a fixed 500 core-s budget every 0 < lambda <= 1 beats lambda=0 by ~3x. On this simulated slice the sweet spot is moderate (lambda ~ 0.25–0.5) with the paper's lambda=1 close behind; over-weighting cost (lambda=2) degrades accuracy — the criterion is a genuine tradeoff dial, not monotone.");
}
