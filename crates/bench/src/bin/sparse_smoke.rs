//! CI smoke for the approximate-GPR tier: one low-rank fit at n=2000 and
//! one short AL campaign running entirely on the sparse path, with the
//! telemetry trace written to disk so `validate_trace` can check it.
//!
//! Usage:
//!   sparse_smoke [--quick] [--trace <path>]
//!
//! Checks (exit 1 on any failure):
//! * `fit_surrogate` with `FitTier::Approximate` at n=2000 produces a
//!   sparse model (rank > 0, rank ≪ n) with finite predictions;
//! * a VR campaign over a 2000-point space stays on the sparse tier,
//!   finishes every iteration with finite metrics, and does not regress
//!   RMSE;
//! * the emitted JSONL trace contains `gp.sparse_fit` spans and
//!   fitc-tier `al.iteration` records (`validate_trace` then checks the
//!   full schema contract in CI).

use alperf_al::runner::{run_al, AlConfig};
use alperf_al::strategy::VarianceReduction;
use alperf_bench::fitbench::approx_gpr_config;
use alperf_bench::overhead::training_data;
use alperf_data::partition::Partition;
use alperf_gp::optimize::fit_surrogate;
use alperf_linalg::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;

const N: usize = 2000;

fn fail(msg: &str) -> ExitCode {
    eprintln!("sparse_smoke: FAIL — {msg}");
    ExitCode::FAILURE
}

/// Smooth 2-D response with seeded noise over the same input layout the
/// fit benchmarks use.
fn campaign_data(n: usize) -> (Matrix, Vec<f64>, Vec<f64>) {
    let (x, _) = training_data(n);
    let mut rng = StdRng::seed_from_u64(23);
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let p = x[(i, 0)];
            let s = x[(i, 1)];
            (0.6 * p).sin() * 2.0 + 0.8 * s + rng.gen_range(-0.1..0.1)
        })
        .collect();
    let cost = vec![1.0; n];
    (x, y, cost)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "sparse_smoke_trace.jsonl".to_string());
    let (restarts, subsample, iters) = if quick { (2, 100, 8) } else { (5, 200, 20) };

    // Everything below runs with telemetry on and the JSONL sink attached:
    // the trace is a deliverable, not a side effect.
    if let Err(e) = alperf_obs::sink::install_jsonl(std::path::Path::new(&trace_path)) {
        return fail(&format!("cannot open trace {trace_path}: {e}"));
    }
    alperf_obs::set_enabled(true);

    // 1. One approximate fit at n=2000.
    let cfg = approx_gpr_config(restarts, subsample);
    let (x, y) = training_data(N);
    let model = match fit_surrogate(&x, &y, &cfg) {
        Ok((m, _)) => m,
        Err(e) => return fail(&format!("approximate fit at n={N}: {e}")),
    };
    if !model.is_sparse() {
        return fail("n=2000 fit did not land on the sparse tier");
    }
    if model.rank() == 0 || model.rank() >= N {
        return fail(&format!("implausible rank {}", model.rank()));
    }
    match model.predict_one(x.row(0)) {
        Ok(p) if p.mean.is_finite() && p.std.is_finite() => {}
        _ => return fail("sparse prediction not finite"),
    }
    println!(
        "fit: tier={} rank={} n={N} ok",
        model.tier_name(),
        model.rank()
    );

    // 2. A short campaign over the same 2000-point space, initial train
    // large enough that every refit is genuinely low-rank.
    let (cx, cy, cost) = campaign_data(N);
    let part = Partition::random(N, 400, 0.5, 11);
    let al_cfg = AlConfig {
        max_iters: iters,
        seed: 3,
        ..AlConfig::new(approx_gpr_config(restarts, subsample))
    };
    let run = match run_al(&cx, &cy, &cost, &part, &mut VarianceReduction, &al_cfg) {
        Ok(r) => r,
        Err(e) => return fail(&format!("campaign: {e}")),
    };
    alperf_obs::set_enabled(false);
    alperf_obs::sink::uninstall();

    if run.history.len() != iters {
        return fail(&format!(
            "campaign stopped at {}/{} iterations",
            run.history.len(),
            iters
        ));
    }
    for r in &run.history {
        if !(r.rmse.is_finite() && r.amsd.is_finite() && r.sigma_at_chosen.is_finite()) {
            return fail("non-finite campaign metrics");
        }
    }
    let first = run.history.first().unwrap().rmse;
    let last = run.history.last().unwrap().rmse;
    // The initial design is already large (400 points), so the headroom for
    // improvement is small; the smoke only requires that learning on the
    // sparse tier never makes the model meaningfully worse.
    if last > first * 1.05 {
        return fail(&format!("campaign RMSE regressed: {first} -> {last}"));
    }
    println!("campaign: {iters} iterations, rmse {first:.4} -> {last:.4}");

    // 3. The trace actually carries the sparse-tier telemetry.
    let text = match std::fs::read_to_string(&trace_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read back {trace_path}: {e}")),
    };
    if !text.contains("\"gp.sparse_fit\"") {
        return fail("trace has no gp.sparse_fit spans");
    }
    if !text.contains("\"al.iteration\"") {
        return fail("trace has no al.iteration records");
    }
    if !text.contains("\"tier\":\"fitc\"") && !text.contains("\"tier\": \"fitc\"") {
        return fail("trace has no fitc-tier iteration records");
    }
    println!(
        "trace: {} lines -> {trace_path} (run `validate_trace {trace_path}` for the schema gate)",
        text.lines().count()
    );
    println!("sparse_smoke: PASS");
    ExitCode::SUCCESS
}
