//! Chaos smoke + replay for the fault-injection harness.
//!
//! Record mode runs a small fault-injected campaign plus an AL loop over a
//! faulty oracle with the JSONL trace sink installed, so every retry, every
//! terminal failure, and every degraded AL iteration lands in the trace:
//!
//!   chaos_replay --record <out.jsonl> [--failure-rate R] [--seed S]
//!
//! Replay mode reads a recorded trace, rebuilds the campaign's fault plan
//! and retry policy from its `cluster.fault_plan` record, re-executes the
//! measurement batch, and checks that exactly the same jobs fail with the
//! same taxonomy and attempt counts — the determinism contract, enforced
//! against a file on disk rather than within one process:
//!
//!   chaos_replay <trace.jsonl>
//!
//! Exit codes: 0 ok / replay matches; 1 replay mismatch; 2 usage;
//! 3 unreadable or malformed trace.

use alperf_al::oracle::SeededFaultOracle;
use alperf_al::runner::run_al_with_oracle;
use alperf_al::strategy::VarianceReduction;
use alperf_cluster::executor::{self, JobOutcome};
use alperf_cluster::fault::{FaultPlan, RetryPolicy};
use alperf_cluster::workload::{self, WorkloadSpec};
use alperf_cluster::Campaign;
use alperf_data::partition::Partition;
use alperf_gp::kernel::SquaredExponential;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::GprConfig;
use alperf_linalg::matrix::Matrix;
use alperf_trace::read_path;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: chaos_replay --record <out.jsonl> [--failure-rate R] [--seed S]\n\
         \x20      chaos_replay <trace.jsonl>"
    );
    ExitCode::from(2)
}

/// The small chaos campaign both modes agree on (sizes come from the
/// trace's fault-plan record on replay, so record-side changes are safe).
fn campaign(seed: u64, failure_rate: f64) -> Campaign {
    Campaign {
        spec: WorkloadSpec {
            focus_size_levels: 6,
            default_size_levels: 2,
            failure_rate,
            seed,
            ..Default::default()
        },
        workers: 4,
        ..Default::default()
    }
}

/// A synthetic 1-D AL problem with a faulty experiment oracle, sized to
/// finish in well under a second.
fn run_al_chaos(seed: u64, failure_rate: f64) -> Result<(usize, usize), String> {
    let n = 48;
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<f64> = (0..n).map(|i| i as f64 * 8.0 / n as f64).collect();
    let y: Vec<f64> = xs
        .iter()
        .map(|v| v.sin() * 2.0 + rng.gen_range(-0.15..0.15))
        .collect();
    let cost: Vec<f64> = xs.iter().map(|v| 1.0 + v * v).collect();
    let x = Matrix::from_vec(n, 1, xs).map_err(|e| format!("{e:?}"))?;
    let part = Partition::random(n, 2, 0.8, 5);
    let gpr = GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::Fixed(0.05))
        .with_restarts(2)
        .with_seed(7);
    let cfg = alperf_al::AlConfig {
        max_iters: 18,
        seed: 3,
        ..alperf_al::AlConfig::new(gpr)
    };
    let oracle = SeededFaultOracle::new(seed ^ 0x9d, failure_rate);
    let run = run_al_with_oracle(&x, &y, &cost, &part, &mut VarianceReduction, &oracle, &cfg)
        .map_err(|e| format!("{e:?}"))?;
    Ok((run.history.len(), run.lost.len()))
}

fn record(out: &str, failure_rate: f64, seed: u64) -> ExitCode {
    if let Err(e) = alperf_obs::sink::install_jsonl(Path::new(out)) {
        eprintln!("chaos_replay: cannot open {out}: {e}");
        return ExitCode::from(3);
    }
    alperf_obs::set_enabled(true);
    let result = campaign(seed, failure_rate).run();
    let al = result
        .as_ref()
        .ok()
        .map(|_| run_al_chaos(seed, failure_rate));
    alperf_obs::set_enabled(false);
    alperf_obs::sink::uninstall();
    match (result, al) {
        (Ok(camp), Some(Ok((iters, lost)))) => {
            println!(
                "recorded {out}: {} jobs completed, {} failed terminally, \
                 makespan {:.1}s; AL: {iters} iterations, {lost} lost",
                camp.records.len(),
                camp.failures.len(),
                camp.makespan
            );
            ExitCode::SUCCESS
        }
        (Err(e), _) => {
            eprintln!("chaos_replay: campaign failed: {e}");
            ExitCode::FAILURE
        }
        (_, Some(Err(e))) => {
            eprintln!("chaos_replay: AL run failed: {e}");
            ExitCode::FAILURE
        }
        (_, None) => unreachable!("al only skipped when the campaign errored"),
    }
}

/// A terminal failure, normalized for comparison: (job idx, attempts, kind).
type FailureKey = (u64, u64, String);

fn replay(path: &str) -> ExitCode {
    let trace = match read_path(Path::new(path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("chaos_replay: {path}: {e}");
            return ExitCode::from(3);
        }
    };
    let Some(plan_rec) = trace.records_named("cluster.fault_plan").next() else {
        eprintln!("chaos_replay: {path}: no cluster.fault_plan record — not a chaos trace");
        return ExitCode::from(3);
    };
    let f = |key: &str| -> Result<f64, ExitCode> {
        plan_rec.f64(key).ok_or_else(|| {
            eprintln!("chaos_replay: {path}: fault_plan record missing \"{key}\"");
            ExitCode::from(3)
        })
    };
    let (spec, plan, retry, workers) = match (|| {
        let spec = WorkloadSpec {
            focus_size_levels: f("focus_size_levels")? as usize,
            default_size_levels: f("default_size_levels")? as usize,
            repeats: f("repeats")? as usize,
            failure_rate: f("failure_rate")?,
            seed: f("campaign_seed")? as u64,
        };
        let plan = FaultPlan {
            seed: f("plan_seed")? as u64,
            failure_rate: f("failure_rate")?,
            permanent_fraction: f("permanent_fraction")?,
            second_attempt_fraction: f("second_attempt_fraction")?,
        };
        let retry = RetryPolicy {
            max_attempts: f("max_attempts")? as u32,
            base_backoff_ns: f("base_backoff_ns")? as u64,
            multiplier: f("multiplier")?,
            max_backoff_ns: f("max_backoff_ns")? as u64,
            jitter: f("jitter")?,
        };
        Ok::<_, ExitCode>((spec, plan, retry, f("workers")? as usize))
    })() {
        Ok(v) => v,
        Err(code) => return code,
    };

    // Re-execute the measurement batch under the reconstructed plan.
    let model = alperf_hpgmg::model::PerfModel::calibrated();
    let sampler = alperf_cluster::power::PowerSampler::default();
    let requests = workload::build_requests(&spec, &model);
    let outcomes = match executor::measure_all(
        &model,
        &sampler,
        &requests,
        spec.seed,
        workers.max(1),
        Some(&plan),
        &retry,
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("chaos_replay: re-execution failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut replayed: Vec<FailureKey> = outcomes
        .iter()
        .filter_map(|o| match o {
            JobOutcome::Failed {
                idx,
                attempts,
                fault,
                ..
            } => Some((*idx as u64, *attempts as u64, fault.kind.name().to_string())),
            JobOutcome::Ok { .. } => None,
        })
        .collect();
    replayed.sort();

    let mut recorded: Vec<FailureKey> = Vec::new();
    for rec in trace.records_named("cluster.failed") {
        match (rec.f64("idx"), rec.f64("attempts"), rec.str("kind")) {
            (Some(idx), Some(attempts), Some(kind)) => {
                recorded.push((idx as u64, attempts as u64, kind.to_string()));
            }
            _ => {
                eprintln!("chaos_replay: {path}: malformed cluster.failed record");
                return ExitCode::from(3);
            }
        }
    }
    recorded.sort();

    if replayed == recorded {
        println!(
            "{path}: REPLAY OK — {} jobs, {} terminal failures reproduced \
             bit-for-bit (plan seed {}, rate {})",
            requests.len(),
            replayed.len(),
            plan.seed,
            plan.failure_rate
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{path}: REPLAY MISMATCH — trace has {} failures, replay produced {}",
            recorded.len(),
            replayed.len()
        );
        for k in recorded.iter().filter(|k| !replayed.contains(k)) {
            eprintln!("  recorded only: job {} attempts {} kind {}", k.0, k.1, k.2);
        }
        for k in replayed.iter().filter(|k| !recorded.contains(k)) {
            eprintln!("  replayed only: job {} attempts {} kind {}", k.0, k.1, k.2);
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    alperf_bench::threads_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    if args[0] == "--record" {
        let Some(out) = args.get(1) else {
            return usage();
        };
        let mut failure_rate = 0.3;
        let mut seed = WorkloadSpec::default().seed;
        let mut i = 2;
        while i < args.len() {
            match (args[i].as_str(), args.get(i + 1)) {
                ("--failure-rate", Some(v)) => match v.parse() {
                    Ok(r) => failure_rate = r,
                    Err(_) => return usage(),
                },
                ("--seed", Some(v)) => match v.parse() {
                    Ok(s) => seed = s,
                    Err(_) => return usage(),
                },
                _ => return usage(),
            }
            i += 2;
        }
        record(out, failure_rate, seed)
    } else if args.len() == 1 {
        replay(&args[0])
    } else {
        usage()
    }
}
