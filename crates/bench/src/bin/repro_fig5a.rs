//! Reproduction of **Fig. 5(a)** — GPR surfaces over two controlled
//! variables from a small training set.
//!
//! Four randomly selected training points over (log10 Problem Size, CPU
//! Frequency); the GPR (hyperparameters fit by LML maximization) yields
//! three surfaces: the lower 95% bound, the predictive mean, and the upper
//! 95% bound. The paper's observations, checked numerically:
//!
//! * near the training points the band is tight;
//! * "further away from the training points, e.g., where both Frequency
//!   and Problem Size are near their maximum values, the confidence
//!   interval bounds are further apart" — AL would sample there next.

use alperf_bench::{banner, load_datasets, write_series};
use alperf_gp::kernel::ArdSquaredExponential;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::{fit_gpr, GprConfig};
use alperf_linalg::matrix::Matrix;
use alperf_linalg::vector::linspace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let data = load_datasets();
    banner("Fig. 5(a): GPR surfaces from 4 training points over (size, freq)");
    let sub = data
        .performance
        .fix_level("Operator", "poisson1")
        .expect("operator")
        .fix_variable("NP", 32.0)
        .expect("NP");
    let sizes = &sub.variable("Global Problem Size").expect("size").values;
    let freqs = &sub.variable("CPU Frequency").expect("freq").values;
    let rts = sub.response("Runtime").expect("runtime");

    let mut rng = StdRng::seed_from_u64(55);
    let mut idx: Vec<usize> = (0..sub.n_rows()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(4);
    let mut flat = Vec::new();
    let mut y = Vec::new();
    for &i in &idx {
        flat.push(sizes[i].log10());
        flat.push(freqs[i]);
        y.push(rts[i].log10());
    }
    let xm = Matrix::from_vec(4, 2, flat.clone()).expect("matrix");
    println!("training points (log10 size, freq, log10 runtime):");
    for (i, &row) in idx.iter().enumerate() {
        println!(
            "  ({:.2}, {:.1}) -> {:.3}",
            flat[2 * i],
            flat[2 * i + 1],
            rts[row].log10()
        );
    }

    // Length scales are bounded to ~2.5 decades of size / 2.5 GHz so the
    // shallow 4-point LML cannot flatten the surface into a plane — the
    // paper's Fig. 5(a) surfaces are visibly curved, implying comparable
    // bounds in its scikit-learn kernel.
    let cfg = GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
        .with_noise_floor(NoiseFloor::recommended())
        .with_kernel_bounds(vec![
            (0.05f64.ln(), 2.5f64.ln()),
            (0.05f64.ln(), 2.5f64.ln()),
            (1e-5f64.ln(), 1e5f64.ln()),
        ])
        .with_restarts(5)
        .with_seed(1);
    let (gpr, out) = fit_gpr(&xm, &y, &cfg).expect("GPR fit");
    println!("fitted theta = {:?} (LML {:.2})", out.theta, out.lml);

    // Surface grids.
    let gs = linspace(3.0, 9.05, 30); // log10 size over the Table I range
    let gf = linspace(1.2, 2.4, 25);
    let mut cs = Vec::new();
    let mut cf = Vec::new();
    let mut lo = Vec::new();
    let mut mean = Vec::new();
    let mut hi = Vec::new();
    for &s in &gs {
        for &f in &gf {
            let p = gpr.predict_one(&[s, f]).expect("prediction");
            let (a, b) = p.ci95();
            cs.push(s);
            cf.push(f);
            lo.push(a);
            mean.push(p.mean);
            hi.push(b);
        }
    }
    write_series(
        "fig5a_surfaces",
        &[
            ("log10_size", &cs),
            ("freq", &cf),
            ("ci_low", &lo),
            ("mean", &mean),
            ("ci_high", &hi),
        ],
    );

    // Checks: CI width at training points vs at the (max size, max freq) corner.
    let at_train: Vec<f64> = (0..4)
        .map(|i| {
            let p = gpr
                .predict_one(&[flat[2 * i], flat[2 * i + 1]])
                .expect("prediction");
            let (a, b) = p.ci95();
            b - a
        })
        .collect();
    let corner = {
        let p = gpr.predict_one(&[9.04, 2.4]).expect("prediction");
        let (a, b) = p.ci95();
        b - a
    };
    let mean_train = at_train.iter().sum::<f64>() / 4.0;
    println!("\nmean 95% CI width at the training points: {mean_train:.3}");
    println!("95% CI width at the far corner (max size, max freq): {corner:.3}");
    println!(
        "ratio {:.1}x  (paper: 'the confidence interval bounds are further apart' far from data — 'these are the areas where AL should select candidates')",
        corner / mean_train
    );
    assert!(corner > mean_train, "far corner must be more uncertain");
}
