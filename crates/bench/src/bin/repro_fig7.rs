//! Reproduction of **Fig. 7** — "Strong influence of the limit on the
//! noise-level sigma_n on the quality of AL."
//!
//! Ten AL repetitions (random partitions of the same Performance subset)
//! tracking the paper's three monitoring metrics per iteration —
//! `sigma_f(x*)`, AMSD, RMSE — under two noise floors:
//!
//! * (a) `sigma_n >= 1e-8`: the paper calls the behaviour "inadequate":
//!   `sigma_f(x)` collapses to negligible values within the first few
//!   iterations and AMSD dives far below its stable value (overfitting);
//! * (b) `sigma_n >= 1e-1`: "the new trajectories do not demonstrate the
//!   aforementioned downsides"; AMSD converges and so does RMSE.
//!
//! Flags/environment:
//! * `--quick` — fewer repetitions/iterations (CI smoke run; the paper
//!   observation check still holds);
//! * `ALPERF_OBS_TRACE` / `ALPERF_OBS_SNAPSHOT` — run with telemetry,
//!   writing a JSONL trace and/or Prometheus-style metrics snapshot (see
//!   `alperf_bench::obs_from_env`). The telemetry-on trajectories are
//!   bit-identical to telemetry-off (crates/al/tests/obs_determinism.rs).

use alperf_al::metrics::paper_metrics;
use alperf_al::runner::{run_al, AlConfig, AlRun};
use alperf_al::strategy::VarianceReduction;
use alperf_bench::{banner, load_datasets, write_series};
use alperf_core::analysis::paper_kernel_bounds;
use alperf_data::partition::Partition;
use alperf_gp::kernel::ArdSquaredExponential;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::GprConfig;
use alperf_linalg::matrix::Matrix;
use rayon::prelude::*;

fn scale() -> (usize, usize) {
    if std::env::args().any(|a| a == "--quick") {
        (3, 25)
    } else {
        (10, 60)
    }
}

fn problem() -> (Matrix, Vec<f64>, Vec<f64>) {
    let data = load_datasets();
    let sub = data
        .performance
        .fix_level("Operator", "poisson1")
        .expect("operator")
        .fix_variable("NP", 32.0)
        .expect("NP");
    let sizes = &sub.variable("Global Problem Size").expect("size").values;
    let freqs = &sub.variable("CPU Frequency").expect("freq").values;
    let y: Vec<f64> = sub
        .response("Runtime")
        .expect("runtime")
        .iter()
        .map(|v| v.log10())
        .collect();
    let n = sub.n_rows();
    let mut flat = Vec::with_capacity(2 * n);
    for i in 0..n {
        flat.push(sizes[i].log10());
        flat.push(freqs[i]);
    }
    (
        Matrix::from_vec(n, 2, flat).expect("matrix"),
        y,
        vec![1.0; n],
    )
}

fn batch(x: &Matrix, y: &[f64], cost: &[f64], floor: NoiseFloor) -> Vec<AlRun> {
    let (repetitions, iters) = scale();
    (0..repetitions)
        .into_par_iter()
        .map(|rep| {
            let gpr = GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
                .with_noise_floor(floor)
                .with_restarts(3)
                .with_kernel_bounds(paper_kernel_bounds(2))
                .with_standardize(false)
                .with_seed(100 + rep as u64);
            let cfg = AlConfig {
                max_iters: iters,
                seed: rep as u64,
                ..AlConfig::new(gpr)
            };
            let part = Partition::paper_default(x.nrows(), 1000 + rep as u64);
            run_al(x, y, cost, &part, &mut VarianceReduction, &cfg).expect("AL run")
        })
        .collect()
}

fn report(tag: &str, runs: &[AlRun]) -> (f64, f64, f64, f64) {
    let (sigma, amsd, rmse) = paper_metrics(runs);
    let iters: Vec<f64> = (0..sigma.len()).map(|i| i as f64).collect();
    write_series(
        &format!("fig7_{tag}"),
        &[
            ("iter", &iters),
            ("sigma_at_chosen_mean", &sigma.mean),
            ("sigma_at_chosen_min", &sigma.lo),
            ("amsd_mean", &amsd.mean),
            ("amsd_min", &amsd.lo),
            ("rmse_mean", &rmse.mean),
        ],
    );
    // Early collapse diagnostics: the minimum sigma_f(x*) and AMSD seen in
    // the first 5 iterations across all runs.
    let early_sigma_min = sigma.lo[..5.min(sigma.len())]
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let early_amsd_min = amsd.lo[..5.min(amsd.len())]
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let late_amsd = amsd.mean[amsd.len().saturating_sub(10)..]
        .iter()
        .sum::<f64>()
        / 10f64.min(amsd.len() as f64);
    let late_rmse = rmse.mean[rmse.len().saturating_sub(10)..]
        .iter()
        .sum::<f64>()
        / 10f64.min(rmse.len() as f64);
    (early_sigma_min, early_amsd_min, late_amsd, late_rmse)
}

fn main() {
    alperf_bench::threads_from_env();
    let telemetry = alperf_bench::obs_from_env();
    let (repetitions, iters) = scale();
    let (x, y, cost) = problem();
    banner(&format!(
        "Fig. 7: {repetitions} AL repetitions x {iters} iterations on {} jobs",
        x.nrows()
    ));

    println!("running (a) sigma_n >= 1e-8 ...");
    let loose = batch(&x, &y, &cost, NoiseFloor::loose());
    let (ls, la, llate_amsd, llate_rmse) = report("a_loose", &loose);

    println!("running (b) sigma_n >= 1e-1 ...");
    let tight = batch(&x, &y, &cost, NoiseFloor::recommended());
    let (ts, ta, tlate_amsd, tlate_rmse) = report("b_tight", &tight);

    banner("paper observations, checked");
    println!("                                   (a) 1e-8       (b) 1e-1");
    println!("min sigma_f(x*) in iters 0-4:      {ls:<14.2e} {ts:<14.2e}");
    println!("min AMSD in iters 0-4:             {la:<14.2e} {ta:<14.2e}");
    println!("late AMSD (last 10 iters, mean):   {llate_amsd:<14.3} {tlate_amsd:<14.3}");
    println!("late RMSE (last 10 iters, mean):   {llate_rmse:<14.3} {tlate_rmse:<14.3}");
    println!();
    println!("paper (a): 'sigma_f(x) drops to negligible values before the 5th iteration' and AMSD dips far below its stable value -> overfitting;");
    println!("paper (b): 'the new trajectories do not demonstrate the aforementioned downsides'.");
    // At full scale the collapse is dramatic (>10x); the --quick smoke run
    // (3 reps x 25 iters) only has time to develop a clear separation.
    let collapse_factor = if repetitions < 10 { 1.0 } else { 10.0 };
    assert!(
        ls < ts / collapse_factor,
        "loose floor should allow sigma collapse: {ls:.2e} vs {ts:.2e}"
    );
    println!("\nCHECK PASSED: the loose floor collapses early uncertainty ({:.1e} vs {:.1e}); the 1e-1 floor prevents it.", ls, ts);

    // In-terminal sketch of the AMSD trajectories (log10 scale), the
    // centerpiece of the paper's Fig. 7.
    let (_, amsd_loose, _) = paper_metrics(&loose);
    let (_, amsd_tight, _) = paper_metrics(&tight);
    let iters: Vec<f64> = (0..amsd_loose.len().min(amsd_tight.len()))
        .map(|i| i as f64)
        .collect();
    let k = iters.len();
    let la = alperf_bench::plot::log10_series(&amsd_loose.mean[..k]);
    let ta = alperf_bench::plot::log10_series(&amsd_tight.mean[..k]);
    println!("\nlog10(AMSD) vs iteration:");
    print!(
        "{}",
        alperf_bench::plot::ascii_chart(
            &[
                ("sigma_n >= 1e-8 (collapses)", &iters, &la),
                ("sigma_n >= 1e-1 (stable)", &iters, &ta),
            ],
            64,
            14,
        )
    );

    if telemetry {
        // Flush the JSONL trace and write the metrics snapshot; print the
        // span aggregates so the run telemetry is visible in the terminal.
        alperf_bench::obs_finish();
        banner("run telemetry (span aggregates)");
        print!("{}", alperf_obs::registry().summary_table());
    }
}
