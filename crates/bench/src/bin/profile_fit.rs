//! Stage-by-stage profiler for the GPR training path plus the
//! `BENCH_gpr_fit.json` sweep.
//!
//! Usage:
//!   profile_fit            # stage breakdown at n=200 + full sweep
//!   profile_fit --quick    # tiny sizes / few reps (CI smoke run)
//!
//! All timings are min-over-repeats (`best`), the right statistic on a
//! noisy shared VM: the minimum is the run least disturbed by neighbors.

use alperf_gp::kernel::SquaredExponential;
use alperf_gp::lml::{self, FitCache};
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::{fit_gpr, GprConfig};
use alperf_linalg::cholesky::Cholesky;
use alperf_linalg::matrix::Matrix;
use std::hint::black_box;
use std::time::Instant;

fn best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Synthetic 2-D training set matching the shape of the paper's
/// (processes, problem-size) configuration space.
fn training_data(n: usize) -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(n, 2, |i, j| {
        if j == 0 {
            3.0 + 6.0 * (i as f64 / n as f64)
        } else {
            1.2 + 1.2 * ((i * 7 % n) as f64 / n as f64)
        }
    });
    let y: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.1).sin() + i as f64 * 0.01)
        .collect();
    (x, y)
}

fn fit_config(restarts: usize) -> GprConfig {
    GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::recommended())
        .with_restarts(restarts)
        .with_seed(17)
}

fn stage_breakdown(n: usize, reps: usize) {
    let (x, y) = training_data(n);
    let kernel = SquaredExponential::new(1.0, 1.0);
    let sn = 0.1;
    let cache = FitCache::build(&kernel, &x);

    println!("== stage breakdown at n={n} (ms, min of {reps}) ==");
    println!(
        "K pointwise : {:9.3}",
        best(reps, || {
            black_box(lml::assemble_covariance(&kernel, &x));
        })
    );
    let mut ky = lml::assemble_covariance(&kernel, &x);
    ky.add_diagonal(sn * sn);
    println!(
        "chol unblk  : {:9.3}",
        best(reps, || {
            black_box(Cholesky::decompose_unblocked(&ky).unwrap());
        })
    );
    println!(
        "chol blocked: {:9.3}",
        best(reps, || {
            black_box(Cholesky::decompose_blocked(&ky).unwrap());
        })
    );
    println!(
        "lml pointwse: {:9.3}",
        best(reps, || {
            black_box(lml::lml_value(&kernel, sn, &x, &y).unwrap());
        })
    );
    println!(
        "lml cached  : {:9.3}",
        best(reps, || {
            black_box(lml::lml_value_cached(&kernel, sn, &x, &y, &cache).unwrap());
        })
    );
    println!(
        "grad pointws: {:9.3}",
        best(reps, || {
            black_box(lml::lml_and_grad(&kernel, sn, &x, &y, true).unwrap());
        })
    );
    println!(
        "grad cached : {:9.3}",
        best(reps, || {
            black_box(lml::lml_and_grad_cached(&kernel, sn, &x, &y, true, &cache).unwrap());
        })
    );
    // End-to-end single ascent (restarts=1) with/without parallel dispatch.
    println!(
        "fit r=1     : {:9.3}",
        best(reps.min(5), || {
            black_box(fit_gpr(&x, &y, &fit_config(1)).unwrap());
        })
    );
    println!(
        "fit r=5 ser : {:9.3}",
        best(reps.min(3), || {
            black_box(fit_gpr(&x, &y, &fit_config(5).with_parallel(false)).unwrap());
        })
    );
    println!(
        "fit r=5 par : {:9.3}",
        best(reps.min(3), || {
            black_box(fit_gpr(&x, &y, &fit_config(5)).unwrap());
        })
    );
}

fn sweep(sizes: &[usize], restart_counts: &[usize]) {
    println!("== fit_gpr sweep (ms, min-over-reps) — paste into BENCH_gpr_fit.json ==");
    for &n in sizes {
        let (x, y) = training_data(n);
        for &r in restart_counts {
            let reps = if n >= 400 { 3 } else { 5 };
            let ms = best(reps, || {
                black_box(fit_gpr(&x, &y, &fit_config(r)).unwrap());
            });
            println!("{{ \"n\": {n}, \"restarts\": {r}, \"ms\": {ms:.2} }},");
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if quick {
        stage_breakdown(64, 3);
        sweep(&[32], &[1]);
    } else {
        stage_breakdown(200, 10);
        sweep(&[50, 100, 200, 400], &[1, 5]);
    }
}
