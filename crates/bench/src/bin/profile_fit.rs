//! Stage-by-stage profiler for the GPR training path plus the
//! `BENCH_gpr_fit.json` sweep — a thin consumer of `alperf-obs` span
//! aggregates.
//!
//! Usage:
//!   profile_fit            # stage breakdown at n=200 + full sweep
//!   profile_fit --quick    # tiny sizes / few reps (CI smoke run)
//!
//! The bin no longer times anything itself: it switches telemetry on, runs
//! each stage under a span, and reads the per-span histograms out of the
//! global registry. Library-internal spans (`linalg.cholesky`,
//! `gp.lml_eval`, `gp.lml_grad`, `gp.fit.restart`, ...) land in the same
//! table for free. Reported minima are exact (the histogram keeps raw
//! min/max beside the bucketized quantiles) — min-over-reps remains the
//! right statistic on a noisy shared VM.

use alperf_gp::kernel::SquaredExponential;
use alperf_gp::lml::{self, FitCache};
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::{fit_gpr, GprConfig};
use alperf_linalg::cholesky::Cholesky;
use alperf_linalg::matrix::Matrix;
use std::hint::black_box;

/// Run `f` `reps` times, each under a fresh `name` span.
fn timed<F: FnMut()>(name: &'static str, reps: usize, mut f: F) {
    for _ in 0..reps {
        let _s = alperf_obs::span(name);
        f();
    }
}

/// Exact minimum of a span's recorded durations, in milliseconds.
fn span_min_ms(name: &str) -> f64 {
    alperf_obs::histogram(name).stats().min_ns as f64 / 1e6
}

/// Synthetic 2-D training set matching the shape of the paper's
/// (processes, problem-size) configuration space.
fn training_data(n: usize) -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(n, 2, |i, j| {
        if j == 0 {
            3.0 + 6.0 * (i as f64 / n as f64)
        } else {
            1.2 + 1.2 * ((i * 7 % n) as f64 / n as f64)
        }
    });
    let y: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.1).sin() + i as f64 * 0.01)
        .collect();
    (x, y)
}

fn fit_config(restarts: usize) -> GprConfig {
    GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::recommended())
        .with_restarts(restarts)
        .with_seed(17)
}

fn stage_breakdown(n: usize, reps: usize) {
    let (x, y) = training_data(n);
    let kernel = SquaredExponential::new(1.0, 1.0);
    let sn = 0.1;
    let cache = FitCache::build(&kernel, &x);
    alperf_obs::registry().reset();

    timed("profile.assemble_k", reps, || {
        black_box(lml::assemble_covariance(&kernel, &x));
    });
    let mut ky = lml::assemble_covariance(&kernel, &x);
    ky.add_diagonal(sn * sn);
    timed("profile.chol_unblocked", reps, || {
        black_box(Cholesky::decompose_unblocked(&ky).unwrap());
    });
    timed("profile.chol_blocked", reps, || {
        black_box(Cholesky::decompose_blocked(&ky).unwrap());
    });
    timed("profile.lml_pointwise", reps, || {
        black_box(lml::lml_value(&kernel, sn, &x, &y).unwrap());
    });
    timed("profile.lml_cached", reps, || {
        black_box(lml::lml_value_cached(&kernel, sn, &x, &y, &cache).unwrap());
    });
    timed("profile.grad_pointwise", reps, || {
        black_box(lml::lml_and_grad(&kernel, sn, &x, &y, true).unwrap());
    });
    timed("profile.grad_cached", reps, || {
        black_box(lml::lml_and_grad_cached(&kernel, sn, &x, &y, true, &cache).unwrap());
    });
    // End-to-end single ascent (restarts=1) with/without parallel dispatch.
    timed("profile.fit_r1", reps.min(5), || {
        black_box(fit_gpr(&x, &y, &fit_config(1)).unwrap());
    });
    timed("profile.fit_r5_serial", reps.min(3), || {
        black_box(fit_gpr(&x, &y, &fit_config(5).with_parallel(false)).unwrap());
    });
    timed("profile.fit_r5_parallel", reps.min(3), || {
        black_box(fit_gpr(&x, &y, &fit_config(5)).unwrap());
    });

    // The report IS the registry: bin-side stage spans and library-internal
    // spans (linalg.cholesky, gp.lml_eval, gp.fit.restart, ...) side by side.
    println!("== span aggregates at n={n} ({reps} reps; ms; min is exact) ==");
    print!("{}", alperf_obs::registry().summary_table());
}

/// Approximate-tier sweep: end-to-end `fit_surrogate` on `FitTier::Approximate`
/// at sizes the exact path cannot reach. Timed wall-clock (min over reps):
/// `fit_surrogate` spans only its stages (`gp.fit` for the subsample hyper
/// stage, `gp.lowrank_factor`, `gp.sparse_fit`), not the whole pipeline.
fn sweep_approx(sizes: &[usize], restarts: usize, subsample: usize) {
    use alperf_bench::fitbench::approx_gpr_config;
    use alperf_bench::overhead::best_ms;
    use alperf_gp::optimize::fit_surrogate;

    println!(
        "== approximate-tier sweep (ms, min-over-reps; restarts={restarts}, \
         hyper subsample={subsample}) — paste into BENCH_gpr_fit.json =="
    );
    let cfg = approx_gpr_config(restarts, subsample);
    for &n in sizes {
        let (x, y) = training_data(n);
        let reps = if n >= 10_000 { 1 } else { 2 };
        let mut rank = 0;
        let ms = best_ms(reps, || {
            let (model, _) = fit_surrogate(&x, &y, &cfg).unwrap();
            rank = model.rank();
            black_box(&model);
        });
        println!("{{ \"n\": {n}, \"tier\": \"fitc\", \"rank\": {rank}, \"ms\": {ms:.2} }},");
    }
}

fn sweep(sizes: &[usize], restart_counts: &[usize]) {
    println!("== fit_gpr sweep (ms, min-over-reps) — paste into BENCH_gpr_fit.json ==");
    for &n in sizes {
        let (x, y) = training_data(n);
        for &r in restart_counts {
            let reps = if n >= 400 { 3 } else { 5 };
            // One histogram per configuration: reset the library's gp.fit
            // span between configs so its min reflects only this (n, r).
            alperf_obs::histogram("gp.fit").reset();
            for _ in 0..reps {
                black_box(fit_gpr(&x, &y, &fit_config(r)).unwrap());
            }
            let ms = span_min_ms("gp.fit");
            println!("{{ \"n\": {n}, \"restarts\": {r}, \"ms\": {ms:.2} }},");
        }
    }
}

fn main() {
    alperf_bench::threads_from_env();
    alperf_obs::set_enabled(true);
    let quick = std::env::args().any(|a| a == "--quick");
    if quick {
        stage_breakdown(64, 3);
        sweep(&[32], &[1]);
        sweep_approx(&[2000], 2, 100);
    } else {
        stage_breakdown(200, 10);
        sweep(&[50, 100, 200, 400], &[1, 5]);
        sweep_approx(&[2000, 5000, 10_000, 20_000], 5, 200);
    }
}
