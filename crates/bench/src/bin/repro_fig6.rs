//! Reproduction of **Fig. 6** — Active Learning trajectories with Variance
//! Reduction over the (size, frequency) plane, for 10 and 100 iterations.
//!
//! Setup (paper §V-B3): the Performance subset with NP = 32 and
//! Operator = poisson1 (251 jobs in the paper; same scale here), randomly
//! split Initial/Active/Test. The paper's observation to verify: "In a
//! star-like pattern, AL chooses experiments at the edges and, only after
//! exhausting all edge points, progresses toward the middle" — the
//! exploration a human experimenter would do.

use alperf_al::runner::{run_al, AlConfig};
use alperf_al::strategy::VarianceReduction;
use alperf_bench::{banner, load_datasets, write_series};
use alperf_core::analysis::paper_kernel_bounds;
use alperf_data::partition::Partition;
use alperf_gp::kernel::ArdSquaredExponential;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::GprConfig;
use alperf_linalg::matrix::Matrix;

fn main() {
    let data = load_datasets();
    banner("Fig. 6: AL (Variance Reduction) trajectories over (size, freq)");
    let sub = data
        .performance
        .fix_level("Operator", "poisson1")
        .expect("operator")
        .fix_variable("NP", 32.0)
        .expect("NP");
    println!("subset: {} jobs (paper: 251)", sub.n_rows());

    let sizes: Vec<f64> = sub
        .variable("Global Problem Size")
        .expect("size")
        .values
        .iter()
        .map(|v| v.log10())
        .collect();
    let freqs = sub.variable("CPU Frequency").expect("freq").values.clone();
    let y: Vec<f64> = sub
        .response("Runtime")
        .expect("runtime")
        .iter()
        .map(|v| v.log10())
        .collect();
    let n = sub.n_rows();
    let mut flat = Vec::with_capacity(2 * n);
    for i in 0..n {
        flat.push(sizes[i]);
        flat.push(freqs[i]);
    }
    let x = Matrix::from_vec(n, 2, flat).expect("matrix");
    let cost = vec![1.0; n];

    let partition = Partition::paper_default(n, 17);
    let gpr = GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
        .with_noise_floor(NoiseFloor::recommended())
        .with_restarts(3)
        .with_kernel_bounds(paper_kernel_bounds(2))
        .with_standardize(false)
        .with_seed(6);
    let cfg = AlConfig {
        max_iters: 100,
        seed: 6,
        ..AlConfig::new(gpr)
    };
    let run = run_al(&x, &y, &cost, &partition, &mut VarianceReduction, &cfg).expect("AL run");

    // Emit the visited sequence (the arrows of Fig. 6).
    let xs: Vec<f64> = run.history.iter().map(|r| r.x[0]).collect();
    let fs: Vec<f64> = run.history.iter().map(|r| r.x[1]).collect();
    let it: Vec<f64> = run.history.iter().map(|r| r.iter as f64).collect();
    write_series(
        "fig6_trajectory",
        &[("iter", &it), ("log10_size", &xs), ("freq", &fs)],
    );

    // Edge-first check: what fraction of the first 10 selections lie on the
    // boundary of the (size, freq) domain, vs. the fraction of boundary
    // points in the whole pool?
    let s_lo = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
    let s_hi = sizes.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let f_lo = freqs.iter().cloned().fold(f64::INFINITY, f64::min);
    let f_hi = freqs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let is_edge = |s: f64, f: f64| {
        let st = (s_hi - s_lo) * 0.12;
        s < s_lo + st || s > s_hi - st || f <= f_lo + 1e-9 || f >= f_hi - 1e-9
    };
    let early_edges = run
        .history
        .iter()
        .take(10)
        .filter(|r| is_edge(r.x[0], r.x[1]))
        .count();
    let pool_edges = (0..n).filter(|&i| is_edge(sizes[i], freqs[i])).count();
    println!("\nfirst 10 selections on the domain edge: {early_edges}/10");
    println!(
        "edge fraction of the whole pool: {:.0}%",
        100.0 * pool_edges as f64 / n as f64
    );
    println!("(paper: 'In a star-like pattern, AL chooses experiments at the edges and, only after exhausting all edge points, progresses toward the middle')");

    // Middle-reaching check at 100 iterations.
    let mid = run
        .history
        .iter()
        .filter(|r| !is_edge(r.x[0], r.x[1]))
        .count();
    println!(
        "interior points among all {} selections: {mid}",
        run.history.len()
    );

    println!("\nfirst 10 selections (log10 size, freq):");
    for r in run.history.iter().take(10) {
        println!("  iter {:>2}: ({:.2}, {:.1})", r.iter, r.x[0], r.x[1]);
    }
}
