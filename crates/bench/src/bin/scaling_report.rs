//! Thread-scaling report: fit / pool-prediction / campaign wall times at
//! 1/2/4/8 rayon workers plus the pipelined-vs-serial campaign ratio —
//! the measurement behind the README's "Parallel scaling" table and the
//! `bench_gate --suite scale` gate (both share `alperf_bench::scalebench`).
//!
//! Usage: scaling_report [--quick]

use alperf_bench::scalebench::{self, THREADS};

fn main() {
    let (width, source) = alperf_bench::threads_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let r = scalebench::measure(quick);
    println!(
        "thread scaling (quick={quick}, n={}, m={}, restarts={}, pool={} [{source}], cpus={})",
        r.n,
        r.m,
        r.restarts,
        if width == 0 {
            "all-cores".to_string()
        } else {
            width.to_string()
        },
        std::thread::available_parallelism().map_or(1, |c| c.get()),
    );
    println!();
    println!("| threads | fit (ms) | predict_pool (ms) | campaign (ms) |");
    println!("|--------:|---------:|------------------:|--------------:|");
    for (i, t) in THREADS.iter().enumerate() {
        println!(
            "| {t} | {:.1} | {:.2} | {:.1} |",
            r.fit_ms[i], r.predict_pool_ms[i], r.campaign_ms[i]
        );
    }
    println!();
    println!(
        "predict_pool speedup @4 threads: {:.2}x (ratio {:.3}, gate budget {:.3})",
        1.0 / r.predict_pool_ratio_t4(),
        r.predict_pool_ratio_t4(),
        scalebench::PREDICT_POOL_RATIO_T4_BUDGET
    );
    println!(
        "pipelined campaign under measurement latency: serial {:.1} ms, \
         speculative {:.1} ms (ratio {:.3}, gate budget {:.3})",
        r.pipeline_serial_ms,
        r.pipeline_spec_ms,
        r.pipeline_ratio_t2(),
        scalebench::PIPELINE_RATIO_T2_BUDGET
    );
    // Stable-name dump for scripts (same names the gate baseline uses).
    println!();
    for (name, value) in r.metrics() {
        println!("{name} {value:.3}");
    }
}
