//! Campaign-grid driver: expand a declarative grid spec into thousands
//! of deterministic AL campaigns, execute them across workers, stream
//! `alperf-grid-v1` summaries, and rank the results.
//!
//! Usage:
//!   grid_runner [--out <path>] [--spec <file> | --quick] [--resume]
//!               [--buffered] [--timing] [--seed <n>] [--rank]
//!               [--check-resume]
//!   grid_runner --rank-only <summaries.jsonl> [--baseline-strategy <s>]
//!
//! With no `--spec`, the built-in **paper-claims** grid runs: every
//! strategy × {se, m52} kernels × 3 noise levels × {0, 0.2} fault rates
//! × 28 replicate seeds — 1008 campaigns asking whether the paper's
//! "variance reduction beats random" claim survives noise and fault
//! injection at scale. `--quick` swaps in a 96-config smoke grid (CI).
//!
//! `--rank` prints per-slice strategy leaderboards, pairwise bootstrap
//! significance verdicts, and the paper-claims rollup after the run;
//! `--rank-only` does the same from an existing summary file without
//! executing anything — summaries are the whole interface.
//!
//! `--check-resume` proves the resume protocol on the just-written file:
//! it truncates a copy mid-record, resumes it, and byte-compares against
//! the original. `--resume` continues a partially written run for real.
//!
//! Determinism: output bytes are identical for any worker width
//! (`ALPERF_NUM_THREADS`), commit mode (`--buffered`), and kill/resume
//! history — unless `--timing` arms real wall/CPU nanoseconds per
//! record. See `crates/grid` docs and DESIGN.md §4k.

use alperf_bench::{obs_finish, obs_from_env, threads_from_env};
use alperf_grid::exec::{run_grid, CommitMode, ExecConfig};
use alperf_grid::rank::{
    leaderboards, render_claims, render_leaderboards, render_significance, significance, RankConfig,
};
use alperf_grid::spec::{GridSpec, KernelKind, StrategyKind};
use alperf_grid::summary::parse_summaries;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The built-in paper-claims grid: 3 strategies × 2 kernels × 3 noises
/// × 2 fault rates × 28 seeds = 1008 campaigns.
fn paper_claims_spec(base_seed: u64) -> GridSpec {
    GridSpec {
        name: "paper_claims".into(),
        base_seed,
        rows: 40,
        iters: 10,
        strategies: vec![
            StrategyKind::VarianceReduction,
            StrategyKind::CostEfficiency,
            StrategyKind::Random,
        ],
        kernels: vec![KernelKind::Se, KernelKind::Matern52],
        noises: vec![0.05, 0.2, 0.5],
        fault_rates: vec![0.0, 0.2],
        seeds: (0..28).collect(),
        ..GridSpec::default()
    }
}

/// The CI smoke grid: 3 strategies × 2 kernels × 2 noises × 2 faults ×
/// 2 batches × 2 seeds = 96 campaigns, small rows/iters.
fn quick_spec(base_seed: u64) -> GridSpec {
    GridSpec {
        name: "quick".into(),
        base_seed,
        rows: 16,
        iters: 4,
        strategies: vec![
            StrategyKind::VarianceReduction,
            StrategyKind::CostEfficiency,
            StrategyKind::Random,
        ],
        kernels: vec![KernelKind::Se, KernelKind::Matern52],
        noises: vec![0.1, 0.4],
        batches: vec![1, 2],
        fault_rates: vec![0.0, 0.2],
        seeds: (0..2).collect(),
        ..GridSpec::default()
    }
}

fn rank_report(path: &Path, baseline: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let summaries = parse_summaries(&text).map_err(|e| e.to_string())?;
    if summaries.records.len() < summaries.n_configs {
        eprintln!(
            "(partial grid: {}/{} campaigns committed — rankings reflect what finished)",
            summaries.records.len(),
            summaries.n_configs
        );
    }
    let cfg = RankConfig::default();
    println!("\n=== leaderboards: {} ===\n", summaries.grid);
    print!("{}", render_leaderboards(&leaderboards(&summaries.records)));
    let verdicts = significance(&summaries.records, &cfg);
    println!(
        "=== pairwise significance (bootstrap, {} resamples) ===\n",
        cfg.resamples
    );
    print!("{}", render_significance(&verdicts));
    println!();
    print!("{}", render_claims(&verdicts, baseline));
    Ok(())
}

/// Truncate a copy of `out` mid-record, resume it, and byte-compare —
/// the kill/resume determinism check on real output.
fn check_resume(spec: &GridSpec, out: &Path, exec: &ExecConfig) -> Result<(), String> {
    let reference = std::fs::read_to_string(out).map_err(|e| format!("{}: {e}", out.display()))?;
    let lines: Vec<&str> = reference.lines().collect();
    if lines.len() < 3 {
        return Err("summary too small to exercise resume".into());
    }
    let keep = 1 + (lines.len() - 1) / 2;
    let mut partial = lines[..keep].join("\n");
    partial.push('\n');
    partial.push_str(&lines[keep][..lines[keep].len() / 2]); // torn tail
    let copy = out.with_extension("resume_check.jsonl");
    std::fs::write(&copy, &partial).map_err(|e| e.to_string())?;
    let resumed = ExecConfig {
        resume: true,
        ..*exec
    };
    let report = run_grid(spec, &copy, &resumed).map_err(|e| e.to_string())?;
    let got = std::fs::read_to_string(&copy).map_err(|e| e.to_string())?;
    std::fs::remove_file(&copy).ok();
    if got != reference {
        return Err(format!(
            "resume produced different bytes (killed at record {}, re-ran {})",
            keep - 1,
            report.executed
        ));
    }
    println!(
        "resume check: killed at record {}, kept {}, re-ran {} -> byte-identical",
        keep - 1,
        report.skipped,
        report.executed
    );
    Ok(())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: grid_runner [--out <path>] [--spec <file> | --quick] [--resume] [--buffered]\n\
         \x20                  [--timing] [--seed <n>] [--rank] [--check-resume]\n\
         \x20      grid_runner --rank-only <summaries.jsonl> [--baseline-strategy <s>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let (_, pool_source) = threads_from_env();
    let obs = obs_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<PathBuf> = None;
    let mut spec_path: Option<String> = None;
    let mut quick = false;
    let mut exec = ExecConfig::default();
    let mut seed: Option<u64> = None;
    let mut rank = false;
    let mut rank_only: Option<PathBuf> = None;
    let mut do_check_resume = false;
    let mut baseline_strategy = "random".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--spec" => match it.next() {
                Some(p) => spec_path = Some(p.clone()),
                None => return usage(),
            },
            "--quick" => quick = true,
            "--resume" => exec.resume = true,
            "--buffered" => exec.mode = CommitMode::Buffered,
            "--stream" => exec.mode = CommitMode::Streaming,
            "--timing" => exec.timing = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = Some(s),
                None => return usage(),
            },
            "--rank" => rank = true,
            "--rank-only" => match it.next() {
                Some(p) => rank_only = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--check-resume" => do_check_resume = true,
            "--baseline-strategy" => match it.next() {
                Some(s) => baseline_strategy = s.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    if let Some(path) = rank_only {
        let code = match rank_report(&path, &baseline_strategy) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("grid_runner: {e}");
                ExitCode::from(2)
            }
        };
        if obs {
            obs_finish();
        }
        return code;
    }

    let spec = match (&spec_path, quick) {
        (Some(_), true) => return usage(),
        (Some(path), false) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("grid_runner: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match GridSpec::parse(&text) {
                Ok(mut s) => {
                    if let Some(base) = seed {
                        s.base_seed = base;
                    }
                    s
                }
                Err(e) => {
                    eprintln!("grid_runner: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        (None, true) => quick_spec(seed.unwrap_or(42)),
        (None, false) => paper_claims_spec(seed.unwrap_or(42)),
    };
    let out = out.unwrap_or_else(|| {
        let dir = PathBuf::from("target/grid");
        std::fs::create_dir_all(&dir).expect("create target/grid");
        dir.join(format!("{}.jsonl", spec.name))
    });

    let n = match spec.clone().canonicalize() {
        Ok(s) => s.n_configs(),
        Err(e) => {
            eprintln!("grid_runner: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "grid {}: {} campaigns -> {} (pool: {}, mode: {:?}{}{})",
        spec.name,
        n,
        out.display(),
        pool_source,
        exec.mode,
        if exec.timing { ", timing" } else { "" },
        if exec.resume { ", resume" } else { "" },
    );
    let t0 = std::time::Instant::now();
    let report = match run_grid(&spec, &out, &exec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("grid_runner: {e}");
            if obs {
                obs_finish();
            }
            return ExitCode::FAILURE;
        }
    };
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "done: {} executed ({} resumed-past) at width {} in {:.1}s ({:.1} configs/s); \
         {} degraded, {} errors",
        report.executed,
        report.skipped,
        report.width,
        secs,
        report.executed as f64 / secs.max(1e-9),
        report.degraded,
        report.errors,
    );

    let mut failed = false;
    if do_check_resume {
        if let Err(e) = check_resume(&spec, &out, &exec) {
            eprintln!("grid_runner: resume check FAILED: {e}");
            failed = true;
        }
    }
    if rank {
        if let Err(e) = rank_report(&out, &baseline_strategy) {
            eprintln!("grid_runner: {e}");
            failed = true;
        }
    }
    if obs {
        obs_finish();
    }
    if failed || report.errors > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
