//! Reproduction of **Fig. 3** — 1-D GPR cross-sections of the Performance
//! dataset.
//!
//! Setup (paper §V-B1): fix NP = 32, Freq = 2.4, Operator = poisson1 and
//! model log10(Runtime) as a function of log10(Global Problem Size).
//!
//! * Fig. 3(a): GPR through *all* selected measurements, under four
//!   hyperparameter settings (two length scales x two amplitudes). The
//!   predictive means nearly coincide; the 95% confidence bands widen
//!   dramatically as the length scale shrinks.
//! * Fig. 3(b): the same but trained on a random 4-point subset — the
//!   uncertainty explodes at the domain edge where no measurement exists,
//!   and even the means disagree.

use alperf_bench::{banner, load_datasets, write_series};
use alperf_gp::kernel::SquaredExponential;
use alperf_gp::model::Gpr;
use alperf_linalg::matrix::Matrix;
use alperf_linalg::vector::linspace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The paper's four illustrative hyperparameter settings (l, sigma_f).
const SETTINGS: [(f64, f64); 4] = [(0.5, 1.0), (2.0, 1.0), (0.5, 2.0), (2.0, 2.0)];

fn cross_section() -> (Vec<f64>, Vec<f64>) {
    let data = load_datasets();
    let sub = data
        .performance
        .fix_level("Operator", "poisson1")
        .expect("operator")
        .fix_variable("NP", 32.0)
        .expect("NP")
        .fix_variable("CPU Frequency", 2.4)
        .expect("freq");
    let x: Vec<f64> = sub
        .variable("Global Problem Size")
        .expect("size")
        .values
        .iter()
        .map(|v| v.log10())
        .collect();
    let y: Vec<f64> = sub
        .response("Runtime")
        .expect("runtime")
        .iter()
        .map(|v| v.log10())
        .collect();
    (x, y)
}

fn emit_gprs(x: &[f64], y: &[f64], tag: &str) {
    let grid = linspace(
        x.iter().cloned().fold(f64::INFINITY, f64::min) - 0.3,
        x.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 0.3,
        120,
    );
    let xm = Matrix::from_vec(x.len(), 1, x.to_vec()).expect("design matrix");
    let mut columns: Vec<(String, Vec<f64>)> = vec![("log10_size".into(), grid.clone())];
    println!("\nFig. 3{tag}: {} training points", x.len());
    println!(
        "{:<22} {:>12} {:>14}",
        "(l, sigma_f)", "mean CI width", "max CI width"
    );
    for &(l, sf) in &SETTINGS {
        let gpr = Gpr::fit(
            xm.clone(),
            y,
            Box::new(SquaredExponential::new(l, sf)),
            0.1,
            true,
        )
        .expect("GPR fit");
        let mut mean = Vec::new();
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        for &g in &grid {
            let p = gpr.predict_one(&[g]).expect("prediction");
            let (a, b) = p.ci95();
            mean.push(p.mean);
            lo.push(a);
            hi.push(b);
        }
        let widths: Vec<f64> = lo.iter().zip(&hi).map(|(a, b)| b - a).collect();
        println!(
            "l={l:<4} sigma_f={sf:<6} {:>12.4} {:>14.4}",
            widths.iter().sum::<f64>() / widths.len() as f64,
            widths.iter().cloned().fold(0.0f64, f64::max),
        );
        columns.push((format!("mean_l{l}_sf{sf}"), mean));
        columns.push((format!("lo_l{l}_sf{sf}"), lo));
        columns.push((format!("hi_l{l}_sf{sf}"), hi));
    }
    let refs: Vec<(&str, &[f64])> = columns
        .iter()
        .map(|(h, c)| (h.as_str(), c.as_slice()))
        .collect();
    write_series(&format!("fig3{tag}"), &refs);
}

fn main() {
    banner("Fig. 3: predictive distributions for a 1-D cross-section");
    let (x, y) = cross_section();

    // (a) all measurements.
    emit_gprs(&x, &y, "a");
    println!("(paper: means nearly coincide; smaller l inflates the CI between points)");

    // (b) random 4-point subset.
    let mut rng = StdRng::seed_from_u64(4);
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(4);
    let xs: Vec<f64> = idx.iter().map(|&i| x[i]).collect();
    let ys: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
    emit_gprs(&xs, &ys, "b");
    println!("(paper: with 4 points the distribution is 'clamped' at the data and balloons at the domain edge; means with different hyperparameters now disagree)");
}
