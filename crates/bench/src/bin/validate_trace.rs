//! Validate an `alperf-obs-v1` JSONL trace file — the CI gate that keeps
//! the telemetry schema honest.
//!
//! Usage: `validate_trace <trace.jsonl>`
//!
//! Checks, in order:
//! * the first line is a `meta` record declaring schema `alperf-obs-v1`;
//! * every line parses as a JSON object with `v == 1` and a known type
//!   (`meta`, `span`, `record`);
//! * spans carry `name`, `tid`, `start_ns`, `dur_ns` (numbers);
//! * records carry `name`, `tid` and a `fields` object;
//! * `al.iteration` records have a strictly increasing `iter` per `run` id
//!   (the monotone-iteration-index invariant of the AL telemetry).
//!
//! Exits non-zero with a line-numbered message on the first violation.

use alperf_obs::json::{self, Json};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn field_f64(obj: &Json, key: &str, line_no: usize) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("line {line_no}: missing/non-numeric \"{key}\""))
}

fn field_str<'a>(obj: &'a Json, key: &str, line_no: usize) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {line_no}: missing/non-string \"{key}\""))
}

fn validate(text: &str) -> Result<(usize, usize, usize), String> {
    let mut spans = 0usize;
    let mut records = 0usize;
    let mut iterations = 0usize;
    // run id -> last seen iteration index for the monotonicity check.
    let mut last_iter: BTreeMap<u64, u64> = BTreeMap::new();
    let mut lines = text.lines().enumerate();

    let (_, first) = lines.next().ok_or("empty trace file".to_string())?;
    let meta = json::parse(first).map_err(|e| format!("line 1: {e}"))?;
    if field_str(&meta, "t", 1)? != "meta" {
        return Err("line 1: first line must be the meta record".into());
    }
    if field_str(&meta, "schema", 1)? != alperf_obs::sink::SCHEMA {
        return Err(format!(
            "line 1: unknown schema {:?} (expected {:?})",
            meta.get("schema"),
            alperf_obs::sink::SCHEMA
        ));
    }

    for (idx, line) in lines {
        let line_no = idx + 1;
        let obj = json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        if field_f64(&obj, "v", line_no)? != 1.0 {
            return Err(format!("line {line_no}: unsupported version"));
        }
        match field_str(&obj, "t", line_no)? {
            "span" => {
                spans += 1;
                field_str(&obj, "name", line_no)?;
                field_f64(&obj, "tid", line_no)?;
                field_f64(&obj, "start_ns", line_no)?;
                field_f64(&obj, "dur_ns", line_no)?;
            }
            "record" => {
                records += 1;
                let name = field_str(&obj, "name", line_no)?;
                field_f64(&obj, "tid", line_no)?;
                let fields = obj
                    .get("fields")
                    .filter(|f| f.as_obj().is_some())
                    .ok_or_else(|| format!("line {line_no}: record without \"fields\" object"))?;
                if name == "al.iteration" {
                    iterations += 1;
                    let run = field_f64(fields, "run", line_no)? as u64;
                    let iter = field_f64(fields, "iter", line_no)? as u64;
                    // Presence of the per-iteration payload.
                    for key in ["rmse", "amsd", "sigma", "cum_cost", "fit_ns", "pool_size"] {
                        field_f64(fields, key, line_no)?;
                    }
                    field_str(fields, "refit", line_no)?;
                    if let Some(&prev) = last_iter.get(&run) {
                        if iter <= prev {
                            return Err(format!(
                                "line {line_no}: run {run} iteration index not monotone \
                                 ({prev} then {iter})"
                            ));
                        }
                    }
                    last_iter.insert(run, iter);
                }
            }
            "meta" => {}
            other => return Err(format!("line {line_no}: unknown event type {other:?}")),
        }
    }
    Ok((spans, records, iterations))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate_trace <trace.jsonl>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_trace: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match validate(&text) {
        Ok((spans, records, iterations)) => {
            println!(
                "{path}: OK — {spans} spans, {records} records \
                 ({iterations} al.iteration) under schema {}",
                alperf_obs::sink::SCHEMA
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{path}: INVALID — {msg}");
            ExitCode::FAILURE
        }
    }
}
