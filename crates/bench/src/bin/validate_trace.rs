//! Validate an `alperf-obs-v1` JSONL trace file — the CI gate that keeps
//! the telemetry schema honest.
//!
//! Usage: `validate_trace <trace.jsonl>`
//!
//! Built on the shared `alperf-trace` reader (the same parser every
//! analysis consumer uses, so the validator can never drift from them).
//! Checks, in order:
//! * the file reads under schema `alperf-obs-v1` (first line is the meta
//!   record; every line parses as a typed v1 event);
//! * the spans reconstruct into a *connected* forest — every span that
//!   declares a parent resolves to it, including spans emitted on rayon
//!   worker threads (the cross-thread parentage invariant);
//! * `al.iteration` records carry the per-iteration payload and a
//!   strictly increasing `iter` per `run` id;
//! * profiler stack samples (when present) have non-empty stacks and
//!   monotone timestamps per sampled thread.
//!
//! Exit codes: 0 valid; 1 malformed content or violated invariant;
//! 2 usage; 3 unreadable input; 4 empty trace; 5 unknown schema.

use alperf_trace::{read_path, SpanForest, Trace};
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

fn check_iterations(trace: &Trace) -> Result<usize, String> {
    let mut iterations = 0usize;
    // run id -> last seen iteration index for the monotonicity check.
    let mut last_iter: BTreeMap<u64, u64> = BTreeMap::new();
    for rec in trace.records_named("al.iteration") {
        iterations += 1;
        let f = |key: &str| {
            rec.f64(key)
                .ok_or_else(|| format!("al.iteration record missing numeric \"{key}\""))
        };
        // Presence of the per-iteration payload.
        for key in ["rmse", "amsd", "sigma", "cum_cost", "fit_ns", "pool_size"] {
            f(key)?;
        }
        rec.str("refit")
            .ok_or("al.iteration record missing \"refit\"")?;
        let run = f("run")? as u64;
        let iter = f("iter")? as u64;
        if let Some(&prev) = last_iter.get(&run) {
            if iter <= prev {
                return Err(format!(
                    "run {run} iteration index not monotone ({prev} then {iter})"
                ));
            }
        }
        last_iter.insert(run, iter);
    }
    Ok(iterations)
}

fn check_samples(trace: &Trace) -> Result<usize, String> {
    // tid -> last sample timestamp: the sampler sweeps each thread's
    // mirror with a monotonic clock, so per-thread capture times may tie
    // but never go backwards.
    let mut last_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for s in &trace.samples {
        if s.stack.is_empty() {
            return Err("profiler sample with an empty stack".into());
        }
        if let Some(&prev) = last_ns.get(&s.tid) {
            if s.t_ns < prev {
                return Err(format!(
                    "thread {} sample timestamps not monotone ({prev} then {})",
                    s.tid, s.t_ns
                ));
            }
        }
        last_ns.insert(s.tid, s.t_ns);
    }
    Ok(trace.samples.len())
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate_trace <trace.jsonl>");
        return ExitCode::from(2);
    };
    let trace = match read_path(Path::new(&path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            return ExitCode::from(e.exit_code());
        }
    };
    let forest = match SpanForest::build(&trace.spans) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            return ExitCode::FAILURE;
        }
    };
    match check_iterations(&trace).and_then(|iters| Ok((iters, check_samples(&trace)?))) {
        Ok((iterations, samples)) => {
            println!(
                "{path}: OK — {} spans in {} connected trees, {} records \
                 ({iterations} al.iteration), {samples} profiler samples \
                 under schema {}",
                forest.len(),
                forest.roots.len(),
                trace.records.len(),
                trace.schema
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{path}: INVALID — {msg}");
            ExitCode::FAILURE
        }
    }
}
