//! Validate an `alperf-obs-v1` JSONL trace file — the CI gate that keeps
//! the telemetry schema honest.
//!
//! Usage:
//!   validate_trace <trace.jsonl>
//!   validate_trace --blackbox <dump.jsonl>
//!
//! Built on the shared `alperf-trace` reader (the same parser every
//! analysis consumer uses, so the validator can never drift from them).
//! Checks, in order:
//! * the file reads under schema `alperf-obs-v1` (first line is the meta
//!   record; every line parses as a typed v1 event);
//! * the spans reconstruct into a *connected* forest — every span that
//!   declares a parent resolves to it, including spans emitted on rayon
//!   worker threads (the cross-thread parentage invariant);
//! * `al.iteration` records carry the per-iteration payload and a
//!   strictly increasing `iter` per `run` id;
//! * profiler stack samples (when present) have non-empty stacks and
//!   monotone timestamps per sampled thread;
//! * `obs.alert` records carry the versioned alert payload (`asv`) and
//!   per rule follow the legal pending → firing → resolved state
//!   machine from a fresh engine.
//!
//! `--blackbox` instead validates an `alperf-blackbox-v1` flight
//! recorder dump: meta first line with the right schema and a dump
//! reason, every event line well-formed with a known kind and
//! non-decreasing timestamps, alert lines naming a rule.
//!
//! Exit codes: 0 valid; 1 malformed content or violated invariant;
//! 2 usage; 3 unreadable input; 4 empty trace; 5 unknown schema.

use alperf_trace::{read_path, SpanForest, Trace};
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

fn check_iterations(trace: &Trace) -> Result<usize, String> {
    let mut iterations = 0usize;
    // run id -> last seen iteration index for the monotonicity check.
    let mut last_iter: BTreeMap<u64, u64> = BTreeMap::new();
    for rec in trace.records_named("al.iteration") {
        iterations += 1;
        let f = |key: &str| {
            rec.f64(key)
                .ok_or_else(|| format!("al.iteration record missing numeric \"{key}\""))
        };
        // Presence of the per-iteration payload.
        for key in ["rmse", "amsd", "sigma", "cum_cost", "fit_ns", "pool_size"] {
            f(key)?;
        }
        rec.str("refit")
            .ok_or("al.iteration record missing \"refit\"")?;
        let run = f("run")? as u64;
        let iter = f("iter")? as u64;
        if let Some(&prev) = last_iter.get(&run) {
            if iter <= prev {
                return Err(format!(
                    "run {run} iteration index not monotone ({prev} then {iter})"
                ));
            }
        }
        last_iter.insert(run, iter);
    }
    Ok(iterations)
}

fn check_samples(trace: &Trace) -> Result<usize, String> {
    // tid -> last sample timestamp: the sampler sweeps each thread's
    // mirror with a monotonic clock, so per-thread capture times may tie
    // but never go backwards.
    let mut last_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for s in &trace.samples {
        if s.stack.is_empty() {
            return Err("profiler sample with an empty stack".into());
        }
        if let Some(&prev) = last_ns.get(&s.tid) {
            if s.t_ns < prev {
                return Err(format!(
                    "thread {} sample timestamps not monotone ({prev} then {})",
                    s.tid, s.t_ns
                ));
            }
        }
        last_ns.insert(s.tid, s.t_ns);
    }
    Ok(trace.samples.len())
}

/// Alert transition records must replay cleanly on the rule state
/// machine: a fresh engine starts every rule inactive, edges are
/// `inactive -> pending|firing`, `pending -> firing|inactive`,
/// `firing -> resolved`, and each record's `from` must match the state
/// the previous records left the rule in.
fn check_alerts(trace: &Trace) -> Result<usize, String> {
    let mut state: BTreeMap<String, &'static str> = BTreeMap::new();
    let mut transitions = 0usize;
    for rec in trace.records_named("obs.alert") {
        transitions += 1;
        let asv = rec
            .f64("asv")
            .ok_or("obs.alert record missing numeric \"asv\"")? as u64;
        if asv != 1 {
            return Err(format!("obs.alert schema version {asv} (expected 1)"));
        }
        rec.f64("t_ns")
            .ok_or("obs.alert record missing numeric \"t_ns\"")?;
        rec.f64("value")
            .ok_or("obs.alert record missing numeric \"value\"")?;
        let rule = rec
            .str("rule")
            .ok_or("obs.alert record missing \"rule\"")?
            .to_string();
        let from = rec.str("from").ok_or("obs.alert record missing \"from\"")?;
        let to = rec.str("to").ok_or("obs.alert record missing \"to\"")?;
        let cur = state.entry(rule.clone()).or_insert("inactive");
        if from != *cur {
            return Err(format!(
                "rule {rule:?} transition from {from:?} but engine would be in {cur:?}"
            ));
        }
        *cur = match (*cur, to) {
            ("inactive", "pending") => "pending",
            ("inactive", "firing") => "firing",
            ("pending", "firing") => "firing",
            ("pending", "inactive") => "inactive",
            ("firing", "resolved") => "inactive",
            _ => return Err(format!("rule {rule:?} illegal edge {from:?} -> {to:?}")),
        };
    }
    Ok(transitions)
}

/// Validate an `alperf-blackbox-v1` flight-recorder dump.
fn check_blackbox(path: &str) -> Result<String, (u8, String)> {
    let text =
        std::fs::read_to_string(path).map_err(|e| (3u8, format!("cannot read input: {e}")))?;
    let mut lines = text.lines().enumerate();
    let Some((_, meta)) = lines.next() else {
        return Err((4, "empty dump".into()));
    };
    let meta = alperf_obs::json::parse(meta).map_err(|e| (1u8, format!("meta line: {e}")))?;
    match meta.get("schema").and_then(|s| s.as_str()) {
        Some("alperf-blackbox-v1") => {}
        Some(other) => return Err((5, format!("unknown schema {other:?}"))),
        None => return Err((1, "meta line missing \"schema\"".into())),
    }
    if meta.get("reason").and_then(|r| r.as_str()).is_none() {
        return Err((1, "meta line missing \"reason\"".into()));
    }
    let (mut events, mut alerts, mut last_ns) = (0usize, 0usize, 0u64);
    for (i, line) in lines {
        let bad = |msg: String| (1u8, format!("line {}: {msg}", i + 1));
        let v = alperf_obs::json::parse(line).map_err(&bad)?;
        match v.get("t").and_then(|t| t.as_str()) {
            Some("bb") => {
                events += 1;
                match v.get("kind").and_then(|k| k.as_str()) {
                    Some("span") | Some("record") => {}
                    k => return Err(bad(format!("unknown event kind {k:?}"))),
                }
                if v.get("name").and_then(|n| n.as_str()).is_none() {
                    return Err(bad("event missing \"name\"".into()));
                }
                let t_ns = v
                    .get("t_ns")
                    .and_then(|t| t.as_f64())
                    .ok_or_else(|| bad("event missing numeric \"t_ns\"".into()))?
                    as u64;
                if t_ns < last_ns {
                    return Err(bad(format!(
                        "event timestamps not sorted ({last_ns} then {t_ns})"
                    )));
                }
                last_ns = t_ns;
            }
            Some("alert") => {
                alerts += 1;
                if v.get("rule").and_then(|r| r.as_str()).is_none() {
                    return Err(bad("alert line missing \"rule\"".into()));
                }
            }
            t => return Err(bad(format!("unknown line type {t:?}"))),
        }
    }
    if events == 0 {
        return Err((4, "dump has no events".into()));
    }
    Ok(format!(
        "{events} flight-recorder events, {alerts} firing alerts \
         under schema alperf-blackbox-v1"
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--blackbox") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: validate_trace --blackbox <dump.jsonl>");
            return ExitCode::from(2);
        };
        return match check_blackbox(path) {
            Ok(summary) => {
                println!("{path}: OK — {summary}");
                ExitCode::SUCCESS
            }
            Err((code, msg)) => {
                eprintln!("{path}: INVALID — {msg}");
                ExitCode::from(code)
            }
        };
    }
    let Some(path) = args.into_iter().next() else {
        eprintln!("usage: validate_trace <trace.jsonl> | validate_trace --blackbox <dump.jsonl>");
        return ExitCode::from(2);
    };
    let trace = match read_path(Path::new(&path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            return ExitCode::from(e.exit_code());
        }
    };
    let forest = match SpanForest::build(&trace.spans) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            return ExitCode::FAILURE;
        }
    };
    match check_iterations(&trace)
        .and_then(|iters| Ok((iters, check_samples(&trace)?, check_alerts(&trace)?)))
    {
        Ok((iterations, samples, alerts)) => {
            println!(
                "{path}: OK — {} spans in {} connected trees, {} records \
                 ({iterations} al.iteration, {alerts} obs.alert), \
                 {samples} profiler samples under schema {}",
                forest.len(),
                forest.roots.len(),
                trace.records.len(),
                trace.schema
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{path}: INVALID — {msg}");
            ExitCode::FAILURE
        }
    }
}
