//! Ablation **X6** — continuous acquisition optimization (paper §VI future
//! work: "preferably, by using continuous optimization").
//!
//! Compares, on the same fitted GPR over (log10 size, frequency):
//!
//! * the finite-pool argmax of the predictive SD (what the paper's
//!   prototype does — "choosing the best option within a finite subset");
//! * the continuous box-constrained maximizer ([`ContinuousAcquisition`]);
//! * a fine-grid reference (ground truth up to grid resolution).
//!
//! The continuous optimizer should match the fine grid and beat the coarse
//! pool whenever the true acquisition peak falls between pool levels.

use alperf_al::continuous::{ContinuousAcquisition, Criterion};
use alperf_bench::{banner, load_datasets, write_series};
use alperf_core::analysis::paper_kernel_bounds;
use alperf_gp::kernel::ArdSquaredExponential;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::{fit_surrogate, GprConfig};
use alperf_linalg::matrix::Matrix;
use alperf_linalg::vector::linspace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let data = load_datasets();
    banner("X6: continuous vs finite-pool acquisition optimization");
    let sub = data
        .performance
        .fix_level("Operator", "poisson1")
        .expect("operator")
        .fix_variable("NP", 32.0)
        .expect("NP");
    let sizes = &sub.variable("Global Problem Size").expect("size").values;
    let freqs = &sub.variable("CPU Frequency").expect("freq").values;
    let rts = sub.response("Runtime").expect("runtime");

    // Fit a GPR on 12 random jobs.
    let mut rng = StdRng::seed_from_u64(21);
    let mut idx: Vec<usize> = (0..sub.n_rows()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(12);
    let mut flat = Vec::new();
    let mut y = Vec::new();
    for &i in &idx {
        flat.push(sizes[i].log10());
        flat.push(freqs[i]);
        y.push(rts[i].log10());
    }
    let xm = Matrix::from_vec(12, 2, flat).expect("matrix");
    let cfg = GprConfig::new(Box::new(ArdSquaredExponential::unit(2)))
        .with_noise_floor(NoiseFloor::recommended())
        .with_kernel_bounds(paper_kernel_bounds(2))
        .with_restarts(4)
        .with_standardize(false);
    let (gpr, _) = fit_surrogate(&xm, &y, &cfg).expect("fit");

    let s_lo = 1.7e3f64.log10();
    let s_hi = 1.1e9f64.log10();
    let bounds = vec![(s_lo, s_hi), (1.2, 2.4)];

    for criterion in [Criterion::Sigma, Criterion::SigmaMinusMean] {
        banner(&format!("criterion: {criterion:?}"));
        // 1. Finite pool: the dataset's own factor levels.
        let mut pool_best = f64::NEG_INFINITY;
        let mut pool_x = vec![0.0; 2];
        for i in 0..sub.n_rows() {
            let x = [sizes[i].log10(), freqs[i]];
            let p = gpr.predict_one(&x).expect("predict");
            let s = criterion.score(p.mean, p.std);
            if s > pool_best {
                pool_best = s;
                pool_x = x.to_vec();
            }
        }
        // 2. Continuous optimizer.
        let acq = ContinuousAcquisition::new(bounds.clone());
        let (cont_x, cont_best) = acq.maximize(&gpr, criterion).expect("maximize");
        // 3. Fine-grid reference.
        let mut grid_best = f64::NEG_INFINITY;
        let mut grid_x = vec![0.0; 2];
        for &s in &linspace(s_lo, s_hi, 400) {
            for &f in &linspace(1.2, 2.4, 100) {
                let p = gpr.predict_one(&[s, f]).expect("predict");
                let v = criterion.score(p.mean, p.std);
                if v > grid_best {
                    grid_best = v;
                    grid_x = vec![s, f];
                }
            }
        }
        println!(
            "finite pool argmax:   {pool_best:.5} at ({:.2}, {:.2})",
            pool_x[0], pool_x[1]
        );
        println!(
            "continuous optimizer: {cont_best:.5} at ({:.2}, {:.2})",
            cont_x[0], cont_x[1]
        );
        println!(
            "fine-grid reference:  {grid_best:.5} at ({:.2}, {:.2})",
            grid_x[0], grid_x[1]
        );
        let gap_pool = (grid_best - pool_best) / grid_best.abs().max(1e-12);
        let gap_cont = (grid_best - cont_best) / grid_best.abs().max(1e-12);
        println!(
            "relative gap to reference: pool {:.2}%, continuous {:.3}%",
            100.0 * gap_pool,
            100.0 * gap_cont
        );
        assert!(
            cont_best >= pool_best - 1e-9,
            "continuous optimizer must match or beat the finite pool"
        );
        assert!(
            gap_cont.abs() < 0.01,
            "continuous optimizer should track the fine grid within 1%"
        );
        write_series(
            &format!("ablation_continuous_{criterion:?}").to_lowercase(),
            &[
                ("pool_best", &[pool_best][..]),
                ("continuous_best", &[cont_best][..]),
                ("grid_best", &[grid_best][..]),
            ],
        );
    }
    println!("\n(paper §VI: continuous optimization handles 'continuous or near-continuous parameters' the finite Active set cannot; the pattern-search maximizer recovers the true acquisition peak the pool's factor grid can only approximate)");
}
