//! Shared approximate-tier fit measurement, used by both the
//! `profile_fit` report binary and the `bench_gate --suite fit` CI gate
//! (which must measure *exactly* the same thing the checked-in baseline
//! recorded).
//!
//! Two metric families:
//!
//! * `approx_fit_*_ms` — end-to-end `fit_surrogate` wall time on the
//!   approximate tier (exact hyper fit on a subsample, inducing-point
//!   selection, sparse fit). The n=5000 number gates against a hard
//!   budget: it must beat the checked-in *exact* n=400 / 5-restart fit
//!   time — the point of breaking the O(n³) ceiling — on any machine.
//! * `gate_rmse_n{200,400}` — standardized training-mean RMSE of the
//!   sparse posterior against an exact posterior at identical
//!   hyperparameters, the acceptance quantity of the tier-selection
//!   validation gate. Hardware-independent, so it gates as a hard budget
//!   everywhere.

use crate::overhead::{best_ms, training_data};
use alperf_gp::kernel::SquaredExponential;
use alperf_gp::model::Gpr;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::{fit_surrogate, ApproxConfig, FitTier, GprConfig};
use alperf_gp::sparse::{select_inducing_pivoted, SparseGpr, SparseMethod};
use std::hint::black_box;

/// The checked-in exact n=400 / 5-restart fit time (`BENCH_gpr_fit.json`,
/// `optimized_ms`) — the O(n³) ceiling the approximate tier must beat at
/// n=5000 on the same container. Enforced as a hard budget on any machine.
pub const EXACT_N400_R5_MS: f64 = 21648.35;

/// Hard ceiling for the exact-vs-sparse agreement RMSEs — the default
/// `ApproxConfig::gate_tol`.
pub const GATE_RMSE_BUDGET: f64 = 0.05;

/// One full approximate-tier measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct FitResult {
    /// Quick (CI smoke) settings were used.
    pub quick: bool,
    /// Hyper-fit restarts used by the timed fits.
    pub restarts: usize,
    /// Hyper-fit subsample size used by the timed fits.
    pub subsample: usize,
    /// End-to-end approximate fit at n=2000, ms (min over reps).
    pub approx_n2000_ms: f64,
    /// End-to-end approximate fit at n=5000, ms (min over reps).
    pub approx_n5000_ms: f64,
    /// Rank actually used at n=5000.
    pub rank_n5000: usize,
    /// Standardized sparse-vs-exact training-mean RMSE at n=200.
    pub gate_rmse_n200: f64,
    /// Standardized sparse-vs-exact training-mean RMSE at n=400.
    pub gate_rmse_n400: f64,
}

impl FitResult {
    /// The metrics the `bench_gate --suite fit` baseline gates on, by
    /// stable name. `approx_fit_n2000_ms` gates relatively (same-machine
    /// comparisons); the rest are hard budgets enforced everywhere.
    pub fn metrics(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("approx_fit_n2000_ms", self.approx_n2000_ms),
            ("approx_fit_n5000_ms", self.approx_n5000_ms),
            ("gate_rmse_n200", self.gate_rmse_n200),
            ("gate_rmse_n400", self.gate_rmse_n400),
        ]
    }
}

/// The approximate-tier config the timed fits use. Quick mode lightens only
/// the exact hyper stage (fewer restarts, smaller subsample).
///
/// `trace_tol` is pinned to 0 so inducing selection runs until `max_rank`
/// or the kernel's numerical rank, whichever comes first — the relative
/// trace tolerance would otherwise stop at single-digit rank on the smooth
/// synthetic response and the timing would measure almost none of the
/// sparse machinery. The achieved rank is reported next to each timing.
pub fn approx_gpr_config(restarts: usize, subsample: usize) -> GprConfig {
    GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::recommended())
        .with_restarts(restarts)
        .with_seed(17)
        .with_tier(FitTier::Approximate)
        .with_approx(ApproxConfig {
            hyper_subsample: subsample,
            trace_tol: 0.0, // always run selection to max_rank
            gate_max_n: 0,  // timing run: no exact-refit gate
            ..ApproxConfig::default()
        })
}

/// Standardized training-mean RMSE of the FITC posterior vs the exact
/// posterior at identical (fixed) hyperparameters — the validation-gate
/// quantity, measured deterministically.
pub fn gate_rmse(n: usize) -> f64 {
    let (x, y) = training_data(n);
    let kernel = SquaredExponential::new(1.0, 1.0);
    let noise = 0.1;
    let exact = Gpr::fit(x.clone(), &y, Box::new(kernel.clone()), noise, true).expect("exact fit");
    let defaults = ApproxConfig::default();
    let idx = select_inducing_pivoted(&kernel, &x, defaults.max_rank, defaults.trace_tol)
        .expect("selection");
    let z = x.select_rows(&idx);
    let sparse = SparseGpr::fit(
        x.clone(),
        &y,
        Box::new(kernel),
        noise,
        true,
        SparseMethod::Fitc,
        z,
    )
    .expect("sparse fit");
    let mut se = 0.0;
    for i in 0..n {
        let e = exact.predict_one(x.row(i)).expect("exact predict");
        let s = sparse.predict_one(x.row(i)).expect("sparse predict");
        se += (e.mean - s.mean).powi(2);
    }
    let scale = exact.standardizer().std.abs().max(1e-12);
    (se / n as f64).sqrt() / scale
}

/// Run the full measurement. Quick mode lightens the hyper stage and rep
/// count but measures the same sizes, so the budget gates stay meaningful
/// in CI.
pub fn measure(quick: bool) -> FitResult {
    let (reps, restarts, subsample) = if quick { (2, 2, 100) } else { (3, 5, 200) };
    let cfg = approx_gpr_config(restarts, subsample);

    let mut rank_n5000 = 0usize;
    let timed_ms = |n: usize, rank_out: &mut usize| {
        let (x, y) = training_data(n);
        best_ms(reps, || {
            let (model, _) = fit_surrogate(&x, &y, &cfg).expect("approx fit");
            *rank_out = model.rank();
            black_box(&model);
        })
    };
    let mut rank_scratch = 0usize;
    let approx_n2000_ms = timed_ms(2000, &mut rank_scratch);
    let approx_n5000_ms = timed_ms(5000, &mut rank_n5000);

    FitResult {
        quick,
        restarts,
        subsample,
        approx_n2000_ms,
        approx_n5000_ms,
        rank_n5000,
        gate_rmse_n200: gate_rmse(200),
        gate_rmse_n400: gate_rmse(400),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_rmse_is_within_budget_at_calibration_sizes() {
        // The acceptance quantity itself: sparse posterior within the gate
        // tolerance of exact at n in {200, 400}.
        for n in [200usize, 400] {
            let rmse = gate_rmse(n);
            assert!(
                rmse < GATE_RMSE_BUDGET,
                "n={n}: gate RMSE {rmse} exceeds budget {GATE_RMSE_BUDGET}"
            );
        }
    }

    #[test]
    fn metrics_are_stable_names() {
        let r = FitResult {
            quick: true,
            restarts: 2,
            subsample: 100,
            approx_n2000_ms: 1.0,
            approx_n5000_ms: 2.0,
            rank_n5000: 256,
            gate_rmse_n200: 0.001,
            gate_rmse_n400: 0.002,
        };
        let names: Vec<&str> = r.metrics().into_iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            [
                "approx_fit_n2000_ms",
                "approx_fit_n5000_ms",
                "gate_rmse_n200",
                "gate_rmse_n400"
            ]
        );
    }
}
