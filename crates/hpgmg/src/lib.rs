#![warn(missing_docs)]
//! # alperf-hpgmg
//!
//! A from-scratch stand-in for the paper's benchmark, HPGMG-FE: a geometric
//! **Full Multigrid (FMG)** solver for elliptic problems on structured 3-D
//! grids, plus an analytic performance/energy model calibrated to the
//! paper's Table I.
//!
//! The paper runs "HPGMG-FE, the compute- and cache-intensive component
//! which solves constant- and variable-coefficient elliptic problems on
//! deformed meshes using Full Multigrid" with an `Operator` factor taking
//! the levels `poisson1`, `poisson2`, `poisson2affine`. This crate maps
//! those to:
//!
//! * [`operator::OperatorKind::Poisson1`] — constant-coefficient Poisson,
//!   7-point stencil;
//! * [`operator::OperatorKind::Poisson2`] — variable-coefficient
//!   `-div(a(x) grad u)` with a smooth positive coefficient field, flux
//!   stencil with face-averaged coefficients;
//! * [`operator::OperatorKind::Poisson2Affine`] — constant-coefficient
//!   problem on an affinely deformed (axis-scaled) mesh, which becomes an
//!   anisotropic diffusion tensor on the unit cube. (Shear terms of a
//!   general affine map are omitted — the performance-relevant structure,
//!   an anisotropic 7-point stencil with distinct per-axis costs, is
//!   retained; see DESIGN.md.)
//!
//! The solver is real and runnable (see the `online_al` example, where AL
//! drives actual solves and measures wall-clock time); the
//! [`model::PerfModel`] extrapolates runtime and energy to the full Table I
//! problem-size range (up to 1.1e9 unknowns) that cannot be executed
//! locally.
//!
//! Smoothers, residuals and grid transfers parallelize over z-slabs with
//! rayon, following HPGMG's own OpenMP slab decomposition.

pub mod cycle;
pub mod grid3;
pub mod krylov;
pub mod model;
pub mod operator;
pub mod smoother;
pub mod solver;
pub mod transfer;

pub use grid3::Grid3;
pub use model::{MachineSpec, PerfModel};
pub use operator::OperatorKind;
pub use solver::{FmgSolver, SolveStats};
