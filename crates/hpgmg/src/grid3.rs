//! Structured 3-D vertex-centered grid on the unit cube.
//!
//! A [`Grid3`] of refinement `n` stores `(n+1)^3` vertex values, including
//! the Dirichlet boundary shell (held at zero by every operation in this
//! crate). The interior unknowns are the `(n-1)^3` vertices with
//! `1 <= i,j,k <= n-1`, spacing `h = 1/n`.
//!
//! Storage is one contiguous `Vec<f64>` in x-fastest order so that z-slabs
//! (`k = const` planes) are contiguous — the unit of rayon parallelism for
//! every stencil sweep.

use rayon::prelude::*;

/// Minimum number of interior points per z-slab sweep before rayon is used.
const PAR_MIN_POINTS: usize = 32 * 32 * 32;

/// A scalar field on the `(n+1)^3` vertices of the unit cube at refinement
/// `n` (which must be a power of two, `>= 2`).
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3 {
    n: usize,
    data: Vec<f64>,
}

impl Grid3 {
    /// Zero-initialized grid at refinement `n`.
    ///
    /// # Panics
    /// Panics unless `n >= 2` and `n` is a power of two (multigrid needs
    /// clean coarsening).
    pub fn zeros(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "refinement must be a power of two >= 2, got {n}"
        );
        let side = n + 1;
        Grid3 {
            n,
            data: vec![0.0; side * side * side],
        }
    }

    /// Refinement level `n` (cells per axis).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Mesh spacing `h = 1/n`.
    #[inline]
    pub fn h(&self) -> f64 {
        1.0 / self.n as f64
    }

    /// Vertices per axis (`n + 1`).
    #[inline]
    pub fn side(&self) -> usize {
        self.n + 1
    }

    /// Number of interior unknowns `(n-1)^3`.
    pub fn n_interior(&self) -> usize {
        let m = self.n - 1;
        m * m * m
    }

    /// Flat index of vertex `(i, j, k)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        let s = self.side();
        debug_assert!(i < s && j < s && k < s);
        i + s * (j + s * k)
    }

    /// Value at vertex `(i, j, k)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// Set the value at vertex `(i, j, k)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let idx = self.idx(i, j, k);
        self.data[idx] = v;
    }

    /// Physical coordinates of vertex `(i, j, k)`.
    pub fn coords(&self, i: usize, j: usize, k: usize) -> (f64, f64, f64) {
        let h = self.h();
        (i as f64 * h, j as f64 * h, k as f64 * h)
    }

    /// Raw data (x-fastest layout).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fill the interior from a function of physical coordinates; the
    /// boundary shell stays zero (homogeneous Dirichlet).
    pub fn fill_interior(&mut self, f: impl Fn(f64, f64, f64) -> f64 + Sync) {
        let n = self.n;
        let side = self.side();
        let h = self.h();
        let plane = side * side;
        let body = |k: usize, slab: &mut [f64]| {
            if k == 0 || k == n {
                return;
            }
            let z = k as f64 * h;
            for j in 1..n {
                let y = j as f64 * h;
                let row = j * side;
                for i in 1..n {
                    slab[row + i] = f(i as f64 * h, y, z);
                }
            }
        };
        if self.n_interior() >= PAR_MIN_POINTS {
            self.data
                .par_chunks_mut(plane)
                .enumerate()
                .for_each(|(k, slab)| body(k, slab));
        } else {
            for (k, slab) in self.data.chunks_mut(plane).enumerate() {
                body(k, slab);
            }
        }
    }

    /// Set every value (interior and boundary) to zero.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Max-norm over the interior.
    pub fn norm_inf(&self) -> f64 {
        self.fold_interior(0.0f64, |m, v| m.max(v.abs()), |a, b| a.max(b))
    }

    /// Discrete L2 norm over the interior: `sqrt(h^3 sum v^2)`.
    pub fn norm_l2(&self) -> f64 {
        let s = self.fold_interior(0.0f64, |acc, v| acc + v * v, |a, b| a + b);
        (s * self.h().powi(3)).sqrt()
    }

    /// `self += a * other` over the interior.
    ///
    /// # Panics
    /// Panics if refinements differ.
    pub fn axpy(&mut self, a: f64, other: &Grid3) {
        assert_eq!(self.n, other.n, "axpy: refinement mismatch");
        let n = self.n;
        let side = self.side();
        let plane = side * side;
        let apply = |k: usize, slab: &mut [f64], oslab: &[f64]| {
            if k == 0 || k == n {
                return;
            }
            for j in 1..n {
                let row = j * side;
                for i in 1..n {
                    slab[row + i] += a * oslab[row + i];
                }
            }
        };
        if self.n_interior() >= PAR_MIN_POINTS {
            self.data
                .par_chunks_mut(plane)
                .zip(other.data.par_chunks(plane))
                .enumerate()
                .for_each(|(k, (slab, oslab))| apply(k, slab, oslab));
        } else {
            for (k, (slab, oslab)) in self
                .data
                .chunks_mut(plane)
                .zip(other.data.chunks(plane))
                .enumerate()
            {
                apply(k, slab, oslab);
            }
        }
    }

    /// Max-norm of `self - other` over the interior.
    pub fn max_diff(&self, other: &Grid3) -> f64 {
        assert_eq!(self.n, other.n, "max_diff: refinement mismatch");
        let n = self.n;
        let mut m = 0.0f64;
        for k in 1..n {
            for j in 1..n {
                for i in 1..n {
                    m = m.max((self.get(i, j, k) - other.get(i, j, k)).abs());
                }
            }
        }
        m
    }

    fn fold_interior<T: Send + Sync + Copy>(
        &self,
        init: T,
        f: impl Fn(T, f64) -> T + Sync,
        combine: impl Fn(T, T) -> T + Sync + Send,
    ) -> T {
        let n = self.n;
        let side = self.side();
        let plane = side * side;
        let slab_fold = |k: usize, slab: &[f64]| -> T {
            let mut acc = init;
            if k == 0 || k == n {
                return acc;
            }
            for j in 1..n {
                let row = j * side;
                for i in 1..n {
                    acc = f(acc, slab[row + i]);
                }
            }
            acc
        };
        if self.n_interior() >= PAR_MIN_POINTS {
            self.data
                .par_chunks(plane)
                .enumerate()
                .map(|(k, slab)| slab_fold(k, slab))
                .reduce(|| init, &combine)
        } else {
            self.data
                .chunks(plane)
                .enumerate()
                .map(|(k, slab)| slab_fold(k, slab))
                .fold(init, &combine)
        }
    }

    /// `true` if every boundary vertex is exactly zero (invariant check).
    pub fn boundary_is_zero(&self) -> bool {
        let n = self.n;
        let s = self.side();
        for k in 0..s {
            for j in 0..s {
                for i in 0..s {
                    let on_boundary = i == 0 || j == 0 || k == 0 || i == n || j == n || k == n;
                    if on_boundary && self.get(i, j, k) != 0.0 {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shapes() {
        let g = Grid3::zeros(8);
        assert_eq!(g.n(), 8);
        assert_eq!(g.side(), 9);
        assert_eq!(g.n_interior(), 343);
        assert!((g.h() - 0.125).abs() < 1e-15);
        assert_eq!(g.as_slice().len(), 9 * 9 * 9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        Grid3::zeros(6);
    }

    #[test]
    fn index_round_trip() {
        let mut g = Grid3::zeros(4);
        g.set(1, 2, 3, 7.5);
        assert_eq!(g.get(1, 2, 3), 7.5);
        assert_eq!(g.as_slice()[g.idx(1, 2, 3)], 7.5);
    }

    #[test]
    fn coords_at_corners() {
        let g = Grid3::zeros(4);
        assert_eq!(g.coords(0, 0, 0), (0.0, 0.0, 0.0));
        assert_eq!(g.coords(4, 4, 4), (1.0, 1.0, 1.0));
        assert_eq!(g.coords(2, 0, 0).0, 0.5);
    }

    #[test]
    fn fill_interior_respects_boundary() {
        let mut g = Grid3::zeros(8);
        g.fill_interior(|_, _, _| 1.0);
        assert!(g.boundary_is_zero());
        assert_eq!(g.get(4, 4, 4), 1.0);
        assert_eq!(g.get(0, 4, 4), 0.0);
    }

    #[test]
    fn fill_interior_uses_coordinates() {
        let mut g = Grid3::zeros(4);
        g.fill_interior(|x, y, z| x + 10.0 * y + 100.0 * z);
        // Vertex (1,2,3): x=0.25, y=0.5, z=0.75.
        assert!((g.get(1, 2, 3) - (0.25 + 5.0 + 75.0)).abs() < 1e-12);
    }

    #[test]
    fn parallel_fill_matches_serial() {
        // n=64 exceeds the parallel threshold.
        let f = |x: f64, y: f64, z: f64| (x * 3.0).sin() + y * z;
        let mut big = Grid3::zeros(64);
        big.fill_interior(f);
        for (i, j, k) in [(1, 1, 1), (32, 17, 5), (63, 63, 63)] {
            let (x, y, z) = big.coords(i, j, k);
            assert_eq!(big.get(i, j, k), f(x, y, z));
        }
        assert!(big.boundary_is_zero());
    }

    #[test]
    fn norms_known_values() {
        let mut g = Grid3::zeros(2); // single interior point
        g.set(1, 1, 1, -3.0);
        assert_eq!(g.norm_inf(), 3.0);
        // L2: sqrt(h^3 * 9) with h = 1/2.
        assert!((g.norm_l2() - (9.0f64 / 8.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn axpy_interior_only() {
        let mut a = Grid3::zeros(4);
        let mut b = Grid3::zeros(4);
        a.fill_interior(|_, _, _| 1.0);
        b.fill_interior(|_, _, _| 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.get(2, 2, 2), 2.0);
        assert!(a.boundary_is_zero());
    }

    #[test]
    fn max_diff_and_clear() {
        let mut a = Grid3::zeros(4);
        let b = Grid3::zeros(4);
        a.set(1, 1, 1, 0.25);
        assert_eq!(a.max_diff(&b), 0.25);
        a.clear();
        assert_eq!(a.max_diff(&b), 0.0);
    }

    #[test]
    fn l2_norm_of_smooth_function_converges() {
        // ||x(1-x) y(1-y) z(1-z)||_L2 over the cube = (1/30)^{3/2}.
        // (The sin-product norm would be summed *exactly* by the discrete
        // norm at every n — a classic equispaced-sine identity — so a
        // polynomial is used to observe actual O(h^2) convergence.)
        let expect = (1.0f64 / 30.0).powf(1.5);
        let mut prev_err = f64::INFINITY;
        for n in [8, 16, 32] {
            let mut g = Grid3::zeros(n);
            g.fill_interior(|x, y, z| x * (1.0 - x) * y * (1.0 - y) * z * (1.0 - z));
            let err = (g.norm_l2() - expect).abs();
            assert!(err < prev_err, "n={n}: {err} !< {prev_err}");
            prev_err = err;
        }
        assert!(prev_err < 2e-4, "final error {prev_err}");
    }
}
